#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# All dependencies are vendored in-tree, so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy (geom kernels: suboptimal_flops)"
# The distance kernels are the arithmetic hot path; hold them to the
# stricter floating-point lint tier.
cargo clippy -p sdj-geom --all-targets --no-deps --offline -- \
    -D warnings -D clippy::suboptimal_flops

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo bench --no-run"
cargo bench --workspace --offline --no-run

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> kernel-equivalence smoke gate"
# Batched SoA distance kernels must match the scalar bound functions
# (<= 1 ulp, every metric, 2-D and 3-D), and every KeyDomain x
# ExpansionPath combination must emit the identical result stream.
cargo test -p sdj-geom --offline -q --test kernel_equivalence
cargo test -p sdj-core --offline -q --test key_domain

echo "==> storage concurrency smoke gate"
# The sharded buffer pool must stay observationally equivalent to the
# historical single-lock pool: clippy-clean storage crate, the
# model-equivalence + pin/evict proptests, the multi-thread pin/evict
# stress test, and bit-identical join streams across shard counts {1,4}
# (covered inside parallel_equivalence alongside thread counts).
cargo clippy -p sdj-storage --all-targets --offline -- -D warnings
cargo test -p sdj-storage --offline -q --test pin_evict
cargo test -p sdj-storage --offline -q --test pin_evict threaded_pin_evict_stress
cargo test -p sdj-exec --offline -q --test parallel_equivalence shard_counts_are_stream_invisible
cargo test -p sdj-exec --offline -q --test parallel_equivalence prefetch_is_stream_invisible_and_conserves_io

echo "==> fail-clean chaos gate"
# Fault injection must never panic and never corrupt the result stream:
# storage and pqueue hold the panic-free lint tier (no unwrap/expect in
# library code), the fuzzed fault-schedule proptests assert the
# prefix-or-identical invariant for serial and parallel runs, and a seeded
# end-to-end report run under transient faults must complete bit-identically
# with retries recorded in the report. The seed pins one deterministic
# schedule, so this gate is reproducible (see README: SDJ_FAULT_SEED).
cargo clippy -p sdj-storage -p sdj-pqueue -p sdj-core --lib --no-deps --offline -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used
cargo test -p sdj-storage --offline -q fault
cargo test -p sdj-core --offline -q --test chaos
cargo test -p sdj-exec --offline -q --test chaos_parallel
SDJ_FAULT_SEED=1998 SDJ_FAULT_RATE=0.2 ./target/release/sdj-report \
    --n 2000 --k 300 --out results/RunReport_chaos.json
./target/release/sdj-report --check results/RunReport_chaos.json \
    --expect-drain --expect-retries

echo "==> planner / bulk-path gate"
# The bulk partition/plane-sweep path must stay multiset-equal to the
# incremental engine (bit-identical ordered streams), invariant across
# worker counts, and the cost-based planner's choice must be recorded in
# reports and overridable. The lane kernels ride the geom suboptimal_flops
# gate above (sdj-geom --all-targets covers them). bench_planner must keep
# building so BENCH_planner.json stays reproducible.
cargo build --release --offline -p sdj-bench --bin bench_planner
cargo test -p sdj-core --offline -q --test bulk_equivalence
cargo test -p sdj-exec --offline -q --test bulk_parallel
./target/release/sdj-report --n 3000 --k 200 --force-plan bulk \
    --out results/RunReport_bulk.json
./target/release/sdj-report --check results/RunReport_bulk.json --expect-plan bulk

echo "==> observability smoke gate"
# A small instrumented join must produce a schema-valid RunReport whose
# rank curve is monotone and whose queue curve grows then drains; the
# no-op-sink engine must stay within SDJ_OVERHEAD_PCT (default 2%) of the
# uninstrumented one on identical work.
./target/release/sdj-report --n 4000 --k 800 --threads 2 \
    --out results/RunReport_ci.json --events results/RunReport_ci.ndjson
./target/release/sdj-report --check results/RunReport_ci.json --expect-drain

echo "==> profiling gate"
# An instrumented run must carry the EXPLAIN-ANALYZE profile: a non-empty
# per-phase span table whose self-times conserve against the lane budget,
# plus a well-formed planner calibration section. Profiling must be a pure
# observer: streams stay bit-identical with spans off/sampled/always
# (proptested), and the overhead gate runs both comparisons — bare vs
# fully instrumented, and spans-off vs spans-on — under SDJ_OVERHEAD_PCT.
cargo test -p sdj-core --offline -q --test profiling_invariance
./target/release/sdj-report --n 20000 --k 5000 \
    --out results/RunReport_profile.json --profile
./target/release/sdj-report --check results/RunReport_profile.json \
    --expect-drain --expect-profile
./target/release/sdj-report --overhead --n 20000 --k 10000

echo "==> adaptive replanning gate"
# The adaptive path must stay invisible in the result stream: the forced
# equivalence proptests (arbitrary handoff checkpoints, bit-identical
# ordered streams, multiset equality, fail-clean under faults) must pass,
# and a forced-adaptive report run must record the executed path. The
# second run pins a deterministic mid-query handoff via
# SDJ_ADAPTIVE_FORCE_AT and requires the single incremental→bulk switch
# to land in the report (plan.replans / plan.replan_at_pair).
cargo test -p sdj-core --offline -q --test adaptive_equivalence
./target/release/sdj-report --n 3000 --k 500 --force-plan adaptive \
    --out results/RunReport_adaptive.json
./target/release/sdj-report --check results/RunReport_adaptive.json \
    --expect-plan adaptive
SDJ_ADAPTIVE_FORCE_AT=200 ./target/release/sdj-report --n 3000 --k 500 \
    --force-plan adaptive --out results/RunReport_adaptive_handoff.json
./target/release/sdj-report --check results/RunReport_adaptive_handoff.json \
    --expect-plan adaptive --expect-replans 1

echo "==> queue-layout gate"
# The flat 4-ary compact layout must stay invisible in the result stream:
# the cross-layout proptests (pop streams, tier gauge conservation, slab
# accounting, spill round-trips) must pass, bench_queue must keep building
# so BENCH_queue.json stays reproducible, and a flat-layout report run must
# produce the same pair counts as the default pairing run while recording
# non-zero queue-memory gauges.
cargo build --release --offline -p sdj-bench --bin bench_queue
cargo test -p sdj-pqueue --offline -q --test layout_equivalence
cargo test -p sdj-exec --offline -q --test parallel_equivalence flat_layout_is_stream_invisible_across_engines_and_backends
./target/release/sdj-report --n 4000 --k 800 \
    --out results/RunReport_queue_pairing.json
SDJ_QUEUE_LAYOUT=flat ./target/release/sdj-report --n 4000 --k 800 \
    --out results/RunReport_queue_flat.json
./target/release/sdj-report --check results/RunReport_queue_flat.json \
    --expect-drain --expect-queue-bytes \
    --expect-pairs-match results/RunReport_queue_pairing.json

echo "==> session service gate"
# The cursor-session service must stay invisible in every result stream:
# interleaved/paused/resumed/budgeted sessions emit bit-identical streams
# to solo runs and cancellation leaks nothing (fuzzed-schedule proptests),
# a kind-confused queue pair must decode to a typed Corrupt error rather
# than a panic (one corrupt query must not take down a serving process),
# and a 4-session interleaved report run must attribute each session's
# share of the shared buffer pool in the report's sessions rows.
cargo test -p sdj-service --offline -q --test session_equivalence
cargo test -p sdj-core --offline -q --test chaos kind_confused_pair_decodes_to_error_or_honest_kinds
./target/release/sdj-report --n 4000 --k 400 --sessions 4 \
    --out results/RunReport_sessions.json
./target/release/sdj-report --check results/RunReport_sessions.json \
    --expect-drain --expect-sessions 4

echo "CI OK"
