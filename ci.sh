#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# All dependencies are vendored in-tree, so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "CI OK"
