//! Build an index once, save it to a file, reopen it later (or in another
//! process) and join straight away — the page image round-trips bit-exactly,
//! including free pages.
//!
//! Run with: `cargo run --release --example persistence`

use incremental_distance_join::datagen::tiger;
use incremental_distance_join::join::{DistanceJoin, JoinConfig};
use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};

fn main() {
    let water = tiger::water_like(5_000, 3);
    let roads = tiger::roads_like(20_000, 3);

    // Phase 1: build and save (imagine this is an offline indexing job).
    let dir = std::env::temp_dir();
    let water_path = dir.join("sdj_example_water.idx");
    let roads_path = dir.join("sdj_example_roads.idx");
    {
        let mut tw = RTree::new(RTreeConfig::default());
        for (i, p) in water.iter().enumerate() {
            tw.insert(ObjectId(i as u64), p.to_rect()).expect("insert");
        }
        let mut tr = RTree::new(RTreeConfig::default());
        for (i, p) in roads.iter().enumerate() {
            tr.insert(ObjectId(i as u64), p.to_rect()).expect("insert");
        }
        tw.save(&water_path).expect("save water index");
        tr.save(&roads_path).expect("save roads index");
        println!(
            "saved {} + {} objects to {:?} ({} and {} bytes)",
            tw.len(),
            tr.len(),
            dir,
            std::fs::metadata(&water_path).unwrap().len(),
            std::fs::metadata(&roads_path).unwrap().len(),
        );
    } // both trees dropped here

    // Phase 2: reopen and query (imagine a separate serving process).
    let tw = RTree::<2>::open(&water_path).expect("open water index");
    let tr = RTree::<2>::open(&roads_path).expect("open roads index");
    tw.validate().expect("water index intact");
    tr.validate().expect("roads index intact");

    println!("\nfive closest (water, road) pairs from the reopened indexes:");
    for pair in DistanceJoin::new(&tw, &tr, JoinConfig::default()).take(5) {
        println!(
            "  water {:>4} – road {:>5}  distance {:.6}",
            pair.oid1.0, pair.oid2.0, pair.distance
        );
    }

    // Reopened trees are fully updatable.
    let mut tw = tw;
    tw.insert(
        ObjectId(999_999),
        incremental_distance_join::geom::Point::xy(0.5, 0.5).to_rect(),
    )
    .expect("insert into reopened tree");
    println!(
        "\ninserted one more object; water index now holds {}",
        tw.len()
    );

    std::fs::remove_file(&water_path).ok();
    std::fs::remove_file(&roads_path).ok();
}
