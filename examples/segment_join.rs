//! Distance join over objects with extent: line segments stored externally
//! to the index. Leaf entries hold bounding rectangles, so dequeued obr/obr
//! pairs are refined with exact segment-to-segment distances through a
//! `SliceOracle` — the paper's Figure 3 refinement path (§5 lists extended
//! objects as the natural next step beyond the point experiments).
//!
//! Run with: `cargo run --release --example segment_join`

use incremental_distance_join::datagen::{uniform_points, unit_box};
use incremental_distance_join::geom::{Metric, Point, Segment, SpatialObject};
use incremental_distance_join::join::{DistanceJoin, JoinConfig, SliceOracle};
use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};

/// Builds a set of short segments ("road pieces" / "river reaches") with
/// deterministic headings.
fn segments(n: usize, length: f64, seed: u64) -> Vec<Segment> {
    uniform_points(n, &unit_box(), seed)
        .into_iter()
        .enumerate()
        .map(|(i, start)| {
            let angle = (i as f64) * 2.399_963_229_728_653; // golden angle
            let end = Point::xy(
                start.x() + length * angle.cos(),
                start.y() + length * angle.sin(),
            );
            Segment::new(start, end)
        })
        .collect()
}

fn main() {
    let roads = segments(800, 0.03, 1);
    let rivers = segments(150, 0.06, 2);

    let mut road_tree = RTree::new(RTreeConfig::default());
    for (i, s) in roads.iter().enumerate() {
        road_tree
            .insert(ObjectId(i as u64), s.mbr())
            .expect("insert");
    }
    let mut river_tree = RTree::new(RTreeConfig::default());
    for (i, s) in rivers.iter().enumerate() {
        river_tree
            .insert(ObjectId(i as u64), s.mbr())
            .expect("insert");
    }

    let oracle = SliceOracle::new(&roads, &rivers, Metric::Euclidean);
    let mut join =
        DistanceJoin::with_oracle(&road_tree, &river_tree, oracle, JoinConfig::default());

    println!("Ten closest (road, river) segment pairs:");
    let mut crossings = 0;
    for pair in join.by_ref().take(10) {
        let tag = if pair.distance == 0.0 {
            crossings += 1;
            "  <- crossing!"
        } else {
            ""
        };
        println!(
            "  road {:>3} – river {:>3}  distance {:.5}{tag}",
            pair.oid1.0, pair.oid2.0, pair.distance
        );
    }
    let stats = join.stats();
    println!("\n{crossings} of the ten pairs actually intersect");
    println!(
        "exact segment distances computed: {} (vs {} bound evaluations)",
        stats.object_distance_calcs, stats.distance_calcs
    );

    // §2.2.5's intersection-ordering extension in action: a max distance of
    // zero turns the distance join into an intersection join.
    let crossings_total = DistanceJoin::with_oracle(
        &road_tree,
        &river_tree,
        oracle,
        JoinConfig::default().with_range(0.0, 0.0),
    )
    .count();
    println!("total (road, river) crossings: {crossings_total}");
}
