//! Quickstart: index two point sets and stream their closest pairs.
//!
//! Run with: `cargo run --release --example quickstart`

use incremental_distance_join::geom::Point;
use incremental_distance_join::join::{DistanceJoin, JoinConfig, SemiConfig};
use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};

fn main() {
    // Two tiny relations with spatial attributes.
    let restaurants = [
        ("Blue Heron", 1.0, 4.0),
        ("Samet's Diner", 3.0, 1.0),
        ("Quad Grill", 6.0, 5.0),
        ("Deep Fork", 8.0, 2.0),
    ];
    let hotels = [
        ("Hotel R", 2.0, 3.5),
        ("Hotel Tree", 7.0, 4.0),
        ("Hotel Star", 9.0, 9.0),
    ];

    // Index each relation with an R*-tree.
    let mut r_tree = RTree::new(RTreeConfig::default());
    for (i, (_, x, y)) in restaurants.iter().enumerate() {
        r_tree
            .insert(ObjectId(i as u64), Point::xy(*x, *y).to_rect())
            .expect("insert");
    }
    let mut h_tree = RTree::new(RTreeConfig::default());
    for (i, (_, x, y)) in hotels.iter().enumerate() {
        h_tree
            .insert(ObjectId(i as u64), Point::xy(*x, *y).to_rect())
            .expect("insert");
    }

    // Distance join: (restaurant, hotel) pairs, closest first. The join is
    // incremental — taking three pairs does only the work for three pairs.
    println!("Three closest (restaurant, hotel) pairs:");
    for pair in DistanceJoin::new(&r_tree, &h_tree, JoinConfig::default()).take(3) {
        println!(
            "  {:<14} – {:<10}  distance {:.2}",
            restaurants[pair.oid1.0 as usize].0, hotels[pair.oid2.0 as usize].0, pair.distance
        );
    }

    // Distance semi-join: each restaurant's nearest hotel, closest first.
    println!("\nNearest hotel to every restaurant:");
    for pair in DistanceJoin::semi(
        &r_tree,
        &h_tree,
        JoinConfig::default(),
        SemiConfig::default(),
    ) {
        println!(
            "  {:<14} -> {:<10}  distance {:.2}",
            restaurants[pair.oid1.0 as usize].0, hotels[pair.oid2.0 as usize].0, pair.distance
        );
    }

    // A within-distance join: pairs at most 3 apart.
    let near =
        DistanceJoin::new(&r_tree, &h_tree, JoinConfig::default().with_range(0.0, 3.0)).count();
    println!("\n(restaurant, hotel) pairs within distance 3: {near}");
}
