//! The paper's flagship query (§1/§5): "find the city nearest to any
//! river, such that the city has a population of more than 5 million" —
//! executed through the SQL-shaped query layer, under both plans the paper
//! discusses (filter after join vs filter before join).
//!
//! Run with: `cargo run --release --example cities_rivers`

use incremental_distance_join::datagen::{tiger, uniform_points, unit_box};
use incremental_distance_join::geom::Point;
use incremental_distance_join::query::{
    CmpOp, DistanceQuery, PlanChoice, Predicate, Relation, Value,
};

fn main() {
    // Rivers: a Water-like set of 2,000 feature centroids.
    let mut rivers = Relation::new("rivers", &["feature"]);
    for (i, p) in tiger::water_like(2_000, 7).iter().enumerate() {
        rivers.insert(*p, vec![Value::from(format!("river-{i}").as_str())]);
    }

    // Cities: 500 locations with synthetic populations (a handful large).
    let mut cities = Relation::new("cities", &["name", "population"]);
    let locs = uniform_points(500, &unit_box(), 9);
    for (i, p) in locs.iter().enumerate() {
        let population: i64 = if i % 50 == 0 {
            5_000_001 + (i as i64) * 10_000
        } else {
            1_000 + (i as i64) * 37
        };
        cities.insert(
            *p,
            vec![
                Value::from(format!("city-{i}").as_str()),
                Value::from(population),
            ],
        );
    }

    let megacity = Predicate::cmp("population", CmpOp::Gt, 5_000_000i64);

    // "STOP AFTER 1": the nearest qualifying (city, river) pair.
    println!("City nearest to any river, population > 5,000,000:");
    for plan in [PlanChoice::FilterAfterJoin, PlanChoice::FilterBeforeJoin] {
        let row = DistanceQuery::join(&cities, &rivers)
            .where_left(megacity.clone())
            .stop_after(1)
            .with_plan(plan)
            .execute()
            .next()
            .expect("some city qualifies");
        println!(
            "  [{plan:?}] {} (pop {}) at distance {:.4} from {}",
            cities.value(row.left, "name").unwrap(),
            cities.value(row.left, "population").unwrap(),
            row.distance,
            rivers.value(row.right, "feature").unwrap(),
        );
    }

    // Let the optimizer choose: the predicate keeps ~2% of cities, so it
    // should prefer materialising the filtered side.
    let auto = DistanceQuery::join(&cities, &rivers)
        .where_left(megacity.clone())
        .stop_after(1)
        .execute();
    println!("  optimizer selected: {:?}", auto.plan());

    // "Find cities within 0.02 of any river" — a within predicate plus
    // STOP AFTER, streamed in distance order.
    println!("\nFirst five (city, river) pairs within distance 0.02:");
    let rows = DistanceQuery::join(&cities, &rivers)
        .within(0.0, 0.02)
        .stop_after(5)
        .execute();
    for row in rows {
        println!(
            "  {} – {}  (d = {:.4})",
            cities.value(row.left, "name").unwrap(),
            rivers.value(row.right, "feature").unwrap(),
            row.distance
        );
    }

    // The semi-join form: every city's nearest river, first three results.
    println!("\nNearest river per city (first three, closest cities first):");
    let rows = DistanceQuery::semi_join(&cities, &rivers)
        .stop_after(3)
        .execute();
    for row in rows {
        let p: Point<2> = cities.point(row.left);
        println!(
            "  {} at ({:.2}, {:.2}) -> {} (d = {:.4})",
            cities.value(row.left, "name").unwrap(),
            p.x(),
            p.y(),
            rivers.value(row.right, "feature").unwrap(),
            row.distance
        );
    }
}
