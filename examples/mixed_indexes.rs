//! One join engine, two index structures: the same incremental distance
//! join runs over an R*-tree, a PR quadtree, and even one of each — §2.2's
//! "works for any spatial data structure based on a hierarchical
//! decomposition" made concrete.
//!
//! Run with: `cargo run --release --example mixed_indexes`

use incremental_distance_join::datagen::{tiger, unit_box};
use incremental_distance_join::join::{DistanceJoin, JoinConfig};
use incremental_distance_join::quadtree::{PrQuadtree, QuadtreeConfig};
use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};

fn main() {
    let water = tiger::water_like(3_000, 1);
    let roads = tiger::roads_like(12_000, 1);

    // Index Water twice: once as an R*-tree, once as a PR quadtree.
    let mut water_rtree = RTree::new(RTreeConfig::default());
    let mut water_quad = PrQuadtree::new(QuadtreeConfig::new(unit_box()));
    for (i, p) in water.iter().enumerate() {
        water_rtree
            .insert(ObjectId(i as u64), p.to_rect())
            .expect("insert");
        water_quad
            .insert(ObjectId(i as u64), *p)
            .expect("in bounds");
    }
    let mut roads_rtree = RTree::new(RTreeConfig::default());
    let mut roads_quad = PrQuadtree::new(QuadtreeConfig::new(unit_box()));
    for (i, p) in roads.iter().enumerate() {
        roads_rtree
            .insert(ObjectId(i as u64), p.to_rect())
            .expect("insert");
        roads_quad
            .insert(ObjectId(i as u64), *p)
            .expect("in bounds");
    }

    let k = 10;
    println!("Ten closest (water, road) pairs through three different substrates:\n");

    let rr: Vec<_> = DistanceJoin::new(&water_rtree, &roads_rtree, JoinConfig::default())
        .take(k)
        .collect();
    let qq: Vec<_> = DistanceJoin::new(&water_quad, &roads_quad, JoinConfig::default())
        .take(k)
        .collect();
    let qr: Vec<_> = DistanceJoin::new(&water_quad, &roads_rtree, JoinConfig::default())
        .take(k)
        .collect();

    println!(
        "{:>4}  {:>12}  {:>12}  {:>12}",
        "#", "R* x R*", "quad x quad", "quad x R*"
    );
    for i in 0..k {
        println!(
            "{:>4}  {:>12.8}  {:>12.8}  {:>12.8}",
            i + 1,
            rr[i].distance,
            qq[i].distance,
            qr[i].distance
        );
        assert!((rr[i].distance - qq[i].distance).abs() < 1e-12);
        assert!((rr[i].distance - qr[i].distance).abs() < 1e-12);
    }
    println!("\nAll three substrates produce identical distance streams.");

    // The quadtree's non-minimal quadrant regions cost some traversal
    // precision; compare the work counters.
    let mut j1 = DistanceJoin::new(&water_rtree, &roads_rtree, JoinConfig::default());
    let mut j2 = DistanceJoin::new(&water_quad, &roads_quad, JoinConfig::default());
    let _ = j1.by_ref().take(1_000).count();
    let _ = j2.by_ref().take(1_000).count();
    let (s1, s2) = (j1.stats(), j2.stats());
    println!(
        "\nwork for 1,000 pairs — R* x R*: {} distance calcs, {} node reads; \
         quad x quad: {} distance calcs, {} node reads",
        s1.distance_calcs, s1.node_accesses, s2.distance_calcs, s2.node_accesses
    );
}
