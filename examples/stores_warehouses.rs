//! The paper's clustering motivation (§1): assign every store to its
//! closest warehouse with a distance semi-join. The complete semi-join
//! partitions the stores like a discrete Voronoi diagram with the
//! warehouses as sites — as a database primitive, no computational-geometry
//! library involved.
//!
//! Run with: `cargo run --release --example stores_warehouses`

use incremental_distance_join::datagen::{gaussian_clusters, uniform_points, unit_box};
use incremental_distance_join::geom::Metric;
use incremental_distance_join::join::{
    DistanceJoin, DmaxStrategy, JoinConfig, SemiConfig, SemiFilter,
};
use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};

fn main() {
    // 2,000 stores clustered around 12 population centres; 8 warehouses.
    let stores = gaussian_clusters(2_000, 12, 0.04, &unit_box(), 42);
    let warehouses = uniform_points(8, &unit_box(), 43);

    let mut store_tree = RTree::new(RTreeConfig::default());
    for (i, p) in stores.iter().enumerate() {
        store_tree
            .insert(ObjectId(i as u64), p.to_rect())
            .expect("insert");
    }
    let mut wh_tree = RTree::new(RTreeConfig::default());
    for (i, p) in warehouses.iter().enumerate() {
        wh_tree
            .insert(ObjectId(i as u64), p.to_rect())
            .expect("insert");
    }

    // Complete distance semi-join with the best strategy from the paper's
    // §4.2 evaluation (GlobalAll).
    let semi = SemiConfig {
        filter: SemiFilter::Inside2,
        dmax: DmaxStrategy::GlobalAll,
    };
    let mut assignment = vec![0usize; warehouses.len()];
    let mut served_distance = vec![0.0f64; warehouses.len()];
    let mut join = DistanceJoin::semi(&store_tree, &wh_tree, JoinConfig::default(), semi);
    for pair in join.by_ref() {
        let w = pair.oid2.0 as usize;
        assignment[w] += 1;
        served_distance[w] = served_distance[w].max(pair.distance);
    }
    let stats = join.stats();

    println!(
        "Discrete Voronoi partition of {} stores over {} warehouses:",
        stores.len(),
        warehouses.len()
    );
    for (w, p) in warehouses.iter().enumerate() {
        println!(
            "  warehouse {w} at ({:.2}, {:.2}): {:>4} stores, farthest served {:.3}",
            p.x(),
            p.y(),
            assignment[w],
            served_distance[w]
        );
    }
    assert_eq!(assignment.iter().sum::<usize>(), stores.len());

    // Sanity: the busiest warehouse really is the nearest one for a sample
    // store (verify one assignment by brute force).
    let sample = &stores[0];
    let nearest = warehouses
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            Metric::Euclidean
                .distance(sample, a)
                .partial_cmp(&Metric::Euclidean.distance(sample, b))
                .unwrap()
        })
        .map(|(i, _)| i)
        .unwrap();
    println!("\nstore 0 -> warehouse {nearest} (verified by brute force)");
    println!(
        "\njoin stats: {} queue pairs at peak, {} distance calculations, {} node reads",
        stats.max_queue, stats.distance_calcs, stats.node_accesses
    );

    // The operation is not symmetric: warehouses ⋉ stores finds each
    // warehouse's closest store instead.
    println!("\nClosest store to each warehouse:");
    for pair in DistanceJoin::semi(&wh_tree, &store_tree, JoinConfig::default(), semi) {
        println!(
            "  warehouse {} -> store {} (distance {:.4})",
            pair.oid1.0, pair.oid2.0, pair.distance
        );
    }
}
