//! End-to-end observability: one instrumented join exercises every layer —
//! the engine's counters and event sampling (sdj-core), the hybrid queue's
//! tier gauges and migration events (sdj-pqueue), the buffer pool's
//! hit/miss/eviction counters (sdj-storage via sdj-rtree) — and the
//! collected stream must reconstruct into a valid [`RunReport`] whose
//! series match the results the join actually produced.

use std::sync::Arc;

use sdj_core::{DistanceJoin, JoinConfig, QueueBackend};
use sdj_datagen::{uniform_points, unit_box};
use sdj_geom::Point;
use sdj_obs::{EventSink, ObsContext, RingRecorder, RunRecorder, RunReport, TeeSink};
use sdj_pqueue::HybridConfig;
use sdj_rtree::{ObjectId, RTree, RTreeConfig};
use sdj_storage::BufferObs;

fn small_tree(seed: u64, n: usize) -> RTree<2> {
    let pts: Vec<Point<2>> = uniform_points(n, &unit_box(), seed);
    // A tiny buffer pool so the run actually evicts.
    let mut t = RTree::new(RTreeConfig {
        buffer_frames: 8,
        ..RTreeConfig::small(8)
    });
    for (i, p) in pts.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

#[test]
fn instrumented_join_observes_every_layer() {
    let t1 = small_tree(11, 600);
    let t2 = small_tree(12, 600);

    let ring = Arc::new(RingRecorder::new(1 << 16));
    let run_rec = Arc::new(RunRecorder::new());
    let sink: Arc<dyn EventSink> = Arc::new(TeeSink::new(Arc::clone(&ring), Arc::clone(&run_rec)));
    let ctx = ObsContext::new(sink).with_pop_sample_every(32);

    // Hybrid queue backend so tier events fire; tiny buffer so evictions do.
    t1.attach_obs(BufferObs::new(&ctx, "buf.tree1"));
    t2.attach_obs(BufferObs::new(&ctx, "buf.tree2"));
    let config = JoinConfig {
        queue: QueueBackend::Hybrid(HybridConfig::with_dt(0.01)),
        ..JoinConfig::default()
    }
    .with_max_pairs(500);
    let mut join = DistanceJoin::new(&t1, &t2, config).with_obs(&ctx);
    let results: Vec<_> = join.by_ref().collect();
    let stats = join.stats();
    assert_eq!(results.len(), 500);
    assert_eq!(ring.dropped(), 0);

    // Engine layer: registry counters agree with the run.
    let snap = ctx.registry.snapshot();
    assert_eq!(snap.counter("join.results"), Some(500));
    assert!(snap.counter("join.expansions").unwrap() > 0);
    let (_, queue_peak) = snap.gauge("join.queue_depth").unwrap();
    assert!(queue_peak > 0);
    assert!(stats.max_queue >= queue_peak as usize);

    // Queue layer: tier gauges registered and all elements drained back out.
    let (heap, _) = snap.gauge("pq.tier.heap").unwrap();
    let (list, _) = snap.gauge("pq.tier.list").unwrap();
    let (disk, _) = snap.gauge("pq.tier.disk").unwrap();
    assert_eq!(
        (heap + list + disk) as usize,
        join.queue_len(),
        "tier gauges must sum to the live queue length"
    );

    // Storage layer: the tiny pools were actually exercised.
    let fetches: u64 = ["buf.tree1", "buf.tree2"]
        .iter()
        .map(|p| {
            snap.counter(&format!("{p}.hits")).unwrap()
                + snap.counter(&format!("{p}.misses")).unwrap()
        })
        .sum();
    assert!(fetches > 0, "joins must fetch nodes through the pools");
    let counts = ring.counts();
    assert_eq!(counts.result_reported, 500);
    assert!(counts.queue_sampled > 0, "pop sampling must fire");

    // Report layer: the recorded series reconstruct a valid report whose
    // rank curve is exactly the produced result distances.
    let mut report = RunReport::new("integration");
    run_rec.fill_report(&mut report);
    report.counters = snap.counters.iter().map(|(n, v)| (n.clone(), *v)).collect();
    report.validate().expect("report must validate");
    assert_eq!(report.distance_by_rank.len(), 500);
    for (i, ((rank, dist), r)) in report.distance_by_rank.iter().zip(&results).enumerate() {
        assert_eq!(*rank, i as u64 + 1);
        assert_eq!(dist.to_bits(), r.distance.to_bits());
    }

    // Round-trip: serialised JSON parses back to the same series.
    let back = RunReport::from_json(&report.to_json()).expect("parses");
    assert_eq!(back.distance_by_rank, report.distance_by_rank);
    assert_eq!(back.queue_series, report.queue_series);
    back.validate().expect("round-tripped report validates");
}

/// The disabled path stays disabled: an uninstrumented join touches no
/// registry and emits nothing, and its stats equal an instrumented twin's.
#[test]
fn noop_instrumentation_is_invisible() {
    let t1 = small_tree(21, 300);
    let t2 = small_tree(22, 300);
    let config = JoinConfig::default().with_max_pairs(200);

    let mut bare = DistanceJoin::new(&t1, &t2, config);
    let bare_dists: Vec<u64> = bare.by_ref().map(|r| r.distance.to_bits()).collect();

    let ring = Arc::new(RingRecorder::new(1 << 14));
    let ctx = ObsContext::new(ring.clone() as Arc<dyn EventSink>);
    let mut obs = DistanceJoin::new(&t1, &t2, config).with_obs(&ctx);
    let obs_dists: Vec<u64> = obs.by_ref().map(|r| r.distance.to_bits()).collect();

    assert_eq!(
        bare_dists, obs_dists,
        "instrumentation must not change results"
    );
    assert_eq!(
        bare.stats().distance_calcs,
        obs.stats().distance_calcs,
        "instrumentation must not change the work done"
    );
    assert!(ring.counts().total() > 0, "instrumented twin did emit");
}
