//! Automated checks of the paper's *qualitative* findings at test scale:
//! who wins, and in which direction each knob moves the cost. These mirror
//! the full experiment binaries in `sdj-bench` but run in seconds under
//! `cargo test`. Costs are compared by work counters (distance
//! calculations, queue growth, node accesses) rather than wall-clock, which
//! is noisy at this scale.

use incremental_distance_join::datagen::tiger;
use incremental_distance_join::join::{
    DistanceJoin, DmaxStrategy, JoinConfig, JoinStats, QueueBackend, SemiConfig, SemiFilter,
    TraversalPolicy,
};
use incremental_distance_join::pqueue::HybridConfig;
use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};

fn tree(points: &[sdj_geom::Point<2>]) -> RTree<2> {
    RTree::bulk_load(
        RTreeConfig {
            buffer_frames: 32,
            ..RTreeConfig::default()
        },
        points
            .iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
            .collect(),
    )
}

fn env() -> (RTree<2>, RTree<2>) {
    let water = tiger::water_like(1_500, 1998);
    let roads = tiger::roads_like(8_000, 1998);
    (tree(&water), tree(&roads))
}

fn run(
    t1: &RTree<2>,
    t2: &RTree<2>,
    config: JoinConfig,
    semi: Option<SemiConfig>,
    k: usize,
) -> JoinStats {
    t1.reset_io_stats();
    t2.reset_io_stats();
    let mut join = match semi {
        Some(sc) => DistanceJoin::semi(t1, t2, config, sc),
        None => DistanceJoin::new(t1, t2, config),
    };
    let produced = join.by_ref().take(k).count();
    assert!(produced > 0);
    join.stats()
}

/// Table 1's shape: the cost of the first pair is close to the cost of the
/// 1,000th, while a large result count costs much more.
#[test]
fn flat_cost_curve_then_sharp_rise() {
    let (tw, tr) = env();
    let one = run(&tw, &tr, JoinConfig::default(), None, 1);
    let thousand = run(&tw, &tr, JoinConfig::default(), None, 1_000);
    let hundred_k = run(&tw, &tr, JoinConfig::default(), None, 100_000);
    assert!(
        thousand.distance_calcs < one.distance_calcs * 3,
        "1,000 pairs should cost at most a small multiple of 1 pair \
         ({} vs {})",
        thousand.distance_calcs,
        one.distance_calcs
    );
    assert!(
        hundred_k.distance_calcs > thousand.distance_calcs * 2,
        "100,000 pairs should cost much more than 1,000"
    );
}

/// Figure 7's shape: an explicit maximum distance shrinks queue growth, and
/// a small MaxPair bound approaches the MaxDist behaviour.
#[test]
fn max_distance_and_max_pairs_prune() {
    let (tw, tr) = env();
    let k = 1_000;
    // Probe the distance of the k-th pair.
    let dk = DistanceJoin::new(&tw, &tr, JoinConfig::default())
        .nth(k - 1)
        .unwrap()
        .distance;
    let regular = run(&tw, &tr, JoinConfig::default(), None, k);
    let maxdist = run(&tw, &tr, JoinConfig::default().with_range(0.0, dk), None, k);
    let maxpair = run(
        &tw,
        &tr,
        JoinConfig::default().with_max_pairs(k as u64),
        None,
        k,
    );
    assert!(
        maxdist.max_queue * 2 < regular.max_queue,
        "MaxDist should cut the queue at least in half: {} vs {}",
        maxdist.max_queue,
        regular.max_queue
    );
    assert!(
        maxpair.max_queue < regular.max_queue,
        "MaxPair estimation should beat Regular: {} vs {}",
        maxpair.max_queue,
        regular.max_queue
    );
}

/// §4.1.1's order-sensitivity: Basic with the big relation first explodes
/// the queue relative to Even.
#[test]
fn basic_traversal_blows_up_with_large_first_relation() {
    let (tw, tr) = env();
    let basic = JoinConfig {
        traversal: TraversalPolicy::Basic,
        ..JoinConfig::default()
    };
    let even = JoinConfig::default();
    let k = 5_000;
    let basic_rw = run(&tr, &tw, basic, None, k);
    let even_rw = run(&tr, &tw, even, None, k);
    // At full scale the paper's Basic run overflowed its disk; at test
    // scale the inflation is milder but must be clearly present.
    assert!(
        basic_rw.max_queue as f64 > 1.3 * even_rw.max_queue as f64,
        "Basic (Roads first) should inflate the queue: {} vs {}",
        basic_rw.max_queue,
        even_rw.max_queue
    );
}

/// §4.1.2 note: Simultaneous only pays off with a tight maximum distance.
#[test]
fn simultaneous_needs_a_max_distance() {
    let (tw, tr) = env();
    let k = 100;
    let sim = JoinConfig {
        traversal: TraversalPolicy::Simultaneous,
        ..JoinConfig::default()
    };
    let no_bound = run(&tw, &tr, sim, None, k);
    let even_no_bound = run(&tw, &tr, JoinConfig::default(), None, k);
    assert!(
        no_bound.pairs_enqueued > even_no_bound.pairs_enqueued,
        "without a bound, Simultaneous enqueues more: {} vs {}",
        no_bound.pairs_enqueued,
        even_no_bound.pairs_enqueued
    );
    let dk = DistanceJoin::new(&tw, &tr, JoinConfig::default())
        .nth(k - 1)
        .unwrap()
        .distance;
    let sim_bounded = run(&tw, &tr, sim.with_range(0.0, dk), None, k);
    assert!(
        sim_bounded.pairs_enqueued * 2 < no_bound.pairs_enqueued,
        "a tight bound should tame Simultaneous"
    );
}

/// Figure 9's shape: more aggressive semi-join filtering does less work on
/// the full semi-join, with GlobalAll the least.
#[test]
fn semijoin_filtering_ladder() {
    let (tw, tr) = env();
    let full = tw.len();
    let strategies = [
        (SemiFilter::Inside1, DmaxStrategy::None),
        (SemiFilter::Inside2, DmaxStrategy::None),
        (SemiFilter::Inside2, DmaxStrategy::Local),
        (SemiFilter::Inside2, DmaxStrategy::GlobalAll),
    ];
    let costs: Vec<u64> = strategies
        .iter()
        .map(|(filter, dmax)| {
            let semi = SemiConfig {
                filter: *filter,
                dmax: *dmax,
            };
            let s = run(&tw, &tr, JoinConfig::default(), Some(semi), full);
            s.pairs_enqueued
        })
        .collect();
    // Local must beat plain Inside2; GlobalAll must be the cheapest.
    assert!(
        costs[2] < costs[1],
        "Local should enqueue fewer pairs than Inside2: {costs:?}"
    );
    assert!(
        costs[3] <= costs[2],
        "GlobalAll should be cheapest: {costs:?}"
    );
    assert!(
        costs[3] * 2 < costs[0],
        "GlobalAll should be far below Inside1: {costs:?}"
    );
}

/// §3.2's purpose: the hybrid queue keeps only a fraction of the queue in
/// memory while producing identical results.
#[test]
fn hybrid_queue_bounds_resident_memory() {
    let (tw, tr) = env();
    let k = 2_000usize;
    let mem_cfg = JoinConfig::default();
    let mut mem_join = DistanceJoin::new(&tw, &tr, mem_cfg);
    let mem: Vec<f64> = mem_join.by_ref().take(k).map(|r| r.distance).collect();
    let mem_peak = mem_join.stats().max_queue;

    // D_T around the k-th distance keeps the window tight.
    let dt = (mem.last().unwrap() / 4.0).max(1e-6);
    let hyb_cfg = JoinConfig {
        queue: QueueBackend::Hybrid(HybridConfig::with_dt(dt)),
        ..JoinConfig::default()
    };
    let mut hyb_join = DistanceJoin::new(&tw, &tr, hyb_cfg);
    let hyb: Vec<f64> = hyb_join.by_ref().take(k).map(|r| r.distance).collect();
    let (hstats, resident_peak) = hyb_join.hybrid_queue_info().unwrap();

    assert_eq!(mem.len(), hyb.len());
    for (a, b) in mem.iter().zip(&hyb) {
        assert!((a - b).abs() < 1e-9);
    }
    assert!(hstats.spilled > 0, "something must spill at this scale");
    assert!(
        resident_peak * 2 < mem_peak,
        "hybrid should keep under half the queue resident: {resident_peak} vs {mem_peak}"
    );
}

/// §4.2.3: the incremental GlobalAll semi-join does not do more node I/O
/// than the NN-based alternative on the full result.
#[test]
fn incremental_semijoin_competitive_with_nn_baseline() {
    use incremental_distance_join::baselines::nn_semijoin;
    use incremental_distance_join::geom::Metric;
    let (tw, tr) = env();
    let semi = SemiConfig {
        filter: SemiFilter::Inside2,
        dmax: DmaxStrategy::GlobalAll,
    };
    let inc = run(&tw, &tr, JoinConfig::default(), Some(semi), tw.len());
    let inc_accesses = inc.node_accesses;

    tw.reset_io_stats();
    tr.reset_io_stats();
    let baseline = nn_semijoin(&tw, &tr, Metric::Euclidean).unwrap();
    assert_eq!(baseline.len(), tw.len());
    let nn_accesses = tw.io_stats().accesses() + tr.io_stats().accesses();
    assert!(
        inc_accesses <= nn_accesses * 2,
        "incremental semi-join should be in the same ballpark or better: \
         {inc_accesses} vs {nn_accesses}"
    );
}
