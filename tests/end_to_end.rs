//! Cross-crate end-to-end tests through the facade: data generation →
//! indexing → incremental joins → baselines → query layer, all agreeing.

use incremental_distance_join::baselines::{nested_loop_topk, nn_semijoin, within_join};
use incremental_distance_join::datagen::tiger;
use incremental_distance_join::geom::Metric;
use incremental_distance_join::join::{
    DistanceJoin, DmaxStrategy, JoinConfig, SemiConfig, SemiFilter,
};
use incremental_distance_join::query::{CmpOp, DistanceQuery, Predicate, Relation, Value};
use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};

type Items = Vec<(ObjectId, sdj_geom::Rect<2>)>;

fn env() -> (RTree<2>, RTree<2>, Items, Items) {
    let water = tiger::water_like(400, 3);
    let roads = tiger::roads_like(1_500, 3);
    let w_items: Vec<_> = water
        .iter()
        .enumerate()
        .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
        .collect();
    let r_items: Vec<_> = roads
        .iter()
        .enumerate()
        .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
        .collect();
    let tw = RTree::bulk_load(RTreeConfig::default(), w_items.clone());
    let tr = RTree::bulk_load(RTreeConfig::default(), r_items.clone());
    (tw, tr, w_items, r_items)
}

#[test]
fn incremental_join_agrees_with_nested_loop_baseline() {
    let (tw, tr, w_items, r_items) = env();
    let k = 1_000;
    let incremental: Vec<f64> = DistanceJoin::new(&tw, &tr, JoinConfig::default())
        .take(k)
        .map(|r| r.distance)
        .collect();
    let baseline = nested_loop_topk(&w_items, &r_items, Metric::Euclidean, k);
    assert_eq!(incremental.len(), baseline.len());
    for (a, b) in incremental.iter().zip(&baseline) {
        assert!((a - b.distance).abs() < 1e-9);
    }
}

#[test]
fn incremental_semijoin_agrees_with_nn_baseline() {
    let (tw, tr, ..) = env();
    let semi = SemiConfig {
        filter: SemiFilter::Inside2,
        dmax: DmaxStrategy::GlobalAll,
    };
    let incremental: Vec<(u64, f64)> = DistanceJoin::semi(&tw, &tr, JoinConfig::default(), semi)
        .map(|r| (r.oid1.0, r.distance))
        .collect();
    let baseline = nn_semijoin(&tw, &tr, Metric::Euclidean).unwrap();
    assert_eq!(incremental.len(), baseline.len());
    for (a, b) in incremental.iter().zip(&baseline) {
        assert!((a.1 - b.distance).abs() < 1e-9);
    }
}

#[test]
fn incremental_range_join_agrees_with_within_baseline() {
    let (tw, tr, ..) = env();
    let dmax = 0.01;
    let incremental: Vec<f64> =
        DistanceJoin::new(&tw, &tr, JoinConfig::default().with_range(0.0, dmax))
            .map(|r| r.distance)
            .collect();
    let baseline = within_join(&tw, &tr, Metric::Euclidean, 0.0, dmax).unwrap();
    assert_eq!(incremental.len(), baseline.len());
    for (a, b) in incremental.iter().zip(&baseline) {
        assert!((a - b.distance).abs() < 1e-9);
    }
}

#[test]
fn query_layer_over_generated_relations() {
    let water = tiger::water_like(300, 5);
    let roads = tiger::roads_like(900, 5);
    let mut rivers = Relation::new("rivers", &["kind"]);
    for p in &water {
        rivers.insert(*p, vec![Value::from("water")]);
    }
    let mut streets = Relation::new("streets", &["lanes"]);
    for (i, p) in roads.iter().enumerate() {
        streets.insert(*p, vec![Value::from((i % 4 + 1) as i64)]);
    }
    // Multi-lane streets near water, closest first, stop after 20.
    let rows: Vec<_> = DistanceQuery::join(&streets, &rivers)
        .where_left(Predicate::cmp("lanes", CmpOp::Ge, 3i64))
        .stop_after(20)
        .execute()
        .collect();
    assert_eq!(rows.len(), 20);
    for w in rows.windows(2) {
        assert!(w[0].distance <= w[1].distance);
    }
    for row in &rows {
        let lanes = streets.value(row.left, "lanes").unwrap();
        assert!(matches!(lanes, Value::Int(l) if l >= 3));
    }
}

#[test]
fn pipelining_pays_only_for_what_is_consumed() {
    let (tw, tr, ..) = env();
    let mut ten = DistanceJoin::new(&tw, &tr, JoinConfig::default());
    for _ in 0..10 {
        ten.next().unwrap();
    }
    let cost_ten = ten.stats().distance_calcs;

    let mut all = DistanceJoin::new(&tw, &tr, JoinConfig::default());
    let n = all.by_ref().count();
    assert_eq!(n, tw.len() * tr.len());
    let cost_all = all.stats().distance_calcs;
    assert!(
        cost_ten * 10 < cost_all,
        "ten pairs should cost a small fraction of the full join \
         ({cost_ten} vs {cost_all})"
    );
}

#[test]
fn insertion_and_bulk_built_trees_join_identically() {
    let water = tiger::water_like(250, 8);
    let roads = tiger::roads_like(600, 8);
    let mut ins_w = RTree::new(RTreeConfig::default());
    for (i, p) in water.iter().enumerate() {
        ins_w.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    let bulk_w = RTree::bulk_load(
        RTreeConfig::default(),
        water
            .iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
            .collect(),
    );
    let mut tr = RTree::new(RTreeConfig::default());
    for (i, p) in roads.iter().enumerate() {
        tr.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    ins_w.validate().unwrap();
    let a: Vec<f64> = DistanceJoin::new(&ins_w, &tr, JoinConfig::default())
        .take(500)
        .map(|r| r.distance)
        .collect();
    let b: Vec<f64> = DistanceJoin::new(&bulk_w, &tr, JoinConfig::default())
        .take(500)
        .map(|r| r.distance)
        .collect();
    for (x, y) in a.iter().zip(&b) {
        assert!(
            (x - y).abs() < 1e-9,
            "tree build method must not change results"
        );
    }
}
