//! Loading point sets from delimited text files.
//!
//! The paper's real data sets are TIGER/Line feature centroids, which are
//! easy to export as `x,y` text. This loader lets the experiment harness run
//! over the genuine extracts when the user has them, instead of the
//! synthetic stand-ins.

use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use sdj_geom::Point;

/// Error while loading a point file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A line could not be parsed; carries the 1-based line number.
    Parse(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Parse(line, what) => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses 2-d points from lines of `x<sep>y`, where `<sep>` is a comma,
/// semicolon, tab or run of spaces. Blank lines and lines starting with `#`
/// are skipped; a first line that does not parse as numbers is treated as a
/// header.
pub fn parse_points_csv(input: impl Read) -> Result<Vec<Point<2>>, LoadError> {
    let reader = BufReader::new(input);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_line(trimmed) {
            Some(p) => out.push(p),
            None if out.is_empty() && i == 0 => continue, // header row
            None => {
                return Err(LoadError::Parse(i + 1, format!("cannot parse '{trimmed}'")));
            }
        }
    }
    Ok(out)
}

fn parse_line(line: &str) -> Option<Point<2>> {
    let mut fields = line
        .split(|c: char| c == ',' || c == ';' || c.is_whitespace())
        .filter(|f| !f.is_empty());
    let x: f64 = fields.next()?.parse().ok()?;
    let y: f64 = fields.next()?.parse().ok()?;
    if !x.is_finite() || !y.is_finite() {
        return None;
    }
    Some(Point::xy(x, y))
}

/// Loads 2-d points from a delimited text file (see [`parse_points_csv`]).
pub fn load_points_csv(path: impl AsRef<Path>) -> Result<Vec<Point<2>>, LoadError> {
    parse_points_csv(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_common_formats() {
        let csv = "1.0,2.0\n3.5,-4.25\n";
        let pts = parse_points_csv(csv.as_bytes()).unwrap();
        assert_eq!(pts, vec![Point::xy(1.0, 2.0), Point::xy(3.5, -4.25)]);

        let tsv = "1\t2\n3\t4\n";
        assert_eq!(parse_points_csv(tsv.as_bytes()).unwrap().len(), 2);

        let spaces = "  1 2 \n 3   4\n";
        assert_eq!(parse_points_csv(spaces.as_bytes()).unwrap().len(), 2);
    }

    #[test]
    fn skips_header_comments_and_blanks() {
        let input = "x,y\n# comment\n\n1,2\n\n3,4\n";
        let pts = parse_points_csv(input.as_bytes()).unwrap();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn extra_columns_ignored() {
        let input = "1,2,roadname,99\n3,4,river,0\n";
        let pts = parse_points_csv(input.as_bytes()).unwrap();
        assert_eq!(pts, vec![Point::xy(1.0, 2.0), Point::xy(3.0, 4.0)]);
    }

    #[test]
    fn reports_bad_line_numbers() {
        let input = "1,2\nnot-a-point\n";
        match parse_points_csv(input.as_bytes()) {
            Err(LoadError::Parse(line, _)) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_finite() {
        let input = "1,2\ninf,4\n";
        assert!(parse_points_csv(input.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!("sdj_pts_{}.csv", std::process::id()));
        std::fs::write(&path, "0.5,0.25\n0.75,0.125\n").unwrap();
        let pts = load_points_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(pts.len(), 2);
    }
}
