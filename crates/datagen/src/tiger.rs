//! TIGER-like synthetic data: feature centroids scattered along polyline
//! networks.
//!
//! TIGER/Line centroids are not uniform: road-feature centroids trace street
//! networks (dense urban grids plus sparser arterials), water-feature
//! centroids trace rivers and pool around lakes. The generator reproduces
//! that structure from a seed:
//!
//! 1. lay down a set of momentum random-walk polylines ("arterials" or
//!    "rivers") that reflect off the bounding box;
//! 2. sample feature centroids along the polylines with jitter;
//! 3. mix in a fraction of blob-clustered centroids ("towns" / "lakes").
//!
//! [`water_like`] and [`roads_like`] are presets whose full-scale
//! cardinalities match the paper's data sets (§3.1): Water = 37,495 points,
//! Roads = 200,482 points, a ≈ 1 : 5.35 ratio.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sdj_geom::Point;

use crate::{clamp_to, gaussian, unit_box};

/// Full-scale cardinality of the Water data set (paper §3.1).
pub const WATER_FULL: usize = 37_495;
/// Full-scale cardinality of the Roads data set (paper §3.1).
pub const ROADS_FULL: usize = 200_482;

/// Parameters of the polyline-network generator.
#[derive(Clone, Copy, Debug)]
pub struct TigerConfig {
    /// Total number of centroids to generate.
    pub n: usize,
    /// Number of polylines in the network.
    pub polylines: usize,
    /// Mean step length of the polyline random walk (in bbox units).
    pub step: f64,
    /// Standard deviation of the heading perturbation per step (radians).
    pub wiggle: f64,
    /// Jitter (standard deviation) of centroids around the polyline.
    pub jitter: f64,
    /// Fraction of centroids drawn from blob clusters instead of polylines.
    pub cluster_fraction: f64,
    /// Number of blob clusters.
    pub clusters: usize,
    /// Blob standard deviation.
    pub cluster_sigma: f64,
}

impl TigerConfig {
    /// Preset mimicking river/lake centroid structure.
    #[must_use]
    pub fn water(n: usize) -> Self {
        Self {
            n,
            polylines: (n / 900).clamp(4, 60),
            step: 0.015,
            wiggle: 0.35,
            jitter: 0.004,
            cluster_fraction: 0.3,
            clusters: (n / 2500).clamp(3, 30),
            cluster_sigma: 0.012,
        }
    }

    /// Preset mimicking street-network centroid structure.
    #[must_use]
    pub fn roads(n: usize) -> Self {
        Self {
            n,
            polylines: (n / 250).clamp(8, 900),
            step: 0.01,
            wiggle: 0.55,
            jitter: 0.002,
            cluster_fraction: 0.45,
            clusters: (n / 1500).clamp(5, 160),
            cluster_sigma: 0.02,
        }
    }
}

/// Generates centroids per `config` inside the unit box.
#[must_use]
pub fn generate(config: &TigerConfig, seed: u64) -> Vec<Point<2>> {
    assert!(config.n > 0, "need a positive point count");
    assert!(config.polylines > 0 && config.clusters > 0);
    let bbox = unit_box();
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. Polyline network.
    let n_line = ((1.0 - config.cluster_fraction) * config.n as f64).round() as usize;
    let per_line = n_line.div_ceil(config.polylines);
    let mut points = Vec::with_capacity(config.n);
    for _ in 0..config.polylines {
        let mut pos = Point::xy(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let mut heading: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        for _ in 0..per_line {
            if points.len() >= n_line {
                break;
            }
            // Centroid near the walk position.
            let c = Point::xy(
                pos.x() + config.jitter * gaussian(&mut rng),
                pos.y() + config.jitter * gaussian(&mut rng),
            );
            points.push(clamp_to(c, &bbox));
            // Advance the walk with momentum, reflecting at the borders.
            heading += config.wiggle * gaussian(&mut rng);
            let step = config.step * rng.random_range(0.5..1.5);
            let mut x = pos.x() + step * heading.cos();
            let mut y = pos.y() + step * heading.sin();
            if !(0.0..=1.0).contains(&x) {
                heading = std::f64::consts::PI - heading;
                x = x.clamp(0.0, 1.0);
            }
            if !(0.0..=1.0).contains(&y) {
                heading = -heading;
                y = y.clamp(0.0, 1.0);
            }
            pos = Point::xy(x, y);
        }
    }

    // 2. Blob clusters (towns / lakes).
    let centers: Vec<Point<2>> = (0..config.clusters)
        .map(|_| Point::xy(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let mut i = 0usize;
    while points.len() < config.n {
        let c = &centers[i % centers.len()];
        let p = Point::xy(
            c.x() + config.cluster_sigma * gaussian(&mut rng),
            c.y() + config.cluster_sigma * gaussian(&mut rng),
        );
        points.push(clamp_to(p, &bbox));
        i += 1;
    }
    points.truncate(config.n);
    points
}

/// A Water-like data set of `n` points (use [`WATER_FULL`] for the paper's
/// cardinality).
#[must_use]
pub fn water_like(n: usize, seed: u64) -> Vec<Point<2>> {
    generate(&TigerConfig::water(n), seed ^ 0x0057_A7E4)
}

/// A Roads-like data set of `n` points (use [`ROADS_FULL`] for the paper's
/// cardinality).
#[must_use]
pub fn roads_like(n: usize, seed: u64) -> Vec<Point<2>> {
    generate(&TigerConfig::roads(n), seed ^ 0x0004_0AD5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grid_skew, uniform_points};
    use sdj_geom::Rect;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(water_like(1000, 7), water_like(1000, 7));
        assert_ne!(water_like(1000, 7), water_like(1000, 8));
    }

    #[test]
    fn exact_cardinality_and_bounds() {
        let bbox = unit_box();
        for n in [1, 10, 999, 5000] {
            let pts = roads_like(n, 1);
            assert_eq!(pts.len(), n);
            assert!(pts.iter().all(|p| bbox.contains_point(p)));
        }
    }

    #[test]
    fn skewed_like_real_feature_centroids() {
        let bbox = unit_box();
        let water = water_like(5000, 2);
        let roads = roads_like(5000, 2);
        let uniform = uniform_points(5000, &bbox, 2);
        let u = grid_skew(&uniform, &bbox, 16);
        assert!(
            grid_skew(&water, &bbox, 16) > 2.0 * u,
            "water must be clustered"
        );
        assert!(
            grid_skew(&roads, &bbox, 16) > 1.5 * u,
            "roads must be clustered"
        );
    }

    #[test]
    fn water_and_roads_overlap_in_space() {
        // The join only produces small distances if the two sets share
        // territory; verify their bounding boxes overlap substantially.
        let water = Rect::bounding(water_like(2000, 3).iter());
        let roads = Rect::bounding(roads_like(2000, 3).iter());
        let overlap = water.overlap_area(&roads);
        assert!(overlap > 0.5 * water.area().min(roads.area()));
    }

    #[test]
    fn full_scale_constants() {
        assert_eq!(WATER_FULL, 37_495);
        assert_eq!(ROADS_FULL, 200_482);
        // Ratio preserved within 1%.
        let ratio = ROADS_FULL as f64 / WATER_FULL as f64;
        assert!((ratio - 5.347).abs() < 0.01);
    }
}
