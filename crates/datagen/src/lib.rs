//! Deterministic spatial workload generators.
//!
//! The paper's experiments join two point sets derived from the TIGER/Line
//! files of the Washington, DC area: *Water* (37,495 centroids of water
//! features) and *Roads* (200,482 centroids of road features). Those files
//! are not shipped here, so this crate synthesises point sets with the same
//! behaviourally relevant properties — skewed, line-feature-clustered
//! distributions sharing one coordinate frame — from a seed:
//!
//! * [`uniform_points`] / [`gaussian_clusters`] — classic synthetic loads,
//! * [`tiger`] — polyline-network generator with [`tiger::water_like`] and
//!   [`tiger::roads_like`] presets mirroring the paper's data sets (full
//!   cardinalities 37,495 and 200,482; every experiment binary accepts a
//!   scale factor).
//!
//! All generators are deterministic in their seed.

pub mod io;
pub mod tiger;

pub use io::{load_points_csv, parse_points_csv, LoadError};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sdj_geom::{Point, Rect};

/// The unit coordinate frame shared by the standard datasets.
#[must_use]
pub fn unit_box() -> Rect<2> {
    Rect::new([0.0, 0.0], [1.0, 1.0])
}

/// `n` points uniformly distributed in `bbox`.
#[must_use]
pub fn uniform_points(n: usize, bbox: &Rect<2>, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::xy(
                rng.random_range(bbox.lo()[0]..=bbox.hi()[0]),
                rng.random_range(bbox.lo()[1]..=bbox.hi()[1]),
            )
        })
        .collect()
}

/// `n` points drawn from `clusters` Gaussian blobs with standard deviation
/// `sigma`, clamped to `bbox`.
#[must_use]
pub fn gaussian_clusters(
    n: usize,
    clusters: usize,
    sigma: f64,
    bbox: &Rect<2>,
    seed: u64,
) -> Vec<Point<2>> {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point<2>> = (0..clusters)
        .map(|_| {
            Point::xy(
                rng.random_range(bbox.lo()[0]..=bbox.hi()[0]),
                rng.random_range(bbox.lo()[1]..=bbox.hi()[1]),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            let p = Point::xy(
                c.x() + sigma * gaussian(&mut rng),
                c.y() + sigma * gaussian(&mut rng),
            );
            clamp_to(p, bbox)
        })
        .collect()
}

/// Standard normal deviate via Box–Muller.
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

pub(crate) fn clamp_to(p: Point<2>, bbox: &Rect<2>) -> Point<2> {
    Point::xy(
        p.x().clamp(bbox.lo()[0], bbox.hi()[0]),
        p.y().clamp(bbox.lo()[1], bbox.hi()[1]),
    )
}

/// Spatial-skew measure used by the tests: the coefficient of variation of
/// point counts over a `g`×`g` grid (0 for perfectly even, larger for more
/// clustered distributions).
#[must_use]
pub fn grid_skew(points: &[Point<2>], bbox: &Rect<2>, g: usize) -> f64 {
    assert!(g > 0 && !points.is_empty());
    let mut counts = vec![0usize; g * g];
    for p in points {
        let cx = (((p.x() - bbox.lo()[0]) / bbox.extent(0)) * g as f64) as usize;
        let cy = (((p.y() - bbox.lo()[1]) / bbox.extent(1)) * g as f64) as usize;
        counts[cx.min(g - 1) * g + cy.min(g - 1)] += 1;
    }
    let mean = points.len() as f64 / (g * g) as f64;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / (g * g) as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_bounds() {
        let bbox = unit_box();
        let a = uniform_points(500, &bbox, 1);
        let b = uniform_points(500, &bbox, 1);
        let c = uniform_points(500, &bbox, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|p| bbox.contains_point(p)));
    }

    #[test]
    fn gaussian_clusters_are_clustered() {
        let bbox = unit_box();
        let clustered = gaussian_clusters(2000, 8, 0.01, &bbox, 3);
        let uniform = uniform_points(2000, &bbox, 3);
        assert!(clustered.iter().all(|p| bbox.contains_point(p)));
        assert!(
            grid_skew(&clustered, &bbox, 10) > 2.0 * grid_skew(&uniform, &bbox, 10),
            "clusters should be much more skewed than uniform"
        );
    }

    #[test]
    fn grid_skew_of_even_grid_is_zero() {
        let bbox = unit_box();
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::xy(0.05 + i as f64 * 0.1, 0.05 + j as f64 * 0.1));
            }
        }
        assert!(grid_skew(&pts, &bbox, 10) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = gaussian_clusters(10, 0, 0.1, &unit_box(), 1);
    }
}
