//! Observability invariants of the hybrid queue.
//!
//! Two properties, exercised over random interleavings of pushes and pops:
//!
//! 1. The tier-occupancy gauges (`pq.tier.heap` / `.list` / `.disk`) sum to
//!    the queue's total length after every operation — spills, bucket
//!    reloads and window promotions never lose or double-count an element.
//! 2. The NDJSON event stream is lossless: replaying the parsed lines
//!    through a fresh [`RingRecorder`] reconstructs exactly the per-variant
//!    counters the live recorder accumulated, and the tier element-sums
//!    agree with the queue's own [`HybridStats`].

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use sdj_geom::OrdF64;
use sdj_obs::{Event, EventSink, NdjsonWriter, Registry, RingRecorder, TeeSink};
use sdj_pqueue::{HybridConfig, HybridQueue, PriorityQueue, TierGauges};

/// A `Write` target that can be read back after the writer is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #[test]
    fn tier_gauges_sum_to_len_and_ndjson_replay_matches(
        ops in prop::collection::vec((any::<bool>(), 0.0..50.0f64), 1..200),
        dt in 0.25..8.0f64,
    ) {
        let ring = Arc::new(RingRecorder::new(4096));
        let shared = SharedBuf::default();
        let ndjson = NdjsonWriter::new(Box::new(shared.clone()));
        let sink: Arc<dyn EventSink> =
            Arc::new(TeeSink::new(Arc::clone(&ring), ndjson));
        let registry = Registry::new();
        let gauges = TierGauges::register(&registry);

        let mut q: HybridQueue<OrdF64, u64> = HybridQueue::new(HybridConfig {
            dt,
            page_size: 256,
            buffer_frames: 2,
            ..HybridConfig::default()
        });
        q.attach_obs(Arc::clone(&sink), Some(gauges.clone()));

        // Monotone discipline like the join: never push below the last
        // popped key.
        let mut floor = 0.0f64;
        for (i, (is_pop, d)) in ops.iter().enumerate() {
            if *is_pop && !q.is_empty() {
                let (k, _) = q.pop().unwrap().unwrap();
                floor = floor.max(k.get());
            } else {
                q.push(OrdF64::new(floor + d), i as u64).unwrap();
            }
            let sum = gauges.heap.get() + gauges.list.get() + gauges.disk.get();
            prop_assert_eq!(sum as usize, q.len(), "gauges must sum to len");
        }
        while q.pop().unwrap().is_some() {}
        prop_assert_eq!(
            gauges.heap.get() + gauges.list.get() + gauges.disk.get(),
            0,
            "drained queue must zero all tier gauges"
        );

        // Tier element-sums agree with the queue's own counters.
        sink.flush();
        let stats = q.stats();
        let counts = ring.counts();
        prop_assert_eq!(counts.elems_to_disk, stats.spilled);
        prop_assert_eq!(counts.elems_from_disk, stats.reloaded);

        // Replaying the NDJSON log reconstructs identical counters.
        let bytes = shared.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let replay = RingRecorder::new(4096);
        let mut lines = 0u64;
        for line in text.lines() {
            let event = Event::parse_ndjson(line);
            prop_assert!(event.is_some(), "unparseable NDJSON line: {line}");
            replay.emit(&event.unwrap());
            lines += 1;
        }
        prop_assert_eq!(lines, counts.total());
        prop_assert_eq!(replay.counts(), counts);
    }
}
