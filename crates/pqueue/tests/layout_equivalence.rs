//! Cross-layout equivalence of the queue tiers.
//!
//! The flat 4-ary layout must be invisible in behaviour: over fuzzed
//! push/pop schedules that drive elements through every hybrid tier shape
//! (heap-only, heavy list traffic, spill-and-reload), a [`Layout::FlatDary`]
//! queue pops exactly the `(key, value)` sequence of a [`Layout::Pairing`]
//! queue — including FIFO order among equal keys — while its tier-occupancy
//! gauges always sum to the queue's length and its payload slab never holds
//! more live slots than the queue's element high-water mark.

use proptest::prelude::*;
use sdj_geom::OrdF64;
use sdj_obs::Registry;
use sdj_pqueue::{
    FlatHeap, HybridConfig, HybridQueue, KeyScale, Layout, PriorityQueue, TierGauges,
};

fn queue(dt: f64, page_size: usize, layout: Layout) -> HybridQueue<OrdF64, u64> {
    HybridQueue::new(HybridConfig {
        dt,
        page_size,
        buffer_frames: 2,
        key_scale: KeyScale::Identity,
        layout,
    })
}

proptest! {
    /// Identical op schedules, identical pop streams; the flat queue's tier
    /// gauges account for every element after every operation. `dt` sweeps
    /// the tier shapes: large `dt` keeps everything in the heap tier, small
    /// `dt` pushes most keys through the list and disk tiers.
    #[test]
    fn layouts_pop_identically_and_gauges_account_for_every_element(
        ops in prop::collection::vec((any::<bool>(), 0u32..80), 1..250),
        dt in 0.05..40.0f64,
        page_size in prop::sample::select(vec![128usize, 256, 1024]),
    ) {
        let registry = Registry::new();
        let gauges = TierGauges::register(&registry);
        let mut pairing = queue(dt, page_size, Layout::Pairing);
        let mut flat = queue(dt, page_size, Layout::FlatDary);
        flat.attach_obs(
            std::sync::Arc::new(sdj_obs::NoopSink),
            Some(gauges.clone()),
        );

        // Monotone discipline like the join: never push below the last
        // popped key, so reloaded buckets stay ahead of the frontier.
        let mut floor = 0.0f64;
        let mut seq = 0u64;
        for (push, k) in ops {
            if push {
                let key = floor + f64::from(k) * 0.37;
                pairing.push(OrdF64::new(key), seq).unwrap();
                flat.push(OrdF64::new(key), seq).unwrap();
                seq += 1;
            } else {
                let a = pairing.pop().unwrap();
                let b = flat.pop().unwrap();
                prop_assert_eq!(&a, &b, "pop streams diverged");
                if let Some((key, _)) = a {
                    floor = key.get();
                }
            }
            let gauge_sum = gauges.heap.get() + gauges.list.get() + gauges.disk.get();
            prop_assert_eq!(
                usize::try_from(gauge_sum).unwrap(),
                PriorityQueue::len(&flat),
                "tier gauges must sum to the queue length"
            );
        }
        // Drain: the remaining streams must match element for element.
        loop {
            let a = pairing.pop().unwrap();
            let b = flat.pop().unwrap();
            prop_assert_eq!(&a, &b, "drain streams diverged");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(pairing.stats(), flat.stats(), "tier traffic diverged");
    }

    /// The flat heap's payload slab recycles freed slots: live slots always
    /// equal the element count, and the slab's high-water mark never
    /// exceeds the queue's element high-water mark.
    #[test]
    fn slab_live_slots_never_exceed_queue_high_water(
        ops in prop::collection::vec((any::<bool>(), 0u32..100), 1..300),
    ) {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for (push, k) in ops {
            if push {
                h.push(OrdF64::new(f64::from(k)), u64::from(k));
            } else {
                h.pop();
            }
            prop_assert_eq!(h.slab_live(), h.len(), "slab live slots track len");
            prop_assert!(
                h.slab_high_water() <= h.high_water_mark(),
                "slab high-water {} exceeds queue high-water {}",
                h.slab_high_water(),
                h.high_water_mark()
            );
        }
    }
}

/// A deterministic spill-and-reload cycle: keys far above `D2` go to disk,
/// then the frontier advances past them and pulls the buckets back. Both
/// layouts must reload into identical pop order, and the flat slab must be
/// fully recycled once drained.
#[test]
fn spill_reload_cycle_matches_across_layouts() {
    let mut pairing = queue(1.0, 128, Layout::Pairing);
    let mut flat = queue(1.0, 128, Layout::FlatDary);
    for i in 0..400u32 {
        // Interleave near keys (heap tier) and far keys (disk buckets).
        let key = if i % 2 == 0 {
            f64::from(i) * 0.01
        } else {
            50.0 + f64::from(i) * 0.1
        };
        pairing.push(OrdF64::new(key), u64::from(i)).unwrap();
        flat.push(OrdF64::new(key), u64::from(i)).unwrap();
    }
    assert!(
        pairing.stats().spilled > 0,
        "schedule must exercise the disk tier"
    );
    let mut n = 0;
    loop {
        let a = pairing.pop().unwrap();
        let b = flat.pop().unwrap();
        assert_eq!(a, b, "reloaded streams diverged at element {n}");
        if a.is_none() {
            break;
        }
        n += 1;
    }
    assert_eq!(n, 400);
    assert_eq!(pairing.stats(), flat.stats());
    let (live, high, recycled) = flat.slab_stats().expect("flat layout has a slab");
    assert_eq!(live, 0, "drained queue must hold no live slab slots");
    assert!(high <= 400);
    assert!(recycled > 0, "the spill cycle must have recycled slots");
}
