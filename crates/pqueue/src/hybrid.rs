//! The hybrid memory/disk priority queue of §3.2.
//!
//! Elements with key distance below `D1` live in a pairing heap; distances
//! in `[D1, D2)` sit in an unorganised in-memory list; everything at `D2` or
//! beyond spills to disk, organised as "linked lists of pages with the pairs
//! in each list having distances in the range `[k·D_T, (k+1)·D_T)`". When
//! the heap empties, the list is poured into the heap, the window advances
//! by `D_T`, and the next disk bucket is loaded into the list.
//!
//! The window boundaries are maintained as an integer bucket counter
//! (`D1 = w·D_T`, `D2 = (w+1)·D_T`) so repeated advancement cannot drift.

use std::collections::BTreeMap;
use std::sync::Arc;

use sdj_obs::{Event, EventSink, Gauge, LeafSpan, Registry, Tier};
use sdj_storage::codec::{PageReader, PageWriter};
use sdj_storage::{BufferPool, DiskStats, FaultInjector, PageId, Pager, PoolStats, StorageError};

use crate::flat::FlatHeap;
use crate::pairing::PairingHeap;
use crate::traits::{Codec, PriorityQueue, QueueKey};

/// Bytes of a spill-page header: record count (`u16`) + next page (`u32`).
const BUCKET_HEADER: usize = 6;

/// Spill codec v2 marker: the high bit of the page's record-count word.
/// New pages are stamped with it (they may carry the flat layout's compact
/// slab-indexed payloads rather than v1's inline payloads); the reader
/// masks the bit off, so unmarked v1 pages still load unchanged.
const SPILL_V2_MARK: u16 = 0x8000;

/// Memory layout of the queue's in-memory tiers.
///
/// Both layouts realise the identical total order `(key, arrival)` — equal
/// keys pop in FIFO arrival order — so the choice is invisible in the
/// result stream and purely a cache/memory trade-off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Layout {
    /// Pointer-based pairing heap (+ `Vec` list tier) holding full
    /// `(K, V)` pairs in its nodes.
    #[default]
    Pairing,
    /// Flat 4-ary implicit heap sifting 16-byte compact entries over a
    /// `(K, V)` slab; the list tier is a staged compact-entry run in the
    /// same structure (see [`FlatHeap`]).
    FlatDary,
}

/// How queue keys relate to the distance units `D_T` is expressed in.
///
/// The join pushes *keys*, which under the sqrt-free Euclidean key domain
/// are squared distances. `D_T` stays meaningful as a distance: the tier
/// boundaries are mapped *into* key space (`D1 = (w·D_T)²`, `D2 =
/// ((w+1)·D_T)²` under [`KeyScale::Squared`]), so `HybridConfig::default()`'s
/// `dt: 1.0` selects the same physical window no matter which key domain the
/// producer uses. The inverse map (one `sqrt` per key) is only evaluated on
/// the spill path, where a disk write dominates it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KeyScale {
    /// Keys are distances.
    #[default]
    Identity,
    /// Keys are squared distances (the Euclidean squared-key domain).
    Squared,
}

impl KeyScale {
    /// Maps a distance into key space.
    #[must_use]
    pub fn to_key(self, d: f64) -> f64 {
        match self {
            Self::Identity => d,
            Self::Squared => d * d,
        }
    }

    /// Maps a key back to a distance (used only when bucketing spills).
    #[must_use]
    pub fn from_key(self, k: f64) -> f64 {
        match self {
            Self::Identity => k,
            Self::Squared => k.sqrt(),
        }
    }
}

/// Configuration of a [`HybridQueue`].
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// The fixed distance increment `D_T` that sizes the in-memory window
    /// and the disk buckets. The paper chooses it per data set (§3.2).
    /// Always expressed in *distance* units; [`HybridConfig::key_scale`]
    /// translates it into the key domain the producer pushes in.
    pub dt: f64,
    /// Page size of the spill area.
    pub page_size: usize,
    /// Buffer frames for the spill area.
    pub buffer_frames: usize,
    /// The key domain of pushed keys (see [`KeyScale`]).
    pub key_scale: KeyScale,
    /// Memory layout of the in-memory tiers (see [`Layout`]).
    pub layout: Layout,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            dt: 1.0,
            page_size: 1024,
            buffer_frames: 64,
            key_scale: KeyScale::Identity,
            layout: Layout::Pairing,
        }
    }
}

impl HybridConfig {
    /// Creates a configuration with the given `D_T` and default paging.
    #[must_use]
    pub fn with_dt(dt: f64) -> Self {
        Self {
            dt,
            ..Self::default()
        }
    }

    /// Returns the configuration with its key scale replaced.
    #[must_use]
    pub fn with_key_scale(mut self, key_scale: KeyScale) -> Self {
        self.key_scale = key_scale;
        self
    }

    /// Returns the configuration with its in-memory layout replaced.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }
}

/// Counters describing hybrid-queue tier traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Elements pushed straight to a disk bucket.
    pub spilled: u64,
    /// Elements read back from disk into the in-memory window.
    pub reloaded: u64,
    /// Window advances (list poured into the heap).
    pub promotions: u64,
}

/// Pre-registered tier-occupancy gauges (`pq.tier.heap` / `pq.tier.list` /
/// `pq.tier.disk`). At every quiescent point the three gauges sum to the
/// queue's total length — the invariant the pqueue observability tests
/// exercise.
#[derive(Clone)]
pub struct TierGauges {
    /// Elements resident in the pairing heap (distances below `D1`).
    pub heap: Arc<Gauge>,
    /// Elements in the unorganised in-memory list (`[D1, D2)`).
    pub list: Arc<Gauge>,
    /// Elements spilled to disk buckets (`>= D2`).
    pub disk: Arc<Gauge>,
}

impl TierGauges {
    /// Registers (or re-uses) the three tier gauges in `registry`.
    #[must_use]
    pub fn register(registry: &Registry) -> Self {
        Self::register_prefixed(registry, "")
    }

    /// Registers the tier gauges under `{prefix}pq.tier.*`. A multi-session
    /// server passes `session.<id>.` so each cursor's tier occupancy is
    /// attributed separately in one registry.
    #[must_use]
    pub fn register_prefixed(registry: &Registry, prefix: &str) -> Self {
        Self {
            heap: registry.gauge(&format!("{prefix}pq.tier.heap")),
            list: registry.gauge(&format!("{prefix}pq.tier.list")),
            disk: registry.gauge(&format!("{prefix}pq.tier.disk")),
        }
    }
}

impl std::fmt::Debug for TierGauges {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierGauges").finish_non_exhaustive()
    }
}

struct HybridObs {
    sink: Arc<dyn EventSink>,
    gauges: Option<TierGauges>,
    /// Always-timed phase accumulators for tier traffic ([`sdj_obs::span`]):
    /// spill and reload run against the pager, so their cost is real I/O
    /// work the engine's sampled spans must be able to subtract.
    spill_span: Option<LeafSpan>,
    reload_span: Option<LeafSpan>,
}

struct Bucket {
    head: PageId,
    /// Records in the head page (full pages behind it hold `records_per_page`).
    head_count: usize,
    total: usize,
}

/// The two in-memory tiers (heap + list) in either [`Layout`].
///
/// In the flat layout both tiers live inside one [`FlatHeap`]: the heap
/// tier is its sifted region, the list tier its staged run, and the window
/// pour is `promote_staged` — a sort plus a move, with zero sift steps,
/// because the pour only ever lands in an empty heap.
enum MemTier<K, V> {
    Pairing {
        heap: PairingHeap<K, V>,
        list: Vec<(K, V)>,
    },
    Flat(FlatHeap<K, V>),
}

impl<K: QueueKey, V: Clone> MemTier<K, V> {
    fn new(layout: Layout) -> Self {
        match layout {
            Layout::Pairing => MemTier::Pairing {
                heap: PairingHeap::new(),
                list: Vec::new(),
            },
            Layout::FlatDary => MemTier::Flat(FlatHeap::new()),
        }
    }

    fn heap_len(&self) -> usize {
        match self {
            MemTier::Pairing { heap, .. } => heap.len(),
            MemTier::Flat(f) => f.sifted_len(),
        }
    }

    fn list_len(&self) -> usize {
        match self {
            MemTier::Pairing { list, .. } => list.len(),
            MemTier::Flat(f) => f.staged_len(),
        }
    }

    fn heap_is_empty(&self) -> bool {
        self.heap_len() == 0
    }

    fn list_is_empty(&self) -> bool {
        self.list_len() == 0
    }

    fn push_heap(&mut self, key: K, value: V) {
        match self {
            MemTier::Pairing { heap, .. } => heap.push(key, value),
            MemTier::Flat(f) => f.push(key, value),
        }
    }

    fn push_list(&mut self, key: K, value: V) {
        match self {
            MemTier::Pairing { list, .. } => list.push((key, value)),
            MemTier::Flat(f) => f.stage(key, value),
        }
    }

    /// Appends reloaded records to the list tier, preserving their order.
    fn extend_list(&mut self, records: Vec<(K, V)>) {
        match self {
            MemTier::Pairing { list, .. } => list.extend(records),
            MemTier::Flat(f) => {
                for (k, v) in records {
                    f.stage(k, v);
                }
            }
        }
    }

    /// Pours the list tier into the heap tier, returning how many moved.
    ///
    /// Both layouts realise the same resulting order: the pairing heap
    /// stamps arrival sequence numbers as it pushes (list order *is*
    /// arrival order — see `reload_bucket_inner`), and the flat heap's
    /// staged entries keep the arrival tags they were given at stage time.
    fn pour(&mut self) -> usize {
        match self {
            MemTier::Pairing { heap, list } => {
                let n = list.len();
                heap.reserve(n);
                for (key, value) in list.drain(..) {
                    heap.push(key, value);
                }
                n
            }
            MemTier::Flat(f) => f.promote_staged(),
        }
    }

    /// Pops the heap tier's minimum. Callers pour the list first
    /// (`ensure_front`), so this never has to look past the heap tier.
    fn pop_heap(&mut self) -> Option<(K, V)> {
        match self {
            MemTier::Pairing { heap, .. } => heap.pop(),
            MemTier::Flat(f) => f.pop(),
        }
    }

    fn peek_heap(&self) -> Option<K> {
        match self {
            MemTier::Pairing { heap, .. } => heap.peek().cloned(),
            MemTier::Flat(f) => f.peek(),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            MemTier::Pairing { heap, list } => {
                heap.approx_bytes() + list.capacity() * std::mem::size_of::<(K, V)>()
            }
            MemTier::Flat(f) => f.approx_bytes(),
        }
    }
}

/// A three-tier memory/disk min-priority queue.
///
/// Storage errors on the simulated spill disk (transient I/O faults,
/// disk-full during spill, corrupt bucket pages) surface as
/// `sdj_storage::Result` errors from [`PriorityQueue::push`] /
/// [`PriorityQueue::pop`] / [`PriorityQueue::peek_key`]. After an error the
/// queue's contents may be incomplete (a mid-spill fault can drop the
/// element being pushed); callers are expected to abort the enclosing run,
/// which is what the join engines do.
pub struct HybridQueue<K, V> {
    mem: MemTier<K, V>,
    buckets: BTreeMap<u64, Bucket>,
    pool: BufferPool,
    /// Resident bytes of the spill buffer pool (frames × page size).
    pool_bytes: usize,
    dt: f64,
    scale: KeyScale,
    /// Window counter: in distance terms the heap covers `[0, w·dt)` and the
    /// list `[w·dt, (w+1)·dt)`; both boundaries are compared in key space.
    window: u64,
    records_per_page: usize,
    len: usize,
    max_len: usize,
    mem_peak: usize,
    stats: HybridStats,
    obs: Option<HybridObs>,
}

impl<K, V> HybridQueue<K, V>
where
    K: QueueKey + Codec,
    V: Codec + Clone,
{
    /// Creates an empty hybrid queue.
    ///
    /// # Panics
    /// Panics if `dt` is not positive or a spill page cannot hold at least
    /// one record.
    #[must_use]
    pub fn new(config: HybridConfig) -> Self {
        assert!(config.dt > 0.0, "D_T must be positive");
        let record = K::encoded_size() + V::encoded_size();
        let records_per_page = (config.page_size - BUCKET_HEADER) / record;
        assert!(
            records_per_page >= 1,
            "page size {} cannot hold a {record}-byte record",
            config.page_size
        );
        let pool = BufferPool::new(Pager::new(config.page_size), config.buffer_frames);
        Self {
            mem: MemTier::new(config.layout),
            buckets: BTreeMap::new(),
            pool,
            pool_bytes: config.page_size * config.buffer_frames,
            dt: config.dt,
            scale: config.key_scale,
            window: 1,
            records_per_page,
            len: 0,
            max_len: 0,
            mem_peak: 0,
            stats: HybridStats::default(),
            obs: None,
        }
    }

    /// Attaches observability: every tier migration (spill, bucket reload,
    /// window promotion) emits a [`Event::TierMigration`] to `sink`, and —
    /// if `gauges` is given — the per-tier occupancy gauges are kept in sync
    /// after every queue operation.
    pub fn attach_obs(&mut self, sink: Arc<dyn EventSink>, gauges: Option<TierGauges>) {
        self.obs = Some(HybridObs {
            sink,
            gauges,
            spill_span: None,
            reload_span: None,
        });
        self.sync_obs_gauges();
    }

    /// Attaches phase-span accumulators for spill and reload traffic. Only
    /// effective after [`HybridQueue::attach_obs`]; spans are always timed
    /// (tier migrations are page-granular, so the clock reads are noise).
    pub fn attach_spans(&mut self, spill: LeafSpan, reload: LeafSpan) {
        if let Some(obs) = &mut self.obs {
            obs.spill_span = Some(spill);
            obs.reload_span = Some(reload);
        }
    }

    fn sync_obs_gauges(&self) {
        if let Some(HybridObs {
            gauges: Some(g), ..
        }) = &self.obs
        {
            g.heap.set(self.mem.heap_len() as i64);
            g.list.set(self.mem.list_len() as i64);
            g.disk.set(self.on_disk_len() as i64);
        }
    }

    fn emit_migration(&self, from: Tier, to: Tier, n: usize) {
        if let Some(obs) = &self.obs {
            let n = u32::try_from(n).unwrap_or(u32::MAX);
            obs.sink.emit(&Event::TierMigration { from, to, n });
        }
    }

    /// Tier-traffic counters.
    #[must_use]
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Disk counters of the spill area.
    #[must_use]
    pub fn disk_stats(&self) -> DiskStats {
        self.pool.disk_stats()
    }

    /// Buffer-pool counters of the spill area (includes the fault and retry
    /// counts of the bounded retry policy).
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Installs (or clears) a deterministic fault injector on the spill
    /// area's simulated disk.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        self.pool.set_fault_injector(injector);
    }

    /// Sets the spill pool's bounded retry limit for transient faults.
    pub fn set_retry_limit(&self, retries: u32) {
        self.pool.set_retry_limit(retries);
    }

    /// Number of elements currently resident in memory (heap + list).
    #[must_use]
    pub fn in_memory_len(&self) -> usize {
        self.mem.heap_len() + self.mem.list_len()
    }

    /// Approximate resident bytes of the queue: in-memory tiers at their
    /// allocated capacities plus the spill area's buffer frames.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.mem.approx_bytes() + self.pool_bytes
    }

    /// Slab statistics of the flat layout: `(live, high_water, recycled)`.
    /// `None` under [`Layout::Pairing`].
    #[must_use]
    pub fn slab_stats(&self) -> Option<(usize, usize, u64)> {
        match &self.mem {
            MemTier::Pairing { .. } => None,
            MemTier::Flat(f) => Some((f.slab_live(), f.slab_high_water(), f.slab_recycled())),
        }
    }

    /// Number of elements currently spilled to disk.
    #[must_use]
    pub fn on_disk_len(&self) -> usize {
        self.buckets.values().map(|b| b.total).sum()
    }

    /// High-water mark of [`HybridQueue::in_memory_len`] — what a
    /// memory-only queue would have had to keep resident is `max_len()`;
    /// the difference is the hybrid scheme's memory saving.
    #[must_use]
    pub fn in_memory_peak(&self) -> usize {
        self.mem_peak
    }

    fn note_memory(&mut self) {
        let m = self.mem.heap_len() + self.mem.list_len();
        if m > self.mem_peak {
            self.mem_peak = m;
        }
    }

    /// Lower tier boundary, in key space.
    fn d1(&self) -> f64 {
        self.scale.to_key(self.window as f64 * self.dt)
    }

    /// Upper tier boundary, in key space.
    fn d2(&self) -> f64 {
        self.scale.to_key((self.window + 1) as f64 * self.dt)
    }

    fn bucket_index(&self, key: f64) -> u64 {
        debug_assert!(key >= 0.0);
        // `as` saturates, which handles +inf keys (pairs that can never
        // produce results sort into the last bucket). Under a squared key
        // scale this takes a sqrt, but only spilled elements pay it and the
        // accompanying page write dwarfs it.
        (self.scale.from_key(key) / self.dt) as u64
    }

    fn spill(&mut self, key: K, value: V) -> sdj_storage::Result<()> {
        let timed = self
            .obs
            .as_ref()
            .is_some_and(|o| o.spill_span.is_some())
            .then(std::time::Instant::now);
        let r = self.spill_inner(key, value);
        if let (Some(t0), Some(obs)) = (timed, &self.obs) {
            if let Some(span) = &obs.spill_span {
                span.record_ns(t0.elapsed().as_nanos() as u64);
            }
        }
        r
    }

    fn spill_inner(&mut self, key: K, value: V) -> sdj_storage::Result<()> {
        let k = self.bucket_index(key.distance());
        debug_assert!(k >= self.window, "spill of an in-window distance");
        let records_per_page = self.records_per_page;
        // Take the bucket out to appease the borrow checker around pool use.
        let mut bucket = self.buckets.remove(&k);
        let needs_new_page = match &bucket {
            None => true,
            Some(b) => b.head_count == records_per_page,
        };
        if needs_new_page {
            // Fallible allocation: disk-full on spill surfaces here.
            let page = match self.pool.try_allocate() {
                Ok(p) => p,
                Err(e) => {
                    // The existing bucket pages are untouched; keep them.
                    if let Some(b) = bucket {
                        self.buckets.insert(k, b);
                    }
                    return Err(e);
                }
            };
            let next = bucket.as_ref().map_or(PageId::INVALID, |b| b.head);
            let header = self.pool.update(page, |buf| {
                let mut w = PageWriter::new(buf);
                // Zero records, stamped as spill codec v2.
                w.put_u16(SPILL_V2_MARK)?;
                w.put_u32(next.0)
            });
            if let Err(e) = header.and_then(|r| r) {
                let _ = self.pool.free(page);
                if let Some(b) = bucket {
                    self.buckets.insert(k, b);
                }
                return Err(e);
            }
            bucket = Some(Bucket {
                head: page,
                head_count: 0,
                total: bucket.as_ref().map_or(0, |b| b.total),
            });
        }
        let Some(mut b) = bucket else {
            // Unreachable: the branch above always materialises a bucket.
            return Err(StorageError::Corrupt("spill bucket vanished"));
        };
        let head_count = b.head_count;
        let offset = BUCKET_HEADER + head_count * (K::encoded_size() + V::encoded_size());
        let written = self.pool.update(b.head, |buf| {
            let new_count = u16::try_from(head_count + 1)
                .ok()
                .filter(|c| c & SPILL_V2_MARK == 0)
                .ok_or(StorageError::Corrupt("bucket record count overflows"))?;
            // Preserve the page's version mark (new pages are always v2).
            let mark = u16::from_le_bytes([buf[0], buf[1]]) & SPILL_V2_MARK;
            buf[0..2].copy_from_slice(&(new_count | mark).to_le_bytes());
            let mut w = PageWriter::new(&mut buf[offset..]);
            key.encode(&mut w)?;
            value.encode(&mut w)
        });
        if let Err(e) = written.and_then(|r| r) {
            // The bucket's existing pages stay tracked; only the element
            // being pushed is lost, and the caller aborts on the error.
            self.buckets.insert(k, b);
            return Err(e);
        }
        b.head_count += 1;
        b.total += 1;
        self.buckets.insert(k, b);
        self.stats.spilled += 1;
        // A spill at insertion time is reported as `List -> Disk`: the
        // element logically belongs past the list window.
        self.emit_migration(Tier::List, Tier::Disk, 1);
        Ok(())
    }

    /// Loads every record of bucket `k` into the in-memory list, freeing its
    /// pages.
    fn reload_bucket(&mut self, k: u64) -> sdj_storage::Result<()> {
        let timed = self
            .obs
            .as_ref()
            .is_some_and(|o| o.reload_span.is_some())
            .then(std::time::Instant::now);
        let r = self.reload_bucket_inner(k);
        if let (Some(t0), Some(obs)) = (timed, &self.obs) {
            if let Some(span) = &obs.reload_span {
                span.record_ns(t0.elapsed().as_nanos() as u64);
            }
        }
        r
    }

    fn reload_bucket_inner(&mut self, k: u64) -> sdj_storage::Result<()> {
        let Some(bucket) = self.buckets.remove(&k) else {
            return Ok(());
        };
        let record = K::encoded_size() + V::encoded_size();
        let records_per_page = self.records_per_page;
        let mut page = bucket.head;
        let mut loaded = 0usize;
        // The chain runs newest page first. Collect per page, then append
        // oldest first: the list tier then holds the bucket in *arrival*
        // order, independent of how many records fit a page — which is what
        // keeps equal-key pop order identical across queue layouts (their
        // record widths, and hence page boundaries, differ).
        let mut pages: Vec<Vec<(K, V)>> = Vec::new();
        while !page.is_invalid() {
            let read = self.pool.with_page(page, |buf| -> sdj_storage::Result<_> {
                let mut r = PageReader::new(buf);
                // Mask the codec-version mark: v2 pages are stamped, legacy
                // v1 pages are not, and both carry the same record layout
                // for a given (K, V).
                let count = (r.get_u16()? & !SPILL_V2_MARK) as usize;
                let next = PageId(r.get_u32()?);
                if count > records_per_page {
                    return Err(StorageError::Corrupt("bucket record count exceeds page"));
                }
                let mut records = Vec::with_capacity(count);
                for i in 0..count {
                    let mut rr = PageReader::new(&buf[BUCKET_HEADER + i * record..]);
                    let key = K::decode(&mut rr)?;
                    let value = V::decode(&mut rr)?;
                    records.push((key, value));
                }
                Ok((next, records))
            });
            let (next, records) = read.and_then(|r| r)?;
            loaded += records.len();
            pages.push(records);
            self.pool.free(page)?;
            page = next;
        }
        for records in pages.into_iter().rev() {
            self.mem.extend_list(records);
        }
        debug_assert_eq!(loaded, bucket.total);
        self.stats.reloaded += loaded as u64;
        if loaded > 0 {
            self.emit_migration(Tier::Disk, Tier::List, loaded);
        }
        Ok(())
    }

    /// Makes the heap's minimum the queue's global minimum, advancing the
    /// window and reloading disk buckets as needed.
    fn ensure_front(&mut self) -> sdj_storage::Result<()> {
        while self.mem.heap_is_empty() {
            if self.mem.list_is_empty() && self.buckets.is_empty() {
                return Ok(());
            }
            if self.mem.list_is_empty() {
                // Jump the window straight to the first non-empty bucket.
                let Some(&k) = self.buckets.keys().next() else {
                    return Ok(());
                };
                self.window = k;
                self.reload_bucket(k)?;
            }
            let drained = self.mem.pour();
            self.stats.promotions += 1;
            if drained > 0 {
                self.emit_migration(Tier::List, Tier::Heap, drained);
            }
            // Advance the window and pull the next bucket into the list.
            // (Saturating: +inf keys land in bucket u64::MAX.)
            self.window = self.window.saturating_add(1);
            self.reload_bucket(self.window)?;
            self.note_memory();
        }
        Ok(())
    }
}

impl<K, V> PriorityQueue<K, V> for HybridQueue<K, V>
where
    K: QueueKey + Codec,
    V: Codec + Clone,
{
    fn push(&mut self, key: K, value: V) -> sdj_storage::Result<()> {
        let d = key.distance();
        assert!(d >= 0.0, "distance keys must be non-negative");
        if d < self.d1() {
            self.mem.push_heap(key, value);
        } else if d < self.d2() {
            self.mem.push_list(key, value);
        } else {
            self.spill(key, value)?;
        }
        self.len += 1;
        self.max_len = self.max_len.max(self.len);
        self.note_memory();
        self.sync_obs_gauges();
        Ok(())
    }

    fn pop(&mut self) -> sdj_storage::Result<Option<(K, V)>> {
        self.ensure_front()?;
        let out = self.mem.pop_heap();
        if out.is_some() {
            self.len -= 1;
        }
        self.sync_obs_gauges();
        Ok(out)
    }

    fn peek_key(&mut self) -> sdj_storage::Result<Option<K>> {
        self.ensure_front()?;
        self.sync_obs_gauges();
        Ok(self.mem.peek_heap())
    }

    fn len(&self) -> usize {
        self.len
    }

    fn max_len(&self) -> usize {
        self.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sdj_geom::OrdF64;

    fn queue(dt: f64) -> HybridQueue<OrdF64, u64> {
        HybridQueue::new(HybridConfig {
            dt,
            page_size: 128,
            buffer_frames: 4,
            key_scale: KeyScale::Identity,
            layout: Layout::Pairing,
        })
    }

    #[test]
    fn pops_in_global_order_across_tiers() {
        let mut q = queue(1.0);
        // Distances spanning heap (< 1), list ([1, 2)), and disk (>= 2).
        let ds = [5.5, 0.25, 3.75, 1.5, 0.75, 9.0, 2.25, 1.25, 7.5];
        for (i, d) in ds.iter().enumerate() {
            q.push(OrdF64::new(*d), i as u64).unwrap();
        }
        assert!(q.on_disk_len() > 0, "some elements must have spilled");
        let mut got = Vec::new();
        while let Some((k, _)) = q.pop().unwrap() {
            got.push(k.get());
        }
        let mut want = ds.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
        assert!(q.stats().spilled > 0);
        assert_eq!(q.stats().spilled, q.stats().reloaded);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut q = queue(0.5);
        let mut last = 0.0f64;
        let mut pending = 0usize;
        for _ in 0..2000 {
            if pending > 0 && rng.random_bool(0.4) {
                let (k, _) = q.pop().unwrap().unwrap();
                // Monotone non-decreasing pops as long as pushes never go
                // below the last popped key (which the join guarantees via
                // distance-function consistency).
                assert!(k.get() >= last - 1e-12);
                last = k.get();
                pending -= 1;
            } else {
                // Push keys at or above the current front, like the join.
                let d = last + rng.random_range(0.0..5.0);
                q.push(OrdF64::new(d), 0).unwrap();
                pending += 1;
            }
        }
        while let Some((k, _)) = q.pop().unwrap() {
            assert!(k.get() >= last - 1e-12);
            last = k.get();
        }
    }

    #[test]
    fn sparse_buckets_are_jumped() {
        let mut q = queue(1.0);
        q.push(OrdF64::new(1000.0), 1).unwrap();
        q.push(OrdF64::new(5000.0), 2).unwrap();
        assert_eq!(q.pop().unwrap().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().unwrap().1, 2);
        assert_eq!(q.pop().unwrap(), None);
        // The window should have jumped, not crawled through thousands of
        // promotions.
        assert!(q.stats().promotions < 10);
    }

    #[test]
    fn disk_pages_are_freed_after_reload() {
        let mut q = queue(1.0);
        for i in 0..500 {
            q.push(OrdF64::new(10.0 + (i as f64) * 0.001), i).unwrap();
        }
        assert_eq!(q.on_disk_len(), 500);
        let mut n = 0;
        while q.pop().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 500);
        let disk = q.disk_stats();
        assert_eq!(disk.allocations, disk.frees, "all spill pages freed");
    }

    #[test]
    fn infinite_keys_sort_last() {
        let mut q = queue(1.0);
        q.push(OrdF64::INFINITY, 99).unwrap();
        q.push(OrdF64::new(3.0), 1).unwrap();
        assert_eq!(q.pop().unwrap().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().unwrap().1, 99);
    }

    #[test]
    fn len_and_max_len() {
        let mut q = queue(1.0);
        for i in 0..10 {
            q.push(OrdF64::new(i as f64), i).unwrap();
        }
        assert_eq!(q.len(), 10);
        q.pop().unwrap();
        q.pop().unwrap();
        assert_eq!(q.len(), 8);
        assert_eq!(q.max_len(), 10);
        assert_eq!(q.in_memory_len() + q.on_disk_len(), 8);
    }

    /// Satellite regression: the tier boundaries derived from `D_T` select
    /// the same physical window whether keys arrive as distances or as
    /// squared distances — tier traffic (spills, reloads, promotions) must
    /// be identical between the two key scales.
    #[test]
    fn tier_boundaries_match_between_key_scales() {
        let mk = |scale| {
            HybridQueue::<OrdF64, u64>::new(HybridConfig {
                dt: 1.5,
                page_size: 128,
                buffer_frames: 4,
                key_scale: scale,
                layout: Layout::Pairing,
            })
        };
        let mut plain = mk(KeyScale::Identity);
        let mut squared = mk(KeyScale::Squared);
        let mut rng = StdRng::seed_from_u64(7);
        let ds: Vec<f64> = (0..400).map(|_| rng.random_range(0.0..30.0)).collect();
        for (i, d) in ds.iter().enumerate() {
            plain.push(OrdF64::new(*d), i as u64).unwrap();
            squared.push(OrdF64::new(d * d), i as u64).unwrap();
        }
        assert_eq!(plain.stats(), squared.stats());
        assert_eq!(plain.on_disk_len(), squared.on_disk_len());
        assert_eq!(plain.in_memory_len(), squared.in_memory_len());
        loop {
            match (plain.pop().unwrap(), squared.pop().unwrap()) {
                (Some((kp, _)), Some((kq, _))) => {
                    // Same element order up to sqrt rounding on the key.
                    assert!((kp.get() - kq.get().sqrt()).abs() <= 1e-12 * kp.get().max(1.0));
                }
                (None, None) => break,
                other => panic!("queues diverged: {other:?}"),
            }
        }
        assert_eq!(plain.stats(), squared.stats());
    }

    fn flat_queue(dt: f64) -> HybridQueue<OrdF64, u64> {
        HybridQueue::new(HybridConfig {
            dt,
            page_size: 128,
            buffer_frames: 4,
            key_scale: KeyScale::Identity,
            layout: Layout::FlatDary,
        })
    }

    #[test]
    fn flat_layout_pops_in_global_order_across_tiers() {
        let mut q = flat_queue(1.0);
        let ds = [5.5, 0.25, 3.75, 1.5, 0.75, 9.0, 2.25, 1.25, 7.5];
        for (i, d) in ds.iter().enumerate() {
            q.push(OrdF64::new(*d), i as u64).unwrap();
        }
        assert!(q.on_disk_len() > 0, "some elements must have spilled");
        let mut got = Vec::new();
        while let Some((k, _)) = q.pop().unwrap() {
            got.push(k.get());
        }
        let mut want = ds.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
        assert_eq!(q.stats().spilled, q.stats().reloaded);
        let (live, high, _) = q.slab_stats().unwrap();
        assert_eq!(live, 0);
        assert!(high > 0);
    }

    #[test]
    fn slab_stats_absent_under_pairing_layout() {
        let q = queue(1.0);
        assert!(q.slab_stats().is_none());
        assert!(q.approx_bytes() >= 128 * 4, "pool frames accounted");
    }

    /// Spill codec v1 pages carry an unmarked count word; the v2 reader
    /// masks the version bit, so stripping it from every spilled page must
    /// change nothing.
    #[test]
    fn legacy_unmarked_v1_pages_still_load() {
        let mut q = queue(1.0);
        let ds: Vec<f64> = (0..120).map(|i| 5.0 + f64::from(i) * 0.01).collect();
        for (i, d) in ds.iter().enumerate() {
            q.push(OrdF64::new(*d), i as u64).unwrap();
        }
        assert!(q.on_disk_len() > 0);
        // Rewrite every bucket page header as v1 (clear the high bit of the
        // LE count word).
        let heads: Vec<PageId> = q.buckets.values().map(|b| b.head).collect();
        for mut page in heads {
            while !page.is_invalid() {
                let next = q
                    .pool
                    .update(page, |buf| {
                        buf[1] &= 0x7F;
                        PageId(u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]))
                    })
                    .unwrap();
                page = next;
            }
        }
        let mut got = Vec::new();
        while let Some((k, v)) = q.pop().unwrap() {
            got.push((k.get(), v));
        }
        let want: Vec<(f64, u64)> = ds.iter().enumerate().map(|(i, d)| (*d, i as u64)).collect();
        assert_eq!(got, want);
    }

    proptest! {
        /// The flat layout's pop sequence — keys AND values — is
        /// bit-identical to the pairing layout's under fuzzed interleavings
        /// of pushes (with heavy key duplication, exercising FIFO ties) and
        /// pops, across tier shapes (dt sweeps the heap/list/disk split) and
        /// page-boundary differences.
        #[test]
        fn layouts_pop_identically(
            ops in prop::collection::vec((any::<bool>(), 0u32..60), 1..400),
            dt in 0.1..30.0f64,
        ) {
            let mk = |layout| HybridQueue::<OrdF64, u64>::new(HybridConfig {
                dt,
                page_size: 128,
                buffer_frames: 4,
                key_scale: KeyScale::Identity,
                layout,
            });
            let mut pairing = mk(Layout::Pairing);
            let mut flat = mk(Layout::FlatDary);
            for (i, (is_pop, k)) in ops.into_iter().enumerate() {
                if is_pop {
                    prop_assert_eq!(pairing.pop().unwrap(), flat.pop().unwrap());
                } else {
                    let d = OrdF64::new(f64::from(k) * 0.37);
                    pairing.push(d, i as u64).unwrap();
                    flat.push(d, i as u64).unwrap();
                }
                prop_assert_eq!(pairing.len(), flat.len());
            }
            loop {
                let (a, b) = (pairing.pop().unwrap(), flat.pop().unwrap());
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(pairing.stats(), flat.stats());
        }
    }

    #[test]
    fn peek_promotes_without_losing_elements() {
        let mut q = queue(1.0);
        q.push(OrdF64::new(50.0), 7).unwrap();
        assert_eq!(q.peek_key().unwrap().unwrap().get(), 50.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().unwrap().1, 7);
    }

    #[test]
    fn disk_full_on_spill_surfaces_as_error() {
        use sdj_storage::{FaultConfig, FaultInjector};
        let mut q = queue(1.0);
        q.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 11,
            disk_full_after: Some(2),
            ..FaultConfig::default()
        }))));
        // Each spill page holds several records; keep pushing spilled keys
        // until the allocation budget runs out.
        let mut err = None;
        for i in 0..500 {
            if let Err(e) = q.push(OrdF64::new(10.0 + i as f64), i) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(StorageError::DiskFull));
        // In-memory pushes still work after the error.
        q.push(OrdF64::new(0.5), 999).unwrap();
        assert_eq!(q.pop().unwrap().unwrap().1, 999);
    }

    #[test]
    fn transient_spill_faults_retried_to_completion() {
        use sdj_storage::{FaultConfig, FaultInjector};
        let mut q = queue(1.0);
        q.set_retry_limit(8);
        q.set_fault_injector(Some(Arc::new(FaultInjector::new(
            FaultConfig::transient_only(21, 0.2),
        ))));
        let ds: Vec<f64> = (0..300).map(|i| 5.0 + (i as f64) * 0.01).collect();
        for (i, d) in ds.iter().enumerate() {
            q.push(OrdF64::new(*d), i as u64).unwrap();
        }
        let mut got = Vec::new();
        while let Some((k, _)) = q.pop().unwrap() {
            got.push(k.get());
        }
        assert_eq!(got.len(), ds.len());
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        let ps = q.pool_stats();
        assert!(ps.faults > 0, "expected injected faults: {ps:?}");
        assert!(ps.retries > 0);
    }

    #[test]
    fn corrupt_bucket_page_surfaces_as_error() {
        use sdj_storage::{FaultConfig, FaultInjector};
        let mut q = queue(1.0);
        for i in 0..300 {
            q.push(OrdF64::new(10.0 + (i as f64) * 0.01), i).unwrap();
        }
        assert!(q.on_disk_len() > 0);
        // Flush dirty spill pages to the simulated disk, then corrupt every
        // subsequent physical read.
        q.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 31,
            bit_flip: 1.0,
            ..FaultConfig::default()
        }))));
        let mut saw_err = None;
        loop {
            match q.pop() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    saw_err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            saw_err,
            Some(StorageError::Corrupt("page checksum mismatch")),
            "bit-flipped spill pages must be detected by the checksum"
        );
    }

    proptest! {
        /// The hybrid queue pops exactly the multiset it was given, in
        /// non-decreasing key order, for any D_T.
        #[test]
        fn matches_sort(
            ds in prop::collection::vec(0.0..100.0f64, 1..300),
            dt in 0.1..20.0f64,
        ) {
            let mut q: HybridQueue<OrdF64, u64> = HybridQueue::new(HybridConfig {
                dt,
                page_size: 256,
                buffer_frames: 2,
                key_scale: KeyScale::Identity,
                layout: Layout::Pairing,
            });
            for (i, d) in ds.iter().enumerate() {
                q.push(OrdF64::new(*d), i as u64).unwrap();
            }
            let mut want = ds.clone();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut got = Vec::with_capacity(ds.len());
            let mut seen = std::collections::HashSet::new();
            while let Some((k, v)) = q.pop().unwrap() {
                got.push(k.get());
                prop_assert!(seen.insert(v), "value {v} delivered twice");
            }
            prop_assert_eq!(got, want);
        }

        /// Under a squared key scale the queue still pops the exact key
        /// multiset in non-decreasing order for any `D_T`.
        #[test]
        fn matches_sort_squared_scale(
            ds in prop::collection::vec(0.0..100.0f64, 1..300),
            dt in 0.1..20.0f64,
        ) {
            let mut q: HybridQueue<OrdF64, u64> = HybridQueue::new(
                HybridConfig::with_dt(dt).with_key_scale(KeyScale::Squared),
            );
            for (i, d) in ds.iter().enumerate() {
                q.push(OrdF64::new(d * d), i as u64).unwrap();
            }
            let mut want: Vec<f64> = ds.iter().map(|d| d * d).collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut got = Vec::with_capacity(ds.len());
            while let Some((k, _)) = q.pop().unwrap() {
                got.push(k.get());
            }
            prop_assert_eq!(got, want);
            prop_assert_eq!(q.stats().spilled, q.stats().reloaded);
        }
    }
}
