//! `std::collections::BinaryHeap` adapter, used as an ablation comparator
//! for the pairing heap in the microbenches.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::traits::PriorityQueue;

/// Wraps a key/value pair so only the key participates in ordering.
struct Element<K, V> {
    key: K,
    value: V,
}

impl<K: Ord, V> PartialEq for Element<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<K: Ord, V> Eq for Element<K, V> {}
impl<K: Ord, V> PartialOrd for Element<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for Element<K, V> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A min-priority queue backed by the standard binary heap.
pub struct BinaryHeapQueue<K: Ord, V> {
    heap: BinaryHeap<Reverse<Element<K, V>>>,
    max_len: usize,
}

impl<K: Ord, V> Default for BinaryHeapQueue<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> BinaryHeapQueue<K, V> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            max_len: 0,
        }
    }
}

impl<K: Ord + Clone, V> PriorityQueue<K, V> for BinaryHeapQueue<K, V> {
    fn push(&mut self, key: K, value: V) -> sdj_storage::Result<()> {
        self.heap.push(Reverse(Element { key, value }));
        self.max_len = self.max_len.max(self.heap.len());
        Ok(())
    }

    fn pop(&mut self) -> sdj_storage::Result<Option<(K, V)>> {
        Ok(self.heap.pop().map(|Reverse(e)| (e.key, e.value)))
    }

    fn peek_key(&mut self) -> sdj_storage::Result<Option<K>> {
        Ok(self.heap.peek().map(|Reverse(e)| e.key.clone()))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn max_len(&self) -> usize {
        self.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_as_min_queue() {
        let mut q = BinaryHeapQueue::new();
        q.push(3, 'c').unwrap();
        q.push(1, 'a').unwrap();
        q.push(2, 'b').unwrap();
        assert_eq!(q.peek_key().unwrap(), Some(1));
        assert_eq!(q.pop().unwrap(), Some((1, 'a')));
        assert_eq!(q.pop().unwrap(), Some((2, 'b')));
        assert_eq!(q.pop().unwrap(), Some((3, 'c')));
        assert_eq!(q.pop().unwrap(), None);
        assert_eq!(q.max_len(), 3);
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let mut q = BinaryHeapQueue::new();
        for i in 0..5 {
            q.push(7, i).unwrap();
        }
        let mut values: Vec<i32> =
            std::iter::from_fn(|| q.pop().unwrap().map(|(_, v)| v)).collect();
        values.sort_unstable();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
    }
}
