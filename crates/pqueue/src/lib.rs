//! Priority queues for distance-ordered processing.
//!
//! The heart of the incremental distance join is "a priority queue, where
//! each element contains a pair of items" (§2.2.1). This crate provides the
//! queue implementations the paper evaluates:
//!
//! * [`PairingHeap`] — the in-memory structure the paper chose ("we chose
//!   the pairing heap structure", §3.2), with O(1) insert and amortised
//!   O(log n) delete-min;
//! * [`FlatHeap`] — a cache-conscious flat 4-ary implicit heap sifting
//!   16-byte compact entries in SoA layout over a slab of `(K, V)` payloads
//!   with free-list recycling ([`Layout::FlatDary`]);
//! * [`HybridQueue`] — the three-tier memory/disk scheme of §3.2: keys below
//!   `D1` live in a heap (either layout), keys in `[D1, D2)` in an
//!   unorganised in-memory list, and keys of `D2` and above spill to linked
//!   page lists on a simulated disk, bucketed by a fixed distance increment
//!   `D_T`.
//!
//! All queues implement the fallible [`PriorityQueue`] trait so the join
//! algorithms can be configured with any backend, and all of them realise
//! the same total order `(key, arrival)` — equal keys pop in FIFO arrival
//! order — so the backend choice is invisible in result streams.
//!
//! # Key domains
//!
//! Queues order by whatever `f64` key the producer pushes. The distance join
//! pushes *squared* Euclidean distances (a monotone transform, so the pop
//! order is unchanged); the [`HybridQueue`] is the one structure that
//! interprets key magnitudes (its tier boundaries), so [`HybridConfig`]
//! carries a [`KeyScale`] translating its distance-valued `D_T` into the
//! producer's key domain.

mod flat;
mod hybrid;
mod pairing;
mod traits;

pub use flat::{FlatHeap, ARITY};
pub use hybrid::{HybridConfig, HybridQueue, HybridStats, KeyScale, Layout, TierGauges};
pub use pairing::PairingHeap;
pub use traits::{f64_from_order_bits, f64_order_bits, Codec, PriorityQueue, QueueKey};
