//! Priority queues for distance-ordered processing.
//!
//! The heart of the incremental distance join is "a priority queue, where
//! each element contains a pair of items" (§2.2.1). This crate provides the
//! queue implementations the paper evaluates:
//!
//! * [`PairingHeap`] — the in-memory structure the paper chose ("we chose
//!   the pairing heap structure", §3.2), with O(1) insert and amortised
//!   O(log n) delete-min;
//! * [`BinaryHeapQueue`] — a `std::collections::BinaryHeap` adapter used as
//!   an ablation comparator in the microbenches;
//! * [`HybridQueue`] — the three-tier memory/disk scheme of §3.2: keys below
//!   `D1` live in a pairing heap, keys in `[D1, D2)` in an unorganised
//!   in-memory list, and keys of `D2` and above spill to linked page lists
//!   on a simulated disk, bucketed by a fixed distance increment `D_T`.
//!
//! All queues implement the [`PriorityQueue`] trait so the join algorithms
//! can be configured with either backend.
//!
//! # Key domains
//!
//! Queues order by whatever `f64` key the producer pushes. The distance join
//! pushes *squared* Euclidean distances (a monotone transform, so the pop
//! order is unchanged); the [`HybridQueue`] is the one structure that
//! interprets key magnitudes (its tier boundaries), so [`HybridConfig`]
//! carries a [`KeyScale`] translating its distance-valued `D_T` into the
//! producer's key domain.

mod binary;
mod hybrid;
mod pairing;
mod traits;

pub use binary::BinaryHeapQueue;
pub use hybrid::{HybridConfig, HybridQueue, HybridStats, KeyScale, TierGauges};
pub use pairing::PairingHeap;
pub use traits::{Codec, PriorityQueue, QueueKey};
