//! A pairing heap (Fredman, Sedgewick, Sleator & Tarjan 1986) — the
//! in-memory priority queue the paper uses (§3.2).
//!
//! Nodes live in an arena with a free list, so steady-state push/pop cycles
//! perform no allocation. `push` and `merge` are O(1); `pop` performs the
//! classic two-pass pairing of the root's children, amortised O(log n).

use crate::traits::PriorityQueue;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    data: Option<(K, V)>,
    /// Arrival stamp: merges compare `(key, seq)`, a *total* order, so
    /// equal keys pop in FIFO arrival order — the same order the flat
    /// d-ary layout realises, which is what makes result streams
    /// bit-identical across queue layouts.
    seq: u64,
    child: usize,
    sibling: usize,
}

/// An arena-backed pairing heap ordered by minimum `(key, arrival)`.
pub struct PairingHeap<K, V> {
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    max_len: usize,
    seq: u64,
}

impl<K: Ord, V> Default for PairingHeap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> PairingHeap<K, V> {
    /// Creates an empty heap.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
            max_len: 0,
            seq: 0,
        }
    }

    /// Creates an empty heap with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the heap has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reference to the minimum key.
    #[must_use]
    pub fn peek(&self) -> Option<&K> {
        // NIL is usize::MAX, so `get` covers both the empty heap and (as a
        // fail-safe rather than a panic) a vacant root slot.
        self.slots.get(self.root)?.data.as_ref().map(|(k, _)| k)
    }

    /// Reference to the minimum key and its value.
    #[must_use]
    pub fn peek_entry(&self) -> Option<(&K, &V)> {
        self.slots
            .get(self.root)?
            .data
            .as_ref()
            .map(|(k, v)| (k, v))
    }

    /// Visits up to `limit` entries from the top of the heap, breadth-first
    /// from the root: the minimum first, then the roots of its child
    /// subtrees, then theirs. Every entry visited at depth d is a subtree
    /// minimum — smaller than everything below it — so the visited set is a
    /// cheap approximation of "the entries nearest the head" without
    /// disturbing the heap. The join engine uses this to pick node pages
    /// worth prefetching. O(limit).
    pub fn peek_top(&self, limit: usize, mut visit: impl FnMut(&K, &V)) {
        if self.root == NIL || limit == 0 {
            return;
        }
        let mut frontier = vec![self.root];
        let mut at = 0;
        while at < frontier.len() && frontier.len() < limit {
            let mut child = self.slots[frontier[at]].child;
            while child != NIL && frontier.len() < limit {
                frontier.push(child);
                child = self.slots[child].sibling;
            }
            at += 1;
        }
        for idx in frontier {
            if let Some((k, v)) = self.slots[idx].data.as_ref() {
                visit(k, v);
            }
        }
    }

    /// Ensures space for `additional` more elements without reallocating the
    /// arena (beyond slots recycled through the free list).
    pub fn reserve(&mut self, additional: usize) {
        let fresh_needed = additional.saturating_sub(self.free.len());
        let spare = self.slots.capacity() - self.slots.len();
        if fresh_needed > spare {
            self.slots.reserve(fresh_needed - spare);
        }
    }

    /// Inserts a batch of elements, growing the arena at most once. Each
    /// insertion is still the O(1) root merge, so this is `push` in a loop
    /// minus the incremental reallocation — the join engine's expansion loops
    /// use it to enqueue a node's children in one call.
    pub fn push_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (K, V)>,
    {
        let batch = batch.into_iter();
        let (lower, _) = batch.size_hint();
        self.reserve(lower);
        for (key, value) in batch {
            self.push(key, value);
        }
    }

    /// Inserts an element. O(1).
    pub fn push(&mut self, key: K, value: V) {
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    data: Some((key, value)),
                    seq,
                    child: NIL,
                    sibling: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    data: Some((key, value)),
                    seq,
                    child: NIL,
                    sibling: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.root = if self.root == NIL {
            idx
        } else {
            self.merge(self.root, idx)
        };
        self.len += 1;
        self.max_len = self.max_len.max(self.len);
    }

    /// Removes and returns the minimum element. Amortised O(log n).
    pub fn pop(&mut self) -> Option<(K, V)> {
        if self.root == NIL {
            return None;
        }
        let old_root = self.root;
        // A vacant root would mean the arena invariant broke; treat it as an
        // empty heap instead of aborting a long-running join.
        let data = self.slots[old_root].data.take()?;
        self.root = self.merge_children(self.slots[old_root].child);
        self.slots[old_root].child = NIL;
        self.slots[old_root].sibling = NIL;
        self.free.push(old_root);
        self.len -= 1;
        Some(data)
    }

    /// Drops all elements, keeping the arena capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
        self.seq = 0;
    }

    /// Largest length observed.
    #[must_use]
    pub fn high_water_mark(&self) -> usize {
        self.max_len
    }

    /// Approximate resident bytes of the heap: the slot arena and free list
    /// at their allocated capacities.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<K, V>>()
            + self.free.capacity() * std::mem::size_of::<usize>()
    }

    /// `(key, arrival)` order between two slots — a strict total order, so
    /// FIFO among equal keys is structural, not merge-order luck. Vacant
    /// slots sort last so a broken occupancy invariant degrades the
    /// ordering instead of panicking.
    fn le(&self, a: usize, b: usize) -> bool {
        match (self.slots[a].data.as_ref(), self.slots[b].data.as_ref()) {
            (Some(x), Some(y)) => match x.0.cmp(&y.0) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => self.slots[a].seq <= self.slots[b].seq,
            },
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Links two heap roots, returning the new root.
    fn merge(&mut self, a: usize, b: usize) -> usize {
        debug_assert!(a != NIL && b != NIL);
        let (parent, child) = if self.le(a, b) { (a, b) } else { (b, a) };
        self.slots[child].sibling = self.slots[parent].child;
        self.slots[parent].child = child;
        parent
    }

    /// Two-pass merge of a sibling list: pair left-to-right, then fold the
    /// pairs right-to-left.
    fn merge_children(&mut self, first: usize) -> usize {
        if first == NIL {
            return NIL;
        }
        // Pass 1: merge adjacent pairs.
        let mut pairs: Vec<usize> = Vec::new();
        let mut cur = first;
        while cur != NIL {
            let next = self.slots[cur].sibling;
            self.slots[cur].sibling = NIL;
            if next == NIL {
                pairs.push(cur);
                break;
            }
            let after = self.slots[next].sibling;
            self.slots[next].sibling = NIL;
            pairs.push(self.merge(cur, next));
            cur = after;
        }
        // Pass 2: fold right-to-left. The loop above pushed at least one
        // pair, so the fold starts from a real root.
        let mut root = NIL;
        while let Some(p) = pairs.pop() {
            root = if root == NIL { p } else { self.merge(root, p) };
        }
        root
    }
}

impl<K: Ord + Clone, V> PriorityQueue<K, V> for PairingHeap<K, V> {
    fn push(&mut self, key: K, value: V) -> sdj_storage::Result<()> {
        PairingHeap::push(self, key, value);
        Ok(())
    }

    fn pop(&mut self) -> sdj_storage::Result<Option<(K, V)>> {
        Ok(PairingHeap::pop(self))
    }

    fn peek_key(&mut self) -> sdj_storage::Result<Option<K>> {
        Ok(self.peek().cloned())
    }

    fn len(&self) -> usize {
        self.len
    }

    fn max_len(&self) -> usize {
        self.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sdj_geom::OrdF64;

    #[test]
    fn pops_in_order() {
        let mut h = PairingHeap::new();
        for k in [5, 1, 4, 1, 3, 9, 2] {
            h.push(k, k * 10);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 1, 2, 3, 4, 5, 9]);
        assert!(h.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = PairingHeap::new();
        h.push(OrdF64::new(2.0), "b");
        h.push(OrdF64::new(1.0), "a");
        assert_eq!(h.peek().unwrap().get(), 1.0);
        assert_eq!(h.peek_entry().unwrap().1, &"a");
        assert_eq!(h.pop().unwrap().1, "a");
        assert_eq!(h.peek().unwrap().get(), 2.0);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut h = PairingHeap::new();
        h.push(3, ());
        h.push(1, ());
        assert_eq!(h.pop().unwrap().0, 1);
        h.push(0, ());
        h.push(5, ());
        assert_eq!(h.pop().unwrap().0, 0);
        assert_eq!(h.pop().unwrap().0, 3);
        assert_eq!(h.pop().unwrap().0, 5);
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn arena_is_reused() {
        let mut h = PairingHeap::new();
        for round in 0..10 {
            for k in 0..100 {
                h.push(k, round);
            }
            for _ in 0..100 {
                h.pop().unwrap();
            }
        }
        assert!(h.slots.len() <= 100, "arena grew to {}", h.slots.len());
    }

    #[test]
    fn equal_keys_pop_fifo() {
        let mut h = PairingHeap::new();
        for v in 0..50u64 {
            h.push(1u32, v);
        }
        h.push(0, 99);
        assert_eq!(h.pop(), Some((0, 99)));
        for v in 0..50u64 {
            assert_eq!(h.pop(), Some((1, v)));
        }
    }

    #[test]
    fn tracks_high_water_mark() {
        let mut h = PairingHeap::new();
        for k in 0..50 {
            h.push(k, ());
        }
        for _ in 0..30 {
            h.pop();
        }
        h.push(0, ());
        assert_eq!(h.high_water_mark(), 50);
        assert_eq!(h.len(), 21);
    }

    #[test]
    fn push_batch_orders_like_push() {
        let mut batched = PairingHeap::new();
        let mut serial = PairingHeap::new();
        batched.push(7, ());
        serial.push(7, ());
        batched.push_batch([4, 9, 1, 4].map(|k| (k, ())));
        for k in [4, 9, 1, 4] {
            serial.push(k, ());
        }
        assert_eq!(batched.len(), 5);
        while let Some((k, ())) = batched.pop() {
            assert_eq!(Some(k), serial.pop().map(|(k, ())| k));
        }
        assert!(serial.is_empty());
    }

    #[test]
    fn reserve_prevents_incremental_growth() {
        let mut h: PairingHeap<u32, ()> = PairingHeap::new();
        h.reserve(64);
        let cap = h.slots.capacity();
        assert!(cap >= 64);
        for k in 0..64 {
            h.push(k, ());
        }
        assert_eq!(h.slots.capacity(), cap, "no reallocation during pushes");
        // Recycled slots count toward a later reservation.
        for _ in 0..64 {
            h.pop();
        }
        h.reserve(64);
        assert_eq!(h.slots.capacity(), cap);
    }

    #[test]
    fn peek_top_visits_head_first_without_disturbing_the_heap() {
        let mut h = PairingHeap::new();
        for k in [8, 3, 6, 1, 9, 2, 7] {
            h.push(k, k * 10);
        }
        let mut seen = Vec::new();
        h.peek_top(4, |k, v| seen.push((*k, *v)));
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (1, 10), "the minimum is visited first");
        // The heap itself is untouched.
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 3, 6, 7, 8, 9]);
        // Degenerate limits are safe.
        let empty: PairingHeap<u32, ()> = PairingHeap::new();
        empty.peek_top(5, |_, _| panic!("empty heap has nothing to visit"));
        let mut one = PairingHeap::new();
        one.push(4, ());
        one.peek_top(0, |_, _| panic!("limit 0 visits nothing"));
    }

    #[test]
    fn clear_resets() {
        let mut h = PairingHeap::new();
        h.push(1, ());
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        h.push(2, ());
        assert_eq!(h.pop().unwrap().0, 2);
    }

    proptest! {
        /// Heap order agrees with sorting, including duplicate keys.
        #[test]
        fn agrees_with_sort(keys in prop::collection::vec(0u32..1000, 0..300)) {
            let mut h = PairingHeap::new();
            for (i, k) in keys.iter().enumerate() {
                h.push(*k, i);
            }
            let mut expect = keys.clone();
            expect.sort_unstable();
            let mut got = Vec::new();
            while let Some((k, _)) = h.pop() {
                got.push(k);
            }
            prop_assert_eq!(got, expect);
        }

        /// Random interleavings of push/pop behave like a reference
        /// BinaryHeap.
        #[test]
        fn matches_reference_under_interleaving(ops in prop::collection::vec((any::<bool>(), 0u32..100), 1..400)) {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut h = PairingHeap::new();
            let mut reference = BinaryHeap::new();
            for (is_pop, k) in ops {
                if is_pop {
                    let got = h.pop().map(|(k, ())| k);
                    let want = reference.pop().map(|Reverse(k)| k);
                    prop_assert_eq!(got, want);
                } else {
                    h.push(k, ());
                    reference.push(Reverse(k));
                }
                prop_assert_eq!(h.len(), reference.len());
            }
        }
    }
}
