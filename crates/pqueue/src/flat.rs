//! A cache-conscious flat 4-ary implicit heap over compact 16-byte entries.
//!
//! The pairing heap ([`crate::PairingHeap`]) pays a pointer chase per
//! comparison and drags the full `(K, V)` payload through every merge. Here
//! the heap sifts only a compact entry — `(key: u64, tag: u32, payload:
//! u32)` in SoA layout — while the value lives in a u32-indexed slab with
//! free-list recycling: slots are freed on pop and reused on push, so
//! steady-state queue memory is O(live elements) with zero per-element
//! allocation. The key is *not* stored at all: [`QueueKey`] keys are fully
//! determined by their order image, so pops rebuild them from the entry
//! via [`QueueKey::from_parts`].
//!
//! The arrays grow by 25% instead of the usual doubling — this layout
//! exists to keep resident queue memory low, and trading a few extra
//! reallocation copies (of flat integers) for a ≤ 1.25× capacity overshoot
//! is the right side of that bargain.
//!
//! * `key` is [`QueueKey::order_bits`]: an order-preserving `u64` image of
//!   the distance, so sift comparisons are integer compares.
//! * `tag` packs the key's secondary [`QueueKey::tie_rank`] (high 8 bits)
//!   over a 24-bit arrival sequence (low bits), making the entry order
//!   `(distance, tie, arrival)` — a *total* order, so equal keys pop in
//!   FIFO arrival order, deterministically. When the sequence counter wraps
//!   the live entries are renumbered in place (a `(key, tag)`-sorted array
//!   is itself a valid implicit heap, so renumbering is a sort, not a
//!   rebuild).
//! * `payload` indexes the slab.
//!
//! Children of entry `i` sit at `4i+1 ..= 4i+4` — one 32-byte span of the
//! key array, compared with the same `as_chunks` lane shape as the geometry
//! kernels' `LANE_WIDTH` loops.
//!
//! The heap doubles as the hybrid queue's in-memory *list* tier: staged
//! entries accumulate unsorted ([`FlatHeap::stage`]) and are promoted in one
//! sorted pass ([`FlatHeap::promote_staged`]) when the window advances —
//! promotion into an empty heap is a move, with zero sift steps.

use crate::traits::{PriorityQueue, QueueKey};

/// Heap arity: children of `i` live at `ARITY*i + 1 ..= ARITY*i + ARITY`.
/// 4 × u64 keys span one 32-byte chunk, matching the geometry kernels'
/// `LANE_WIDTH`.
pub const ARITY: usize = 4;

/// Low bits of the entry tag holding the arrival sequence.
const SEQ_BITS: u32 = 24;
/// Mask of the arrival-sequence field.
const SEQ_MASK: u32 = (1 << SEQ_BITS) - 1;

/// A flat 4-ary implicit min-heap of compact entries over a `(K, V)` slab.
pub struct FlatHeap<K, V> {
    /// Sifted region, SoA: `keys[i]`/`tags[i]`/`pays[i]` form entry `i`.
    keys: Vec<u64>,
    tags: Vec<u32>,
    pays: Vec<u32>,
    /// Staged (unsorted) entries — the hybrid queue's list tier.
    staged: Vec<(u64, u32, u32)>,
    /// Value slab, indexed by the entry payload. Freed slots keep their
    /// last value until reused.
    slab_vals: Vec<V>,
    free: Vec<u32>,
    /// Keys exist only as compact entries; see [`QueueKey::from_parts`].
    _keys: std::marker::PhantomData<K>,
    /// Next arrival sequence (low [`SEQ_BITS`] bits of the next tag).
    seq: u32,
    len: usize,
    max_len: usize,
    slab_high_water: usize,
    slab_recycled: u64,
}

impl<K: QueueKey, V: Clone> Default for FlatHeap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: QueueKey, V: Clone> FlatHeap<K, V> {
    /// Creates an empty heap.
    #[must_use]
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            tags: Vec::new(),
            pays: Vec::new(),
            staged: Vec::new(),
            slab_vals: Vec::new(),
            free: Vec::new(),
            _keys: std::marker::PhantomData,
            seq: 0,
            len: 0,
            max_len: 0,
            slab_high_water: 0,
            slab_recycled: 0,
        }
    }

    /// Creates an empty heap with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let mut h = Self::new();
        h.reserve(cap);
        h
    }

    /// Number of elements (sifted + staged).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the heap has no elements at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of entries in the sifted (heap-ordered) region.
    #[must_use]
    pub fn sifted_len(&self) -> usize {
        self.keys.len()
    }

    /// Number of staged (not yet heap-ordered) entries.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Largest length observed.
    #[must_use]
    pub fn high_water_mark(&self) -> usize {
        self.max_len
    }

    /// High-water mark of live slab slots. Recycling keeps this equal to the
    /// queue's own high-water mark: a freed slot is reused before the slab
    /// grows.
    #[must_use]
    pub fn slab_high_water(&self) -> usize {
        self.slab_high_water
    }

    /// Live slab slots (always exactly the element count: every queued
    /// element owns one slot).
    #[must_use]
    pub fn slab_live(&self) -> usize {
        self.len
    }

    /// How many pushes were served from the free list instead of growing
    /// the slab.
    #[must_use]
    pub fn slab_recycled(&self) -> u64 {
        self.slab_recycled
    }

    /// Approximate resident bytes of the heap: entry arrays, staged run,
    /// value slab, and free list, at their allocated capacities.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.keys.capacity() * 8
            + self.tags.capacity() * 4
            + self.pays.capacity() * 4
            + self.staged.capacity() * std::mem::size_of::<(u64, u32, u32)>()
            + self.slab_vals.capacity() * std::mem::size_of::<V>()
            + self.free.capacity() * 4
    }

    /// Reserves one more slot in `v` with 25% amortized growth (see the
    /// module docs) instead of `Vec`'s doubling.
    #[inline]
    fn reserve_one<T>(v: &mut Vec<T>) {
        if v.len() == v.capacity() {
            v.reserve_exact((v.capacity() / 4).max(32));
        }
    }

    /// Appends one compact entry to the sifted arrays, growing by 25%.
    #[inline]
    fn push_entry(&mut self, k: u64, t: u32, p: u32) {
        Self::reserve_one(&mut self.keys);
        Self::reserve_one(&mut self.tags);
        Self::reserve_one(&mut self.pays);
        self.keys.push(k);
        self.tags.push(t);
        self.pays.push(p);
    }

    /// Ensures space for `additional` more elements without reallocating
    /// (beyond slab slots recycled through the free list).
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional);
        self.tags.reserve(additional);
        self.pays.reserve(additional);
        let fresh = additional.saturating_sub(self.free.len());
        self.slab_vals.reserve(fresh);
    }

    /// Drops all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.tags.clear();
        self.pays.clear();
        self.staged.clear();
        self.slab_vals.clear();
        self.free.clear();
        self.seq = 0;
        self.len = 0;
    }

    /// The minimum key of the *sifted* region, rebuilt from its compact
    /// entry. Staged entries are invisible until promoted (use
    /// [`PriorityQueue::peek_key`] for the promoting variant).
    #[must_use]
    pub fn peek(&self) -> Option<K> {
        let (&bits, &tag) = (self.keys.first()?, self.tags.first()?);
        Some(Self::rebuild_key(bits, tag))
    }

    /// The minimum sifted key and a reference to its value.
    #[must_use]
    pub fn peek_entry(&self) -> Option<(K, &V)> {
        let &pay = self.pays.first()?;
        Some((self.peek()?, self.slab_vals.get(pay as usize)?))
    }

    /// Visits up to `limit` sifted entries in array (level) order: the
    /// minimum first, then the top of the heap outward. Like
    /// [`crate::PairingHeap::peek_top`], the visited set approximates "the
    /// entries nearest the head" without disturbing the heap; here it is a
    /// plain prefix scan of the entry arrays. O(limit).
    pub fn peek_top(&self, limit: usize, mut visit: impl FnMut(K, &V)) {
        for (i, &pay) in self.pays.iter().take(limit).enumerate() {
            if let Some(v) = self.slab_vals.get(pay as usize) {
                visit(Self::rebuild_key(self.keys[i], self.tags[i]), v);
            }
        }
    }

    /// Rebuilds a key from its compact entry (see [`QueueKey::from_parts`]).
    #[inline]
    fn rebuild_key(bits: u64, tag: u32) -> K {
        let tie = u8::try_from(tag >> SEQ_BITS).unwrap_or(u8::MAX);
        K::from_parts(bits, tie)
    }

    /// Inserts an element into the sifted region. O(log₄ n).
    pub fn push(&mut self, key: K, value: V) {
        let bits = key.order_bits();
        let tag = self.next_tag(key.tie_rank());
        let pay = self.alloc_slot(value);
        self.push_entry(bits, tag, pay);
        self.sift_up(self.keys.len() - 1);
        self.len += 1;
        self.max_len = self.max_len.max(self.len);
    }

    /// Inserts a batch of elements, growing the arrays at most once.
    ///
    /// Entries are appended raw and the heap invariant is restored once at
    /// the end: per-entry sift-up for small batches (`O(k·log₄ n)`), or one
    /// Floyd bottom-up heapify pass over the whole sifted region (`O(n)`)
    /// when the batch is a sizeable fraction of it — the flush-batched push
    /// shape where per-push sifting was losing to the pairing heap.
    pub fn push_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (K, V)>,
    {
        let batch = batch.into_iter();
        let (lower, _) = batch.size_hint();
        self.reserve(lower);
        let before = self.keys.len();
        for (key, value) in batch {
            let bits = key.order_bits();
            let tag = self.next_tag(key.tie_rank());
            let pay = self.alloc_slot(value);
            self.push_entry(bits, tag, pay);
            self.len += 1;
        }
        self.max_len = self.max_len.max(self.len);
        // `next_tag` may have renumbered mid-batch; renumbering sorts the
        // whole region by `(key, tag)`, which is itself a valid heap, so
        // both restoration paths below stay correct (and cheap) after it.
        let total = self.keys.len();
        let appended = total - before;
        if appended == 0 {
            return;
        }
        if appended >= total / 4 {
            self.heapify();
        } else {
            for i in before..total {
                self.sift_up(i);
            }
        }
    }

    /// Restores the heap invariant over the whole sifted region by sifting
    /// down from the last parent to the root (Floyd's bottom-up
    /// construction). O(n) — each level's sift cost halves going up.
    fn heapify(&mut self) {
        let n = self.keys.len();
        if n < 2 {
            return;
        }
        let last_parent = (n - 2) / ARITY;
        for i in (0..=last_parent).rev() {
            self.sift_down(i);
        }
    }

    /// Drains every element — sifted and staged — in arbitrary array order,
    /// visiting each rebuilt key and value exactly once, then leaves the
    /// heap empty. O(n) with zero sift work: the adaptive handoff harvests
    /// the whole frontier without needing it sorted, so popping entries one
    /// at a time would waste `n·log₄ n` comparisons re-ordering entries
    /// whose order is about to be discarded.
    pub fn drain_unordered(&mut self, mut visit: impl FnMut(K, V)) {
        for i in 0..self.keys.len() {
            let key = Self::rebuild_key(self.keys[i], self.tags[i]);
            let value = self.slab_vals[self.pays[i] as usize].clone();
            visit(key, value);
        }
        for (bits, tag, pay) in std::mem::take(&mut self.staged) {
            let key = Self::rebuild_key(bits, tag);
            let value = self.slab_vals[pay as usize].clone();
            visit(key, value);
        }
        self.clear();
    }

    /// Appends an element to the staged run without sifting — the hybrid
    /// queue's unorganised list tier. Staged entries keep their arrival
    /// tags, so a later [`FlatHeap::promote_staged`] restores exact
    /// `(distance, tie, arrival)` order.
    pub fn stage(&mut self, key: K, value: V) {
        let bits = key.order_bits();
        let tag = self.next_tag(key.tie_rank());
        let pay = self.alloc_slot(value);
        Self::reserve_one(&mut self.staged);
        self.staged.push((bits, tag, pay));
        self.len += 1;
        self.max_len = self.max_len.max(self.len);
    }

    /// Promotes every staged entry into the sifted region, returning how
    /// many moved. The staged run is sorted by `(key, tag)`; into an empty
    /// heap the sorted run *is* a valid implicit heap (every prefix of a
    /// sorted array satisfies the d-ary heap property), so promotion is a
    /// move with zero sift steps — the hybrid window advance always hits
    /// this path because it only pours when the heap tier is empty.
    pub fn promote_staged(&mut self) -> usize {
        let n = self.staged.len();
        if n == 0 {
            return 0;
        }
        self.staged.sort_by_key(|&(k, t, _)| (k, t));
        if self.keys.is_empty() {
            self.keys.reserve(n);
            self.tags.reserve(n);
            self.pays.reserve(n);
            for (k, t, p) in self.staged.drain(..) {
                self.keys.push(k);
                self.tags.push(t);
                self.pays.push(p);
            }
        } else {
            for (k, t, p) in std::mem::take(&mut self.staged) {
                self.push_entry(k, t, p);
                self.sift_up(self.keys.len() - 1);
            }
        }
        n
    }

    /// Removes and returns the minimum element. O(log₄ n). Promotes the
    /// staged run first if the sifted region is empty.
    pub fn pop(&mut self) -> Option<(K, V)> {
        if self.keys.is_empty() {
            if self.staged.is_empty() {
                return None;
            }
            self.promote_staged();
        }
        let (bits, tag, pay) = (self.keys[0], self.tags[0], self.pays[0]);
        let last = self.keys.len() - 1;
        if last > 0 {
            self.keys[0] = self.keys[last];
            self.tags[0] = self.tags[last];
            self.pays[0] = self.pays[last];
        }
        self.keys.truncate(last);
        self.tags.truncate(last);
        self.pays.truncate(last);
        if last > 1 {
            self.sift_down(0);
        }
        self.len -= 1;
        Some((Self::rebuild_key(bits, tag), self.take_slot(pay)))
    }

    fn alloc_slot(&mut self, value: V) -> u32 {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab_vals[i as usize] = value;
                self.slab_recycled += 1;
                i
            }
            None => {
                let i = u32::try_from(self.slab_vals.len()).unwrap_or(u32::MAX);
                Self::reserve_one(&mut self.slab_vals);
                self.slab_vals.push(value);
                i
            }
        };
        let live = self.slab_vals.len() - self.free.len();
        self.slab_high_water = self.slab_high_water.max(live);
        idx
    }

    fn take_slot(&mut self, pay: u32) -> V {
        let out = self.slab_vals[pay as usize].clone();
        Self::reserve_one(&mut self.free);
        self.free.push(pay);
        out
    }

    /// Allocates the next entry tag: `tie` in the high 8 bits over the
    /// arrival sequence. When the 24-bit sequence wraps, live entries are
    /// renumbered (relative order preserved) and the counter restarts past
    /// them; with ≥ 2^24 *live* entries the sequence saturates instead, and
    /// FIFO order among further equal keys degrades gracefully (the heap
    /// order itself stays valid).
    fn next_tag(&mut self, tie: u8) -> u32 {
        if self.seq > SEQ_MASK {
            self.renumber();
        }
        let tag = (u32::from(tie) << SEQ_BITS) | self.seq.min(SEQ_MASK);
        self.seq = self.seq.saturating_add(1);
        tag
    }

    /// Reassigns arrival sequences 0.. in global `(key, tag)` order across
    /// the sifted and staged regions. Order-preserving: equal-key entries
    /// keep their relative arrival order. The sifted region is rebuilt from
    /// its sorted entries, which is again a valid implicit heap.
    fn renumber(&mut self) {
        let sifted = self.keys.len();
        let mut all: Vec<(u64, u32, u32, bool)> = Vec::with_capacity(sifted + self.staged.len());
        for i in 0..sifted {
            all.push((self.keys[i], self.tags[i], self.pays[i], true));
        }
        for &(k, t, p) in &self.staged {
            all.push((k, t, p, false));
        }
        all.sort_by_key(|&(k, t, _, _)| (k, t));
        self.keys.clear();
        self.tags.clear();
        self.pays.clear();
        self.staged.clear();
        for (rank, (k, t, p, in_sifted)) in all.into_iter().enumerate() {
            let seq = u32::try_from(rank).unwrap_or(u32::MAX).min(SEQ_MASK);
            let tag = (t & !SEQ_MASK) | seq;
            if in_sifted {
                self.keys.push(k);
                self.tags.push(tag);
                self.pays.push(p);
            } else {
                self.staged.push((k, tag, p));
            }
        }
        self.seq = u32::try_from(self.len).unwrap_or(u32::MAX);
    }

    /// Entry order: `(key, tag)` — i.e. `(distance bits, tie, arrival)`.
    #[inline]
    fn less(a: (u64, u32), b: (u64, u32)) -> bool {
        a < b
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = (self.keys[i], self.tags[i], self.pays[i]);
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if !Self::less((entry.0, entry.1), (self.keys[parent], self.tags[parent])) {
                break;
            }
            self.keys[i] = self.keys[parent];
            self.tags[i] = self.tags[parent];
            self.pays[i] = self.pays[parent];
            i = parent;
        }
        self.keys[i] = entry.0;
        self.tags[i] = entry.1;
        self.pays[i] = entry.2;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.keys.len();
        let entry = (self.keys[i], self.tags[i], self.pays[i]);
        loop {
            let base = ARITY * i + 1;
            if base >= n {
                break;
            }
            // Minimum of the up-to-4 children. The full-fan case reads one
            // 32-byte key lane plus one 16-byte tag lane through fixed-size
            // chunks — the same bounds-check-free lane shape as the geometry
            // kernels (`LANE_WIDTH` == ARITY).
            let mut best = 0usize;
            if base + ARITY <= n {
                let (klane, _) = self.keys[base..base + ARITY].as_chunks::<ARITY>();
                let (tlane, _) = self.tags[base..base + ARITY].as_chunks::<ARITY>();
                let (k4, t4) = (&klane[0], &tlane[0]);
                for j in 1..ARITY {
                    if Self::less((k4[j], t4[j]), (k4[best], t4[best])) {
                        best = j;
                    }
                }
            } else {
                for j in 1..n - base {
                    if Self::less(
                        (self.keys[base + j], self.tags[base + j]),
                        (self.keys[base + best], self.tags[base + best]),
                    ) {
                        best = j;
                    }
                }
            }
            let c = base + best;
            if !Self::less((self.keys[c], self.tags[c]), (entry.0, entry.1)) {
                break;
            }
            self.keys[i] = self.keys[c];
            self.tags[i] = self.tags[c];
            self.pays[i] = self.pays[c];
            i = c;
        }
        self.keys[i] = entry.0;
        self.tags[i] = entry.1;
        self.pays[i] = entry.2;
    }

    #[cfg(test)]
    fn force_seq(&mut self, seq: u32) {
        self.seq = seq;
    }
}

impl<K: QueueKey, V: Clone> PriorityQueue<K, V> for FlatHeap<K, V> {
    fn push(&mut self, key: K, value: V) -> sdj_storage::Result<()> {
        FlatHeap::push(self, key, value);
        Ok(())
    }

    fn pop(&mut self) -> sdj_storage::Result<Option<(K, V)>> {
        Ok(FlatHeap::pop(self))
    }

    fn peek_key(&mut self) -> sdj_storage::Result<Option<K>> {
        if self.keys.is_empty() && !self.staged.is_empty() {
            self.promote_staged();
        }
        Ok(self.peek())
    }

    fn len(&self) -> usize {
        self.len
    }

    fn max_len(&self) -> usize {
        self.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PairingHeap;
    use proptest::prelude::*;
    use sdj_geom::OrdF64;

    #[test]
    fn pops_in_order() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for k in [5.0, 1.0, 4.0, 1.0, 3.0, 9.0, 2.0] {
            h.push(OrdF64::new(k), (k * 10.0) as u64);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k.get());
        }
        assert_eq!(out, vec![1.0, 1.0, 2.0, 3.0, 4.0, 5.0, 9.0]);
        assert!(h.is_empty());
    }

    #[test]
    fn equal_keys_pop_fifo() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for v in 0..50u64 {
            h.push(OrdF64::new(1.0), v);
        }
        for v in 0..50u64 {
            assert_eq!(h.pop().map(|(_, v)| v), Some(v));
        }
    }

    #[test]
    fn negative_and_zero_keys_order_correctly() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for (i, d) in [-1.5, 0.0, -0.0, 3.0, -7.25, 0.0].iter().enumerate() {
            h.push(OrdF64::new(*d), i as u64);
        }
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop() {
            out.push((k.get(), v));
        }
        // Sorted by key; the three zeros (+0.0, -0.0, +0.0) are equal under
        // OrdF64 and pop in arrival order.
        assert_eq!(
            out,
            vec![
                (-7.25, 4),
                (-1.5, 0),
                (0.0, 1),
                (-0.0, 2),
                (0.0, 5),
                (3.0, 3)
            ]
        );
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for round in 0..10 {
            for k in 0..100 {
                h.push(OrdF64::new(f64::from(k)), round);
            }
            for _ in 0..100 {
                h.pop().unwrap();
            }
        }
        assert!(
            h.slab_vals.len() <= 100,
            "slab grew to {}",
            h.slab_vals.len()
        );
        assert_eq!(h.slab_high_water(), 100);
        assert_eq!(h.slab_recycled(), 900);
    }

    #[test]
    fn staged_promotion_restores_order() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        h.stage(OrdF64::new(3.0), 0);
        h.stage(OrdF64::new(1.0), 1);
        h.stage(OrdF64::new(2.0), 2);
        h.stage(OrdF64::new(1.0), 3);
        assert_eq!(h.staged_len(), 4);
        assert_eq!(h.sifted_len(), 0);
        assert_eq!(h.promote_staged(), 4);
        assert_eq!(h.staged_len(), 0);
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop() {
            out.push((k.get(), v));
        }
        // Equal keys in arrival (stage) order.
        assert_eq!(out, vec![(1.0, 1), (1.0, 3), (2.0, 2), (3.0, 0)]);
    }

    #[test]
    fn promote_into_nonempty_heap_sifts() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        h.push(OrdF64::new(2.0), 0);
        h.stage(OrdF64::new(1.0), 1);
        h.stage(OrdF64::new(3.0), 2);
        h.promote_staged();
        assert_eq!(h.pop().map(|(_, v)| v), Some(1));
        assert_eq!(h.pop().map(|(_, v)| v), Some(0));
        assert_eq!(h.pop().map(|(_, v)| v), Some(2));
    }

    #[test]
    fn pop_promotes_staged_when_sifted_is_empty() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        h.stage(OrdF64::new(5.0), 7);
        assert_eq!(h.pop().map(|(_, v)| v), Some(7));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn renumber_preserves_fifo_across_wrap() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for v in 0..10u64 {
            h.push(OrdF64::new(1.0), v);
        }
        h.stage(OrdF64::new(1.0), 10);
        // Force the 24-bit sequence to its limit: the next tag triggers a
        // renumber of the 11 live entries.
        h.force_seq(SEQ_MASK + 1);
        h.push(OrdF64::new(1.0), 11);
        h.stage(OrdF64::new(1.0), 12);
        h.promote_staged();
        for v in 0..13u64 {
            assert_eq!(h.pop().map(|(_, v)| v), Some(v), "at {v}");
        }
    }

    #[test]
    fn peek_top_visits_head_first_without_disturbing_the_heap() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for k in [8u32, 3, 6, 1, 9, 2, 7] {
            h.push(OrdF64::new(f64::from(k)), u64::from(k) * 10);
        }
        let mut seen = Vec::new();
        h.peek_top(4, |k, v| seen.push((k.get(), *v)));
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (1.0, 10), "the minimum is visited first");
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k.get());
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 6.0, 7.0, 8.0, 9.0]);
        let empty: FlatHeap<OrdF64, u64> = FlatHeap::new();
        empty.peek_top(5, |_, _| panic!("empty heap has nothing to visit"));
    }

    #[test]
    fn approx_bytes_tracks_capacity() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        assert_eq!(h.approx_bytes(), 0);
        h.push(OrdF64::new(1.0), 1);
        let one = h.approx_bytes();
        assert!(one >= 16 + 8, "entry + slab accounted: {one}");
        for k in 0..100 {
            h.push(OrdF64::new(f64::from(k)), 0);
        }
        assert!(h.approx_bytes() > one);
    }

    #[test]
    fn clear_resets() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        h.push(OrdF64::new(1.0), 1);
        h.stage(OrdF64::new(2.0), 2);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        h.push(OrdF64::new(2.0), 2);
        assert_eq!(h.pop().map(|(_, v)| v), Some(2));
    }

    #[test]
    fn reserve_prevents_incremental_growth() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        h.reserve(64);
        let cap = h.keys.capacity();
        assert!(cap >= 64);
        for k in 0..64 {
            h.push(OrdF64::new(f64::from(k)), 0);
        }
        assert_eq!(h.keys.capacity(), cap, "no reallocation during pushes");
    }

    #[test]
    fn push_batch_large_takes_heapify_path() {
        // A batch much larger than the sifted region triggers the Floyd
        // bottom-up heapify; the pop sequence must be unchanged.
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        h.push(OrdF64::new(500.0), 999);
        h.push_batch((0..256u64).map(|v| (OrdF64::new(((v * 37) % 101) as f64), v)));
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop() {
            out.push((k.get(), v));
        }
        assert_eq!(out.len(), 257);
        let mut sorted = out.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let dists: Vec<f64> = out.iter().map(|(k, _)| *k).collect();
        let expect: Vec<f64> = sorted.iter().map(|(k, _)| *k).collect();
        assert_eq!(dists, expect);
    }

    #[test]
    fn push_batch_small_keeps_fifo_among_equal_keys() {
        // A small batch into a large region takes the per-entry sift-up
        // path; equal keys must still pop in arrival order.
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for v in 0..64u64 {
            h.push(OrdF64::new(2.0), v);
        }
        h.push_batch([(OrdF64::new(2.0), 64u64), (OrdF64::new(1.0), 65)]);
        assert_eq!(h.pop().map(|(_, v)| v), Some(65));
        for v in 0..65u64 {
            assert_eq!(h.pop().map(|(_, v)| v), Some(v));
        }
    }

    #[test]
    fn drain_unordered_yields_every_element_once() {
        let mut h: FlatHeap<OrdF64, u64> = FlatHeap::new();
        for v in 0..40u64 {
            h.push(OrdF64::new((v % 7) as f64), v);
        }
        for v in 40..50u64 {
            h.stage(OrdF64::new((v % 7) as f64), v);
        }
        let mut got = Vec::new();
        h.drain_unordered(|k, v| got.push((k.get(), v)));
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        got.sort_by_key(|e| e.1);
        let expect: Vec<(f64, u64)> = (0..50u64).map(|v| ((v % 7) as f64, v)).collect();
        assert_eq!(got, expect);
        // Reusable afterwards.
        h.push(OrdF64::new(9.0), 1);
        assert_eq!(h.pop().map(|(_, v)| v), Some(1));
    }

    proptest! {
        /// `push_batch` (both restoration paths) agrees with per-element
        /// pushes into a pairing heap on the full pop sequence.
        #[test]
        fn push_batch_matches_individual_pushes(
            batches in prop::collection::vec(
                prop::collection::vec(0u32..20, 0..60),
                1..8,
            ),
        ) {
            let mut flat: FlatHeap<OrdF64, u32> = FlatHeap::new();
            let mut pairing: PairingHeap<OrdF64, u32> = PairingHeap::new();
            let mut next = 0u32;
            for batch in batches {
                let items: Vec<(OrdF64, u32)> = batch
                    .iter()
                    .map(|k| {
                        let v = next;
                        next += 1;
                        (OrdF64::new(f64::from(*k)), v)
                    })
                    .collect();
                for &(k, v) in &items {
                    pairing.push(k, v);
                }
                flat.push_batch(items);
                // Interleave a pop so batches land on non-empty regions.
                prop_assert_eq!(flat.pop(), pairing.pop());
            }
            while let Some(got) = flat.pop() {
                prop_assert_eq!(Some(got), pairing.pop());
            }
            prop_assert_eq!(pairing.pop(), None);
        }
    }

    proptest! {
        /// Heap order agrees with sorting, including duplicate keys.
        #[test]
        fn agrees_with_sort(keys in prop::collection::vec(0u32..1000, 0..300)) {
            let mut h: FlatHeap<OrdF64, usize> = FlatHeap::new();
            for (i, k) in keys.iter().enumerate() {
                h.push(OrdF64::new(f64::from(*k)), i);
            }
            let mut expect = keys.clone();
            expect.sort_unstable();
            let mut got = Vec::new();
            while let Some((k, _)) = h.pop() {
                got.push(k.get() as u32);
            }
            prop_assert_eq!(got, expect);
        }

        /// Random interleavings of push/stage/promote/pop agree with the
        /// seq-stamped pairing heap on the full (key, value) pop sequence —
        /// both realise the total order (key, arrival).
        #[test]
        fn matches_pairing_heap_exactly(
            ops in prop::collection::vec((0u8..4, 0u32..50), 1..400),
        ) {
            let mut flat: FlatHeap<OrdF64, u32> = FlatHeap::new();
            let mut pairing: PairingHeap<OrdF64, u32> = PairingHeap::new();
            for (i, (op, k)) in ops.into_iter().enumerate() {
                let v = i as u32;
                match op {
                    0 | 3 => {
                        flat.push(OrdF64::new(f64::from(k)), v);
                        pairing.push(OrdF64::new(f64::from(k)), v);
                    }
                    1 => {
                        // Stage + immediate promote is equivalent to push
                        // for ordering purposes (arrival tags persist).
                        flat.stage(OrdF64::new(f64::from(k)), v);
                        flat.promote_staged();
                        pairing.push(OrdF64::new(f64::from(k)), v);
                    }
                    _ => {
                        prop_assert_eq!(flat.pop(), pairing.pop());
                    }
                }
                prop_assert_eq!(flat.len(), pairing.len());
            }
            while let Some(got) = flat.pop() {
                prop_assert_eq!(Some(got), pairing.pop());
            }
            prop_assert_eq!(pairing.pop(), None);
        }
    }
}
