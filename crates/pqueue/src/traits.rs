//! The queue abstraction shared by the join algorithms.

use sdj_storage::codec::{PageReader, PageWriter};

/// A priority-queue key: totally ordered, with a primary distance component
/// used by the hybrid queue to decide which tier an element belongs to.
///
/// Orderings richer than the bare distance (the paper's tie-breaking rules
/// of §2.2.2) are expressed by implementing `Ord` on a composite key whose
/// [`QueueKey::distance`] returns the primary distance.
pub trait QueueKey: Ord + Clone {
    /// The primary (distance) component of the key.
    fn distance(&self) -> f64;
}

impl QueueKey for sdj_geom::OrdF64 {
    fn distance(&self) -> f64 {
        self.get()
    }
}

/// Fixed-size binary serialization, required of keys and values that may
/// spill to the hybrid queue's disk tier.
pub trait Codec: Sized {
    /// Encoded size in bytes; every instance must encode to exactly this
    /// many bytes.
    fn encoded_size() -> usize;

    /// Writes `self` to the cursor.
    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()>;

    /// Reads an instance back from the cursor.
    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self>;
}

impl Codec for sdj_geom::OrdF64 {
    fn encoded_size() -> usize {
        8
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        w.put_f64(self.get())
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        Ok(Self::new(r.get_f64()?))
    }
}

impl Codec for u64 {
    fn encoded_size() -> usize {
        8
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        w.put_u64(*self)
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        r.get_u64()
    }
}

/// A min-priority queue of `(key, value)` pairs.
///
/// The mutating operations are fallible: tiered implementations touch a
/// simulated disk whose faults (transient I/O, disk-full, corruption)
/// surface as `sdj_storage::StorageError` instead of panicking. Purely
/// in-memory implementations always return `Ok`.
pub trait PriorityQueue<K: Ord, V> {
    /// Inserts an element.
    fn push(&mut self, key: K, value: V) -> sdj_storage::Result<()>;

    /// Removes and returns the minimum element.
    fn pop(&mut self) -> sdj_storage::Result<Option<(K, V)>>;

    /// The current minimum key, if any.
    ///
    /// For tiered queues this may promote spilled elements into memory.
    fn peek_key(&mut self) -> sdj_storage::Result<Option<K>>;

    /// Number of elements currently queued.
    fn len(&self) -> usize;

    /// True if no elements are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of [`PriorityQueue::len`] over the queue's lifetime —
    /// the "maximum queue size" column of the paper's Table 1.
    fn max_len(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::OrdF64;

    #[test]
    fn ordf64_codec_roundtrip() {
        let mut buf = [0u8; 8];
        OrdF64::new(12.5)
            .encode(&mut PageWriter::new(&mut buf))
            .unwrap();
        let back = OrdF64::decode(&mut PageReader::new(&buf)).unwrap();
        assert_eq!(back.get(), 12.5);
    }

    #[test]
    fn u64_codec_roundtrip() {
        let mut buf = [0u8; 8];
        0xDEAD_BEEF_u64
            .encode(&mut PageWriter::new(&mut buf))
            .unwrap();
        assert_eq!(
            u64::decode(&mut PageReader::new(&buf)).unwrap(),
            0xDEAD_BEEF
        );
    }

    #[test]
    fn ordf64_is_queue_key() {
        assert_eq!(OrdF64::new(3.5).distance(), 3.5);
    }
}
