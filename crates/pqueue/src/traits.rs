//! The queue abstraction shared by the join algorithms.

use sdj_storage::codec::{PageReader, PageWriter};

/// A priority-queue key: totally ordered, with a primary distance component
/// used by the hybrid queue to decide which tier an element belongs to.
///
/// Orderings richer than the bare distance (the paper's tie-breaking rules
/// of §2.2.2) are expressed by implementing `Ord` on a composite key whose
/// [`QueueKey::distance`] returns the primary distance.
///
/// The flat d-ary heap sifts 16-byte compact entries instead of full keys,
/// ordering them by `(order_bits, tie_rank)`. Implementations must keep that
/// pair consistent with `Ord`: `a < b` under `Ord` iff
/// `(a.order_bits(), a.tie_rank()) < (b.order_bits(), b.tie_rank())`.
/// The defaults cover any key whose `Ord` is exactly its distance.
pub trait QueueKey: Ord + Clone {
    /// The primary (distance) component of the key.
    fn distance(&self) -> f64;

    /// The key's order as an unsigned 64-bit integer: `u64` comparison of
    /// `order_bits` must match `f64` comparison of [`QueueKey::distance`].
    fn order_bits(&self) -> u64 {
        f64_order_bits(self.distance())
    }

    /// Secondary ordering rank for keys whose `Ord` refines the distance
    /// (the paper's §2.2.2 tie-breaking). Keys ordered purely by distance
    /// return 0.
    fn tie_rank(&self) -> u8 {
        0
    }

    /// Rebuilds the key from its order image. Keys must be *fully
    /// determined* by `(order_bits, tie_rank)`:
    /// `Self::from_parts(k.order_bits(), k.tie_rank()) == k` for every key
    /// the queue may store. This is what lets the flat heap keep only the
    /// 16-byte compact entry and no key copy at all — popped keys are
    /// rebuilt from the entry. The default covers distance-only keys.
    fn from_parts(bits: u64, tie_rank: u8) -> Self;
}

/// Inverse of [`f64_order_bits`]: recovers the distance from its
/// order-preserving `u64` image (with `-0.0` already canonicalised away by
/// the forward map).
#[must_use]
pub fn f64_from_order_bits(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits & !(1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

/// The standard order-preserving map from `f64` to `u64`: flip the sign bit
/// of non-negatives, complement negatives. Total, monotone, and injective —
/// except that `-0.0` is canonicalised to `+0.0` first, because the queue
/// key types compare the two as equal and the heap's entry order must not
/// disagree with them.
#[must_use]
pub fn f64_order_bits(d: f64) -> u64 {
    let d = if d == 0.0 { 0.0 } else { d };
    let b = d.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

impl QueueKey for sdj_geom::OrdF64 {
    fn distance(&self) -> f64 {
        self.get()
    }

    fn from_parts(bits: u64, _tie_rank: u8) -> Self {
        Self::new(f64_from_order_bits(bits))
    }
}

/// Fixed-size binary serialization, required of keys and values that may
/// spill to the hybrid queue's disk tier.
pub trait Codec: Sized {
    /// Encoded size in bytes; every instance must encode to exactly this
    /// many bytes.
    fn encoded_size() -> usize;

    /// Writes `self` to the cursor.
    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()>;

    /// Reads an instance back from the cursor.
    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self>;
}

impl Codec for sdj_geom::OrdF64 {
    fn encoded_size() -> usize {
        8
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        w.put_f64(self.get())
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        Ok(Self::new(r.get_f64()?))
    }
}

impl Codec for u64 {
    fn encoded_size() -> usize {
        8
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        w.put_u64(*self)
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        r.get_u64()
    }
}

/// A min-priority queue of `(key, value)` pairs.
///
/// The mutating operations are fallible: tiered implementations touch a
/// simulated disk whose faults (transient I/O, disk-full, corruption)
/// surface as `sdj_storage::StorageError` instead of panicking. Purely
/// in-memory implementations always return `Ok`.
pub trait PriorityQueue<K: Ord, V> {
    /// Inserts an element.
    fn push(&mut self, key: K, value: V) -> sdj_storage::Result<()>;

    /// Removes and returns the minimum element.
    fn pop(&mut self) -> sdj_storage::Result<Option<(K, V)>>;

    /// The current minimum key, if any.
    ///
    /// For tiered queues this may promote spilled elements into memory.
    fn peek_key(&mut self) -> sdj_storage::Result<Option<K>>;

    /// Number of elements currently queued.
    fn len(&self) -> usize;

    /// True if no elements are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of [`PriorityQueue::len`] over the queue's lifetime —
    /// the "maximum queue size" column of the paper's Table 1.
    fn max_len(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::OrdF64;

    #[test]
    fn ordf64_codec_roundtrip() {
        let mut buf = [0u8; 8];
        OrdF64::new(12.5)
            .encode(&mut PageWriter::new(&mut buf))
            .unwrap();
        let back = OrdF64::decode(&mut PageReader::new(&buf)).unwrap();
        assert_eq!(back.get(), 12.5);
    }

    #[test]
    fn u64_codec_roundtrip() {
        let mut buf = [0u8; 8];
        0xDEAD_BEEF_u64
            .encode(&mut PageWriter::new(&mut buf))
            .unwrap();
        assert_eq!(
            u64::decode(&mut PageReader::new(&buf)).unwrap(),
            0xDEAD_BEEF
        );
    }

    #[test]
    fn ordf64_is_queue_key() {
        assert_eq!(OrdF64::new(3.5).distance(), 3.5);
        assert_eq!(OrdF64::new(3.5).tie_rank(), 0);
    }

    #[test]
    fn order_bits_is_monotone() {
        let ds = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            0.0,
            f64::MIN_POSITIVE,
            0.5,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in ds.windows(2) {
            assert!(
                f64_order_bits(w[0]) < f64_order_bits(w[1]),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn order_bits_canonicalises_negative_zero() {
        // OrdF64 compares -0.0 == +0.0, so the bit order must too.
        assert_eq!(f64_order_bits(-0.0), f64_order_bits(0.0));
    }
}
