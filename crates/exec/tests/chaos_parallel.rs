//! Parallel chaos: fault schedules on the workers' hybrid spill queues must
//! end the merged stream with a typed error after a correct prefix — the
//! first failing worker propagates through [`JoinStream`] instead of
//! poisoning the merge — or the run completes with the full fault-free
//! result multiset.
//!
//! Prefix correctness for a parallel run means: every emitted result is in
//! the fault-free multiset, none is emitted twice, and the emitted distance
//! sequence is a prefix of the fault-free distance sequence (ties aside, the
//! watermark merge emits globally in order, so nothing past the error point
//! can have been skipped before it).

use std::collections::HashMap;

use proptest::prelude::*;
use sdj_core::{DistanceJoin, JoinConfig, QueueBackend, SemiConfig};
use sdj_exec::{ParallelConfig, ParallelDistanceJoin};
use sdj_geom::Point;
use sdj_pqueue::{HybridConfig, KeyScale};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};
use sdj_storage::FaultConfig;

fn tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

fn sample_sets() -> (Vec<Point<2>>, Vec<Point<2>>) {
    (
        sdj_datagen::tiger::water_like(70, 7),
        sdj_datagen::tiger::roads_like(90, 7),
    )
}

fn spilly_config() -> JoinConfig {
    JoinConfig {
        queue: QueueBackend::Hybrid(HybridConfig {
            dt: 0.05,
            page_size: 256,
            buffer_frames: 2,
            key_scale: KeyScale::Squared,
            ..HybridConfig::default()
        }),
        ..JoinConfig::default()
    }
}

/// Checks the parallel fail-clean contract against the serial golden run.
fn assert_parallel_fail_clean(
    golden: &[sdj_core::ResultPair],
    run: &sdj_exec::RunOutput<Vec<sdj_core::ResultPair>>,
) {
    // Count each (pair, distance-bits) of the golden multiset.
    let mut budget: HashMap<(u64, u64, u64), i64> = HashMap::new();
    for r in golden {
        *budget
            .entry((r.oid1.0, r.oid2.0, r.distance.to_bits()))
            .or_default() += 1;
    }
    for r in &run.value {
        let k = (r.oid1.0, r.oid2.0, r.distance.to_bits());
        let slot = budget
            .get_mut(&k)
            .unwrap_or_else(|| panic!("emitted pair {k:?} is not in the fault-free result set"));
        *slot -= 1;
        assert!(*slot >= 0, "pair {k:?} emitted more often than it exists");
    }
    // Ordered prefix of the golden distance sequence.
    for (got, want) in run.value.iter().zip(golden) {
        assert_eq!(
            got.distance.to_bits(),
            want.distance.to_bits(),
            "merged stream diverged from the golden distance order"
        );
    }
    match &run.error {
        None => assert_eq!(
            run.value.len(),
            golden.len(),
            "error-free run must emit the complete result set"
        ),
        Some(_) => assert!(run.value.len() <= golden.len()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed fault schedules on every engine's spill queue, 1–4 workers.
    #[test]
    fn parallel_join_is_fail_clean_under_queue_faults(
        seed in any::<u64>(),
        read_p in 0.0..0.05f64,
        write_p in 0.0..0.05f64,
        disk_full in prop::option::of(0u64..16),
        retries in 0u32..3,
        threads in 1usize..4,
    ) {
        let (a, b) = sample_sets();
        let t1 = tree(&a, 5);
        let t2 = tree(&b, 5);
        let config = spilly_config();
        let golden: Vec<_> = DistanceJoin::new(&t1, &t2, config).collect();

        let fault = FaultConfig {
            seed,
            read_transient: read_p,
            write_transient: write_p,
            disk_full_after: disk_full,
            ..FaultConfig::default()
        };
        let run = ParallelDistanceJoin::new(
            &t1,
            &t2,
            config,
            ParallelConfig::with_threads(threads),
        )
        .with_queue_fault_config(fault, retries)
        .collect();
        assert_parallel_fail_clean(&golden, &run);
    }

    /// Transient-only schedules with retries complete with the full result
    /// set even in parallel.
    #[test]
    fn parallel_transient_only_with_retries_completes(
        seed in any::<u64>(),
        p in 0.005..0.03f64,
        threads in 1usize..4,
    ) {
        let (a, b) = sample_sets();
        let t1 = tree(&a, 5);
        let t2 = tree(&b, 5);
        let config = spilly_config();
        let golden: Vec<_> = DistanceJoin::new(&t1, &t2, config).collect();

        let run = ParallelDistanceJoin::new(
            &t1,
            &t2,
            config,
            ParallelConfig::with_threads(threads),
        )
        .with_queue_fault_config(FaultConfig::transient_only(seed, p), 16)
        .collect();
        prop_assert!(run.error.is_none(), "retries must absorb transient faults: {:?}", run.error);
        assert_parallel_fail_clean(&golden, &run);
    }
}

/// A guaranteed worker failure: the stream must surface the error through
/// `JoinStream::error` after a correct prefix, and `RunOutput::error` must
/// carry the same typed error.
#[test]
fn worker_error_propagates_through_the_stream() {
    let (a, b) = sample_sets();
    let t1 = tree(&a, 5);
    let t2 = tree(&b, 5);
    let config = spilly_config();
    let golden: Vec<_> = DistanceJoin::new(&t1, &t2, config).collect();

    let fault = FaultConfig {
        seed: 7,
        disk_full_after: Some(0),
        ..FaultConfig::default()
    };
    let mut stream_error = None;
    let run = ParallelDistanceJoin::new(&t1, &t2, config, ParallelConfig::with_threads(2))
        .with_queue_fault_config(fault, 0)
        .run(|stream| {
            let out: Vec<_> = stream.collect();
            stream_error = stream.error().cloned();
            out
        });
    assert_parallel_fail_clean(&golden, &run);
    assert!(
        run.error.is_some(),
        "a zero-page allocation budget must fail some spill"
    );
    if run.value.len() < golden.len() {
        assert!(
            stream_error.is_some(),
            "a truncated stream must expose the error to the consumer"
        );
    }
}

/// Semi-join parallel chaos: the per-object nearest map of an error-free
/// faulted run must equal the serial one.
#[test]
fn parallel_semi_join_transient_retries_match_serial() {
    let (a, b) = sample_sets();
    let t1 = tree(&a, 5);
    let t2 = tree(&b, 5);
    let config = spilly_config();
    let semi = SemiConfig::default();
    let serial: HashMap<u64, u64> = DistanceJoin::semi(&t1, &t2, config, semi)
        .map(|r| (r.oid1.0, r.distance.to_bits()))
        .collect();

    let run = ParallelDistanceJoin::semi(&t1, &t2, config, semi, ParallelConfig::with_threads(3))
        .with_queue_fault_config(FaultConfig::transient_only(41, 0.02), 16)
        .collect();
    assert!(run.error.is_none(), "retries must absorb transient faults");
    let got: HashMap<u64, u64> = run
        .value
        .iter()
        .map(|r| (r.oid1.0, r.distance.to_bits()))
        .collect();
    assert_eq!(got.len(), run.value.len(), "no first object answered twice");
    assert_eq!(got, serial);
}
