//! Observability of a parallel run: every spawned worker announces
//! `WorkerFinished`, the merged stream reports strictly increasing global
//! ranks with non-decreasing distances, and the per-worker result counts
//! reconcile with the merged output.

use std::sync::Arc;

use sdj_core::JoinConfig;
use sdj_exec::{ParallelConfig, ParallelDistanceJoin};
use sdj_geom::Point;
use sdj_obs::{Event, ObsContext, RingRecorder};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn tree(n: u64, stride: f64, offset: f64) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(8));
    for i in 0..n {
        let p = Point::xy(offset + stride * (i % 37) as f64, (i / 37) as f64);
        t.insert(ObjectId(i), p.to_rect()).unwrap();
    }
    t
}

#[test]
fn parallel_run_reports_workers_and_global_ranks() {
    let t1 = tree(400, 1.0, 0.0);
    let t2 = tree(400, 1.0, 0.25);
    let recorder = Arc::new(RingRecorder::new(65_536));
    let ctx = ObsContext::new(recorder.clone() as Arc<dyn sdj_obs::EventSink>);

    let config = JoinConfig::default().with_max_pairs(500);
    let parallel = ParallelConfig {
        threads: 3,
        frontier_factor: 8,
        channel_capacity: 64,
    };
    let run = ParallelDistanceJoin::new(&t1, &t2, config, parallel)
        .with_obs(ctx.clone())
        .collect();
    assert_eq!(run.error, None);
    assert_eq!(run.value.len(), 500);
    assert_eq!(recorder.dropped(), 0, "ring must be large enough");

    let events = recorder.events();

    // Every spawned worker finished, and their result counts cover at least
    // the merged (non-prefix) output: semi-join dedup aside (this is a full
    // join), each merged result was sent by exactly one worker, but workers
    // may send results the consumer never drains after `max_pairs` is hit.
    let finished: Vec<(u32, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::WorkerFinished { worker, results } => Some((*worker, *results)),
            _ => None,
        })
        .collect();
    assert_eq!(
        finished.len(),
        run.workers_spawned,
        "one WorkerFinished per spawned worker"
    );
    for (worker, _) in &finished {
        assert!(*worker >= 1, "spawned workers report ids 1..");
    }

    // ResultReported ranks are globally strictly increasing, contiguous
    // from 1, and distances never decrease (ascending run).
    let reported: Vec<(u64, f64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::ResultReported { rank, dist } => Some((*rank, *dist)),
            _ => None,
        })
        .collect();
    assert_eq!(reported.len(), 500, "cadence 1 reports every result");
    let mut last_dist = 0.0f64;
    for (i, (rank, dist)) in reported.iter().enumerate() {
        assert_eq!(*rank, i as u64 + 1, "ranks contiguous from 1");
        assert!(*dist >= last_dist, "distances non-decreasing");
        last_dist = *dist;
    }
    // The reported distances are exactly the collected stream's.
    for (r, (_, dist)) in run.value.iter().zip(&reported) {
        assert_eq!(r.distance.to_bits(), dist.to_bits());
    }

    // The counters saw every result exactly once across all engines.
    let snap = ctx.registry.snapshot();
    assert!(snap.counter("join.results").unwrap_or(0) >= 500);
    assert!(snap.counter("join.expansions").unwrap_or(0) > 0);
}

#[test]
fn sampled_cadence_thins_result_events() {
    let t1 = tree(200, 1.0, 0.0);
    let t2 = tree(200, 1.0, 0.5);
    let recorder = Arc::new(RingRecorder::new(8192));
    let ctx = ObsContext::new(recorder.clone() as Arc<dyn sdj_obs::EventSink>)
        .with_result_sample_every(50);

    let config = JoinConfig::default().with_max_pairs(300);
    let run = ParallelDistanceJoin::new(&t1, &t2, config, ParallelConfig::with_threads(2))
        .with_obs(ctx)
        .collect();
    assert_eq!(run.error, None);
    assert_eq!(run.value.len(), 300);

    let ranks: Vec<u64> = recorder
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::ResultReported { rank, .. } => Some(*rank),
            _ => None,
        })
        .collect();
    assert_eq!(ranks, vec![50, 100, 150, 200, 250, 300]);
}
