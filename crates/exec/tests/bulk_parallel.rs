//! The parallel bulk driver's invariants:
//!
//! * **Thread-count invariance**: per-cell runs are deterministic and the
//!   driver reassembles them in cell order (unordered) or by a total-order
//!   merge (ordered), so the output is *identical* — bit for bit, including
//!   tie order — for any worker count.
//! * **Equivalence**: the parallel bulk output matches the serial
//!   incremental engine's result multiset, and the ordered distance
//!   sequence bitwise.
//! * **Planned runs**: `run_planned` executes the forced path, both paths
//!   agree, and the obs wiring records `plan_chosen` / `plan.*` / `bulk.*`.

use std::sync::Arc;

use sdj_core::bulk::BulkConfig;
use sdj_core::{AdaptiveConfig, DistanceJoin, JoinConfig, PlanChoice, ResultOrder};
use sdj_exec::{run_planned, ParallelBulkJoin, ParallelConfig};
use sdj_geom::{Point, Rect};
use sdj_obs::{ObsContext, RingRecorder};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn tree_of(points: &[(f64, f64)]) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(6));
    for (i, &(x, y)) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), Point::xy(x, y).to_rect())
            .unwrap();
    }
    t
}

fn tree_of_boxes(n: usize, half: f64) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(6));
    for i in 0..n {
        let (x, y) = ((i % 16) as f64, (i / 16) as f64);
        let r = Rect::new([x - half, y - half], [x + half, y + half]);
        t.insert(ObjectId(i as u64), r).unwrap();
    }
    t
}

fn grid_points(n: usize) -> Vec<(f64, f64)> {
    (0..n).map(|i| ((i % 16) as f64, (i / 16) as f64)).collect()
}

fn key(r: &sdj_core::ResultPair) -> (u64, u64, u64) {
    (r.distance.to_bits(), r.oid1.0, r.oid2.0)
}

#[test]
fn ordered_output_is_invariant_across_thread_counts() {
    let t1 = tree_of_boxes(192, 0.4);
    let t2 = tree_of(&grid_points(200));
    let config = JoinConfig::default().with_range(0.2, 2.5);
    let reference =
        ParallelBulkJoin::new(&t1, &t2, config, ParallelConfig::with_threads(1)).collect();
    assert!(reference.error.is_none());
    assert!(!reference.value.is_empty());
    for threads in [2, 3, 8] {
        let run = ParallelBulkJoin::new(&t1, &t2, config, ParallelConfig::with_threads(threads))
            .collect();
        assert!(run.error.is_none());
        let got: Vec<_> = run.value.iter().map(key).collect();
        let want: Vec<_> = reference.value.iter().map(key).collect();
        assert_eq!(got, want, "threads={threads} diverged (ordered)");
        assert_eq!(run.stats.distance_calcs, reference.stats.distance_calcs);
        assert_eq!(
            run.bulk, reference.bulk,
            "threads={threads} counters diverged"
        );
    }
}

#[test]
fn unordered_output_is_invariant_across_thread_counts() {
    let t1 = tree_of_boxes(192, 0.4);
    let t2 = tree_of(&grid_points(200));
    let config = JoinConfig::default().with_range(0.0, 1.5);
    let collect_unordered = |threads: usize| {
        let mut out = Vec::new();
        let run = ParallelBulkJoin::new(&t1, &t2, config, ParallelConfig::with_threads(threads))
            .run_unordered(|stream| {
                out.extend(stream.map(|r| key(&r)));
            });
        assert!(run.error.is_none());
        out
    };
    let reference = collect_unordered(1);
    assert!(!reference.is_empty());
    for threads in [2, 5] {
        assert_eq!(
            collect_unordered(threads),
            reference,
            "threads={threads} diverged (unordered cell order)"
        );
    }
}

#[test]
fn parallel_bulk_matches_serial_incremental() {
    let t1 = tree_of_boxes(160, 0.45);
    let t2 = tree_of(&grid_points(180));
    for descending in [false, true] {
        let mut config = JoinConfig::default().with_range(0.1, 3.0);
        if descending {
            config.order = ResultOrder::Descending;
        }
        let serial: Vec<_> = DistanceJoin::new(&t1, &t2, config).collect();
        let run =
            ParallelBulkJoin::new(&t1, &t2, config, ParallelConfig::with_threads(4)).collect();
        assert!(run.error.is_none());
        assert_eq!(run.value.len(), serial.len());
        for (a, b) in serial.iter().zip(&run.value) {
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "distance sequence diverged (descending={descending})"
            );
        }
        let mut got: Vec<_> = run.value.iter().map(key).collect();
        let mut want: Vec<_> = serial.iter().map(key).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn max_pairs_truncation_matches_incremental() {
    let t1 = tree_of(&grid_points(150));
    let t2 = tree_of(&grid_points(150));
    let config = JoinConfig::default().with_max_pairs(25);
    let serial: Vec<_> = DistanceJoin::new(&t1, &t2, config).collect();
    let run = ParallelBulkJoin::new(&t1, &t2, config, ParallelConfig::with_threads(3)).collect();
    assert!(run.error.is_none());
    assert_eq!(run.value.len(), 25);
    for (a, b) in serial.iter().zip(&run.value) {
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }
}

#[test]
fn planned_runs_agree_and_record_the_choice() {
    let t1 = tree_of(&grid_points(150));
    let t2 = tree_of(&grid_points(150));
    let config = JoinConfig::default().with_range(0.0, 2.0);
    let parallel = ParallelConfig::with_threads(2);

    let mut outputs = Vec::new();
    for force in [
        PlanChoice::Incremental,
        PlanChoice::Bulk,
        PlanChoice::Adaptive,
    ] {
        let sink = Arc::new(RingRecorder::new(64));
        let ctx = ObsContext::new(Arc::clone(&sink) as Arc<dyn sdj_obs::EventSink>);
        let run = run_planned(
            &t1,
            &t2,
            config,
            parallel,
            BulkConfig::default(),
            AdaptiveConfig::default(),
            Some(force),
            Some(ctx.clone()),
        );
        assert!(run.error.is_none());
        assert_eq!(run.executed, force);
        assert!(run.forced);
        assert_eq!(sink.counts().plan_chosen, 1, "plan_chosen event missing");
        let snapshot = ctx.registry.snapshot();
        let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
        match force {
            PlanChoice::Incremental => {
                assert_eq!(counter("plan.incremental"), 1);
                assert!(run.bulk.is_none());
                assert_eq!(snapshot.gauge("plan.choice").map(|(v, _)| v), Some(0));
            }
            PlanChoice::Bulk => {
                assert_eq!(counter("plan.bulk"), 1);
                assert!(counter("bulk.cells") > 0);
                assert!(counter("bulk.cell_pairs_swept") > 0);
                assert_eq!(snapshot.gauge("plan.choice").map(|(v, _)| v), Some(1));
                let bulk = run.bulk.expect("bulk stats present");
                assert_eq!(bulk.cells, counter("bulk.cells"));
            }
            PlanChoice::Adaptive => {
                assert_eq!(counter("plan.adaptive"), 1);
                assert_eq!(snapshot.gauge("plan.choice").map(|(v, _)| v), Some(2));
                // Whether a replan fired is the cost model's call; when it
                // did, the switch must be visible in event and gauge form.
                if run.replanned.is_some() {
                    assert_eq!(sink.counts().replanned, 1, "replanned event missing");
                    assert_eq!(snapshot.gauge("plan.replans").map(|(v, _)| v), Some(1));
                    assert!(run.bulk.is_some());
                }
            }
        }
        let mut sorted: Vec<_> = run.results.iter().map(key).collect();
        sorted.sort_unstable();
        outputs.push(sorted);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "paths disagree on the result multiset"
    );
    assert_eq!(
        outputs[0], outputs[2],
        "adaptive disagrees on the result multiset"
    );
}

#[test]
fn auto_plan_follows_the_cost_model() {
    let t1 = tree_of(&grid_points(150));
    let t2 = tree_of(&grid_points(150));
    // Tiny K on an unbounded range: squarely incremental territory.
    let run = run_planned(
        &t1,
        &t2,
        JoinConfig::default().with_max_pairs(5),
        ParallelConfig::with_threads(1),
        BulkConfig::default(),
        AdaptiveConfig::default(),
        None,
        None,
    );
    assert!(!run.forced);
    assert_eq!(run.executed, run.plan.choice);
    assert_eq!(run.executed, PlanChoice::Incremental);
    assert_eq!(run.results.len(), 5);
}
