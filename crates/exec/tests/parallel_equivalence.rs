//! The parallel executor must be observationally identical to the serial
//! engine: same result multiset, in a valid distance order, for joins and
//! semi-joins, with and without a `[Dmin, Dmax]` restriction, across thread
//! counts 1/2/4/8.

use proptest::prelude::*;
use sdj_core::{
    DistanceJoin, DmaxStrategy, JoinConfig, QueueBackend, QueueLayout, ResultOrder, SemiConfig,
    SemiFilter,
};
use sdj_exec::{ParallelConfig, ParallelDistanceJoin};
use sdj_geom::Point;
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

/// Exact comparison key: distances come out of identical code paths on the
/// same pairs, so bit-for-bit equality is the right notion.
fn key(r: &sdj_core::ResultPair) -> (u64, u64, u64) {
    (r.distance.to_bits(), r.oid1.0, r.oid2.0)
}

fn assert_order_valid(results: &[sdj_core::ResultPair], ascending: bool) {
    for w in results.windows(2) {
        if ascending {
            assert!(w[0].distance <= w[1].distance, "stream must be ascending");
        } else {
            assert!(w[0].distance >= w[1].distance, "stream must be descending");
        }
    }
}

/// Join mode: the parallel stream must be the serial result multiset in a
/// valid order.
fn check_join_equivalence(
    a: &[Point<2>],
    b: &[Point<2>],
    fanout: usize,
    config: JoinConfig,
    parallel: ParallelConfig,
) {
    let t1 = tree(a, fanout);
    let t2 = tree(b, fanout);
    let serial: Vec<_> = DistanceJoin::new(&t1, &t2, config).collect();
    let run = ParallelDistanceJoin::new(&t1, &t2, config, parallel).collect();
    assert_eq!(run.error, None);
    assert_order_valid(&run.value, matches!(config.order, ResultOrder::Ascending));
    let mut got: Vec<_> = run.value.iter().map(key).collect();
    let mut want: Vec<_> = serial.iter().map(key).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "threads={}", parallel.threads);
}

/// Semi-join mode: per first object the nearest-partner distance is unique,
/// so the map `o1 -> distance` must match exactly (the witnessing `o2` may
/// differ only under exact distance ties).
fn check_semi_equivalence(
    a: &[Point<2>],
    b: &[Point<2>],
    fanout: usize,
    config: JoinConfig,
    semi: SemiConfig,
    parallel: ParallelConfig,
) {
    let t1 = tree(a, fanout);
    let t2 = tree(b, fanout);
    let serial: Vec<_> = DistanceJoin::semi(&t1, &t2, config, semi).collect();
    let run = ParallelDistanceJoin::semi(&t1, &t2, config, semi, parallel).collect();
    assert_eq!(run.error, None);
    assert_order_valid(&run.value, matches!(config.order, ResultOrder::Ascending));
    let to_map = |rs: &[sdj_core::ResultPair]| {
        let mut m: Vec<(u64, u64)> = rs
            .iter()
            .map(|r| (r.oid1.0, r.distance.to_bits()))
            .collect();
        m.sort_unstable();
        m
    };
    assert_eq!(
        to_map(&run.value),
        to_map(&serial),
        "threads={}",
        parallel.threads
    );
    // Each first object answered at most once.
    let mut seen = std::collections::HashSet::new();
    for r in &run.value {
        assert!(seen.insert(r.oid1.0), "object {} answered twice", r.oid1.0);
    }
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::xy(x, y)).collect())
}

#[derive(Clone, Debug)]
struct Case {
    a: Vec<Point<2>>,
    b: Vec<Point<2>>,
    fanout: usize,
    threads: usize,
    frontier_factor: usize,
    channel_capacity: usize,
    range: Option<(f64, f64)>,
    layout: QueueLayout,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        arb_points(50),
        arb_points(70),
        3usize..7,
        prop::sample::select(vec![1usize, 2, 4, 8]),
        // Small frontiers force real sharding even on small inputs; a tiny
        // channel exercises worker back-pressure in the merge.
        1usize..6,
        1usize..5,
        prop::option::of((0.0..4.0f64, 0.0..10.0f64)),
        prop::sample::select(vec![QueueLayout::Pairing, QueueLayout::FlatDary]),
    )
        .prop_map(
            |(a, b, fanout, threads, frontier_factor, channel_capacity, range, layout)| Case {
                a,
                b,
                fanout,
                threads,
                frontier_factor,
                channel_capacity,
                range: range.map(|(lo, w)| (lo, lo + w)),
                layout,
            },
        )
}

fn case_config(case: &Case) -> (JoinConfig, ParallelConfig) {
    let mut config = JoinConfig::default().with_layout(case.layout);
    if let Some((lo, hi)) = case.range {
        config = config.with_range(lo, hi);
    }
    let parallel = ParallelConfig {
        threads: case.threads,
        frontier_factor: case.frontier_factor,
        channel_capacity: case.channel_capacity,
    };
    (config, parallel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_matches_serial(case in arb_case()) {
        let (config, parallel) = case_config(&case);
        check_join_equivalence(&case.a, &case.b, case.fanout, config, parallel);
    }

    #[test]
    fn semi_join_matches_serial(case in arb_case()) {
        let (config, parallel) = case_config(&case);
        check_semi_equivalence(
            &case.a,
            &case.b,
            case.fanout,
            config,
            SemiConfig::default(),
            parallel,
        );
    }

    #[test]
    fn semi_join_global_dmax_matches_serial(case in arb_case()) {
        let (config, parallel) = case_config(&case);
        check_semi_equivalence(
            &case.a,
            &case.b,
            case.fanout,
            config,
            SemiConfig { filter: SemiFilter::Inside2, dmax: DmaxStrategy::GlobalAll },
            parallel,
        );
    }
}

// ----------------------------------------------------------- deterministic

fn uniform(n: usize, seed: u64) -> Vec<Point<2>> {
    sdj_datagen::uniform_points(n, &sdj_datagen::unit_box(), seed)
}

#[test]
fn every_thread_count_matches_on_fixed_data() {
    let a = uniform(300, 11);
    let b = uniform(400, 12);
    for threads in [1, 2, 4, 8] {
        let parallel = ParallelConfig {
            threads,
            frontier_factor: 8,
            channel_capacity: 16,
        };
        check_join_equivalence(&a, &b, 8, JoinConfig::default(), parallel);
        check_semi_equivalence(
            &a,
            &b,
            8,
            JoinConfig::default(),
            SemiConfig::default(),
            parallel,
        );
    }
}

#[test]
fn range_restriction_matches_on_fixed_data() {
    let a = uniform(250, 21);
    let b = uniform(250, 22);
    let config = JoinConfig::default().with_range(0.02, 0.3);
    for threads in [2, 4] {
        check_join_equivalence(&a, &b, 8, config, ParallelConfig::with_threads(threads));
    }
}

#[test]
fn descending_join_matches_on_fixed_data() {
    let a = uniform(120, 31);
    let b = uniform(150, 32);
    let config = JoinConfig {
        order: ResultOrder::Descending,
        ..JoinConfig::default()
    };
    check_join_equivalence(&a, &b, 6, config, ParallelConfig::with_threads(4));
}

/// Uniform random points make exact distance ties measure-zero, so a
/// `max_pairs` run must match the serial prefix exactly, element by element.
#[test]
fn max_pairs_matches_serial_prefix() {
    let a = uniform(300, 41);
    let b = uniform(300, 42);
    let t1 = tree(&a, 8);
    let t2 = tree(&b, 8);
    for k in [1u64, 10, 100, 1000] {
        let config = JoinConfig::default().with_max_pairs(k);
        let serial: Vec<_> = DistanceJoin::new(&t1, &t2, config).collect();
        let run =
            ParallelDistanceJoin::new(&t1, &t2, config, ParallelConfig::with_threads(4)).collect();
        assert_eq!(run.error, None);
        let got: Vec<_> = run.value.iter().map(key).collect();
        let want: Vec<_> = serial.iter().map(key).collect();
        assert_eq!(got, want, "K={k}");
    }
}

/// Dropping the stream early cancels the workers instead of deadlocking on
/// their bounded channels.
#[test]
fn early_stop_cancels_workers() {
    let a = uniform(400, 51);
    let b = uniform(400, 52);
    let t1 = tree(&a, 8);
    let t2 = tree(&b, 8);
    let parallel = ParallelConfig {
        threads: 4,
        frontier_factor: 4,
        channel_capacity: 2,
    };
    let run = ParallelDistanceJoin::new(&t1, &t2, JoinConfig::default(), parallel)
        .run(|stream| stream.take(25).collect::<Vec<_>>());
    assert_eq!(run.error, None);
    assert_eq!(run.value.len(), 25);
    let serial: Vec<_> = DistanceJoin::new(&t1, &t2, JoinConfig::default())
        .take(25)
        .collect();
    // Uniform data: no ties, so even the prefix is bitwise identical.
    assert_eq!(
        run.value.iter().map(key).collect::<Vec<_>>(),
        serial.iter().map(key).collect::<Vec<_>>()
    );
}

/// A frontier that exhausts during partitioning (tiny inputs) must still
/// produce the complete result with no workers.
#[test]
fn tiny_inputs_exhaust_in_the_frontier() {
    let a = uniform(3, 61);
    let b = uniform(2, 62);
    let t1 = tree(&a, 4);
    let t2 = tree(&b, 4);
    let parallel = ParallelConfig {
        threads: 8,
        frontier_factor: 1000,
        channel_capacity: 4,
    };
    let run = ParallelDistanceJoin::new(&t1, &t2, JoinConfig::default(), parallel).collect();
    assert_eq!(run.error, None);
    assert_eq!(run.workers_spawned, 0, "frontier finished the whole join");
    assert_eq!(run.value.len(), 6);
    let serial: Vec<_> = DistanceJoin::new(&t1, &t2, JoinConfig::default()).collect();
    assert_eq!(
        run.value.iter().map(key).collect::<Vec<_>>(),
        serial.iter().map(key).collect::<Vec<_>>()
    );
}

fn sharded_tree(points: &[Point<2>], fanout: usize, shards: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig {
        buffer_shards: shards,
        ..RTreeConfig::small(fanout)
    });
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

/// Buffer-pool sharding is a pure concurrency knob: every shard count must
/// produce the bit-identical join and semi-join stream at every thread
/// count. (Uniform data has no exact distance ties, so ordered bitwise
/// comparison is the right check.)
#[test]
fn shard_counts_are_stream_invisible() {
    let a = uniform(300, 81);
    let b = uniform(350, 82);
    let base1 = tree(&a, 8);
    let base2 = tree(&b, 8);
    let want_join: Vec<_> = DistanceJoin::new(&base1, &base2, JoinConfig::default())
        .map(|r| key(&r))
        .collect();
    let want_semi: Vec<_> =
        DistanceJoin::semi(&base1, &base2, JoinConfig::default(), SemiConfig::default())
            .map(|r| key(&r))
            .collect();
    for shards in [1usize, 2, 4] {
        let t1 = sharded_tree(&a, 8, shards);
        let t2 = sharded_tree(&b, 8, shards);
        let serial: Vec<_> = DistanceJoin::new(&t1, &t2, JoinConfig::default())
            .map(|r| key(&r))
            .collect();
        assert_eq!(serial, want_join, "serial join drifted at shards={shards}");
        for threads in [1usize, 4] {
            let parallel = ParallelConfig {
                threads,
                frontier_factor: 8,
                channel_capacity: 16,
            };
            let run =
                ParallelDistanceJoin::new(&t1, &t2, JoinConfig::default(), parallel).collect();
            assert_eq!(run.error, None);
            assert_eq!(
                run.value.iter().map(key).collect::<Vec<_>>(),
                want_join,
                "join stream drifted at shards={shards} threads={threads}"
            );
            let run = ParallelDistanceJoin::semi(
                &t1,
                &t2,
                JoinConfig::default(),
                SemiConfig::default(),
                parallel,
            )
            .collect();
            assert_eq!(run.error, None);
            assert_eq!(
                run.value.iter().map(key).collect::<Vec<_>>(),
                want_semi,
                "semi stream drifted at shards={shards} threads={threads}"
            );
        }
    }
}

/// Queue-driven prefetch must never change the result stream. With an
/// eviction-free buffer its I/O accounting obeys an exact conservation law:
/// every demand miss it removes reappears as a prefetch-satisfied hit
/// (`misses_on + prefetch_hits == misses_off`), so the paper's node-I/O
/// measure stays reconstructable with prefetch enabled.
#[test]
fn prefetch_is_stream_invisible_and_conserves_io() {
    let a = uniform(300, 91);
    let b = uniform(350, 92);
    let roomy_tree = |points: &[Point<2>], shards: usize| {
        let mut t = tree(points, 8);
        // Fresh cold pool, sized so the join never evicts: the conservation
        // law below is exact only without eviction interference.
        t.rebuild_buffer(4096, shards).unwrap();
        t
    };
    let run_with = |depth: usize, shards: usize| {
        let t1 = roomy_tree(&a, shards);
        let t2 = roomy_tree(&b, shards);
        let config = JoinConfig::default().with_prefetch(depth);
        let mut join = DistanceJoin::new(&t1, &t2, config);
        let stream: Vec<_> = join.by_ref().map(|r| key(&r)).collect();
        let stats = join.stats();
        drop(join);
        let pool = |t: &RTree<2>| t.io_stats();
        let (s1, s2) = (pool(&t1), pool(&t2));
        assert_eq!(
            s1.evictions + s2.evictions,
            0,
            "buffer sized to avoid evictions"
        );
        (
            stream,
            stats,
            s1.misses + s2.misses,
            s1.prefetch_reads + s2.prefetch_reads,
            s1.prefetch_hits + s2.prefetch_hits,
        )
    };
    for shards in [1usize, 4] {
        let (off_stream, off_stats, off_misses, off_reads, off_hits) = run_with(0, shards);
        let (on_stream, on_stats, on_misses, on_reads, on_hits) = run_with(8, shards);
        assert_eq!(on_stream, off_stream, "prefetch changed the stream");
        assert_eq!(off_reads, 0, "depth 0 must issue no prefetch reads");
        assert_eq!(off_hits, 0);
        assert_eq!(off_stats.prefetch_hints, 0);
        assert!(
            on_stats.prefetch_hints > 0,
            "depth 8 should have issued hints"
        );
        assert!(on_reads > 0, "hints should have prefetched real pages");
        assert!(on_hits > 0, "some prefetched pages should satisfy demand");
        assert_eq!(
            on_misses + on_hits,
            off_misses,
            "I/O conservation broke at shards={shards}"
        );
        assert_eq!(on_stats.pairs_reported, off_stats.pairs_reported);
    }
}

/// The compact flat 4-ary queue layout is a pure representation change:
/// every engine (serial, parallel at several thread counts) and every queue
/// backend (memory, hybrid with spilling) must produce the bit-identical
/// result stream under `QueueLayout::FlatDary` that it produces under the
/// default pairing layout.
#[test]
fn flat_layout_is_stream_invisible_across_engines_and_backends() {
    let a = uniform(300, 101);
    let b = uniform(350, 102);
    let t1 = tree(&a, 8);
    let t2 = tree(&b, 8);
    let backends: [QueueBackend; 2] = [
        QueueBackend::Memory,
        // A small D_T increment forces real list-tier and spill traffic.
        QueueBackend::Hybrid(sdj_pqueue::HybridConfig {
            dt: 0.05,
            page_size: 256,
            buffer_frames: 2,
            ..sdj_pqueue::HybridConfig::default()
        }),
    ];
    for backend in backends {
        let config = |layout: QueueLayout| JoinConfig {
            queue: backend,
            ..JoinConfig::default().with_layout(layout)
        };
        let want: Vec<_> = DistanceJoin::new(&t1, &t2, config(QueueLayout::Pairing))
            .map(|r| key(&r))
            .collect();
        let serial_flat: Vec<_> = DistanceJoin::new(&t1, &t2, config(QueueLayout::FlatDary))
            .map(|r| key(&r))
            .collect();
        assert_eq!(serial_flat, want, "serial stream drifted under flat layout");
        for threads in [1usize, 4] {
            let run = ParallelDistanceJoin::new(
                &t1,
                &t2,
                config(QueueLayout::FlatDary),
                ParallelConfig {
                    threads,
                    frontier_factor: 8,
                    channel_capacity: 16,
                },
            )
            .collect();
            assert_eq!(run.error, None);
            assert_eq!(
                run.value.iter().map(key).collect::<Vec<_>>(),
                want,
                "parallel flat-layout stream drifted at threads={threads}"
            );
            assert!(
                run.stats.queue_bytes_peak > 0,
                "flat layout must report queue bytes"
            );
        }
        let semi_want: Vec<_> = DistanceJoin::semi(
            &t1,
            &t2,
            config(QueueLayout::Pairing),
            SemiConfig::default(),
        )
        .map(|r| key(&r))
        .collect();
        let semi_flat: Vec<_> = DistanceJoin::semi(
            &t1,
            &t2,
            config(QueueLayout::FlatDary),
            SemiConfig::default(),
        )
        .map(|r| key(&r))
        .collect();
        assert_eq!(semi_flat, semi_want, "semi-join drifted under flat layout");
    }
}

/// Merged statistics keep enqueue/dequeue symmetry: the partitioner counts
/// shard pairs once and workers do not recount them.
#[test]
fn merged_stats_keep_queue_symmetry() {
    let a = uniform(300, 71);
    let b = uniform(300, 72);
    let t1 = tree(&a, 8);
    let t2 = tree(&b, 8);
    let run = ParallelDistanceJoin::new(
        &t1,
        &t2,
        JoinConfig::default(),
        ParallelConfig {
            threads: 4,
            frontier_factor: 16,
            channel_capacity: 64,
        },
    )
    .collect();
    assert_eq!(run.error, None);
    assert_eq!(run.stats.pairs_reported, run.value.len() as u64);
    assert!(
        run.stats.pairs_dequeued <= run.stats.pairs_enqueued,
        "dequeues ({}) cannot exceed enqueues ({})",
        run.stats.pairs_dequeued,
        run.stats.pairs_enqueued
    );
}
