//! Parallel driver for the bulk partition/plane-sweep join, plus the
//! planned entry point that lets the cost model pick the execution path.
//!
//! The bulk join's cells share nothing (see `sdj_core::bulk`), so the
//! parallel driver is the simplest possible worker pool: a shared atomic
//! cursor over the active-cell list, one scoped thread per worker, each
//! sweeping cells into its own [`CellScratch`] and per-cell output runs.
//! Per-cell runs are deterministic, and the driver reassembles them in cell
//! order (unordered mode) or k-way merges the sorted runs (ordered mode),
//! so the output is **independent of the worker count and of scheduling** —
//! the thread-count invariance the executor tests pin.
//!
//! Results are handed to the consumer through the same [`JoinStream`]
//! interface as the incremental executor's merge, as a fully materialised
//! prefix: the bulk path has no streaming phase, which is exactly the
//! trade-off the planner weighs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sdj_core::bulk::{BulkConfig, BulkDistanceJoin, BulkHit, BulkStats, CellScratch, CellTally};
use sdj_core::plan::{plan_for_trees, Plan, PlanChoice};
use sdj_core::{
    AdaptiveConfig, AdaptiveDistanceJoin, AdaptiveOutcome, JoinConfig, JoinStats, ReplanInfo,
    ResultOrder, ResultPair, SpatialIndex,
};
use sdj_obs::{Event, ObsContext, Phase, PlanPath, SpanTimer};
use sdj_storage::StorageError;

use crate::{JoinStream, ParallelConfig, ParallelDistanceJoin, RunOutput};

/// What a finished bulk run hands back alongside the consumer's value.
#[derive(Debug)]
pub struct BulkRunOutput<R> {
    /// The value returned by the stream consumer.
    pub value: R,
    /// Counters of the harvest pass plus every cell sweep.
    pub stats: JoinStats,
    /// Bulk-path counters (cells, sweeps, dedup suppressions, replicas).
    pub bulk: BulkStats,
    /// Storage error from the harvest pass, if any (sweeping itself does no
    /// I/O; a harvest error yields an empty stream carrying the error).
    pub error: Option<StorageError>,
    /// Worker threads spawned for the sweep phase.
    pub workers_spawned: usize,
}

/// Builder for a parallel bulk distance join over two indexes.
///
/// The trees are read only while the run *builds* its partition (the serial
/// harvest pass); the sweep phase touches no index, so — unlike the
/// incremental executor — the indexes need not be `Sync`.
pub struct ParallelBulkJoin<'a, const D: usize, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    tree1: &'a I1,
    tree2: &'a I2,
    config: JoinConfig,
    bulk_config: BulkConfig,
    parallel: ParallelConfig,
    obs: Option<ObsContext>,
}

impl<'a, const D: usize, I1, I2> ParallelBulkJoin<'a, D, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    /// Bulk join with default grid tuning.
    #[must_use]
    pub fn new(tree1: &'a I1, tree2: &'a I2, config: JoinConfig, parallel: ParallelConfig) -> Self {
        Self {
            tree1,
            tree2,
            config,
            bulk_config: BulkConfig::default(),
            parallel,
            obs: None,
        }
    }

    /// Overrides the grid tuning.
    #[must_use]
    pub fn with_bulk_config(mut self, bulk_config: BulkConfig) -> Self {
        self.bulk_config = bulk_config;
        self
    }

    /// Instruments the run: `bulk.*` registry counters, sampled
    /// `ResultReported` events on the emitted stream, and one
    /// `WorkerFinished` per sweep worker.
    #[must_use]
    pub fn with_obs(mut self, ctx: ObsContext) -> Self {
        self.obs = Some(ctx);
        self
    }

    /// Runs the join in distance order (ascending or descending per the
    /// config): per-cell sorted runs, k-way merged, truncated to
    /// `max_pairs`. The stream lives only for the duration of the call.
    pub fn run<R>(self, consume: impl FnOnce(&mut JoinStream) -> R) -> BulkRunOutput<R> {
        self.execute(true, consume)
    }

    /// Runs the join in within-range mode: every qualifying pair, in
    /// deterministic cell order rather than distance order (cheaper — no
    /// per-cell sort, no merge). Falls back to the ordered run when
    /// `max_pairs` is set, where "first k" is only defined by distance.
    pub fn run_unordered<R>(self, consume: impl FnOnce(&mut JoinStream) -> R) -> BulkRunOutput<R> {
        let ordered = self.config.max_pairs.is_some();
        self.execute(ordered, consume)
    }

    /// Runs the ordered join and collects every result.
    pub fn collect(self) -> BulkRunOutput<Vec<ResultPair>> {
        self.run(|stream| stream.collect())
    }

    fn execute<R>(
        self,
        ordered: bool,
        consume: impl FnOnce(&mut JoinStream) -> R,
    ) -> BulkRunOutput<R> {
        let ascending = matches!(self.config.order, ResultOrder::Ascending);
        let mut join = match BulkDistanceJoin::with_bulk_config_obs(
            self.tree1,
            self.tree2,
            self.config,
            self.bulk_config,
            self.obs.as_ref(),
        ) {
            Ok(join) => join,
            Err(e) => {
                // Same contract as the incremental executor's
                // partitioning error: an empty stream carrying the error.
                let mut stream =
                    JoinStream::new(Vec::new(), Vec::new(), ascending, None, None, None);
                stream.error = Some(e.clone());
                let value = consume(&mut stream);
                return BulkRunOutput {
                    value,
                    stats: JoinStats::default(),
                    bulk: BulkStats::default(),
                    error: Some(e),
                    workers_spawned: 0,
                };
            }
        };

        let (results, workers) = sweep_pool(&mut join, ordered, &self.parallel, self.obs.as_ref());

        let stats = join.stats();
        let bulk = join.bulk_stats();
        let mut stream = JoinStream::new(results, Vec::new(), ascending, None, None, None);
        let value = consume(&mut stream);
        BulkRunOutput {
            value,
            stats,
            bulk,
            error: None,
            workers_spawned: workers,
        }
    }
}

/// The shared cell-sweep worker pool: sweeps a built [`BulkDistanceJoin`]'s
/// active cells with a shared atomic cursor and scoped threads, reassembles
/// per-cell runs in cell order (or k-way merges them when `ordered`), and
/// finishes the hits into results. Used by [`ParallelBulkJoin`] for
/// tree-harvested runs and by [`run_adaptive`] for frontier-seeded ones —
/// output is identical for any worker count either way.
fn sweep_pool<const D: usize>(
    join: &mut BulkDistanceJoin<D>,
    ordered: bool,
    parallel: &ParallelConfig,
    obs: Option<&ObsContext>,
) -> (Vec<ResultPair>, usize) {
    let ascending = matches!(join.config().order, ResultOrder::Ascending);
    let max_pairs = join.config().max_pairs;
    let active = join.active_cells().to_vec();
    let workers = parallel.threads.max(1).min(active.len().max(1));
    let cursor = AtomicUsize::new(0);
    // Per-cell output runs, scattered back into cell order after the
    // pool joins — output is identical for any worker count.
    let runs: Mutex<Vec<Vec<BulkHit>>> = Mutex::new(vec![Vec::new(); active.len()]);
    let tallies: Mutex<Vec<CellTally>> = Mutex::new(Vec::with_capacity(active.len()));

    std::thread::scope(|scope| {
        for w in 0..workers {
            let join = &*join;
            let active = &active;
            let cursor = &cursor;
            let runs = &runs;
            let tallies = &tallies;
            scope.spawn(move || {
                // Per-worker scratch carries its own span timer; cell
                // sweeps record Sweep/Kernel/Dedup, run sorting Merge.
                let mut scratch = obs.map_or_else(CellScratch::default, CellScratch::for_context);
                let mut sort_spans = obs.and_then(SpanTimer::from_context);
                let mut local: Vec<(usize, Vec<BulkHit>)> = Vec::new();
                let mut local_tallies: Vec<CellTally> = Vec::new();
                let mut emitted: u64 = 0;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&cell) = active.get(i) else { break };
                    let mut run = Vec::new();
                    let tally = join.sweep_cell(cell as usize, &mut scratch, &mut run);
                    emitted += tally.emitted;
                    if ordered && !run.is_empty() {
                        if let Some(t) = &mut sort_spans {
                            t.enter(Phase::Merge);
                        }
                        sdj_core::bulk::sort_run(&mut run, ascending);
                        if let Some(t) = &mut sort_spans {
                            t.exit(Phase::Merge);
                        }
                    }
                    local.push((i, run));
                    local_tallies.push(tally);
                }
                if let Some(ctx) = obs {
                    ctx.sink.emit(&Event::WorkerFinished {
                        worker: u32::try_from(w + 1).unwrap_or(u32::MAX),
                        results: emitted,
                    });
                }
                let mut runs = runs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for (i, run) in local {
                    runs[i] = run;
                }
                tallies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local_tallies);
            });
        }
    });

    for tally in tallies
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        join.absorb_tally(&tally);
    }
    let runs = runs
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut merge_spans = obs.and_then(SpanTimer::from_context);
    if let Some(t) = &mut merge_spans {
        t.enter(Phase::Merge);
    }
    let hits = if ordered {
        sdj_core::bulk::merge_sorted_runs(runs, ascending, max_pairs)
    } else {
        runs.into_iter().flatten().collect()
    };
    if let Some(t) = &mut merge_spans {
        t.exit(Phase::Merge);
    }
    let results = join.finish(hits);

    let bulk = join.bulk_stats();
    if let Some(ctx) = obs {
        ctx.registry.counter("bulk.cells").add(bulk.cells);
        ctx.registry
            .counter("bulk.cell_pairs_swept")
            .add(bulk.cell_pairs_swept);
        ctx.registry
            .counter("bulk.pairs_deduped")
            .add(bulk.pairs_deduped);
        for (rank, r) in results.iter().enumerate() {
            let rank = rank as u64 + 1;
            if rank.is_multiple_of(ctx.result_sample_every) {
                ctx.sink.emit(&Event::ResultReported {
                    rank,
                    dist: r.distance,
                });
            }
        }
    }
    (results, workers)
}

/// Execution-path override for [`run_planned`]: `None` lets the cost model
/// decide, `Some(choice)` forces a path (the `--force-plan` flag).
pub type ForcedPlan = Option<PlanChoice>;

/// What a planned run hands back: the collected results plus the planner's
/// verdict and the executed path, so reports can expose `plan.choice`.
#[derive(Debug)]
pub struct PlannedRun {
    /// The full ordered result set.
    pub results: Vec<ResultPair>,
    /// Merged engine counters of whichever path executed.
    pub stats: JoinStats,
    /// Bulk-path counters — `None` when the incremental path executed.
    pub bulk: Option<BulkStats>,
    /// The cost model's verdict (estimates included), regardless of forcing.
    pub plan: Plan,
    /// The path that actually executed (differs from `plan.choice` only
    /// under a force).
    pub executed: PlanChoice,
    /// True when an override forced the path.
    pub forced: bool,
    /// The adaptive path's mid-run switch record — `None` for the static
    /// paths, and for adaptive runs that never fired.
    pub replanned: Option<ReplanInfo>,
    /// First storage error, if any.
    pub error: Option<StorageError>,
    /// Worker threads spawned by the executed path.
    pub workers_spawned: usize,
}

/// Plans and runs a distance join: consults the cost model (or the
/// `force` override), emits the `PlanChosen` event and `plan.*` registry
/// instruments, then executes the chosen path in parallel and collects the
/// ordered results.
///
/// The adaptive knobs are an explicit per-call parameter, not process
/// state: two queries in the same process may run with different strides
/// or forced handoffs. Entry points that want the `SDJ_ADAPTIVE_*`
/// environment defaults pass [`AdaptiveConfig::from_env()`] at the app
/// boundary.
#[allow(clippy::too_many_arguments)] // one knob struct per execution path, by design
pub fn run_planned<const D: usize, I1, I2>(
    tree1: &I1,
    tree2: &I2,
    config: JoinConfig,
    parallel: ParallelConfig,
    bulk_config: BulkConfig,
    adaptive: AdaptiveConfig,
    force: ForcedPlan,
    obs: Option<ObsContext>,
) -> PlannedRun
where
    I1: SpatialIndex<D> + Sync,
    I2: SpatialIndex<D> + Sync,
{
    let plan = plan_for_trees(tree1, tree2, &config);
    let executed = force.unwrap_or(plan.choice);
    let forced = force.is_some();
    if let Some(ctx) = &obs {
        let path = match executed {
            PlanChoice::Incremental => PlanPath::Incremental,
            PlanChoice::Bulk => PlanPath::Bulk,
            PlanChoice::Adaptive => PlanPath::Adaptive,
        };
        ctx.sink.emit(&Event::PlanChosen {
            path,
            forced,
            est_incremental: plan.est_incremental,
            est_bulk: plan.est_bulk,
        });
        // `plan.choice` gauge: 0 = incremental, 1 = bulk, 2 = adaptive;
        // the per-path counters make the choice visible in counter-only
        // views.
        ctx.registry.gauge("plan.choice").set(match executed {
            PlanChoice::Incremental => 0,
            PlanChoice::Bulk => 1,
            PlanChoice::Adaptive => 2,
        });
        ctx.registry
            .counter(match executed {
                PlanChoice::Incremental => "plan.incremental",
                PlanChoice::Bulk => "plan.bulk",
                PlanChoice::Adaptive => "plan.adaptive",
            })
            .inc();
        if forced {
            ctx.registry.counter("plan.forced").inc();
        }
        // Cost-model estimates as gauges, so the report's calibration
        // section can compare predictions against observed phase times.
        let clamp = |v: f64| {
            if v.is_finite() {
                v.min(i64::MAX as f64).round() as i64
            } else {
                i64::MAX
            }
        };
        ctx.registry
            .gauge("plan.est_incremental")
            .set(clamp(plan.est_incremental));
        ctx.registry
            .gauge("plan.est_bulk")
            .set(clamp(plan.est_bulk));
        ctx.registry
            .gauge("plan.est_pairs")
            .set(clamp(plan.est_pairs));
    }
    match executed {
        PlanChoice::Incremental => {
            let mut join = ParallelDistanceJoin::new(tree1, tree2, config, parallel);
            if let Some(ctx) = &obs {
                join = join.with_obs(ctx.clone());
            }
            let RunOutput {
                value,
                stats,
                error,
                workers_spawned,
            } = join.collect();
            PlannedRun {
                results: value,
                stats,
                bulk: None,
                plan,
                executed,
                forced,
                replanned: None,
                error,
                workers_spawned,
            }
        }
        PlanChoice::Bulk => {
            let mut join =
                ParallelBulkJoin::new(tree1, tree2, config, parallel).with_bulk_config(bulk_config);
            if let Some(ctx) = &obs {
                join = join.with_obs(ctx.clone());
            }
            let out = join.collect();
            PlannedRun {
                results: out.value,
                stats: out.stats,
                bulk: Some(out.bulk),
                plan,
                executed,
                forced,
                replanned: None,
                error: out.error,
                workers_spawned: out.workers_spawned,
            }
        }
        PlanChoice::Adaptive => {
            let out = run_adaptive(tree1, tree2, config, parallel, bulk_config, adaptive, obs);
            PlannedRun {
                plan,
                forced,
                ..out
            }
        }
    }
}

/// Runs the adaptive path: the incremental engine with checkpointed
/// re-costing, and — when a handoff fires — the frontier-seeded bulk
/// remainder swept by the shared worker pool. The merged ordered stream is
/// collected; `replanned` records the switch coordinate when one fired.
///
/// The returned `plan`/`executed` fields are set to the adaptive path
/// itself; [`run_planned`] overwrites `plan` with the static verdict when
/// dispatching here.
pub fn run_adaptive<const D: usize, I1, I2>(
    tree1: &I1,
    tree2: &I2,
    config: JoinConfig,
    parallel: ParallelConfig,
    bulk_config: BulkConfig,
    adaptive: AdaptiveConfig,
    obs: Option<ObsContext>,
) -> PlannedRun
where
    I1: SpatialIndex<D> + Sync,
    I2: SpatialIndex<D> + Sync,
{
    let plan = plan_for_trees(tree1, tree2, &config);
    let mut join = AdaptiveDistanceJoin::with_configs(tree1, tree2, config, bulk_config, adaptive);
    if let Some(ctx) = &obs {
        join = join.with_obs(ctx);
    }
    match join.execute() {
        AdaptiveOutcome::Completed(run) => PlannedRun {
            results: run.results,
            stats: run.stats,
            bulk: None,
            plan,
            executed: PlanChoice::Adaptive,
            forced: false,
            replanned: run.replanned,
            error: run.error,
            workers_spawned: 0,
        },
        AdaptiveOutcome::Handoff(h) => {
            let mut bulk = h.bulk;
            let (tail, workers) = sweep_pool(&mut bulk, true, &parallel, obs.as_ref());
            let mut results = h.prefix;
            results.extend(tail);
            let mut stats = h.inc_stats;
            stats.merge(&bulk.stats());
            PlannedRun {
                results,
                stats,
                bulk: Some(bulk.bulk_stats()),
                plan,
                executed: PlanChoice::Adaptive,
                forced: false,
                replanned: Some(h.info),
                error: None,
                workers_spawned: workers,
            }
        }
    }
}
