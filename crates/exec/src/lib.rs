//! Parallel distance-join executor.
//!
//! Wraps the serial incremental engine of `sdj-core` without changing its
//! semantics. A parallel run has three stages:
//!
//! 1. **Frontier partitioning** (`DistanceJoin::into_frontier`): the serial
//!    engine runs until its priority queue holds at least
//!    `threads * frontier_factor` pairs. Results produced on the way are the
//!    globally closest (the queue's best key never improves as the run
//!    advances), so they stream out first, unchanged. The queue is then dealt
//!    round-robin into `threads` shards. Every queue pair subtends a set of
//!    object pairs disjoint from every other queue pair's — expansion
//!    replaces a pair with pairs over disjoint children — so the shards
//!    partition the remaining work.
//! 2. **Worker pool**: one scoped thread per non-empty shard resumes an
//!    independent serial engine over its shard (`DistanceJoin::resume`).
//!    Workers share a [`SharedDistanceBound`] — an `AtomicU64` over f64
//!    bits — seeded from the frontier's proven maximum distance *key*; each
//!    worker publishes its estimator's bound to it and prunes against the
//!    fleet-wide minimum. All workers run the same [`JoinConfig`], hence the
//!    same key domain (squared distances under the default Euclidean
//!    configuration), so published keys compare consistently without ever
//!    leaving the domain. A bound proven by one shard ("the K results still
//!    owed all lie within `d`") holds globally, because the merged result
//!    set dominates any single shard's.
//! 3. **Ordered merge** ([`JoinStream`]): per-worker result streams arrive
//!    on bounded channels, each individually distance-ordered. The merge
//!    holds one *watermark* element per live worker — a bound on everything
//!    that worker will ever emit — and re-emits the best watermark, blocking
//!    on workers whose watermark is missing. For semi-joins it additionally
//!    drops repeat first objects: shards are disjoint in *pairs*, not in
//!    first objects, and the first emission in merge order is the nearest
//!    partner, exactly the serial answer.
//!
//! The output is pairwise identical to the serial engine's: the same result
//! multiset, in a valid distance order. Only the relative order of
//! equal-distance results may differ from a serial run's tie order.

mod bulk;

pub use bulk::{
    run_adaptive, run_planned, BulkRunOutput, ForcedPlan, ParallelBulkJoin, PlannedRun,
};

use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};

use sdj_core::{
    DistanceJoin, DistanceOracle, JoinConfig, JoinFrontier, JoinObs, JoinStats, MbrOracle, Pair,
    PairKey, ResultOrder, ResultPair, SeenSet, SemiConfig, SharedDistanceBound, SpatialIndex,
};
use sdj_geom::Rect;
use sdj_obs::{Event, EventSink, ObsContext, Phase, SpanTimer};
use sdj_storage::{FaultConfig, FaultInjector, StorageError};

// The executor shares `&RTree` across scoped threads; this fails to compile
// if the default index ever regresses to a non-Sync interior (e.g. a RefCell
// buffer pool).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<sdj_rtree::RTree<2>>();
};

/// One shard of a partitioned queue, as handed to `DistanceJoin::resume`.
type Shard<const D: usize> = Vec<(PairKey, Pair<D>)>;

/// Tuning knobs of a parallel run.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of queue shards (and worker threads: one per non-empty shard).
    pub threads: usize,
    /// Frontier target per shard: partitioning runs until the queue holds
    /// `threads * frontier_factor` pairs.
    pub frontier_factor: usize,
    /// Bound of each worker's result channel; a worker stalls when the
    /// merge falls this far behind it.
    pub channel_capacity: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, usize::from),
            frontier_factor: 64,
            channel_capacity: 256,
        }
    }
}

impl ParallelConfig {
    /// A configuration with `threads` workers and default tuning.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// What a finished parallel run hands back alongside the consumer's value.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// The value returned by the stream consumer.
    pub value: R,
    /// Merged counters: the partitioning run plus every worker (counts add,
    /// peaks take the maximum).
    pub stats: JoinStats,
    /// First I/O error hit by the partitioner or any worker, if any; the
    /// stream ends early when one occurs.
    pub error: Option<StorageError>,
    /// Worker threads actually spawned (empty shards are skipped; an
    /// exhausted frontier or a partitioning error spawns none).
    pub workers_spawned: usize,
}

/// Builder for a parallel distance join or semi-join over two indexes.
///
/// Mirrors the serial constructors: [`ParallelDistanceJoin::new`] /
/// [`ParallelDistanceJoin::semi`] for leaf-stored objects, the
/// `*_with_oracle` variants for external object storage.
pub struct ParallelDistanceJoin<'a, const D: usize, O, I1, I2>
where
    O: DistanceOracle<D>,
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    tree1: &'a I1,
    tree2: &'a I2,
    oracle: O,
    config: JoinConfig,
    semi: Option<SemiConfig>,
    window1: Option<Rect<D>>,
    window2: Option<Rect<D>>,
    parallel: ParallelConfig,
    obs: Option<ObsContext>,
    queue_fault: Option<(FaultConfig, u32)>,
}

impl<'a, const D: usize, I1, I2> ParallelDistanceJoin<'a, D, MbrOracle, I1, I2>
where
    I1: SpatialIndex<D> + Sync,
    I2: SpatialIndex<D> + Sync,
{
    /// Parallel distance join over indexes whose leaves store the objects.
    #[must_use]
    pub fn new(tree1: &'a I1, tree2: &'a I2, config: JoinConfig, parallel: ParallelConfig) -> Self {
        Self::with_oracle(tree1, tree2, MbrOracle, config, parallel)
    }

    /// Parallel distance semi-join.
    #[must_use]
    pub fn semi(
        tree1: &'a I1,
        tree2: &'a I2,
        config: JoinConfig,
        semi: SemiConfig,
        parallel: ParallelConfig,
    ) -> Self {
        Self::semi_with_oracle(tree1, tree2, MbrOracle, config, semi, parallel)
    }
}

impl<'a, const D: usize, O, I1, I2> ParallelDistanceJoin<'a, D, O, I1, I2>
where
    O: DistanceOracle<D> + Clone + Send,
    I1: SpatialIndex<D> + Sync,
    I2: SpatialIndex<D> + Sync,
{
    /// Parallel join with exact distances supplied by `oracle` (each worker
    /// receives a clone).
    #[must_use]
    pub fn with_oracle(
        tree1: &'a I1,
        tree2: &'a I2,
        oracle: O,
        config: JoinConfig,
        parallel: ParallelConfig,
    ) -> Self {
        Self {
            tree1,
            tree2,
            oracle,
            config,
            semi: None,
            window1: None,
            window2: None,
            parallel,
            obs: None,
            queue_fault: None,
        }
    }

    /// Parallel semi-join with an explicit oracle.
    #[must_use]
    pub fn semi_with_oracle(
        tree1: &'a I1,
        tree2: &'a I2,
        oracle: O,
        config: JoinConfig,
        semi: SemiConfig,
        parallel: ParallelConfig,
    ) -> Self {
        Self {
            semi: Some(semi),
            ..Self::with_oracle(tree1, tree2, oracle, config, parallel)
        }
    }

    /// Restricts both sides to spatial windows, as in the serial
    /// `DistanceJoin::with_windows` (§2.2.5).
    #[must_use]
    pub fn with_windows(mut self, window1: Option<Rect<D>>, window2: Option<Rect<D>>) -> Self {
        self.window1 = window1;
        self.window2 = window2;
        self
    }

    /// Instruments the run. The partitioner reports as worker 0 and emits
    /// `ResultReported` for the frontier prefix; spawned workers report as
    /// workers 1.. with per-shard result events suppressed (their local ranks
    /// would interleave) and announce `WorkerFinished` when their stream
    /// ends. Globally ranked `ResultReported` events for the merged portion
    /// are emitted by the [`JoinStream`] itself.
    #[must_use]
    pub fn with_obs(mut self, ctx: ObsContext) -> Self {
        self.obs = Some(ctx);
        self
    }

    /// Installs a fault schedule on every engine's hybrid-queue spill pager
    /// (chaos testing). The partitioner and each worker own independent
    /// queues, so each gets its own injector built from `config`; `retries`
    /// bounds the buffer pools' transient-fault retries. No-op under the
    /// memory queue backend.
    #[must_use]
    pub fn with_queue_fault_config(mut self, config: FaultConfig, retries: u32) -> Self {
        self.queue_fault = Some((config, retries));
        self
    }

    /// Runs the join, handing the globally ordered result stream to
    /// `consume`. The stream (and the worker pool behind it) lives only for
    /// the duration of the call — scoped worker threads must join before
    /// this function returns, which is why the consumer is a closure rather
    /// than a returned iterator. Dropping the stream early (e.g. after
    /// `take(k)`) cancels the remaining work.
    pub fn run<R>(self, consume: impl FnOnce(&mut JoinStream) -> R) -> RunOutput<R> {
        let threads = self.parallel.threads.max(1);
        let frontier = self
            .build_serial(self.config, None, 0)
            .into_frontier(threads, self.parallel.frontier_factor);
        self.run_from_frontier(frontier, consume)
    }

    /// Runs the join and collects every result in order.
    pub fn collect(self) -> RunOutput<Vec<ResultPair>> {
        self.run(|stream| stream.collect())
    }

    /// Builds a serial engine sharing this builder's trees, oracle and
    /// windows: the partitioning run (`shard` = `None`) or a worker resumed
    /// from a shard. The returned lifetime may be shorter than `'a` so the
    /// engine can also borrow scope-local state (the shared bound).
    fn build_serial<'b>(
        &self,
        config: JoinConfig,
        shard: Option<(Shard<D>, Option<SeenSet>)>,
        worker: u32,
    ) -> DistanceJoin<'b, D, O, I1, I2>
    where
        'a: 'b,
    {
        let join = match shard {
            None => {
                if let Some(semi) = self.semi {
                    DistanceJoin::semi_with_oracle(
                        self.tree1,
                        self.tree2,
                        self.oracle.clone(),
                        config,
                        semi,
                    )
                } else {
                    DistanceJoin::with_oracle(self.tree1, self.tree2, self.oracle.clone(), config)
                }
            }
            Some((shard, seen)) => DistanceJoin::resume(
                self.tree1,
                self.tree2,
                self.oracle.clone(),
                config,
                self.semi,
                shard,
                seen,
            ),
        };
        let mut join = join.with_windows(self.window1, self.window2);
        if let Some((fault, retries)) = &self.queue_fault {
            join.set_queue_fault_injector(Some(Arc::new(FaultInjector::new(fault.clone()))));
            join.set_queue_retry_limit(*retries);
        }
        match &self.obs {
            Some(ctx) => {
                let mut handle = JoinObs::for_worker(ctx, worker);
                if worker > 0 {
                    handle = handle.suppress_result_events();
                }
                join.with_obs_handle(ctx, handle)
            }
            None => join,
        }
    }

    fn run_from_frontier<R>(
        self,
        mut frontier: JoinFrontier<D>,
        consume: impl FnOnce(&mut JoinStream) -> R,
    ) -> RunOutput<R> {
        let ascending = matches!(self.config.order, ResultOrder::Ascending);
        let frontier_error = frontier.error.take();
        let shards: Vec<Shard<D>> = if frontier_error.is_some() {
            Vec::new()
        } else {
            std::mem::take(&mut frontier.shards)
                .into_iter()
                .filter(|s| !s.is_empty())
                .collect()
        };
        let workers_spawned = shards.len();

        // Seed the cross-worker bound with everything the partitioner proved
        // (descending runs key on maximum distances, which bound nothing).
        let shared = SharedDistanceBound::new(if ascending {
            frontier.dmax_hint
        } else {
            f64::INFINITY
        });
        let mut worker_config = self.config;
        worker_config.max_pairs = frontier.remaining_pairs;

        let tallies: Mutex<Vec<(JoinStats, Option<StorageError>)>> =
            Mutex::new(Vec::with_capacity(workers_spawned));

        // Per-worker busy time (span between thread start and stream end);
        // `sdj-report` divides the sum by `wall * workers` for utilization.
        let busy_hist = self
            .obs
            .as_ref()
            .map(|ctx| ctx.registry.histogram("exec.worker_busy_ns"));

        let (value, mut stats) = std::thread::scope(|scope| {
            let mut receivers = Vec::with_capacity(workers_spawned);
            for (i, shard) in shards.into_iter().enumerate() {
                let (tx, rx) = std::sync::mpsc::sync_channel(self.parallel.channel_capacity.max(1));
                receivers.push(rx);
                let worker = u32::try_from(i + 1).unwrap_or(u32::MAX);
                let mut join = self
                    .build_serial(worker_config, Some((shard, frontier.seen.clone())), worker)
                    .with_shared_bound(&shared);
                let tallies = &tallies;
                let busy_hist = busy_hist.clone();
                scope.spawn(move || {
                    let busy_start = std::time::Instant::now();
                    let mut sent: u64 = 0;
                    for result in &mut join {
                        if tx.send(Ok(result)).is_err() {
                            break; // the consumer dropped the stream
                        }
                        sent += 1;
                    }
                    if let Some(h) = &busy_hist {
                        h.record(busy_start.elapsed().as_nanos() as f64);
                    }
                    if let Some(obs) = join.obs_mut() {
                        obs.finish(sent);
                    }
                    let err = join.take_error();
                    if let Some(e) = &err {
                        // The error is this stream's final message: the merge
                        // stops at it instead of treating the worker as
                        // cleanly exhausted (which would silently drop every
                        // result the worker still owed).
                        let _ = tx.send(Err(e.clone()));
                    }
                    let tally = (join.stats(), err);
                    tallies
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(tally);
                });
            }

            let prefix = std::mem::take(&mut frontier.prefix);
            let stream_obs = self.obs.as_ref().map(|ctx| StreamObs {
                sink: Arc::clone(&ctx.sink),
                result_sample_every: ctx.result_sample_every,
                rank: prefix.len() as u64,
                spans: SpanTimer::from_context(ctx),
            });
            let mut stream = JoinStream::new(
                prefix,
                receivers,
                ascending,
                self.semi.map(|_| frontier.seen.clone().unwrap_or_default()),
                frontier.remaining_pairs,
                stream_obs,
            );
            // A partitioning error truncates the stream to the prefix with
            // no workers behind it; expose it to the consumer the same way a
            // worker error is exposed.
            stream.error = frontier_error.clone();
            let value = consume(&mut stream);
            drop(stream); // close the receivers so stalled workers exit
            (value, frontier.stats)
        });

        let mut error = frontier_error;
        for (worker_stats, worker_error) in tallies
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            stats.merge(&worker_stats);
            if error.is_none() {
                error = worker_error;
            }
        }
        RunOutput {
            value,
            stats,
            error,
            workers_spawned,
        }
    }
}

/// One worker's incoming stream and its current watermark element.
struct WorkerStream {
    rx: Option<Receiver<Result<ResultPair, StorageError>>>,
    head: Option<ResultPair>,
}

impl WorkerStream {
    /// Ensures `head` holds the worker's next element, blocking on the
    /// channel if necessary; a disconnected channel finishes the stream.
    /// Returns the worker's error if its next message is one (the stream is
    /// finished either way — an error is always a worker's final message).
    fn fill(&mut self) -> Option<StorageError> {
        if self.head.is_none() {
            if let Some(rx) = &self.rx {
                match rx.recv() {
                    Ok(Ok(item)) => self.head = Some(item),
                    Ok(Err(e)) => {
                        self.rx = None;
                        return Some(e);
                    }
                    Err(_) => self.rx = None,
                }
            }
        }
        None
    }
}

/// Merged-stream observability: global ranks can only be assigned here,
/// after the watermark merge, so the stream itself emits `ResultReported`
/// (per-worker result events are suppressed).
struct StreamObs {
    sink: Arc<dyn EventSink>,
    result_sample_every: u64,
    /// Global rank of the last emitted result; starts at the prefix length,
    /// whose ranks worker 0 already reported.
    rank: u64,
    /// Phase-span timer for the watermark merge. Merge self-time includes
    /// blocking on worker channels — it measures what the consumer waits
    /// for, not CPU burned.
    spans: Option<SpanTimer>,
}

/// The globally ordered result stream of a parallel run: the frontier's
/// prefix first, then the k-way watermark merge of the worker streams.
pub struct JoinStream {
    prefix: std::vec::IntoIter<ResultPair>,
    workers: Vec<WorkerStream>,
    ascending: bool,
    /// Semi-join only: first objects already answered; repeats are dropped.
    seen: Option<SeenSet>,
    /// Results still allowed after the prefix (`max_pairs` runs).
    remaining: Option<u64>,
    obs: Option<StreamObs>,
    /// First worker error observed by the merge. Once set, the stream ends:
    /// everything emitted so far is a correct prefix of the fault-free
    /// stream (each emission was ≤ every live worker's watermark, including
    /// the erroring worker's last one), and emitting past the error point
    /// could skip results the dead worker still owed.
    error: Option<StorageError>,
}

impl JoinStream {
    fn new(
        prefix: Vec<ResultPair>,
        receivers: Vec<Receiver<Result<ResultPair, StorageError>>>,
        ascending: bool,
        seen: Option<SeenSet>,
        remaining: Option<u64>,
        obs: Option<StreamObs>,
    ) -> Self {
        Self {
            prefix: prefix.into_iter(),
            workers: receivers
                .into_iter()
                .map(|rx| WorkerStream {
                    rx: Some(rx),
                    head: None,
                })
                .collect(),
            ascending,
            seen,
            remaining,
            obs,
            error: None,
        }
    }

    /// The worker error that ended the stream, if any. The results already
    /// pulled from the stream remain a valid prefix of the fault-free
    /// output. (The same error is also reported in [`RunOutput::error`].)
    #[must_use]
    pub fn error(&self) -> Option<&StorageError> {
        self.error.as_ref()
    }

    /// Index of the worker whose watermark is globally next, if any stream
    /// is still live. Each worker's head bounds everything it will ever
    /// emit, so the best head is safe to emit now. Distance ties go to the
    /// lowest worker index, making the merge deterministic for a fixed
    /// shard layout.
    fn best_head(&mut self) -> Option<usize> {
        if self.error.is_some() {
            return None;
        }
        for w in &mut self.workers {
            if let Some(e) = w.fill() {
                self.error = Some(e);
                return None;
            }
        }
        let mut best: Option<usize> = None;
        for (i, w) in self.workers.iter().enumerate() {
            let Some(head) = &w.head else { continue };
            let better = match best {
                None => true,
                Some(b) => {
                    let incumbent = self.workers[b].head.as_ref().expect("best head is filled");
                    if self.ascending {
                        head.distance < incumbent.distance
                    } else {
                        head.distance > incumbent.distance
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }
}

impl Iterator for JoinStream {
    type Item = ResultPair;

    fn next(&mut self) -> Option<ResultPair> {
        // The prefix was produced before any shard work started and is
        // globally first; the workers' seen-set snapshot already excludes
        // semi-join repeats of it.
        if let Some(r) = self.prefix.next() {
            return Some(r);
        }
        if let Some(StreamObs { spans: Some(t), .. }) = &mut self.obs {
            t.enter(Phase::Merge);
        }
        let r = self.next_merged();
        if let Some(StreamObs { spans: Some(t), .. }) = &mut self.obs {
            t.exit(Phase::Merge);
        }
        r
    }
}

impl JoinStream {
    /// One element of the post-prefix watermark merge (see
    /// [`Iterator::next`]).
    fn next_merged(&mut self) -> Option<ResultPair> {
        loop {
            if self.remaining == Some(0) {
                return None;
            }
            let best = self.best_head()?;
            let r = self.workers[best].head.take().expect("best head is filled");
            if let Some(seen) = &mut self.seen {
                if !seen.insert(r.oid1.0) {
                    continue; // another shard already answered this object
                }
            }
            if let Some(rem) = &mut self.remaining {
                *rem -= 1;
            }
            if let Some(obs) = &mut self.obs {
                obs.rank += 1;
                if obs.rank.is_multiple_of(obs.result_sample_every) {
                    obs.sink.emit(&Event::ResultReported {
                        rank: obs.rank,
                        dist: r.distance,
                    });
                }
            }
            return Some(r);
        }
    }
}
