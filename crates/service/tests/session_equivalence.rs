//! The session service's correctness contract:
//!
//! * **Interleaving invariance** — N concurrent sessions over one shared
//!   buffer pool, driven by *any* fuzzed interleaving of `next_batch` /
//!   `pause` / `resume`, each produce a stream bit-identical (distance
//!   bits, oids, order) to the same query run solo on its own engine.
//!   Sessions share frames, never results.
//! * **Pause holds the frontier** — a paused session refuses pulls with a
//!   typed error and consumes nothing; resuming continues exactly where it
//!   stopped, because nothing was torn down.
//! * **Cancel is leak-free** — cancelling mid-stream drops the frontier,
//!   releases the slab refs with it, and leaves zero pinned frames in the
//!   shared pools; the results handed out before the cancel are a correct
//!   prefix of the solo stream. The admission slot returns when the handle
//!   drops.
//! * **Isolation** — one session exceeding its memory budget (or being
//!   cancelled) leaves its neighbours' streams untouched.

use proptest::prelude::*;
use sdj_core::bulk::BulkDistanceJoin;
use sdj_core::{
    AdaptiveConfig, AdaptiveDistanceJoin, DistanceJoin, JoinConfig, PlanChoice, QueueBackend,
};
use sdj_geom::Rect;
use sdj_pqueue::{HybridConfig, KeyScale};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};
use sdj_service::{drain_round_robin, JoinService, ServiceConfig, ServiceError, SessionConfig};

fn tree(rects: &[Rect<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, r) in rects.iter().enumerate() {
        t.insert(ObjectId(i as u64), *r).unwrap();
    }
    t
}

fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect<2>>> {
    prop::collection::vec(
        (0.0..10.0f64, 0.0..10.0f64, 0.0..1.5f64, 0.0..1.5f64),
        1..max,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
            .collect()
    })
}

/// `(distance bits, oid1, oid2)` triples — bit-identity is the contract.
type Stream = Vec<(u64, u64, u64)>;

fn triples(results: &[sdj_core::ResultPair]) -> Stream {
    results
        .iter()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect()
}

/// An aggressively-spilling hybrid queue, so pauses hold frontiers that
/// live partly on the spill tiers.
fn hybrid_backend() -> QueueBackend {
    QueueBackend::Hybrid(HybridConfig {
        dt: 0.2,
        page_size: 256,
        buffer_frames: 2,
        key_scale: KeyScale::Squared,
        ..HybridConfig::default()
    })
}

/// The fixed session mix every case runs: one per execution path, plus an
/// incremental session on the spilling hybrid backend. ≥3 concurrent
/// sessions, heterogeneous plans, per-session adaptive knobs.
fn session_mix(force_at: u64, stride: u64, k: Option<u64>) -> Vec<SessionConfig> {
    let base = JoinConfig {
        max_pairs: k,
        ..JoinConfig::default()
    };
    vec![
        SessionConfig {
            join: base,
            force_plan: Some(PlanChoice::Incremental),
            ..SessionConfig::default()
        },
        SessionConfig {
            join: base,
            force_plan: Some(PlanChoice::Adaptive),
            adaptive: AdaptiveConfig {
                pop_stride: stride,
                force_handoff_at: Some(force_at),
                ..AdaptiveConfig::default()
            },
            ..SessionConfig::default()
        },
        SessionConfig {
            join: base,
            force_plan: Some(PlanChoice::Bulk),
            ..SessionConfig::default()
        },
        SessionConfig {
            join: JoinConfig {
                queue: hybrid_backend(),
                ..base
            },
            force_plan: Some(PlanChoice::Incremental),
            ..SessionConfig::default()
        },
    ]
}

/// The same query run solo on its own engine — the reference stream a
/// session must reproduce bit-for-bit.
fn solo_stream(t1: &RTree<2>, t2: &RTree<2>, cfg: &SessionConfig) -> Stream {
    match cfg.force_plan.expect("mix forces every plan") {
        PlanChoice::Incremental => {
            let mut join = DistanceJoin::new(t1, t2, cfg.join);
            let out: Vec<_> = join.by_ref().collect();
            assert!(join.take_error().is_none());
            triples(&out)
        }
        PlanChoice::Bulk => {
            let mut join = BulkDistanceJoin::with_bulk_config(t1, t2, cfg.join, cfg.bulk).unwrap();
            triples(&join.run())
        }
        PlanChoice::Adaptive => {
            let run =
                AdaptiveDistanceJoin::with_configs(t1, t2, cfg.join, cfg.bulk, cfg.adaptive).run();
            assert!(run.error.is_none());
            triples(&run.results)
        }
    }
}

/// One step of a fuzzed schedule.
#[derive(Clone, Debug)]
enum Op {
    Pull { session: usize, n: usize },
    Pause(usize),
    Resume(usize),
}

fn arb_schedule(sessions: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..sessions, 0..10usize, 1..9usize).prop_map(|(session, what, n)| match what {
            0 => Op::Pause(session),
            1 => Op::Resume(session),
            _ => Op::Pull { session, n },
        }),
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// ≥3 concurrent sessions under a fuzzed pull/pause/resume
    /// interleaving: every per-session stream is bit-identical to its solo
    /// run, pauses refuse pulls without consuming, and the shared pools
    /// end with zero pinned frames.
    #[test]
    fn interleaved_sessions_match_solo_runs(
        a in arb_rects(40),
        b in arb_rects(45),
        fanout in 3usize..7,
        force_at in prop_oneof![Just(0u64), 1u64..60],
        stride in 1u64..32,
        k in prop::option::of(1u64..80),
        schedule in arb_schedule(4, 60),
        drain_batch in 1usize..8,
    ) {
        let t1 = tree(&a, fanout);
        let t2 = tree(&b, fanout);
        let mix = session_mix(force_at, stride, k);
        let refs: Vec<Stream> = mix.iter().map(|c| solo_stream(&t1, &t2, c)).collect();

        let service = JoinService::new(&t1, &t2, ServiceConfig::default());
        let mut sessions: Vec<_> = mix
            .iter()
            .map(|c| service.open(c.clone()).expect("admission"))
            .collect();
        prop_assert_eq!(service.active_sessions(), 4);

        let mut streams: Vec<Stream> = vec![Vec::new(); sessions.len()];
        for op in schedule {
            match op {
                Op::Pause(s) => sessions[s].pause(),
                Op::Resume(s) => sessions[s].resume(),
                Op::Pull { session, n } => {
                    let before = streams[session].len();
                    match sessions[session].next_batch(n) {
                        Ok(batch) => {
                            prop_assert!(batch.results.len() <= n);
                            streams[session].extend(triples(&batch.results));
                        }
                        Err(ServiceError::Paused) => {
                            prop_assert!(sessions[session].is_paused());
                            prop_assert_eq!(streams[session].len(), before);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                    }
                }
            }
            // No pull in flight: the shared pools must hold no pins.
            prop_assert_eq!(service.pinned_frames(), 0);
        }

        // Resume everything and drain fairly to exhaustion.
        for s in &mut sessions {
            s.resume();
        }
        let outcomes = drain_round_robin(&mut sessions, drain_batch);
        for (i, outcome) in outcomes.iter().enumerate() {
            prop_assert!(outcome.error.is_none(), "session {i}: {:?}", outcome.error);
            streams[i].extend(triples(&outcome.results));
        }
        for (i, (got, reference)) in streams.iter().zip(refs.iter()).enumerate() {
            prop_assert_eq!(got, reference, "session {} diverged from its solo run", i);
        }
        for s in &sessions {
            prop_assert!(s.is_done());
            prop_assert_eq!(s.held_bytes(), 0);
        }
        drop(sessions);
        prop_assert_eq!(service.active_sessions(), 0);
    }

    /// Cancelling sessions mid-stream leaks nothing: zero pinned frames in
    /// the shared pools right after the cancel, the cancelled stream is a
    /// correct prefix of its solo run, and the surviving sessions still
    /// finish bit-identical.
    #[test]
    fn cancel_mid_stream_is_leak_free_and_isolated(
        a in arb_rects(40),
        b in arb_rects(45),
        fanout in 3usize..7,
        force_at in prop_oneof![Just(0u64), 1u64..60],
        stride in 1u64..32,
        warmup in 0usize..30,
        cancel_mask in 1usize..15,
    ) {
        let t1 = tree(&a, fanout);
        let t2 = tree(&b, fanout);
        let mix = session_mix(force_at, stride, None);
        let refs: Vec<Stream> = mix.iter().map(|c| solo_stream(&t1, &t2, c)).collect();

        let service = JoinService::new(&t1, &t2, ServiceConfig::default());
        let mut sessions: Vec<_> = mix
            .iter()
            .map(|c| service.open(c.clone()).expect("admission"))
            .collect();

        // Pull a little on everyone so cancels land mid-stream.
        let mut streams: Vec<Stream> = vec![Vec::new(); sessions.len()];
        for i in 0..warmup {
            let s = i % sessions.len();
            if let Ok(batch) = sessions[s].next_batch(1 + i % 3) {
                streams[s].extend(triples(&batch.results));
            }
        }

        let cancelled: Vec<bool> = (0..sessions.len()).map(|i| cancel_mask & (1 << i) != 0).collect();
        for (i, s) in sessions.iter_mut().enumerate() {
            if cancelled[i] {
                s.cancel();
                // Frontier, slab refs, and pins are gone *now*.
                prop_assert_eq!(s.held_bytes(), 0);
                prop_assert!(matches!(s.next_batch(8), Err(ServiceError::Closed) | Ok(_)) );
            }
        }
        prop_assert_eq!(service.pinned_frames(), 0);

        let outcomes = drain_round_robin(&mut sessions, 4);
        for (i, outcome) in outcomes.iter().enumerate() {
            if cancelled[i] {
                // Whatever a cancelled session produced is a prefix.
                prop_assert!(streams[i].len() <= refs[i].len());
                prop_assert_eq!(&streams[i][..], &refs[i][..streams[i].len()]);
                continue;
            }
            prop_assert!(outcome.error.is_none(), "session {i}: {:?}", outcome.error);
            streams[i].extend(triples(&outcome.results));
            prop_assert_eq!(&streams[i], &refs[i], "survivor {} diverged", i);
        }
        drop(sessions);
        prop_assert_eq!(service.active_sessions(), 0);
    }
}

/// Per-session attribution: each session's traffic lands under its own
/// `session.<id>.*` names, lifecycle events fire, and the report sections
/// carry the right identity, plan, and counts.
#[test]
fn sessions_attribute_their_own_traffic() {
    use std::sync::Arc;

    let rects: Vec<Rect<2>> = (0..40)
        .map(|i| {
            let x = f64::from(i % 8);
            let y = f64::from(i / 8);
            Rect::new([x, y], [x + 0.5, y + 0.5])
        })
        .collect();
    let t1 = tree(&rects, 4);
    let t2 = tree(&rects, 4);
    let sink = Arc::new(sdj_obs::RingRecorder::new(256));
    let ctx = sdj_obs::ObsContext::new(Arc::clone(&sink) as Arc<dyn sdj_obs::EventSink>);
    let service = JoinService::new(&t1, &t2, ServiceConfig::default()).with_obs(&ctx);

    let mut a = service
        .open(SessionConfig {
            force_plan: Some(PlanChoice::Incremental),
            label: Some("alpha".to_string()),
            ..SessionConfig::default()
        })
        .unwrap();
    let mut b = service
        .open(SessionConfig {
            force_plan: Some(PlanChoice::Bulk),
            ..SessionConfig::default()
        })
        .unwrap();

    let mut a_total = 0u64;
    loop {
        let batch = a.next_batch(16).unwrap();
        a_total += batch.results.len() as u64;
        if batch.done {
            break;
        }
    }
    let b_batch = b.next_batch(8).unwrap();
    b.cancel();

    let snapshot = ctx.registry.snapshot();
    assert_eq!(
        snapshot.counter(&format!("session.{}.results", a.id())),
        Some(a_total),
        "session results counter disagrees with the stream"
    );
    assert!(
        snapshot
            .counter(&format!("session.{}.buf.hits", a.id()))
            .unwrap_or(0)
            > 0,
        "incremental session attributed no buffer traffic"
    );
    assert_eq!(
        snapshot.counter(&format!("session.{}.results", b.id())),
        Some(b_batch.results.len() as u64)
    );

    // Lifecycle events: 2 opens, per-pull batches, 2 closes (one cancel).
    let counts = sink.counts();
    assert!(counts.session >= 6, "missing session lifecycle events");

    let sa = a.report_section();
    assert_eq!((sa.id, sa.plan.as_str()), (a.id(), "incremental"));
    assert_eq!(sa.label, "alpha");
    assert_eq!(sa.results, a_total);
    assert!(!sa.cancelled);
    assert!(sa.counters.iter().any(|(k, v)| k == "buf.hits" && *v > 0));
    let sb = b.report_section();
    assert_eq!(sb.plan, "bulk");
    assert!(sb.cancelled);
}

/// Admission control: the limit is enforced with a typed error, and slots
/// return when handles drop.
#[test]
fn admission_limit_is_enforced_and_slots_recycle() {
    let t1 = tree(&[Rect::new([0.0, 0.0], [1.0, 1.0])], 4);
    let t2 = tree(&[Rect::new([2.0, 2.0], [3.0, 3.0])], 4);
    let service = JoinService::new(
        &t1,
        &t2,
        ServiceConfig {
            max_sessions: 2,
            session_budget: None,
        },
    );
    let s1 = service.open(SessionConfig::default()).unwrap();
    let _s2 = service.open(SessionConfig::default()).unwrap();
    match service.open(SessionConfig::default()) {
        Err(ServiceError::AdmissionDenied { active, limit }) => {
            assert_eq!((active, limit), (2, 2));
        }
        Err(other) => panic!("expected admission denial, got {other:?}"),
        Ok(_) => panic!("expected admission denial, got a session"),
    }
    drop(s1);
    assert_eq!(service.active_sessions(), 1);
    let _s3 = service
        .open(SessionConfig::default())
        .expect("slot recycled");
}

/// A runaway session is killed cleanly by its byte budget — typed error,
/// no leaks — and a budget-free neighbour on the same pools is untouched.
#[test]
fn budget_kill_is_clean_and_isolated() {
    let rects: Vec<Rect<2>> = (0..60)
        .map(|i| {
            let x = f64::from(i % 8);
            let y = f64::from(i / 8);
            Rect::new([x, y], [x + 0.5, y + 0.5])
        })
        .collect();
    let t1 = tree(&rects, 4);
    let t2 = tree(&rects, 4);
    let service = JoinService::new(&t1, &t2, ServiceConfig::default());

    let mut victim = service
        .open(SessionConfig {
            force_plan: Some(PlanChoice::Incremental),
            budget: Some(64),
            ..SessionConfig::default()
        })
        .unwrap();
    let mut neighbour = service
        .open(SessionConfig {
            force_plan: Some(PlanChoice::Incremental),
            ..SessionConfig::default()
        })
        .unwrap();

    let mut killed = false;
    for _ in 0..10_000 {
        match victim.next_batch(4) {
            Ok(b) if b.done => break,
            Ok(_) => {}
            Err(ServiceError::BudgetExceeded {
                held_bytes,
                budget_bytes,
            }) => {
                assert!(held_bytes > budget_bytes);
                killed = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(killed, "64-byte budget never fired on a growing frontier");
    assert_eq!(victim.held_bytes(), 0, "killed session still holds bytes");
    assert_eq!(service.pinned_frames(), 0);
    assert!(matches!(victim.next_batch(4), Err(ServiceError::Closed)));

    // The neighbour's stream is unaffected by the kill.
    let mut join = DistanceJoin::new(&t1, &t2, JoinConfig::default());
    let reference: Vec<_> = join.by_ref().collect();
    assert!(join.take_error().is_none());
    let mut got = Vec::new();
    loop {
        let b = neighbour.next_batch(16).unwrap();
        got.extend(b.results);
        if b.done {
            break;
        }
    }
    assert_eq!(triples(&got), triples(&reference));
}
