//! Multi-query join service: concurrent cursor sessions over one shared
//! buffer pool.
//!
//! The engines below this crate answer one query each. A server answers
//! many at once, and the incremental join's defining property — the
//! priority queue *is* the whole query state — makes cursor-style serving
//! natural: holding a session paused costs exactly the queue's bytes (the
//! hybrid backend can spill those to its disk tiers), and resuming costs
//! nothing, because nothing was torn down. [`JoinService`] packages that:
//!
//! * **Shared pool** — every session reads through the same two trees,
//!   hence the same sharded [buffer pools](sdj_storage::BufferPool). The
//!   pool was built for this (shard-striped locks, atomic pin counts);
//!   sessions contend on frames, not on a global latch.
//! * **Admission control** — at most [`ServiceConfig::max_sessions`]
//!   sessions exist at a time; [`JoinService::open`] refuses beyond that
//!   with a typed [`ServiceError::AdmissionDenied`], and a session's slot
//!   is returned when its handle drops.
//! * **Per-session plans** — each session runs the path the cost model
//!   picks for *its* query (or a forced one): the incremental iterator,
//!   the bulk executor (materialised on first pull), or the adaptive
//!   cursor ([`sdj_core::AdaptiveCursor`]) with per-session knobs —
//!   [`SessionConfig::adaptive`] defaults from the `SDJ_ADAPTIVE_*`
//!   environment but is plain data, so two sessions in one process can
//!   run different strides.
//! * **Memory budgets** — a session's held bytes (queue tiers plus any
//!   buffered results) are checked after every pull; exceeding the budget
//!   kills that session cleanly ([`ServiceError::BudgetExceeded`]) and
//!   leaves every other session untouched.
//! * **Fail-clean sessions** — a storage fault ends one session with a
//!   typed error after its buffered prefix drains; it never panics the
//!   process the other sessions live in.
//! * **Attribution** — with an [`ObsContext`] attached, each session's
//!   buffer-pool traffic lands in `session.<id>.buf.*` counters, its queue
//!   gauges under `session.<id>.pq.*`, its lifecycle in
//!   [`Event::SessionOpened`]/[`Event::SessionBatch`]/[`Event::SessionClosed`],
//!   and [`SessionHandle::report_section`] renders a per-session
//!   [`SessionSection`] for the run report.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use sdj_core::bulk::{BulkConfig, BulkDistanceJoin};
use sdj_core::plan::plan_for_trees;
use sdj_core::{
    AdaptiveConfig, AdaptiveCursor, AdaptiveDistanceJoin, DistanceJoin, JoinConfig, PlanChoice,
    ResultPair,
};
use sdj_obs::{Event, ObsContext, PlanPath, SessionSection};
use sdj_rtree::RTree;
use sdj_storage::{PoolStats, StorageError};

/// Service-level failures. Every variant is per-session and recoverable by
/// the server: nothing here takes the process (or any *other* session)
/// down.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// `open` refused: the concurrent-session limit is already reached.
    AdmissionDenied {
        /// Sessions currently holding slots.
        active: u32,
        /// The configured limit.
        limit: u32,
    },
    /// `next_batch` on a paused session. Nothing was consumed; resume and
    /// retry.
    Paused,
    /// `next_batch` on a session that was cancelled or already torn down.
    Closed,
    /// The session's held state outgrew its memory budget. The session was
    /// killed cleanly (frontier dropped, slab refs released, pins
    /// unpinned); the results already handed out are a correct prefix.
    BudgetExceeded {
        /// Bytes the session held when the check fired.
        held_bytes: usize,
        /// The budget it was admitted under.
        budget_bytes: usize,
    },
    /// The session's engine hit a storage fault. The results handed out
    /// before this error are a correct prefix of the fault-free stream
    /// (the engines' fail-clean contract, surfaced per session).
    Storage(StorageError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AdmissionDenied { active, limit } => {
                write!(f, "admission denied: {active} of {limit} sessions active")
            }
            Self::Paused => write!(f, "session is paused"),
            Self::Closed => write!(f, "session is closed"),
            Self::BudgetExceeded {
                held_bytes,
                budget_bytes,
            } => write!(
                f,
                "session memory budget exceeded: holding {held_bytes} bytes of {budget_bytes}"
            ),
            Self::Storage(e) => write!(f, "storage fault: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ServiceError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

/// Service-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Maximum concurrently-open sessions; `open` refuses beyond it.
    pub max_sessions: u32,
    /// Default per-session memory budget in bytes (queue tiers plus
    /// buffered results), when the session doesn't set its own. `None`
    /// means unbudgeted.
    pub session_budget: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_sessions: 16,
            session_budget: None,
        }
    }
}

/// Per-session configuration. Everything here is plain data owned by the
/// session — in particular [`Self::adaptive`], which *defaults* from the
/// `SDJ_ADAPTIVE_*` environment (the process-wide convention the CLI tools
/// use) but is overridable per session, so one runaway query tuned with a
/// short stride never changes its neighbours' behaviour.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// The join itself (metric, range, `STOP AFTER k`, queue backend, …).
    pub join: JoinConfig,
    /// Forces an execution path; `None` lets the cost model pick per
    /// session.
    pub force_plan: Option<PlanChoice>,
    /// Adaptive-replanning knobs for this session.
    pub adaptive: AdaptiveConfig,
    /// Bulk grid tuning for this session.
    pub bulk: BulkConfig,
    /// Memory budget in bytes; `None` falls back to
    /// [`ServiceConfig::session_budget`].
    pub budget: Option<usize>,
    /// Human-readable label for reports; defaults to `session-<id>`.
    pub label: Option<String>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            join: JoinConfig::default(),
            force_plan: None,
            adaptive: AdaptiveConfig::from_env(),
            bulk: BulkConfig::default(),
            budget: None,
            label: None,
        }
    }
}

/// One pull's worth of results.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    /// Up to `n` further results, in the session's stream order.
    pub results: Vec<ResultPair>,
    /// True once the stream is exhausted; later pulls return empty done
    /// batches.
    pub done: bool,
}

/// What one session produced over a whole scheduler drain: its collected
/// stream, plus the terminal error if it failed (the stream is then a
/// correct prefix).
#[derive(Clone, Debug, Default)]
pub struct SessionOutcome {
    /// Every result the session emitted, in order.
    pub results: Vec<ResultPair>,
    /// The terminal error, if the session failed or was killed.
    pub error: Option<ServiceError>,
}

/// The execution engine a session holds between pulls.
enum Engine<'t, const D: usize> {
    /// The incremental iterator — pausing is literally not calling
    /// `next()`; the queue holds the whole frontier in place.
    Incremental(Box<DistanceJoin<'t, D>>),
    /// The pull-paced adaptive cursor.
    Adaptive(Box<AdaptiveCursor<'t, D>>),
    /// A bulk plan not yet started: the bulk path materialises by nature,
    /// so the partition + sweep is deferred to the first pull.
    BulkPending,
    /// A bulk run's materialised stream being drained.
    BulkDraining(std::vec::IntoIter<ResultPair>),
    /// Torn down (finished, failed, cancelled, or budget-killed).
    Closed,
}

impl<const D: usize> Engine<'_, D> {
    /// Bytes of query state the session holds between pulls: queue tiers
    /// (all of them — the in-memory heap and the spilled pages' buffer)
    /// plus any results materialised but not yet handed out.
    fn held_bytes(&self) -> usize {
        match self {
            Engine::Incremental(j) => j.queue_bytes(),
            Engine::Adaptive(c) => c.queue_bytes() + c.buffered_bytes(),
            Engine::BulkDraining(it) => it.len() * std::mem::size_of::<ResultPair>(),
            Engine::BulkPending | Engine::Closed => 0,
        }
    }
}

/// A cursor over one join query: pull batches, pause/resume between them,
/// cancel mid-stream. Dropping the handle releases its admission slot and
/// every byte of its query state.
pub struct SessionHandle<'t, const D: usize> {
    id: u32,
    label: String,
    plan: PlanChoice,
    tree1: &'t RTree<D>,
    tree2: &'t RTree<D>,
    join_config: JoinConfig,
    bulk_config: BulkConfig,
    engine: Engine<'t, D>,
    paused: bool,
    done: bool,
    cancelled: bool,
    /// A terminal fault held until the batch that produced partial results
    /// has been handed out; surfaced on the next pull (fail-clean shape).
    pending_error: Option<ServiceError>,
    budget: Option<usize>,
    results: u64,
    batches: u64,
    /// Accumulated buffer-pool deltas attributed to this session's pulls
    /// (both trees combined): hits, misses, evictions, writebacks.
    buf: PoolStats,
    ctx: Option<ObsContext>,
    admission: Arc<AtomicU32>,
}

impl<'t, const D: usize> SessionHandle<'t, D> {
    /// The session's numeric id (unique within its service).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The session's report label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The execution path this session runs.
    #[must_use]
    pub fn plan(&self) -> PlanChoice {
        self.plan
    }

    /// True once the stream is exhausted (cleanly).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True while pulls are refused with [`ServiceError::Paused`].
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// True once the session was cancelled or torn down by an error.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        matches!(self.engine, Engine::Closed) && !self.done
    }

    /// Results handed out so far.
    #[must_use]
    pub fn results_emitted(&self) -> u64 {
        self.results
    }

    /// Bytes of query state held between pulls (what the budget meters).
    #[must_use]
    pub fn held_bytes(&self) -> usize {
        self.engine.held_bytes()
    }

    /// Pauses the session: the frontier stays exactly where it is (the
    /// hybrid queue may keep most of it on its disk tiers), and pulls
    /// refuse until [`Self::resume`]. Idempotent.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Resumes a paused session. Idempotent; nothing to rebuild — the
    /// engine was never torn down.
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// Cancels the session mid-stream: the frontier is dropped, the pair
    /// slab's interned items are released with it, and every buffer-pool
    /// pin is unpinned. Idempotent; later pulls return
    /// [`ServiceError::Closed`].
    pub fn cancel(&mut self) {
        // Finished, failed, and already-cancelled sessions have nothing
        // left to drop, and their close event already fired.
        if matches!(self.engine, Engine::Closed) {
            return;
        }
        self.engine = Engine::Closed;
        self.cancelled = true;
        self.emit_closed(true);
        // The leak-free contract: with this session's engine gone and no
        // pull in flight, nothing of ours may still pin a frame.
        debug_assert_eq!(
            self.tree1.pinned_frames() + self.tree2.pinned_frames(),
            0,
            "cancelled session left buffer-pool pins behind"
        );
    }

    /// Pulls up to `n` further results.
    ///
    /// Returns [`ServiceError::Paused`] (consuming nothing) while paused,
    /// [`ServiceError::Closed`] after a cancel, the stored terminal error
    /// for a failed session, and otherwise a [`Batch`] whose `done` flag
    /// marks clean exhaustion. A budget violation detected after the pull
    /// kills the session and surfaces as [`ServiceError::BudgetExceeded`].
    pub fn next_batch(&mut self, n: usize) -> Result<Batch, ServiceError> {
        if self.paused {
            return Err(ServiceError::Paused);
        }
        if let Some(e) = self.pending_error.take() {
            self.engine = Engine::Closed;
            self.emit_closed(false);
            return Err(e);
        }
        if self.done {
            return Ok(Batch {
                results: Vec::new(),
                done: true,
            });
        }
        if matches!(self.engine, Engine::Closed) {
            return Err(ServiceError::Closed);
        }

        let baseline = self.pool_snapshot();
        let mut out = Vec::new();
        let pulled = self.pull_engine(n, &mut out);
        self.attribute(&baseline, out.len() as u64);

        match pulled {
            Ok(done) => {
                if done {
                    self.done = true;
                    self.engine = Engine::Closed;
                    self.emit_closed(false);
                } else if let Some(budget) = self.budget {
                    let held = self.engine.held_bytes();
                    if held > budget {
                        // Runaway session: tear it down cleanly and keep
                        // the server (and its neighbours) healthy.
                        self.engine = Engine::Closed;
                        self.emit_closed(true);
                        return Err(ServiceError::BudgetExceeded {
                            held_bytes: held,
                            budget_bytes: budget,
                        });
                    }
                }
                Ok(Batch {
                    results: out,
                    done: self.done,
                })
            }
            Err(e) => {
                if out.is_empty() {
                    self.engine = Engine::Closed;
                    self.emit_closed(false);
                    Err(e)
                } else {
                    // Hand the correct prefix out first; the error
                    // surfaces on the next pull.
                    self.pending_error = Some(e);
                    Ok(Batch {
                        results: out,
                        done: false,
                    })
                }
            }
        }
    }

    /// Advances the engine by up to `n` results into `out`. `Ok(true)`
    /// means clean exhaustion.
    fn pull_engine(&mut self, n: usize, out: &mut Vec<ResultPair>) -> Result<bool, ServiceError> {
        match &mut self.engine {
            Engine::Incremental(join) => {
                for _ in 0..n {
                    match join.next() {
                        Some(r) => out.push(r),
                        None => {
                            return match join.take_error() {
                                Some(e) => Err(e.into()),
                                None => Ok(true),
                            }
                        }
                    }
                }
                Ok(false)
            }
            Engine::Adaptive(cursor) => Ok(cursor.pull(n, out)?),
            Engine::BulkPending => {
                // First pull of a bulk session: build the partition and
                // sweep it now. The session then drains the materialised
                // stream batch by batch.
                let mut join = BulkDistanceJoin::with_bulk_config(
                    self.tree1,
                    self.tree2,
                    self.join_config,
                    self.bulk_config,
                )?;
                let results = join.run();
                self.engine = Engine::BulkDraining(results.into_iter());
                self.pull_engine(n, out)
            }
            Engine::BulkDraining(it) => {
                for _ in 0..n {
                    match it.next() {
                        Some(r) => out.push(r),
                        None => return Ok(true),
                    }
                }
                Ok(it.len() == 0)
            }
            Engine::Closed => Err(ServiceError::Closed),
        }
    }

    /// Combined pool counters of both trees, for delta attribution.
    fn pool_snapshot(&self) -> PoolStats {
        let mut s = self.tree1.pool_stats();
        s.absorb(&self.tree2.pool_stats());
        s
    }

    /// Attributes this pull's buffer-pool traffic and result count to the
    /// session: local accumulators always, `session.<id>.*` registry
    /// counters and a [`Event::SessionBatch`] when instrumented.
    fn attribute(&mut self, baseline: &PoolStats, emitted: u64) {
        let delta = self.pool_snapshot().since(baseline);
        self.buf.absorb(&delta);
        self.results += emitted;
        self.batches += 1;
        if let Some(ctx) = &self.ctx {
            let id = self.id;
            let add = |name: &str, v: u64| {
                if v > 0 {
                    ctx.registry.counter(&format!("session.{id}.{name}")).add(v);
                }
            };
            add("buf.hits", delta.hits);
            add("buf.misses", delta.misses);
            add("buf.evictions", delta.evictions);
            add("buf.writebacks", delta.writebacks);
            add("results", emitted);
            ctx.sink.emit(&Event::SessionBatch {
                session: id,
                results: emitted,
                total: self.results,
            });
        }
    }

    fn emit_closed(&self, cancelled: bool) {
        if let Some(ctx) = &self.ctx {
            ctx.sink.emit(&Event::SessionClosed {
                session: self.id,
                results: self.results,
                cancelled,
            });
        }
    }

    /// Renders this session's run-report section: identity, plan, result
    /// and batch counts, and the attributed buffer-pool counters.
    #[must_use]
    pub fn report_section(&self) -> SessionSection {
        let plan = match self.plan {
            PlanChoice::Incremental => "incremental",
            PlanChoice::Bulk => "bulk",
            PlanChoice::Adaptive => "adaptive",
        };
        SessionSection {
            id: self.id,
            label: self.label.clone(),
            plan: plan.to_string(),
            results: self.results,
            batches: self.batches,
            cancelled: self.cancelled,
            counters: vec![
                ("buf.hits".to_string(), self.buf.hits),
                ("buf.misses".to_string(), self.buf.misses),
                ("buf.evictions".to_string(), self.buf.evictions),
                ("buf.writebacks".to_string(), self.buf.writebacks),
            ],
        }
    }
}

impl<const D: usize> Drop for SessionHandle<'_, D> {
    fn drop(&mut self) {
        // Return the admission slot. The engine (frontier, slab, spill
        // pages) drops with the handle.
        self.admission.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The join server: hands out cursor sessions over two shared trees.
///
/// The service itself is cheap — trees, knobs, and two atomics. All query
/// state lives in the [`SessionHandle`]s it opens, which borrow the trees
/// (and therefore share their buffer pools) for `'t`.
pub struct JoinService<'t, const D: usize> {
    tree1: &'t RTree<D>,
    tree2: &'t RTree<D>,
    config: ServiceConfig,
    ctx: Option<ObsContext>,
    active: Arc<AtomicU32>,
    next_id: AtomicU32,
}

impl<'t, const D: usize> JoinService<'t, D> {
    /// A service over two shared trees.
    #[must_use]
    pub fn new(tree1: &'t RTree<D>, tree2: &'t RTree<D>, config: ServiceConfig) -> Self {
        Self {
            tree1,
            tree2,
            config,
            ctx: None,
            active: Arc::new(AtomicU32::new(0)),
            next_id: AtomicU32::new(0),
        }
    }

    /// Attaches instrumentation: sessions emit lifecycle events and
    /// attribute their traffic under `session.<id>.*`.
    #[must_use]
    pub fn with_obs(mut self, ctx: &ObsContext) -> Self {
        self.ctx = Some(ctx.clone());
        self
    }

    /// Sessions currently holding admission slots.
    #[must_use]
    pub fn active_sessions(&self) -> u32 {
        self.active.load(Ordering::Acquire)
    }

    /// Frames of the shared pools currently pinned by outstanding guards.
    /// Between pulls this must be zero — the leak check the cancel tests
    /// assert.
    #[must_use]
    pub fn pinned_frames(&self) -> usize {
        self.tree1.pinned_frames() + self.tree2.pinned_frames()
    }

    /// Opens a session: admission check, per-session plan choice, engine
    /// construction, obs attribution. The handle borrows the service's
    /// trees, not the service — open sessions outlive intermediate
    /// `open` calls freely.
    pub fn open(&self, config: SessionConfig) -> Result<SessionHandle<'t, D>, ServiceError> {
        let limit = self.config.max_sessions;
        if let Err(active) = self
            .active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < limit).then_some(n + 1)
            })
        {
            return Err(ServiceError::AdmissionDenied { active, limit });
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let label = config
            .label
            .clone()
            .unwrap_or_else(|| format!("session-{id}"));
        let plan = config
            .force_plan
            .unwrap_or_else(|| plan_for_trees(self.tree1, self.tree2, &config.join).choice);
        let prefix = format!("session.{id}.");

        let engine = match plan {
            PlanChoice::Incremental => {
                let mut join = DistanceJoin::new(self.tree1, self.tree2, config.join);
                if let Some(ctx) = &self.ctx {
                    join.attach_queue_obs_prefixed(ctx, &prefix);
                }
                Engine::Incremental(Box::new(join))
            }
            PlanChoice::Adaptive => {
                let driver = AdaptiveDistanceJoin::with_configs(
                    self.tree1,
                    self.tree2,
                    config.join,
                    config.bulk,
                    config.adaptive,
                );
                let mut cursor = driver.cursor();
                if let Some(ctx) = &self.ctx {
                    cursor.attach_queue_obs_prefixed(ctx, &prefix);
                }
                Engine::Adaptive(Box::new(cursor))
            }
            // Bulk materialises on first pull; nothing to hold yet.
            PlanChoice::Bulk => Engine::BulkPending,
        };

        if let Some(ctx) = &self.ctx {
            let path = match plan {
                PlanChoice::Incremental => PlanPath::Incremental,
                PlanChoice::Bulk => PlanPath::Bulk,
                PlanChoice::Adaptive => PlanPath::Adaptive,
            };
            ctx.sink.emit(&Event::SessionOpened { session: id, path });
        }

        Ok(SessionHandle {
            id,
            label,
            plan,
            tree1: self.tree1,
            tree2: self.tree2,
            join_config: config.join,
            bulk_config: config.bulk,
            engine,
            paused: false,
            done: false,
            cancelled: false,
            pending_error: None,
            budget: config.budget.or(self.config.session_budget),
            results: 0,
            batches: 0,
            buf: PoolStats::default(),
            ctx: self.ctx.clone(),
            admission: Arc::clone(&self.active),
        })
    }
}

/// Drains a set of sessions with a fair round-robin scheduler: one
/// `batch`-sized pull per live session per round, skipping paused sessions,
/// until every session has finished, failed, or only paused sessions
/// remain. Returns each session's collected stream plus its terminal error
/// (fail-clean: the stream is then a correct prefix).
pub fn drain_round_robin<const D: usize>(
    sessions: &mut [SessionHandle<'_, D>],
    batch: usize,
) -> Vec<SessionOutcome> {
    let mut outcomes: Vec<SessionOutcome> =
        sessions.iter().map(|_| SessionOutcome::default()).collect();
    let mut live: Vec<bool> = sessions.iter().map(|_| true).collect();
    loop {
        let mut progressed = false;
        for (i, session) in sessions.iter_mut().enumerate() {
            if !live[i] || session.is_paused() {
                continue;
            }
            match session.next_batch(batch) {
                Ok(b) => {
                    outcomes[i].results.extend(b.results);
                    if b.done {
                        live[i] = false;
                    }
                    progressed = true;
                }
                Err(e) => {
                    outcomes[i].error = Some(e);
                    live[i] = false;
                    progressed = true;
                }
            }
        }
        let any_live = live
            .iter()
            .zip(sessions.iter())
            .any(|(&l, s)| l && !s.is_paused());
        if !any_live || !progressed {
            return outcomes;
        }
    }
}
