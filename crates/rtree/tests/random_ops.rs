//! Randomised R*-tree workouts: arbitrary interleavings of inserts and
//! deletes must preserve every structural invariant and answer queries
//! exactly like a linear scan.

use proptest::prelude::*;
use sdj_geom::{Metric, Point, Rect};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

#[derive(Clone, Debug)]
enum Op {
    Insert(f64, f64),
    /// Delete the i-th (mod live count) currently live object.
    DeleteNth(usize),
    Validate,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Op::Insert(x, y)),
        2 => (0usize..1000).prop_map(Op::DeleteNth),
        1 => Just(Op::Validate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_insert_delete_interleavings(
        ops in prop::collection::vec(op_strategy(), 1..120),
        fanout in 4usize..9,
    ) {
        let mut tree = RTree::new(RTreeConfig::small(fanout));
        let mut live: Vec<(ObjectId, Point<2>)> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert(x, y) => {
                    let id = ObjectId(next_id);
                    next_id += 1;
                    let p = Point::xy(x, y);
                    tree.insert(id, p.to_rect()).unwrap();
                    live.push((id, p));
                }
                Op::DeleteNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, p) = live.swap_remove(n % live.len());
                    prop_assert!(tree.delete(id, &p.to_rect()).unwrap());
                }
                Op::Validate => tree.validate().map_err(|e| {
                    TestCaseError::fail(format!("invariant violated: {e}"))
                })?,
            }
            prop_assert_eq!(tree.len(), live.len());
        }
        tree.validate().map_err(TestCaseError::fail)?;

        // Window query equivalence against the live set.
        let window = Rect::new([20.0, 20.0], [70.0, 60.0]);
        let mut got: Vec<u64> = tree
            .query_window(&window)
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = live
            .iter()
            .filter(|(_, p)| window.contains_point(p))
            .map(|(o, _)| o.0)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Nearest-neighbour equivalence.
        if !live.is_empty() {
            let q = Point::xy(50.0, 50.0);
            let first = tree.nearest_neighbors(q, Metric::Euclidean).next().unwrap();
            let best = live
                .iter()
                .map(|(_, p)| Metric::Euclidean.distance(&q, p))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((first.distance - best).abs() < 1e-9);
        }
    }

    /// Deleting everything in random order always returns the tree to an
    /// empty, valid state.
    #[test]
    fn delete_all_in_random_order(
        coords in prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..80),
        seed in any::<u64>(),
    ) {
        let mut tree = RTree::new(RTreeConfig::small(4));
        let mut live: Vec<(ObjectId, Point<2>)> = Vec::new();
        for (i, (x, y)) in coords.iter().enumerate() {
            let p = Point::xy(*x, *y);
            tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
            live.push((ObjectId(i as u64), p));
        }
        // Deterministic shuffle from the seed.
        let mut order: Vec<usize> = (0..live.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for idx in order {
            let (id, p) = live[idx];
            prop_assert!(tree.delete(id, &p.to_rect()).unwrap());
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.height(), 1);
        tree.validate().map_err(TestCaseError::fail)?;
    }
}
