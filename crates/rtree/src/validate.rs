//! Structural invariant checking, used pervasively by the test suites.

use std::collections::HashSet;

use sdj_geom::{approx_eq, Rect};
use sdj_storage::PageId;

use crate::entry::EntryPtr;
use crate::tree::RTree;

impl<const D: usize> RTree<D> {
    /// Checks every structural invariant of the tree, returning a
    /// description of the first violation found.
    ///
    /// Checked invariants:
    /// 1. node levels decrease by exactly one per edge and leaves are level 0;
    /// 2. every node's entry count is within `[min, max]` (the root is
    ///    exempt from the minimum; an internal root needs ≥ 2 entries);
    /// 3. each internal entry's MBR equals (within epsilon) the MBR of its
    ///    child node — i.e. bounding rectangles are *minimal*;
    /// 4. no page is referenced twice;
    /// 5. object ids are unique and their total matches `len()`.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen_pages: HashSet<PageId> = HashSet::new();
        let mut seen_objects: HashSet<u64> = HashSet::new();
        let root_level = self.height() - 1;
        self.validate_node(
            self.root_id(),
            root_level,
            true,
            &mut seen_pages,
            &mut seen_objects,
        )?;
        if seen_objects.len() != self.len() {
            return Err(format!(
                "tree reports len {} but holds {} objects",
                self.len(),
                seen_objects.len()
            ));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        page: PageId,
        expected_level: u8,
        is_root: bool,
        seen_pages: &mut HashSet<PageId>,
        seen_objects: &mut HashSet<u64>,
    ) -> Result<Rect<D>, String> {
        if !seen_pages.insert(page) {
            return Err(format!("page {page:?} referenced more than once"));
        }
        let node = self
            .read_node(page)
            .map_err(|e| format!("cannot read node {page:?}: {e}"))?;
        if node.level != expected_level {
            return Err(format!(
                "node {page:?} has level {}, expected {expected_level}",
                node.level
            ));
        }
        let count = node.entries.len();
        if count > self.max_entries() {
            return Err(format!(
                "node {page:?} overflows: {count} > {}",
                self.max_entries()
            ));
        }
        if is_root {
            if !node.is_leaf() && count < 2 {
                return Err(format!("internal root {page:?} has {count} < 2 entries"));
            }
        } else if count < self.min_entries() {
            return Err(format!(
                "node {page:?} underflows: {count} < {}",
                self.min_entries()
            ));
        }
        for e in &node.entries {
            match e.ptr {
                EntryPtr::Object(oid) => {
                    if !node.is_leaf() {
                        return Err(format!("object entry in internal node {page:?}"));
                    }
                    if !seen_objects.insert(oid.0) {
                        return Err(format!("object id {} appears twice", oid.0));
                    }
                    if !e.mbr.is_finite() {
                        return Err(format!("non-finite object MBR in node {page:?}"));
                    }
                }
                EntryPtr::Child(child) => {
                    if node.is_leaf() {
                        return Err(format!("child entry in leaf node {page:?}"));
                    }
                    let child_mbr = self.validate_node(
                        child,
                        expected_level - 1,
                        false,
                        seen_pages,
                        seen_objects,
                    )?;
                    if !rects_equal(&e.mbr, &child_mbr) {
                        return Err(format!(
                            "entry MBR in {page:?} is not minimal for child {child:?}: \
                             {:?} vs {:?}",
                            e.mbr, child_mbr
                        ));
                    }
                }
            }
        }
        Ok(node.mbr())
    }
}

fn rects_equal<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> bool {
    if a.is_empty() && b.is_empty() {
        return true;
    }
    (0..D)
        .all(|axis| approx_eq(a.lo()[axis], b.lo()[axis]) && approx_eq(a.hi()[axis], b.hi()[axis]))
}
