//! The R*-tree proper: insertion with forced reinsertion, deletion with
//! condense-tree, window queries, and page-level access for the join
//! algorithms.

use sdj_geom::{Metric, Rect};
use sdj_storage::{BufferPool, DiskStats, PageId, Pager, PoolConfig, PoolStats, Result};

use crate::config::RTreeConfig;
use crate::entry::{Entry, ObjectId};
use crate::node::Node;
use crate::split::rstar_split;

/// A disk-resident R*-tree over `D`-dimensional rectangles.
///
/// Every node occupies one page of a simulated disk and is accessed through
/// an LRU buffer pool, so [`RTree::io_stats`] reports the node I/O counts the
/// paper's experiments measure. Object ids are opaque `u64`s; leaf entries
/// store the object's minimal bounding rectangle inline (for points, the MBR
/// *is* the point).
pub struct RTree<const D: usize> {
    pool: BufferPool,
    config: RTreeConfig,
    root: PageId,
    /// Number of levels; the root is at level `height - 1`, leaves at 0.
    height: u8,
    len: usize,
    max_entries: usize,
    min_entries: usize,
    reinsert_count: usize,
}

impl<const D: usize> std::fmt::Debug for RTree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("len", &self.len)
            .field("height", &self.height)
            .field("fanout", &self.max_entries)
            .finish()
    }
}

impl<const D: usize> RTree<D> {
    /// Creates an empty tree with the given configuration.
    #[must_use]
    pub fn new(config: RTreeConfig) -> Self {
        let pager = Pager::new(config.page_size);
        let pool = BufferPool::with_config(pager, config.buffer_frames, Self::pool_config(&config));
        let root = pool.allocate();
        let tree = Self {
            pool,
            config,
            root,
            height: 1,
            len: 0,
            max_entries: config.max_entries::<D>(),
            min_entries: config.min_entries::<D>(),
            reinsert_count: config.reinsert_count::<D>(),
        };
        tree.write_node(root, &Node::new(0))
            .expect("writing the empty root cannot fail");
        tree
    }

    /// Creates a tree with the default (paper) configuration.
    #[must_use]
    pub fn with_default_config() -> Self {
        Self::new(RTreeConfig::default())
    }

    // ---------------------------------------------------------------- meta

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 for a tree that is just a root leaf).
    #[must_use]
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Page id of the root node.
    #[must_use]
    pub fn root_id(&self) -> PageId {
        self.root
    }

    /// The tree's configuration.
    #[must_use]
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Maximum entries per node.
    #[must_use]
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Minimum entries per non-root node.
    #[must_use]
    pub fn min_entries(&self) -> usize {
        self.min_entries
    }

    /// Bounding rectangle of the whole tree (empty if no objects).
    pub fn mbr(&self) -> Result<Rect<D>> {
        Ok(self.read_node(self.root)?.mbr())
    }

    /// Buffer-pool counters (misses = node I/O).
    #[must_use]
    pub fn io_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Disk counters of the underlying pager.
    #[must_use]
    pub fn disk_stats(&self) -> DiskStats {
        self.pool.disk_stats()
    }

    /// Per-shard buffer counters, for inspecting how evenly the page hash
    /// spreads load (one entry when unsharded).
    #[must_use]
    pub fn shard_io_stats(&self) -> Vec<PoolStats> {
        self.pool.shard_stats()
    }

    /// Resets I/O counters (tree contents unaffected).
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats();
    }

    /// Replaces the buffer pool with a freshly built (cold) one of the
    /// given frame budget and shard count, flushing dirty pages first.
    /// Tree contents are unaffected; all counters start from zero. Lets
    /// experiments measure cold-cache behaviour on a tree that was built
    /// warm, and switch sharding without a persist round-trip.
    pub fn rebuild_buffer(&mut self, frames: usize, shards: usize) -> Result<()> {
        self.config.buffer_frames = frames;
        self.config.buffer_shards = shards;
        let dummy = BufferPool::new(Pager::new(self.config.page_size), 1);
        let pager = std::mem::replace(&mut self.pool, dummy).into_pager()?;
        self.pool = BufferPool::with_config(pager, frames, Self::pool_config(&self.config));
        Ok(())
    }

    /// Buffer-pool configuration implied by an [`RTreeConfig`]: one shard
    /// keeps the historical LRU pool (byte-identical miss counts for the
    /// experiments); more shards switch to per-shard CLOCK eviction.
    pub(crate) fn pool_config(config: &RTreeConfig) -> PoolConfig {
        if config.buffer_shards <= 1 {
            PoolConfig::default()
        } else {
            PoolConfig::sharded(config.buffer_shards)
        }
    }

    /// Batch prefetch hint for node pages likely to be read soon (see
    /// [`sdj_storage::BufferPool::prefetch`]): absent pages are faulted in
    /// and counted as prefetch reads, *not* demand misses, so
    /// [`RTree::io_stats`] miss counts stay comparable across runs with and
    /// without hinting.
    pub fn prefetch_pages(&self, pages: &[PageId]) {
        self.pool.prefetch(pages);
    }

    /// Attaches an observability handle to the tree's buffer pool: node
    /// accesses are mirrored into the handle's hit/miss/eviction counters
    /// and evictions emit buffer events (see
    /// [`sdj_storage::BufferPool::attach_obs`]).
    pub fn attach_obs(&self, obs: sdj_storage::BufferObs) {
        self.pool.attach_obs(obs);
    }

    /// Installs (or clears) a fault injector on the tree's simulated disk:
    /// every node read/write through the buffer pool becomes subject to the
    /// injector's schedule (chaos testing).
    pub fn set_fault_injector(&self, injector: Option<std::sync::Arc<sdj_storage::FaultInjector>>) {
        self.pool.set_fault_injector(injector);
    }

    /// Bounds how many times the buffer pool retries an operation that
    /// failed with a transient fault (0 = fail on first fault).
    pub fn set_retry_limit(&self, limit: u32) {
        self.pool.set_retry_limit(limit);
    }

    /// Buffer-pool counters, including fault/retry totals.
    #[must_use]
    pub fn pool_stats(&self) -> sdj_storage::PoolStats {
        self.pool.stats()
    }

    /// Resident frames currently pinned by outstanding page guards (see
    /// [`sdj_storage::BufferPool::pinned_frames`]); zero when no reader is
    /// mid-access, which the session service asserts after cancelling a
    /// cursor over this tree.
    #[must_use]
    pub fn pinned_frames(&self) -> usize {
        self.pool.pinned_frames()
    }

    /// A conservative lower bound on the number of objects in the subtree of
    /// a node at `level` (used by the maximum-distance estimation of
    /// §2.2.4: "derived from the minimum fan-out and the height of the
    /// corresponding tree").
    ///
    /// The root is exempt from the minimum-fill rule, so callers should pass
    /// `is_root = true` when the node is the root.
    #[must_use]
    pub fn min_subtree_objects(&self, level: u8, is_root: bool) -> u64 {
        if is_root {
            // The root guarantees nothing beyond non-emptiness.
            return u64::from(self.len > 0);
        }
        (self.min_entries as u64).saturating_pow(u32::from(level) + 1)
    }

    // ------------------------------------------------------------ node I/O

    /// Reads and decodes the node stored on `page`, through the buffer pool.
    pub fn read_node(&self, page: PageId) -> Result<Node<D>> {
        self.pool.with_page(page, Node::decode)?
    }

    /// Reads the node stored on `page`, streaming each entry through
    /// `f(level, &entry)` without materialising a [`Node`]; returns the
    /// node's level. This is the allocation-free read path the join's
    /// struct-of-arrays node views decode through.
    pub fn scan_node(&self, page: PageId, mut f: impl FnMut(u8, &Entry<D>)) -> Result<u8> {
        self.pool.with_page(page, |buf| Node::scan(buf, &mut f))?
    }

    /// Encodes and writes `node` to `page`, through the buffer pool.
    pub fn write_node(&self, page: PageId, node: &Node<D>) -> Result<()> {
        self.pool.update(page, |buf| {
            buf.fill(0);
            node.encode(buf)
        })?
    }

    pub(crate) fn allocate_page(&self) -> PageId {
        self.pool.allocate()
    }

    pub(crate) fn set_shape(&mut self, root: PageId, height: u8, len: usize) {
        self.root = root;
        self.height = height;
        self.len = len;
    }

    pub(crate) fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Reassembles a tree from its persisted parts (see `persist`).
    pub(crate) fn from_parts(
        pool: BufferPool,
        config: RTreeConfig,
        root: PageId,
        height: u8,
        len: usize,
    ) -> Self {
        Self {
            pool,
            config,
            root,
            height,
            len,
            max_entries: config.max_entries::<D>(),
            min_entries: config.min_entries::<D>(),
            reinsert_count: config.reinsert_count::<D>(),
        }
    }

    // ------------------------------------------------------------- insert

    /// Inserts an object with the given minimal bounding rectangle.
    ///
    /// # Panics
    /// Panics if `mbr` is empty or non-finite.
    pub fn insert(&mut self, oid: ObjectId, mbr: Rect<D>) -> Result<()> {
        assert!(mbr.is_finite(), "object MBR must be finite and non-empty");
        let mut reinserted_levels: u64 = 0;
        self.insert_at_level(Entry::object(mbr, oid), 0, &mut reinserted_levels)?;
        self.len += 1;
        Ok(())
    }

    /// Inserts `entry` into a node at `target_level`, applying R* overflow
    /// treatment. `reinserted_levels` is a bitmask of levels where forced
    /// reinsertion already ran during the current top-level insertion.
    fn insert_at_level(
        &mut self,
        entry: Entry<D>,
        target_level: u8,
        reinserted_levels: &mut u64,
    ) -> Result<()> {
        debug_assert!(target_level < self.height);
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(self.height as usize);
        let mut page = self.root;
        let mut node = self.read_node(page)?;
        while node.level > target_level {
            let idx = choose_subtree(&node, &entry.mbr);
            path.push((page, idx));
            page = node.entries[idx].child_page();
            node = self.read_node(page)?;
        }
        node.entries.push(entry);
        self.add_and_treat(page, node, path, reinserted_levels)
    }

    /// Writes back a node that just gained an entry, handling overflow by
    /// forced reinsertion or split (propagating splits upward).
    fn add_and_treat(
        &mut self,
        page: PageId,
        mut node: Node<D>,
        mut path: Vec<(PageId, usize)>,
        reinserted_levels: &mut u64,
    ) -> Result<()> {
        if node.entries.len() <= self.max_entries {
            self.write_node(page, &node)?;
            return self.adjust_upward(&path, node.mbr());
        }

        let level = node.level;
        let is_root = path.is_empty();
        let level_bit = 1u64 << level;
        if !is_root && *reinserted_levels & level_bit == 0 {
            // Forced reinsertion (R* OverflowTreatment): evict the
            // `reinsert_count` entries whose centers lie farthest from the
            // node's center and re-insert them closest-first.
            *reinserted_levels |= level_bit;
            let node_center = node.mbr().center();
            let mut entries = std::mem::take(&mut node.entries);
            entries.sort_by(|a, b| {
                let da = Metric::Euclidean.distance(&a.mbr.center(), &node_center);
                let db = Metric::Euclidean.distance(&b.mbr.center(), &node_center);
                db.partial_cmp(&da).expect("finite centers")
            });
            let removed: Vec<Entry<D>> = entries.drain(..self.reinsert_count).collect();
            node.entries = entries;
            self.write_node(page, &node)?;
            self.adjust_upward(&path, node.mbr())?;
            for e in removed.into_iter().rev() {
                self.insert_at_level(e, level, reinserted_levels)?;
            }
            return Ok(());
        }

        // Split.
        let split = rstar_split(std::mem::take(&mut node.entries), self.min_entries);
        let original = Node {
            level,
            entries: split.first,
        };
        self.write_node(page, &original)?;
        let new_page = self.pool.allocate();
        let sibling = Node {
            level,
            entries: split.second,
        };
        self.write_node(new_page, &sibling)?;

        if is_root {
            let new_root = self.pool.allocate();
            let mut root_node = Node::new(level + 1);
            root_node.entries.push(Entry::child(split.first_mbr, page));
            root_node
                .entries
                .push(Entry::child(split.second_mbr, new_page));
            self.write_node(new_root, &root_node)?;
            self.root = new_root;
            self.height += 1;
            return Ok(());
        }

        let (parent_page, child_idx) = path.pop().expect("non-root has a parent");
        let mut parent = self.read_node(parent_page)?;
        debug_assert_eq!(parent.entries[child_idx].child_page(), page);
        parent.entries[child_idx].mbr = split.first_mbr;
        parent
            .entries
            .push(Entry::child(split.second_mbr, new_page));
        self.add_and_treat(parent_page, parent, path, reinserted_levels)
    }

    /// Refreshes ancestor entry MBRs along `path` after the child at the
    /// bottom changed shape to `child_mbr`.
    fn adjust_upward(&mut self, path: &[(PageId, usize)], mut child_mbr: Rect<D>) -> Result<()> {
        for &(page, idx) in path.iter().rev() {
            let mut node = self.read_node(page)?;
            if node.entries[idx].mbr == child_mbr {
                break; // Nothing changed; ancestors are already tight.
            }
            node.entries[idx].mbr = child_mbr;
            self.write_node(page, &node)?;
            child_mbr = node.mbr();
        }
        Ok(())
    }

    // ------------------------------------------------------------- delete

    /// Deletes the object `oid` whose MBR is `mbr`. Returns `true` if it was
    /// present.
    pub fn delete(&mut self, oid: ObjectId, mbr: &Rect<D>) -> Result<bool> {
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let Some((leaf_page, entry_idx)) = self.find_leaf(self.root, oid, mbr, &mut path)? else {
            return Ok(false);
        };
        let mut node = self.read_node(leaf_page)?;
        node.entries.remove(entry_idx);
        self.len -= 1;

        // Condense: walk up removing underflowing nodes, collecting their
        // surviving entries for re-insertion at their original level.
        let mut orphans: Vec<(Entry<D>, u8)> = Vec::new();
        let mut cur_page = leaf_page;
        let mut cur_node = node;
        loop {
            if path.is_empty() {
                // The root may underflow freely.
                self.write_node(cur_page, &cur_node)?;
                break;
            }
            if cur_node.entries.len() < self.min_entries {
                let level = cur_node.level;
                for e in cur_node.entries.drain(..) {
                    orphans.push((e, level));
                }
                self.pool.free(cur_page)?;
                let (parent_page, idx) = path.pop().expect("checked non-empty");
                let mut parent = self.read_node(parent_page)?;
                debug_assert_eq!(parent.entries[idx].child_page(), cur_page);
                parent.entries.remove(idx);
                cur_page = parent_page;
                cur_node = parent;
            } else {
                self.write_node(cur_page, &cur_node)?;
                self.adjust_upward(&path, cur_node.mbr())?;
                break;
            }
        }

        // Re-insert orphaned entries at their original levels (deepest
        // first so leaf objects keep the tree populated for higher levels).
        orphans.sort_by_key(|(_, level)| *level);
        for (entry, level) in orphans {
            let mut mask = 0u64;
            self.insert_at_level(entry, level, &mut mask)?;
        }

        // Shrink the root while it is an internal node with a single child
        // (or replace an empty internal root with an empty leaf).
        loop {
            let root_node = self.read_node(self.root)?;
            if root_node.is_leaf() {
                break;
            }
            match root_node.entries.len() {
                0 => {
                    self.write_node(self.root, &Node::new(0))?;
                    self.height = 1;
                    break;
                }
                1 => {
                    let child = root_node.entries[0].child_page();
                    self.pool.free(self.root)?;
                    self.root = child;
                    self.height -= 1;
                }
                _ => break,
            }
        }
        Ok(true)
    }

    /// Finds the leaf holding `oid`, recording the root-to-parent path as
    /// `(page, child index)` pairs. Returns the leaf page and entry index.
    fn find_leaf(
        &self,
        page: PageId,
        oid: ObjectId,
        mbr: &Rect<D>,
        path: &mut Vec<(PageId, usize)>,
    ) -> Result<Option<(PageId, usize)>> {
        let node = self.read_node(page)?;
        if node.is_leaf() {
            for (i, e) in node.entries.iter().enumerate() {
                if e.object_id() == oid {
                    return Ok(Some((page, i)));
                }
            }
            return Ok(None);
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.mbr.contains_rect(mbr) {
                path.push((page, i));
                if let Some(found) = self.find_leaf(e.child_page(), oid, mbr, path)? {
                    return Ok(Some(found));
                }
                path.pop();
            }
        }
        Ok(None)
    }

    // ------------------------------------------------------------- queries

    /// All objects whose MBR intersects `window`, as `(id, mbr)` pairs.
    pub fn query_window(&self, window: &Rect<D>) -> Result<Vec<(ObjectId, Rect<D>)>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            for e in &node.entries {
                if e.mbr.intersects(window) {
                    if node.is_leaf() {
                        out.push((e.object_id(), e.mbr));
                    } else {
                        stack.push(e.child_page());
                    }
                }
            }
        }
        Ok(out)
    }

    /// All objects in the tree, as `(id, mbr)` pairs (leaf scan order).
    pub fn all_objects(&self) -> Result<Vec<(ObjectId, Rect<D>)>> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            for e in &node.entries {
                if node.is_leaf() {
                    out.push((e.object_id(), e.mbr));
                } else {
                    stack.push(e.child_page());
                }
            }
        }
        Ok(out)
    }
}

/// R* ChooseSubtree: pick the child entry that needs the least (overlap or
/// area) enlargement to accommodate `mbr`.
fn choose_subtree<const D: usize>(node: &Node<D>, mbr: &Rect<D>) -> usize {
    debug_assert!(!node.is_leaf());
    debug_assert!(!node.entries.is_empty());
    if node.level == 1 {
        // Children are leaves: minimise overlap enlargement, ties by area
        // enlargement, then by area.
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let enlarged = e.mbr.union(mbr);
            let mut overlap_delta = 0.0;
            for (j, other) in node.entries.iter().enumerate() {
                if i != j {
                    overlap_delta +=
                        enlarged.overlap_area(&other.mbr) - e.mbr.overlap_area(&other.mbr);
                }
            }
            let key = (overlap_delta, e.mbr.enlargement(mbr), e.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        // Children are internal: minimise area enlargement, ties by area.
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let key = (e.mbr.enlargement(mbr), e.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Point;

    fn pt(x: f64, y: f64) -> Rect<2> {
        Point::xy(x, y).to_rect()
    }

    fn grid_tree(n: usize, fanout: usize) -> RTree<2> {
        let mut tree = RTree::new(RTreeConfig::small(fanout));
        let side = (n as f64).sqrt().ceil() as usize;
        for i in 0..n {
            let (x, y) = ((i % side) as f64, (i / side) as f64);
            tree.insert(ObjectId(i as u64), pt(x, y)).unwrap();
        }
        tree
    }

    #[test]
    fn insert_and_len() {
        let tree = grid_tree(100, 4);
        assert_eq!(tree.len(), 100);
        assert!(tree.height() > 1);
        tree.validate().unwrap();
    }

    #[test]
    fn all_objects_complete() {
        let tree = grid_tree(77, 5);
        let mut ids: Vec<u64> = tree
            .all_objects()
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..77).collect::<Vec<u64>>());
    }

    #[test]
    fn window_query_matches_linear_scan() {
        let tree = grid_tree(100, 4);
        let window = Rect::new([2.5, 2.5], [6.5, 7.5]);
        let mut got: Vec<u64> = tree
            .query_window(&window)
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = (0..100u64)
            .filter(|i| {
                let (x, y) = ((i % 10) as f64, (i / 10) as f64);
                window.contains_point(&Point::xy(x, y))
            })
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_removes_and_keeps_invariants() {
        let mut tree = grid_tree(60, 4);
        for i in (0..60u64).step_by(2) {
            let (x, y) = ((i % 8) as f64, (i / 8) as f64);
            assert!(tree.delete(ObjectId(i), &pt(x, y)).unwrap());
            tree.validate().unwrap();
        }
        assert_eq!(tree.len(), 30);
        let ids: Vec<u64> = tree
            .all_objects()
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        assert!(ids.iter().all(|i| i % 2 == 1));
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut tree = grid_tree(10, 4);
        assert!(!tree.delete(ObjectId(999), &pt(0.0, 0.0)).unwrap());
        assert_eq!(tree.len(), 10);
    }

    #[test]
    fn delete_everything_leaves_empty_tree() {
        let mut tree = grid_tree(30, 4);
        let side = (30f64).sqrt().ceil() as usize;
        for i in 0..30u64 {
            let (x, y) = ((i as usize % side) as f64, (i as usize / side) as f64);
            assert!(tree.delete(ObjectId(i), &pt(x, y)).unwrap());
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate().unwrap();
        assert!(tree.mbr().unwrap().is_empty());
    }

    #[test]
    fn io_stats_accumulate() {
        let tree = grid_tree(200, 4);
        tree.reset_io_stats();
        let _ = tree
            .query_window(&Rect::new([0.0, 0.0], [20.0, 20.0]))
            .unwrap();
        let stats = tree.io_stats();
        assert!(stats.accesses() > 0);
    }

    #[test]
    fn min_subtree_objects_bounds() {
        let tree = grid_tree(500, 5);
        // Non-root leaf holds at least min_entries objects.
        let m = tree.min_entries() as u64;
        assert_eq!(tree.min_subtree_objects(0, false), m);
        assert_eq!(tree.min_subtree_objects(1, false), m * m);
        assert_eq!(tree.min_subtree_objects(3, true), 1);
    }

    #[test]
    fn duplicate_points_supported() {
        let mut tree = RTree::new(RTreeConfig::small(4));
        for i in 0..50u64 {
            tree.insert(ObjectId(i), pt(1.0, 1.0)).unwrap();
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), 50);
        assert_eq!(
            tree.query_window(&Rect::new([1.0, 1.0], [1.0, 1.0]))
                .unwrap()
                .len(),
            50
        );
    }

    #[test]
    fn rect_objects_supported() {
        let mut tree = RTree::new(RTreeConfig::small(4));
        for i in 0..40u64 {
            let x = (i % 8) as f64 * 3.0;
            let y = (i / 8) as f64 * 3.0;
            tree.insert(ObjectId(i), Rect::new([x, y], [x + 2.0, y + 2.0]))
                .unwrap();
        }
        tree.validate().unwrap();
        let hits = tree
            .query_window(&Rect::new([0.0, 0.0], [4.0, 4.0]))
            .unwrap();
        assert!(hits.len() >= 4);
    }
}
