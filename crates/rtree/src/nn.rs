//! Incremental nearest-neighbour search (Hjaltason & Samet 1995).
//!
//! This is the single-tree ancestor of the incremental distance join: a
//! priority queue holds nodes and objects keyed by their MINDIST to the
//! query point; popping an object reports it as the next nearest neighbour,
//! popping a node enqueues its entries. The distance-join paper (§2.2) calls
//! `PROCESS_NODE1`/`PROCESS_NODE2` "essentially the same as the basic loop of
//! the nearest neighbor algorithm".
//!
//! The iterator is used directly by the baseline semi-join implementation
//! (§4.2.3: "for each object in relation A, we perform a nearest neighbor
//! computation in relation B").

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sdj_geom::{Metric, OrdF64, Point, Rect};
use sdj_storage::{PageId, Result};

use crate::entry::ObjectId;
use crate::tree::RTree;

/// One result of the incremental nearest-neighbour iterator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<const D: usize> {
    /// The neighbour's object id.
    pub oid: ObjectId,
    /// The neighbour's bounding rectangle (the point itself for point data).
    pub mbr: Rect<D>,
    /// Distance from the query point.
    pub distance: f64,
}

enum QueueItem<const D: usize> {
    Node(PageId),
    Object(ObjectId, Rect<D>),
}

struct QueueElem<const D: usize> {
    key: OrdF64,
    /// Pops objects before nodes at equal distance so results stream out as
    /// early as possible.
    object_first: bool,
    seq: u64,
    item: QueueItem<D>,
}

impl<const D: usize> PartialEq for QueueElem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<const D: usize> Eq for QueueElem<D> {}
impl<const D: usize> PartialOrd for QueueElem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for QueueElem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-order on (key, ¬object, seq).
        other
            .key
            .cmp(&self.key)
            .then_with(|| self.object_first.cmp(&other.object_first))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Iterator yielding the objects of an [`RTree`] in increasing distance from
/// a query point.
pub struct NearestNeighbors<'t, const D: usize> {
    tree: &'t RTree<D>,
    query: Point<D>,
    metric: Metric,
    heap: BinaryHeap<QueueElem<D>>,
    seq: u64,
    /// Pending I/O or decoding error, reported once by `next()`.
    error: Option<sdj_storage::StorageError>,
}

impl<'t, const D: usize> NearestNeighbors<'t, D> {
    /// Starts an incremental nearest-neighbour search from `query`.
    #[must_use]
    pub fn new(tree: &'t RTree<D>, query: Point<D>, metric: Metric) -> Self {
        let mut nn = Self {
            tree,
            query,
            metric,
            heap: BinaryHeap::new(),
            seq: 0,
            error: None,
        };
        if !tree.is_empty() {
            nn.push(OrdF64::ZERO, QueueItem::Node(tree.root_id()));
        }
        nn
    }

    fn push(&mut self, key: OrdF64, item: QueueItem<D>) {
        let object_first = matches!(item, QueueItem::Object(..));
        self.heap.push(QueueElem {
            key,
            object_first,
            seq: self.seq,
            item,
        });
        self.seq += 1;
    }

    /// Takes a pending error, if iteration stopped because of one.
    pub fn take_error(&mut self) -> Option<sdj_storage::StorageError> {
        self.error.take()
    }

    fn step(&mut self) -> Result<Option<Neighbor<D>>> {
        while let Some(elem) = self.heap.pop() {
            match elem.item {
                QueueItem::Object(oid, mbr) => {
                    return Ok(Some(Neighbor {
                        oid,
                        mbr,
                        distance: elem.key.get(),
                    }));
                }
                QueueItem::Node(page) => {
                    let node = self.tree.read_node(page)?;
                    for e in &node.entries {
                        let d = self.metric.mindist_point_rect(&self.query, &e.mbr);
                        let item = if node.is_leaf() {
                            QueueItem::Object(e.object_id(), e.mbr)
                        } else {
                            QueueItem::Node(e.child_page())
                        };
                        self.push(OrdF64::new(d), item);
                    }
                }
            }
        }
        Ok(None)
    }
}

impl<const D: usize> Iterator for NearestNeighbors<'_, D> {
    type Item = Neighbor<D>;

    fn next(&mut self) -> Option<Neighbor<D>> {
        match self.step() {
            Ok(n) => n,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

impl<const D: usize> RTree<D> {
    /// Objects of the tree in increasing distance from `query`.
    #[must_use]
    pub fn nearest_neighbors(&self, query: Point<D>, metric: Metric) -> NearestNeighbors<'_, D> {
        NearestNeighbors::new(self, query, metric)
    }

    /// The `k` nearest objects to `query`, in increasing distance order
    /// (fewer if the tree holds fewer objects).
    pub fn k_nearest(&self, query: Point<D>, k: usize, metric: Metric) -> Vec<Neighbor<D>> {
        self.nearest_neighbors(query, metric).take(k).collect()
    }

    /// Objects within `radius` of `query`, in increasing distance order.
    /// Stops traversal as soon as the next candidate exceeds the radius.
    pub fn neighbors_within(
        &self,
        query: Point<D>,
        radius: f64,
        metric: Metric,
    ) -> impl Iterator<Item = Neighbor<D>> + '_ {
        self.nearest_neighbors(query, metric)
            .take_while(move |n| n.distance <= radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_tree(n: usize, seed: u64) -> (RTree<2>, Vec<Point<2>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::new(RTreeConfig::small(8));
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let p = Point::xy(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0));
            tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
            pts.push(p);
        }
        (tree, pts)
    }

    #[test]
    fn yields_all_in_distance_order() {
        let (tree, pts) = random_tree(300, 7);
        let q = Point::xy(50.0, 50.0);
        let results: Vec<Neighbor<2>> = tree.nearest_neighbors(q, Metric::Euclidean).collect();
        assert_eq!(results.len(), pts.len());
        for w in results.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // First result matches a linear scan.
        let best = pts
            .iter()
            .map(|p| Metric::Euclidean.distance(&q, p))
            .fold(f64::INFINITY, f64::min);
        assert!((results[0].distance - best).abs() < 1e-9);
    }

    #[test]
    fn distances_match_linear_scan_for_k() {
        let (tree, pts) = random_tree(200, 99);
        let q = Point::xy(10.0, 90.0);
        let mut brute: Vec<f64> = pts
            .iter()
            .map(|p| Metric::Euclidean.distance(&q, p))
            .collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f64> = tree
            .nearest_neighbors(q, Metric::Euclidean)
            .take(25)
            .map(|n| n.distance)
            .collect();
        for (g, b) in got.iter().zip(&brute) {
            assert!((g - b).abs() < 1e-9);
        }
    }

    #[test]
    fn works_with_all_metrics() {
        let (tree, pts) = random_tree(100, 3);
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chessboard] {
            let q = Point::xy(42.0, 17.0);
            let first = tree.nearest_neighbors(q, metric).next().unwrap();
            let best = pts
                .iter()
                .map(|p| metric.distance(&q, p))
                .fold(f64::INFINITY, f64::min);
            assert!((first.distance - best).abs() < 1e-9, "{metric:?}");
        }
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let tree: RTree<2> = RTree::new(RTreeConfig::small(4));
        assert_eq!(
            tree.nearest_neighbors(Point::xy(0.0, 0.0), Metric::Euclidean)
                .count(),
            0
        );
    }

    #[test]
    fn k_nearest_and_within() {
        let (tree, pts) = random_tree(250, 21);
        let q = Point::xy(30.0, 60.0);
        let k = tree.k_nearest(q, 12, Metric::Euclidean);
        assert_eq!(k.len(), 12);
        let mut brute: Vec<f64> = pts
            .iter()
            .map(|p| Metric::Euclidean.distance(&q, p))
            .collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (n, b) in k.iter().zip(&brute) {
            assert!((n.distance - b).abs() < 1e-9);
        }
        let radius = brute[30];
        let within: Vec<_> = tree
            .neighbors_within(q, radius, Metric::Euclidean)
            .collect();
        let want = brute.iter().filter(|d| **d <= radius).count();
        assert_eq!(within.len(), want);
        assert!(within.iter().all(|n| n.distance <= radius));
    }

    #[test]
    fn early_termination_is_cheap() {
        let (tree, _) = random_tree(500, 11);
        tree.reset_io_stats();
        let _first = tree
            .nearest_neighbors(Point::xy(50.0, 50.0), Metric::Euclidean)
            .next()
            .unwrap();
        let one = tree.io_stats().accesses();
        tree.reset_io_stats();
        let _all: Vec<_> = tree
            .nearest_neighbors(Point::xy(50.0, 50.0), Metric::Euclidean)
            .collect();
        let all = tree.io_stats().accesses();
        assert!(
            one * 5 < all,
            "first neighbour should touch far fewer nodes ({one} vs {all})"
        );
    }
}
