//! Node entries: (bounding rectangle, pointer) pairs.

use sdj_geom::Rect;
use sdj_storage::PageId;

/// Identifier of a data object (e.g. a tuple id in a relational system).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

/// What an entry points at: a data object (leaf nodes) or a child node
/// (internal nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryPtr {
    /// Leaf entry payload.
    Object(ObjectId),
    /// Internal entry payload.
    Child(PageId),
}

/// One `(key, pointer)` entry of an R-tree node (§2.1): `mbr` minimally
/// bounds everything reachable through `ptr`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry<const D: usize> {
    /// Minimal bounding rectangle of the referenced object or subtree.
    pub mbr: Rect<D>,
    /// The referenced object or child node.
    pub ptr: EntryPtr,
}

impl<const D: usize> Entry<D> {
    /// Creates a leaf entry.
    #[must_use]
    pub fn object(mbr: Rect<D>, oid: ObjectId) -> Self {
        Self {
            mbr,
            ptr: EntryPtr::Object(oid),
        }
    }

    /// Creates an internal entry.
    #[must_use]
    pub fn child(mbr: Rect<D>, page: PageId) -> Self {
        Self {
            mbr,
            ptr: EntryPtr::Child(page),
        }
    }

    /// The object id of a leaf entry.
    ///
    /// # Panics
    /// Panics if this is an internal entry.
    #[must_use]
    pub fn object_id(&self) -> ObjectId {
        match self.ptr {
            EntryPtr::Object(oid) => oid,
            EntryPtr::Child(_) => panic!("object_id() on an internal entry"),
        }
    }

    /// The child page of an internal entry.
    ///
    /// # Panics
    /// Panics if this is a leaf entry.
    #[must_use]
    pub fn child_page(&self) -> PageId {
        match self.ptr {
            EntryPtr::Child(page) => page,
            EntryPtr::Object(_) => panic!("child_page() on a leaf entry"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let e = Entry::object(r, ObjectId(7));
        assert_eq!(e.object_id(), ObjectId(7));
        let c = Entry::child(r, PageId(3));
        assert_eq!(c.child_page(), PageId(3));
    }

    #[test]
    #[should_panic(expected = "internal entry")]
    fn object_id_on_child_panics() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let _ = Entry::<2>::child(r, PageId(3)).object_id();
    }

    #[test]
    #[should_panic(expected = "leaf entry")]
    fn child_page_on_object_panics() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let _ = Entry::<2>::object(r, ObjectId(1)).child_page();
    }
}
