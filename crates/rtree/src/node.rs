//! In-memory node representation and its page serialization.
//!
//! Page layout (little endian):
//!
//! ```text
//! offset 0: level  u8   (0 = leaf)
//! offset 1: count  u16
//! offset 3: pad    u8
//! offset 4: entries[count], each:
//!     ptr   u64            (object id, or page id in the low 32 bits)
//!     lo[D] f64 × D
//!     hi[D] f64 × D
//! ```
//!
//! Entries have the same size at every level, so one capacity bound applies
//! to leaves and internal nodes alike.

use sdj_geom::Rect;
use sdj_storage::codec::{PageReader, PageWriter};
use sdj_storage::{PageId, Result, StorageError};

use crate::entry::{Entry, EntryPtr, ObjectId};

/// Bytes of the fixed node header.
pub const HEADER_SIZE: usize = 4;

/// Serialized size of one entry in dimension `D`.
#[must_use]
pub const fn entry_size<const D: usize>() -> usize {
    8 + 16 * D
}

/// Number of entries that fit in a page of `page_size` bytes.
#[must_use]
pub const fn node_capacity<const D: usize>(page_size: usize) -> usize {
    (page_size - HEADER_SIZE) / entry_size::<D>()
}

/// A deserialized R-tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct Node<const D: usize> {
    /// Level of the node: 0 for leaves, increasing towards the root.
    pub level: u8,
    /// The node's entries.
    pub entries: Vec<Entry<D>>,
}

impl<const D: usize> Node<D> {
    /// Creates an empty node at `level`.
    #[must_use]
    pub fn new(level: u8) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaf nodes.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Minimal bounding rectangle of all entries ([`Rect::empty`] when the
    /// node has none).
    #[must_use]
    pub fn mbr(&self) -> Rect<D> {
        self.entries
            .iter()
            .fold(Rect::empty(), |acc, e| acc.union(&e.mbr))
    }

    /// Serializes the node into a page buffer.
    pub fn encode(&self, buf: &mut [u8]) -> Result<()> {
        let mut w = PageWriter::new(buf);
        w.put_u8(self.level)?;
        let count = u16::try_from(self.entries.len())
            .map_err(|_| StorageError::Corrupt("node entry count exceeds u16"))?;
        w.put_u16(count)?;
        w.put_u8(0)?; // pad
        for e in &self.entries {
            let ptr_bits = match e.ptr {
                EntryPtr::Object(oid) => {
                    debug_assert!(self.level == 0, "object entry in internal node");
                    oid.0
                }
                EntryPtr::Child(page) => {
                    debug_assert!(self.level > 0, "child entry in leaf node");
                    u64::from(page.0)
                }
            };
            w.put_u64(ptr_bits)?;
            for a in 0..D {
                w.put_f64(e.mbr.lo()[a])?;
            }
            for a in 0..D {
                w.put_f64(e.mbr.hi()[a])?;
            }
        }
        Ok(())
    }

    /// Deserializes a node from a page buffer.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let (level, count) = Self::decode_header(buf)?;
        let mut r = PageReader::new(buf);
        r.skip(HEADER_SIZE)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(Self::decode_entry(&mut r, level)?);
        }
        Ok(Self { level, entries })
    }

    /// Deserializes a node, streaming each entry through `f(level, &entry)`
    /// instead of collecting a `Vec`. Returns the node's level.
    ///
    /// This is the allocation-free read path: callers with a reusable buffer
    /// (the join's struct-of-arrays node views) decode a page without any
    /// per-read heap traffic.
    pub fn scan(buf: &[u8], mut f: impl FnMut(u8, &Entry<D>)) -> Result<u8> {
        let (level, count) = Self::decode_header(buf)?;
        let mut r = PageReader::new(buf);
        r.skip(HEADER_SIZE)?;
        for _ in 0..count {
            let entry = Self::decode_entry(&mut r, level)?;
            f(level, &entry);
        }
        Ok(level)
    }

    /// Parses and validates the fixed node header: `(level, entry count)`.
    fn decode_header(buf: &[u8]) -> Result<(u8, usize)> {
        let mut r = PageReader::new(buf);
        let level = r.get_u8()?;
        let count = r.get_u16()? as usize;
        r.skip(1)?;
        if count > node_capacity::<D>(buf.len()) {
            return Err(StorageError::Corrupt("node entry count exceeds capacity"));
        }
        Ok((level, count))
    }

    /// Parses one entry at the reader's position for a node at `level`.
    fn decode_entry(r: &mut PageReader<'_>, level: u8) -> Result<Entry<D>> {
        let ptr_bits = r.get_u64()?;
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for v in &mut lo {
            *v = r.get_f64()?;
        }
        for v in &mut hi {
            *v = r.get_f64()?;
        }
        for a in 0..D {
            if !lo[a].is_finite() || !hi[a].is_finite() || lo[a] > hi[a] {
                return Err(StorageError::Corrupt("invalid entry rectangle"));
            }
        }
        let mbr = Rect::new(lo, hi);
        let ptr = if level == 0 {
            EntryPtr::Object(ObjectId(ptr_bits))
        } else {
            let page = u32::try_from(ptr_bits)
                .map_err(|_| StorageError::Corrupt("child page id exceeds u32"))?;
            EntryPtr::Child(PageId(page))
        };
        Ok(Entry { mbr, ptr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Node<2> {
        let mut n = Node::new(0);
        n.entries.push(Entry::object(
            Rect::new([0.0, 1.0], [2.0, 3.0]),
            ObjectId(42),
        ));
        n.entries.push(Entry::object(
            Rect::new([-5.0, -5.0], [-1.0, -1.0]),
            ObjectId(u64::MAX / 2),
        ));
        n
    }

    #[test]
    fn leaf_roundtrip() {
        let n = leaf();
        let mut buf = vec![0u8; 256];
        n.encode(&mut buf).unwrap();
        let back = Node::<2>::decode(&buf).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn internal_roundtrip() {
        let mut n: Node<2> = Node::new(3);
        n.entries
            .push(Entry::child(Rect::new([0.0, 0.0], [9.0, 9.0]), PageId(17)));
        let mut buf = vec![0u8; 256];
        n.encode(&mut buf).unwrap();
        let back = Node::<2>::decode(&buf).unwrap();
        assert_eq!(n, back);
        assert!(!back.is_leaf());
    }

    #[test]
    fn scan_streams_same_entries_as_decode() {
        let n = leaf();
        let mut buf = vec![0u8; 256];
        n.encode(&mut buf).unwrap();
        let mut streamed = Vec::new();
        let level = Node::<2>::scan(&buf, |lvl, e| {
            assert_eq!(lvl, n.level);
            streamed.push(*e);
        })
        .unwrap();
        assert_eq!(level, n.level);
        assert_eq!(streamed, n.entries);
    }

    #[test]
    fn mbr_of_entries() {
        let n = leaf();
        assert_eq!(n.mbr(), Rect::new([-5.0, -5.0], [2.0, 3.0]));
        assert!(Node::<2>::new(0).mbr().is_empty());
    }

    #[test]
    fn capacity_math() {
        assert_eq!(entry_size::<2>(), 40);
        assert_eq!(node_capacity::<2>(2048), 51);
        assert_eq!(node_capacity::<3>(1024), 18);
    }

    #[test]
    fn encode_overflow_detected() {
        let n = leaf();
        let mut buf = vec![0u8; HEADER_SIZE + entry_size::<2>()]; // room for 1
        assert!(n.encode(&mut buf).is_err());
    }

    #[test]
    fn decode_rejects_bogus_count() {
        let mut buf = vec![0u8; 64];
        buf[0] = 0;
        buf[1] = 0xFF; // count = 255, impossible in 64 bytes
        buf[2] = 0x00;
        assert!(matches!(
            Node::<2>::decode(&buf),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_rejects_nonfinite_rect() {
        let mut n: Node<2> = Node::new(0);
        n.entries.push(Entry::object(
            Rect::new([0.0, 0.0], [1.0, 1.0]),
            ObjectId(1),
        ));
        let mut buf = vec![0u8; 128];
        n.encode(&mut buf).unwrap();
        // Corrupt the first coordinate with NaN bits.
        buf[HEADER_SIZE + 8..HEADER_SIZE + 16].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            Node::<2>::decode(&buf),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_node_roundtrip() {
        let n: Node<2> = Node::new(5);
        let mut buf = vec![0u8; 64];
        n.encode(&mut buf).unwrap();
        let back = Node::<2>::decode(&buf).unwrap();
        assert_eq!(back.level, 5);
        assert!(back.entries.is_empty());
    }
}
