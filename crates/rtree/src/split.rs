//! The R*-tree topological split (Beckmann et al. 1990, §4.2).
//!
//! `ChooseSplitAxis` sorts the entries by lower and by upper rectangle value
//! on each axis and sums the margins of all legal distributions; the axis
//! with the smallest margin sum wins. `ChooseSplitIndex` then picks, on that
//! axis, the distribution with the least overlap between the two groups
//! (ties broken by combined area).

use sdj_geom::Rect;

use crate::entry::Entry;

/// Result of splitting an overflowing entry list in two.
#[derive(Debug)]
pub struct Split<const D: usize> {
    /// First group (stays in the original node).
    pub first: Vec<Entry<D>>,
    /// Bounding rectangle of the first group.
    pub first_mbr: Rect<D>,
    /// Second group (moves to the new node).
    pub second: Vec<Entry<D>>,
    /// Bounding rectangle of the second group.
    pub second_mbr: Rect<D>,
}

/// Bounding rectangle of a slice of entries.
fn mbr_of<const D: usize>(entries: &[Entry<D>]) -> Rect<D> {
    entries
        .iter()
        .fold(Rect::empty(), |acc, e| acc.union(&e.mbr))
}

/// All legal distributions of a sorted entry list: the first group takes
/// `min_entries - 1 + k` entries for `k = 1 ..= max - 2*min + 2`.
fn distributions(total: usize, min_entries: usize) -> impl Iterator<Item = usize> {
    min_entries..=(total - min_entries)
}

/// Splits `entries` (which overflowed: `len == max_entries + 1`) into two
/// groups, each holding at least `min_entries`.
///
/// # Panics
/// Panics if fewer than `2 * min_entries` entries are supplied.
pub fn rstar_split<const D: usize>(mut entries: Vec<Entry<D>>, min_entries: usize) -> Split<D> {
    let total = entries.len();
    assert!(
        total >= 2 * min_entries,
        "cannot split {total} entries with minimum {min_entries}"
    );

    // ChooseSplitAxis: for each axis, the margin sum over both sort orders
    // and all distributions.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin_sum = 0.0;
        for sort_by_upper in [false, true] {
            sort_entries(&mut entries, axis, sort_by_upper);
            for split_at in distributions(total, min_entries) {
                margin_sum += mbr_of(&entries[..split_at]).margin();
                margin_sum += mbr_of(&entries[split_at..]).margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex on the winning axis: least overlap, ties by least
    // combined area, over both sort orders.
    let mut best: Option<(f64, f64, bool, usize)> = None;
    for sort_by_upper in [false, true] {
        sort_entries(&mut entries, best_axis, sort_by_upper);
        for split_at in distributions(total, min_entries) {
            let left = mbr_of(&entries[..split_at]);
            let right = mbr_of(&entries[split_at..]);
            let overlap = left.overlap_area(&right);
            let area = left.area() + right.area();
            let candidate = (overlap, area, sort_by_upper, split_at);
            let better = match &best {
                None => true,
                Some((o, a, _, _)) => overlap < *o || (overlap == *o && area < *a),
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    let (_, _, sort_by_upper, split_at) = best.expect("at least one distribution");
    sort_entries(&mut entries, best_axis, sort_by_upper);
    let second = entries.split_off(split_at);
    let first_mbr = mbr_of(&entries);
    let second_mbr = mbr_of(&second);
    Split {
        first: entries,
        first_mbr,
        second,
        second_mbr,
    }
}

fn sort_entries<const D: usize>(entries: &mut [Entry<D>], axis: usize, by_upper: bool) {
    // Sort by (lo, hi) or (hi, lo) on the axis, as in the R* paper.
    entries.sort_by(|a, b| {
        let ka = if by_upper {
            (a.mbr.hi()[axis], a.mbr.lo()[axis])
        } else {
            (a.mbr.lo()[axis], a.mbr.hi()[axis])
        };
        let kb = if by_upper {
            (b.mbr.hi()[axis], b.mbr.lo()[axis])
        } else {
            (b.mbr.lo()[axis], b.mbr.hi()[axis])
        };
        ka.partial_cmp(&kb).expect("finite rectangle coordinates")
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectId;
    use proptest::prelude::*;

    fn obj(lo: [f64; 2], hi: [f64; 2], id: u64) -> Entry<2> {
        Entry::object(Rect::new(lo, hi), ObjectId(id))
    }

    #[test]
    fn splits_two_clusters_cleanly() {
        // Two well-separated clusters along x; the split must not mix them.
        let mut entries = Vec::new();
        for i in 0..4 {
            let x = i as f64;
            entries.push(obj([x, 0.0], [x + 0.5, 1.0], i));
        }
        for i in 0..4 {
            let x = 100.0 + i as f64;
            entries.push(obj([x, 0.0], [x + 0.5, 1.0], 100 + i));
        }
        let split = rstar_split(entries, 2);
        assert_eq!(split.first.len() + split.second.len(), 8);
        let (left, right) = if split.first_mbr.lo()[0] < 50.0 {
            (&split.first, &split.second)
        } else {
            (&split.second, &split.first)
        };
        assert!(left.iter().all(|e| e.mbr.hi()[0] < 50.0));
        assert!(right.iter().all(|e| e.mbr.lo()[0] > 50.0));
        assert_eq!(split.first_mbr.overlap_area(&split.second_mbr), 0.0);
    }

    #[test]
    fn respects_min_entries() {
        let entries: Vec<Entry<2>> = (0..11)
            .map(|i| obj([i as f64, 0.0], [i as f64 + 0.1, 0.1], i))
            .collect();
        let split = rstar_split(entries, 4);
        assert!(split.first.len() >= 4);
        assert!(split.second.len() >= 4);
    }

    #[test]
    fn picks_axis_with_better_separation() {
        // Entries spread along y, overlapping in x: split axis must be y.
        let entries: Vec<Entry<2>> = (0..6)
            .map(|i| obj([0.0, 10.0 * i as f64], [1.0, 10.0 * i as f64 + 1.0], i))
            .collect();
        let split = rstar_split(entries, 2);
        // Groups separated in y, fully overlapping ranges in x.
        assert!(
            split.first_mbr.hi()[1] <= split.second_mbr.lo()[1]
                || split.second_mbr.hi()[1] <= split.first_mbr.lo()[1]
        );
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_few_entries_panics() {
        let entries: Vec<Entry<2>> = (0..3)
            .map(|i| obj([i as f64, 0.0], [i as f64, 0.0], i))
            .collect();
        let _ = rstar_split(entries, 2);
    }

    proptest! {
        /// Every entry ends up in exactly one group, group sizes respect the
        /// minimum, and group MBRs bound their members.
        #[test]
        fn split_partition_invariants(
            coords in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64, 0.0..5.0f64, 0.0..5.0f64), 8..40),
            min_entries in 2usize..4,
        ) {
            let entries: Vec<Entry<2>> = coords
                .iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| obj([*x, *y], [x + w, y + h], i as u64))
                .collect();
            let total = entries.len();
            prop_assume!(total >= 2 * min_entries);
            let split = rstar_split(entries, min_entries);
            prop_assert_eq!(split.first.len() + split.second.len(), total);
            prop_assert!(split.first.len() >= min_entries);
            prop_assert!(split.second.len() >= min_entries);
            for e in &split.first {
                prop_assert!(split.first_mbr.contains_rect(&e.mbr));
            }
            for e in &split.second {
                prop_assert!(split.second_mbr.contains_rect(&e.mbr));
            }
            // No duplicated or lost ids.
            let mut ids: Vec<u64> = split
                .first
                .iter()
                .chain(&split.second)
                .map(|e| e.object_id().0)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), total);
        }
    }
}
