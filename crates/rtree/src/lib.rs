//! A disk-resident R*-tree.
//!
//! This crate implements the spatial index used throughout the paper's
//! evaluation (§2.1/§3.1): an R*-tree (Beckmann et al. 1990) whose nodes each
//! occupy one page of the simulated disk from `sdj-storage`, read and written
//! through an LRU buffer pool so that every experiment can report node I/O.
//!
//! Features:
//!
//! * insertion with R* ChooseSubtree, forced reinsertion and the R*
//!   topological split,
//! * deletion with condense-tree re-insertion,
//! * Sort-Tile-Recursive bulk loading,
//! * window queries,
//! * the incremental nearest-neighbour iterator of Hjaltason & Samet (1995),
//!   which §2.2 of the distance-join paper generalises to pairs,
//! * a structural invariant checker used by the test suites.
//!
//! The tree is generic in the dimension `D`. Leaf entries hold an object id
//! plus the object's minimal bounding rectangle; for point data the MBR *is*
//! the point, which matches the paper's "objects represented directly in the
//! leaves" configuration.

mod bulk;
mod config;
mod entry;
mod nn;
mod node;
mod persist;
mod split;
mod tree;
mod validate;

pub use config::RTreeConfig;
pub use entry::{Entry, EntryPtr, ObjectId};
pub use nn::{NearestNeighbors, Neighbor};
pub use node::Node;
pub use tree::RTree;

pub use sdj_storage::{PageId, PoolStats};
