//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Packs a static data set into a tree bottom-up: entries are sorted by
//! center along axis 0, tiled into slabs, each slab sorted along the next
//! axis, and so on; runs of `capacity` entries become nodes. Loading is much
//! faster than repeated insertion and yields well-clustered leaves, at the
//! cost of not guaranteeing the R* minimum fill in the final node of each
//! run (the paper's trees are insertion-built; benches use bulk loading only
//! where tree construction is not the quantity being measured).

use sdj_geom::Rect;

use crate::config::RTreeConfig;
use crate::entry::{Entry, ObjectId};
use crate::node::Node;
use crate::tree::RTree;

impl<const D: usize> RTree<D> {
    /// Builds a tree from `(id, mbr)` pairs using STR packing.
    ///
    /// # Panics
    /// Panics if any MBR is empty or non-finite.
    #[must_use]
    pub fn bulk_load(config: RTreeConfig, items: Vec<(ObjectId, Rect<D>)>) -> Self {
        let mut tree = RTree::new(config);
        if items.is_empty() {
            return tree;
        }
        for (_, mbr) in &items {
            assert!(mbr.is_finite(), "object MBR must be finite and non-empty");
        }
        let capacity = tree.max_entries();
        let len = items.len();

        // Pack leaf entries into leaf nodes.
        let entries: Vec<Entry<D>> = items
            .into_iter()
            .map(|(oid, mbr)| Entry::object(mbr, oid))
            .collect();
        let mut level: u8 = 0;
        let mut current: Vec<Entry<D>> = entries;
        loop {
            let groups = str_tile(current, capacity, 0);
            let mut parent_entries: Vec<Entry<D>> = Vec::with_capacity(groups.len());
            let single = groups.len() == 1;
            for group in groups {
                let node = Node {
                    level,
                    entries: group,
                };
                let mbr = node.mbr();
                let page = tree.allocate_page();
                tree.write_node(page, &node).expect("bulk node fits page");
                parent_entries.push(Entry::child(mbr, page));
            }
            if single {
                // The only group became the root.
                let root = parent_entries[0].child_page();
                tree.set_shape(root, level + 1, len);
                break;
            }
            current = parent_entries;
            level += 1;
        }
        tree
    }
}

/// Recursively tiles `entries` into groups of at most `capacity`, sorted by
/// MBR center along `axis`, then sub-tiled along the following axes.
fn str_tile<const D: usize>(
    mut entries: Vec<Entry<D>>,
    capacity: usize,
    axis: usize,
) -> Vec<Vec<Entry<D>>> {
    if entries.len() <= capacity {
        return vec![entries];
    }
    entries.sort_by(|a, b| {
        a.mbr
            .center()
            .coord(axis)
            .partial_cmp(&b.mbr.center().coord(axis))
            .expect("finite centers")
    });
    if axis + 1 == D {
        return chunk(entries, capacity);
    }
    // Number of capacity-sized pages this set needs, spread over the
    // remaining axes: S = ceil(P^(1/r)) slabs on this axis, each sized to
    // hold S^(r-1) full pages (the canonical STR tiling).
    let pages = entries.len().div_ceil(capacity);
    let remaining = D - axis;
    let slabs = (pages as f64).powf(1.0 / remaining as f64).ceil() as usize;
    let per_slab = slabs.pow(remaining as u32 - 1) * capacity;
    let mut out = Vec::new();
    for slab in chunk(entries, per_slab) {
        out.extend(str_tile(slab, capacity, axis + 1));
    }
    out
}

fn chunk<T>(items: Vec<T>, size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::with_capacity(items.len().div_ceil(size));
    let mut it = items.into_iter();
    loop {
        let group: Vec<T> = it.by_ref().take(size).collect();
        if group.is_empty() {
            break;
        }
        out.push(group);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::{Metric, Point};

    fn points(n: usize) -> Vec<(ObjectId, Rect<2>)> {
        (0..n)
            .map(|i| {
                // Low-discrepancy-ish scatter.
                let x = (i as f64 * 0.754_877_666_247).fract() * 100.0;
                let y = (i as f64 * 0.569_840_290_998).fract() * 100.0;
                (ObjectId(i as u64), Point::xy(x, y).to_rect())
            })
            .collect()
    }

    #[test]
    fn bulk_load_roundtrip() {
        let tree = RTree::bulk_load(RTreeConfig::small(8), points(1000));
        assert_eq!(tree.len(), 1000);
        let mut ids: Vec<u64> = tree
            .all_objects()
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids.len(), 1000);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[999], 999);
    }

    #[test]
    fn bulk_load_structure_is_packed() {
        let tree = RTree::bulk_load(RTreeConfig::small(10), points(1000));
        // 1000 objects at fan-out 10: 100 leaves, 10 internals, 1 root.
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let tree = RTree::<2>::bulk_load(RTreeConfig::small(4), vec![]);
        assert!(tree.is_empty());
        tree.validate().unwrap();

        let tree = RTree::bulk_load(
            RTreeConfig::small(4),
            vec![(ObjectId(9), Point::xy(1.0, 2.0).to_rect())],
        );
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn bulk_load_queries_match_insertion_build() {
        let items = points(500);
        let bulk = RTree::bulk_load(RTreeConfig::small(8), items.clone());
        let mut ins = RTree::new(RTreeConfig::small(8));
        for (oid, mbr) in &items {
            ins.insert(*oid, *mbr).unwrap();
        }
        let window = Rect::new([20.0, 20.0], [60.0, 45.0]);
        let mut a: Vec<u64> = bulk
            .query_window(&window)
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        let mut b: Vec<u64> = ins
            .query_window(&window)
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_nn_agrees_with_scan() {
        let items = points(400);
        let tree = RTree::bulk_load(RTreeConfig::small(8), items.clone());
        let q = Point::xy(33.0, 66.0);
        let first = tree.nearest_neighbors(q, Metric::Euclidean).next().unwrap();
        let best = items
            .iter()
            .map(|(_, r)| Metric::Euclidean.mindist_point_rect(&q, r))
            .fold(f64::INFINITY, f64::min);
        assert!((first.distance - best).abs() < 1e-9);
    }

    #[test]
    fn bulk_tree_mbr_containment_holds() {
        // Bulk trees skip the min-fill rule but must still have minimal,
        // containing MBRs; check by hand since validate() enforces min fill.
        let tree = RTree::bulk_load(RTreeConfig::small(6), points(300));
        let root = tree.read_node(tree.root_id()).unwrap();
        let mut stack = vec![(tree.root_id(), root)];
        while let Some((_, node)) = stack.pop() {
            for e in &node.entries {
                if !node.is_leaf() {
                    let child = tree.read_node(e.child_page()).unwrap();
                    assert!(e.mbr.contains_rect(&child.mbr()));
                    stack.push((e.child_page(), child));
                }
            }
        }
    }
}
