//! Saving an R*-tree to a file and reopening it later.
//!
//! The dump is a small header (dimension, tree shape, configuration)
//! followed by the page image of the simulated disk, so a reopened tree is
//! bit-identical to the saved one — including free pages, which keeps
//! subsequent insertions allocating the same ids.

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

use sdj_storage::persist::{read_u64, save_atomic, write_u64, PersistError};
use sdj_storage::{BufferPool, PageId, Pager};

use crate::config::RTreeConfig;
use crate::tree::RTree;

const MAGIC: &[u8; 8] = b"SDJRTRE1";

impl<const D: usize> RTree<D> {
    /// Writes the tree to `out` (header + full page image).
    pub fn save_to(&self, out: &mut impl Write) -> Result<(), PersistError> {
        out.write_all(MAGIC)?;
        write_u64(out, D as u64)?;
        write_u64(out, u64::from(self.root_id().0))?;
        write_u64(out, u64::from(self.height()))?;
        write_u64(out, self.len() as u64)?;
        let c = self.config();
        write_u64(out, c.page_size as u64)?;
        write_u64(out, c.buffer_frames as u64)?;
        write_u64(out, c.fanout_cap.map_or(u64::MAX, |f| f as u64))?;
        write_u64(out, c.min_fill.to_bits())?;
        write_u64(out, c.reinsert_fraction.to_bits())?;
        self.pool().save_to(out)
    }

    /// Saves the tree to a file, atomically: the dump is written to a
    /// temporary sibling, fsynced, and renamed over `path`, so a crash
    /// mid-save never destroys an existing dump.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save_atomic(path.as_ref(), |out| self.save_to(out))
    }

    /// Reads a tree back from a dump written by [`RTree::save_to`].
    pub fn load_from(input: &mut impl Read) -> Result<Self, PersistError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format("not an R-tree dump"));
        }
        if read_u64(input)? != D as u64 {
            return Err(PersistError::Format("dimension mismatch"));
        }
        let root = PageId(
            u32::try_from(read_u64(input)?).map_err(|_| PersistError::Format("bad root id"))?,
        );
        let height =
            u8::try_from(read_u64(input)?).map_err(|_| PersistError::Format("bad height"))?;
        let len = read_u64(input)? as usize;
        let config = RTreeConfig {
            page_size: read_u64(input)? as usize,
            buffer_frames: read_u64(input)? as usize,
            // Sharding is a runtime concurrency knob, not part of the
            // on-disk format; reopened trees start with the default.
            buffer_shards: 1,
            fanout_cap: match read_u64(input)? {
                u64::MAX => None,
                f => Some(f as usize),
            },
            min_fill: f64::from_bits(read_u64(input)?),
            reinsert_fraction: f64::from_bits(read_u64(input)?),
        };
        if height == 0 {
            return Err(PersistError::Format("zero height"));
        }
        // The configuration fields feed straight into asserting accessors
        // (`RTreeConfig::max_entries` and friends); tampered values must be
        // format errors, not aborts.
        if config.page_size < crate::node::HEADER_SIZE + 2 * crate::node::entry_size::<D>() {
            return Err(PersistError::Format("page too small for two entries"));
        }
        if config.fanout_cap.is_some_and(|c| c < 2) {
            return Err(PersistError::Format("fanout cap below two"));
        }
        if !(0.0..=0.5).contains(&config.min_fill) {
            return Err(PersistError::Format("min_fill out of range"));
        }
        if !(0.0..1.0).contains(&config.reinsert_fraction) {
            return Err(PersistError::Format("reinsert_fraction out of range"));
        }
        // Hard-bound the header before any allocation it controls: a hostile
        // or bit-flipped dump must produce a `Format` error, not an abort on
        // an absurd frame-vector reservation.
        if config.buffer_frames == 0 || config.buffer_frames > 1 << 20 {
            return Err(PersistError::Format("implausible buffer frame count"));
        }
        let pager = Pager::load_from(input)?;
        if pager.page_size() != config.page_size {
            return Err(PersistError::Format("page size mismatch"));
        }
        // Cross-check the tree-shape fields against the actual page image.
        let total = pager.capacity_pages();
        if (root.0 as usize) >= total {
            return Err(PersistError::Format("root page out of range"));
        }
        if usize::from(height) > total {
            return Err(PersistError::Format("height exceeds page count"));
        }
        if len > total.saturating_mul(config.page_size) {
            return Err(PersistError::Format("length exceeds disk capacity"));
        }
        let pool = BufferPool::new(pager, config.buffer_frames);
        let tree = RTree::from_parts(pool, config, root, height, len);
        // The header could have been tampered with; make sure the structure
        // is coherent before handing it out.
        tree.validate()
            .map_err(|_| PersistError::Format("structural validation failed"))?;
        Ok(tree)
    }

    /// Opens a tree saved with [`RTree::save`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::load_from(&mut BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectId;
    use sdj_geom::{Metric, Point, Rect};

    fn sample_tree(n: usize) -> RTree<2> {
        let mut tree = RTree::new(RTreeConfig::small(5));
        for i in 0..n {
            let p = Point::xy((i % 23) as f64, (i / 23) as f64 + 0.5 * (i % 7) as f64);
            tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
        }
        tree
    }

    #[test]
    fn roundtrip_in_memory() {
        let tree = sample_tree(300);
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        let back = RTree::<2>::load_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.len(), 300);
        assert_eq!(back.height(), tree.height());
        back.validate().unwrap();
        let mut a = tree.all_objects().unwrap();
        let mut b = back.all_objects().unwrap();
        a.sort_by_key(|(o, _)| o.0);
        b.sort_by_key(|(o, _)| o.0);
        assert_eq!(a, b);
    }

    #[test]
    fn reopened_tree_accepts_updates() {
        let tree = sample_tree(120);
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        let mut back = RTree::<2>::load_from(&mut bytes.as_slice()).unwrap();
        back.insert(ObjectId(9999), Point::xy(100.0, 100.0).to_rect())
            .unwrap();
        assert!(back
            .delete(ObjectId(0), &Point::xy(0.0, 0.5 * 0.0).to_rect())
            .unwrap());
        back.validate().unwrap();
        assert_eq!(back.len(), 120);
        // Queries still work end to end.
        let nn = back
            .nearest_neighbors(Point::xy(100.0, 100.0), Metric::Euclidean)
            .next()
            .unwrap();
        assert_eq!(nn.oid, ObjectId(9999));
    }

    #[test]
    fn roundtrip_via_file() {
        let tree = sample_tree(80);
        let path = std::env::temp_dir().join(format!("sdj_rtree_{}.bin", std::process::id()));
        tree.save(&path).unwrap();
        let back = RTree::<2>::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 80);
        back.validate().unwrap();
        let w = Rect::new([0.0, 0.0], [10.0, 10.0]);
        assert_eq!(
            tree.query_window(&w).unwrap().len(),
            back.query_window(&w).unwrap().len()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let tree = sample_tree(10);
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        assert!(matches!(
            RTree::<3>::load_from(&mut bytes.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn corrupt_header_rejected() {
        let tree = sample_tree(10);
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        // Claim an impossible height.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(RTree::<2>::load_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_dump_rejected_at_every_length() {
        let tree = sample_tree(40);
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        // Chop the dump at a spread of lengths across header and page image;
        // every cut must surface an error, never a panic or a bogus tree.
        for cut in (0..bytes.len()).step_by(97.max(bytes.len() / 64)) {
            assert!(
                RTree::<2>::load_from(&mut &bytes[..cut]).is_err(),
                "truncation at {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn bit_flipped_header_never_panics() {
        let tree = sample_tree(40);
        let mut clean = Vec::new();
        tree.save_to(&mut clean).unwrap();
        // Flip every bit of the tree header one at a time (the first 80
        // bytes: magic + 9 u64 fields). Loads may legitimately succeed when
        // the flip hits a don't-care bit, but must never abort, and a
        // successful load must still validate.
        for bit in 0..80 * 8 {
            let mut bytes = clean.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            if let Ok(t) = RTree::<2>::load_from(&mut bytes.as_slice()) {
                t.validate().unwrap();
            }
        }
    }

    #[test]
    fn oversized_header_fields_rejected() {
        let tree = sample_tree(10);
        let mut clean = Vec::new();
        tree.save_to(&mut clean).unwrap();
        // Field offsets after the 8-byte magic: dim, root, height, len,
        // page_size, buffer_frames. Oversize each in turn; a hostile value
        // must be rejected up front, not fed to an allocator.
        for (field, value) in [
            (1usize, u64::MAX),       // root id out of u32
            (3, u64::MAX / 2),        // len beyond any capacity
            (4, u64::MAX),            // absurd page size
            (5, u64::from(u32::MAX)), // absurd frame count
            (5, 0),                   // zero frames (pool would assert)
        ] {
            let mut bytes = clean.clone();
            let at = 8 + field * 8;
            bytes[at..at + 8].copy_from_slice(&value.to_le_bytes());
            assert!(
                RTree::<2>::load_from(&mut bytes.as_slice()).is_err(),
                "oversized field {field} (= {value}) accepted"
            );
        }
    }
}
