//! R*-tree construction parameters.

use crate::node::{node_capacity, HEADER_SIZE};

/// Tuning parameters of an [`crate::RTree`].
///
/// The defaults reproduce the paper's environment (§3.1): node fan-out of 50
/// and a 256-frame buffer pool. The paper used 1K pages with single-precision
/// geometry; we store `f64` coordinates, so the default page size is 2048
/// bytes with the fan-out capped at 50 — fan-out and buffer frames, not raw
/// page bytes, are what the algorithms' behaviour depends on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RTreeConfig {
    /// Size of a node page in bytes.
    pub page_size: usize,
    /// Number of page frames in the tree's buffer pool.
    pub buffer_frames: usize,
    /// Number of buffer-pool shards. `1` (the default) keeps the historical
    /// single-shard LRU pool — byte-identical miss counts for the
    /// experiments; larger values split the frames across independently
    /// locked CLOCK shards so parallel workers' node reads never serialise.
    /// A runtime-only knob: not persisted with the tree.
    pub buffer_shards: usize,
    /// Optional cap on the fan-out, applied after computing how many entries
    /// fit in a page. `Some(50)` by default to match the paper.
    pub fanout_cap: Option<usize>,
    /// Minimum node fill as a fraction of the maximum ("typically 40% of the
    /// maximum fan-out", §2.2.4).
    pub min_fill: f64,
    /// Fraction of entries removed on forced reinsertion (R* uses 30%).
    pub reinsert_fraction: f64,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self {
            page_size: 2048,
            buffer_frames: 256,
            buffer_shards: 1,
            fanout_cap: Some(50),
            min_fill: 0.4,
            reinsert_fraction: 0.3,
        }
    }
}

impl RTreeConfig {
    /// A small configuration for unit tests: tiny fan-out so trees get deep
    /// quickly.
    #[must_use]
    pub fn small(max_entries: usize) -> Self {
        Self {
            page_size: HEADER_SIZE + max_entries * crate::node::entry_size::<2>(),
            buffer_frames: 16,
            buffer_shards: 1,
            fanout_cap: Some(max_entries),
            min_fill: 0.4,
            reinsert_fraction: 0.3,
        }
    }

    /// Maximum number of entries per node for dimension `D`.
    ///
    /// # Panics
    /// Panics if the page is too small to hold at least two entries plus a
    /// header, or if configured fractions are out of range.
    #[must_use]
    pub fn max_entries<const D: usize>(&self) -> usize {
        let fit = node_capacity::<D>(self.page_size);
        let cap = match self.fanout_cap {
            Some(c) => fit.min(c),
            None => fit,
        };
        assert!(
            cap >= 2,
            "page size {} holds only {cap} entries in {D}-d; need at least 2",
            self.page_size
        );
        cap
    }

    /// Minimum number of entries per non-root node for dimension `D`.
    #[must_use]
    pub fn min_entries<const D: usize>(&self) -> usize {
        assert!(
            (0.0..=0.5).contains(&self.min_fill),
            "min_fill must be in [0, 0.5]"
        );
        let m = (self.min_fill * self.max_entries::<D>() as f64).floor() as usize;
        m.max(1)
    }

    /// Number of entries evicted by forced reinsertion for dimension `D`.
    #[must_use]
    pub fn reinsert_count<const D: usize>(&self) -> usize {
        assert!(
            (0.0..1.0).contains(&self.reinsert_fraction),
            "reinsert_fraction must be in [0, 1)"
        );
        let max = self.max_entries::<D>();
        let p = (self.reinsert_fraction * max as f64).floor() as usize;
        // Never remove so many that the node underflows, and always make
        // progress when reinsertion is enabled.
        p.clamp(1, max + 1 - self.min_entries::<D>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_fanout() {
        let c = RTreeConfig::default();
        assert_eq!(c.max_entries::<2>(), 50);
        assert_eq!(c.min_entries::<2>(), 20, "40% of 50");
        assert_eq!(c.reinsert_count::<2>(), 15, "30% of 50");
        assert_eq!(c.buffer_frames, 256);
    }

    #[test]
    fn uncapped_fanout_fills_page() {
        let c = RTreeConfig {
            fanout_cap: None,
            ..RTreeConfig::default()
        };
        // 2048-byte page, 4-byte header, 40-byte entries in 2-d.
        assert_eq!(c.max_entries::<2>(), 51);
    }

    #[test]
    fn higher_dimension_lowers_fanout() {
        let c = RTreeConfig {
            fanout_cap: None,
            ..RTreeConfig::default()
        };
        assert!(c.max_entries::<4>() < c.max_entries::<2>());
        assert!(c.max_entries::<8>() < c.max_entries::<4>());
    }

    #[test]
    fn small_config_roundtrip() {
        let c = RTreeConfig::small(4);
        assert_eq!(c.max_entries::<2>(), 4);
        assert_eq!(c.min_entries::<2>(), 1);
        assert_eq!(c.reinsert_count::<2>(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_page_rejected() {
        let c = RTreeConfig {
            page_size: 32,
            fanout_cap: None,
            ..RTreeConfig::default()
        };
        let _ = c.max_entries::<2>();
    }
}
