//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! sampling helpers (`random_range`, `random_bool`). The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the tests and data generators require.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64_unit(self) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// A uniform value in `[0, 1)` from the generator's next 53 bits.
fn f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits, scaled into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + f64_unit(rng) * (self.end - self.start);
        // Floating-point rounding can land exactly on the excluded end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64_unit(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value qualifies.
                    return rng.next_u64() as $t;
                }
                let offset = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 (a fixed, portable algorithm — unlike upstream `StdRng`,
    /// which reserves the right to change).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0.0..1.0f64).to_bits(),
                b.random_range(0.0..1.0f64).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.random_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
            let g = rng.random_range(2.0..=3.0f64);
            assert!((2.0..=3.0).contains(&g));
            let u = rng.random_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        use super::RngCore;
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
