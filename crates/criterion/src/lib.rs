//! Offline shim for the subset of the `criterion` benchmark API used by this
//! workspace.
//!
//! The build container has no network access, so the real crates.io
//! `criterion` cannot be fetched. This crate keeps `cargo bench` working with
//! the same source code: benchmarks compile, run a calibrated timing loop,
//! and print mean wall-clock time per iteration. There are no statistical
//! refinements (outlier rejection, regression detection, HTML reports) — the
//! numbers are honest but simple means.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, but still referenced by some bench code).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// routine call regardless of the variant, so these are behaviourally
/// identical; they exist for source compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    /// Total time measured across all timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// Target wall-clock time for the measurement phase.
    measure_target: Duration,
}

impl Bencher {
    fn new(measure_target: Duration) -> Self {
        Self {
            elapsed: Duration::ZERO,
            iters: 0,
            measure_target,
        }
    }

    /// Times `routine` repeatedly until the measurement target is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (populates caches, faults pages).
        std_black_box(routine());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std_black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.measure_target {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.measure_target {
                break;
            }
        }
    }

    /// Like `iter_batched`, but the routine takes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iters.min(u64::from(u32::MAX))).unwrap_or(1)
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(label: &str, measure_target: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(measure_target);
    f(&mut bencher);
    println!(
        "{label:<48} {:>12}/iter  ({} iters)",
        format_duration(bencher.mean()),
        bencher.iters
    );
}

/// Top-level benchmark registry; mirrors `criterion::Criterion`.
pub struct Criterion {
    measure_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measure_target: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the wall-clock measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measure_target = t;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.measure_target, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let measure_target = self.measure_target;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            measure_target,
        }
    }
}

/// A named benchmark group; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measure_target: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's iteration count is
    /// time-driven, not sample-count-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measure_target = t;
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.measure_target, &mut f);
        self
    }

    /// Ends the group (no-op beyond source compatibility).
    pub fn finish(self) {}
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iters() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters >= 1);
        assert_eq!(n, b.iters + 1); // warm-up call included
        assert!(b.mean() <= b.elapsed);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new(Duration::from_millis(2));
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, b.iters + 1);
    }

    #[test]
    fn format_covers_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
