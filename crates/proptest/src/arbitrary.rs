//! `any::<T>()` — canonical strategies per type.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for f64 {
    /// A finite value with a wide dynamic range (mantissa scaled by a
    /// bounded power of two), never NaN or infinite.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exponent = (rng.below(61) as i32) - 30;
        mantissa * f64::powi(2.0, exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_all_bools() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = any::<bool>();
        let vals: Vec<bool> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| *v));
        assert!(vals.iter().any(|v| !*v));
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
