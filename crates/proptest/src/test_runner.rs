//! Case generation and the test-runner loop.

/// Runner configuration. Only the case count is honoured by this shim.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// The deterministic generator driving value generation (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub(crate) fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value below `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name, so every test gets its own stable seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` cases pass, panicking on the first
/// failure with the generated inputs. `prop_assume!` rejections are retried,
/// up to a global cap.
///
/// # Panics
/// Panics when a case fails or too many cases are rejected.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let seed = name_seed(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(20).max(1024);
    let mut index = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        index += 1;
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many prop_assume! rejections ({rejected}) — \
                     strategy rarely satisfies the assumption"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{name}: property failed at case #{index} (seed {seed:#x})\n\
                     {message}\ninputs:\n{inputs}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0;
        run_cases(ProptestConfig::with_cases(10), "t", |_| {
            count += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics() {
        run_cases(ProptestConfig::with_cases(5), "t", |_| {
            (String::new(), Err(TestCaseError::fail("boom".into())))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn reject_storm_panics() {
        run_cases(ProptestConfig::with_cases(1), "t", |_| {
            (String::new(), Err(TestCaseError::Reject))
        });
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut first = Vec::new();
        run_cases(ProptestConfig::with_cases(3), "same", |rng| {
            first.push(rng.next_u64());
            (String::new(), Ok(()))
        });
        let mut second = Vec::new();
        run_cases(ProptestConfig::with_cases(3), "same", |rng| {
            second.push(rng.next_u64());
            (String::new(), Ok(()))
        });
        assert_eq!(first, second);
    }
}
