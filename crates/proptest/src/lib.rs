//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the [`proptest!`]
//! macro, [`Strategy`](strategy::Strategy) combinators (`prop_map`, tuples,
//! ranges, [`collection::vec`], [`sample::select`], [`option::of`],
//! [`prop_oneof!`], [`Just`](strategy::Just), [`any`](arbitrary::any)),
//! and the `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted for a test-only shim:
//! no shrinking (a failing case prints its full generated input instead),
//! no persistence of regression seeds (cases are seeded deterministically
//! from the test's module path, so failures reproduce on re-run), and no
//! configurable runner beyond the case count.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirrored from upstream proptest.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prop::` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests: any number of `#[test] fn name(arg in strategy,
/// ...) { body }` items, optionally preceded by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __proptest_rng,
                        );
                    )+
                    let __proptest_inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    (__proptest_inputs, __proptest_result)
                },
            );
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}\n {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (it counts as neither pass nor failure) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses among strategies, optionally weighted:
/// `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
