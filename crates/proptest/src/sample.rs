//! Sampling strategies (`prop::sample::select`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice among the given values.
///
/// # Panics
/// Panics if `values` is empty.
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select over no values");
    Select { values }
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_every_value() {
        let mut rng = TestRng::seed_from_u64(11);
        let strat = select(vec!['a', 'b', 'c']);
        let drawn: std::collections::HashSet<char> =
            (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert_eq!(drawn.len(), 3);
    }
}
