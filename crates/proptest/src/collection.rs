//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection size specification: a fixed size or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_within_range() {
        let mut rng = TestRng::seed_from_u64(9);
        let strat = vec(0u32..5, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn fixed_size() {
        let mut rng = TestRng::seed_from_u64(9);
        assert_eq!(vec(0u32..5, 3).generate(&mut rng).len(), 3);
    }
}
