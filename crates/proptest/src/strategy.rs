//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V: Debug, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<V: Debug, S: Strategy<Value = V> + ?Sized> Strategy for &S {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy behind `dyn Strategy` (used by `prop_oneof!` to unify
/// branch types).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_oneof!` combinator: weighted choice among strategies of one
/// value type.
pub struct Union<V> {
    branches: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    /// Builds a union from weighted boxed branches.
    ///
    /// # Panics
    /// Panics if `branches` is empty or all weights are zero.
    #[must_use]
    pub fn new(branches: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { branches, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, branch) in &self.branches {
            let weight = u64::from(*weight);
            if pick < weight {
                return branch.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let offset = if span == 0 {
                    u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())
                } else {
                    u128::from(rng.next_u64()) % span
                };
                (lo as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = rng();
        for _ in 0..1000 {
            let (a, b) = (0u32..10, -5i64..5).generate(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
            let f = (0.25..0.75f64).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = rng();
        let doubled = (1u32..5).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = rng();
        let u = Union::new(vec![(9, boxed(Just(1u8))), (1, boxed(Just(2u8)))]);
        let mut ones = 0;
        for _ in 0..1000 {
            if u.generate(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 800, "ones = {ones}");
    }
}
