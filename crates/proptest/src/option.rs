//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some` of the inner strategy about three times in four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::seed_from_u64(13);
        let strat = of(0u32..10);
        let vals: Vec<Option<u32>> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
