//! The bulk path's correctness contract against the incremental engine:
//!
//! * **Within-range mode**: the unordered bulk output is multiset-equal to
//!   the incremental stream (same pairs, bitwise-same distances).
//! * **Ordered mode**: the bulk merge reports a bitwise-identical distance
//!   sequence (equal-distance *tie order* may differ — the same contract
//!   the parallel executor's merged stream has) and the same pair multiset.
//!
//! Fuzzed across grid cell widths (including degenerate slivers that force
//! heavy replication), `[Dmin, Dmax]` restrictions, all three metrics, both
//! orderings, `max_pairs` truncation, self-join id exclusion, and
//! boundary-straddling extended rectangles — the inputs that stress the
//! replicate-and-dedup owner-cell rule.

use proptest::prelude::*;
use sdj_core::bulk::{BulkConfig, BulkDistanceJoin};
use sdj_core::{DistanceJoin, ExpansionPath, JoinConfig, ResultOrder};
use sdj_geom::{Metric, Rect};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn tree(rects: &[Rect<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, r) in rects.iter().enumerate() {
        t.insert(ObjectId(i as u64), *r).unwrap();
    }
    t
}

/// Rectangles in a 10×10 box: mostly points, some extended boxes whose
/// edges straddle any grid the bulk path may choose.
fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect<2>>> {
    prop::collection::vec(
        (
            0.0..10.0f64,
            0.0..10.0f64,
            prop_oneof![Just(0.0), 0.0..2.0f64],
            prop_oneof![Just(0.0), 0.0..2.0f64],
        ),
        1..max,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
            .collect()
    })
}

#[derive(Clone, Debug)]
struct Case {
    a: Vec<Rect<2>>,
    b: Vec<Rect<2>>,
    fanout: usize,
    metric: Metric,
    range: Option<(f64, f64)>,
    max_pairs: Option<u64>,
    descending: bool,
    exclude_equal_ids: bool,
    lanes: bool,
    cell_width: Option<f64>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    let metric = prop::sample::select(vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chessboard,
    ]);
    (
        arb_rects(30),
        arb_rects(35),
        3usize..7,
        metric,
        prop::option::of((0.0..4.0f64, 0.0..10.0f64)),
        prop::option::of(1u64..50),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop::option::of(0.05..6.0f64),
    )
        .prop_map(
            |(
                a,
                b,
                fanout,
                metric,
                range,
                max_pairs,
                descending,
                exclude_equal_ids,
                lanes,
                cell_width,
            )| Case {
                a,
                b,
                fanout,
                metric,
                range: range.map(|(lo, w)| (lo, lo + w)),
                max_pairs,
                descending,
                exclude_equal_ids,
                lanes,
                cell_width,
            },
        )
}

fn config_of(case: &Case) -> JoinConfig {
    let mut config = JoinConfig {
        metric: case.metric,
        exclude_equal_ids: case.exclude_equal_ids,
        ..JoinConfig::default()
    };
    if let Some((lo, hi)) = case.range {
        config = config.with_range(lo, hi);
    }
    if let Some(k) = case.max_pairs {
        config.max_pairs = Some(k);
    }
    if case.descending {
        config.order = ResultOrder::Descending;
    }
    if case.lanes {
        config = config.with_expansion(ExpansionPath::Lanes);
    }
    config
}

fn bulk_config_of(case: &Case) -> BulkConfig {
    BulkConfig {
        cell_width: case.cell_width,
        ..BulkConfig::default()
    }
}

/// `(distance bits, oid1, oid2)` triples, sorted — the multiset fingerprint.
fn canon(results: &[(u64, u64, u64)]) -> Vec<(u64, u64, u64)> {
    let mut v = results.to_vec();
    v.sort_unstable();
    v
}

fn incremental_stream(case: &Case) -> Vec<(u64, u64, u64)> {
    let t1 = tree(&case.a, case.fanout);
    let t2 = tree(&case.b, case.fanout);
    let mut join = DistanceJoin::new(&t1, &t2, config_of(case));
    let out = join
        .by_ref()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect();
    assert!(join.take_error().is_none());
    out
}

fn bulk_stream(case: &Case, ordered: bool) -> Vec<(u64, u64, u64)> {
    let t1 = tree(&case.a, case.fanout);
    let t2 = tree(&case.b, case.fanout);
    let mut join =
        BulkDistanceJoin::with_bulk_config(&t1, &t2, config_of(case), bulk_config_of(case))
            .expect("bulk build");
    let results = if ordered {
        join.run()
    } else {
        join.run_unordered()
    };
    results
        .iter()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Within-range mode: the bulk path's unordered output is exactly the
    /// incremental engine's result multiset.
    #[test]
    fn unordered_bulk_is_multiset_equal(case in arb_case()) {
        let reference = incremental_stream(&case);
        let got = bulk_stream(&case, false);
        prop_assert_eq!(canon(&got), canon(&reference));
    }

    /// Ordered mode: the bulk merge reports the identical distance
    /// sequence, bit for bit, and the identical pair multiset.
    #[test]
    fn ordered_bulk_reports_identical_distances(case in arb_case()) {
        let reference = incremental_stream(&case);
        let got = bulk_stream(&case, true);
        prop_assert_eq!(got.len(), reference.len());
        let ref_dists: Vec<u64> = reference.iter().map(|r| r.0).collect();
        let got_dists: Vec<u64> = got.iter().map(|r| r.0).collect();
        prop_assert_eq!(got_dists, ref_dists);
        prop_assert_eq!(canon(&got), canon(&reference));
    }
}

/// The harvest pass decodes nodes straight off pinned page guards: warm
/// re-reads must never fall back to the copying `read` API. This is the
/// scratch-reuse satellite's observable: zero `read_copies` across an
/// entire bulk run on a warmed tree.
#[test]
fn bulk_harvest_performs_zero_read_copies() {
    let pts: Vec<Rect<2>> = (0..512)
        .map(|i| {
            let p = [(i % 32) as f64, (i / 32) as f64];
            Rect::new(p, p)
        })
        .collect();
    let t1 = tree(&pts, 8);
    let t2 = tree(&pts, 8);
    // Warm pass, then a second run on warm pools.
    let config = JoinConfig::default().with_range(0.0, 1.5);
    let mut warm = BulkDistanceJoin::new(&t1, &t2, config).unwrap();
    let _ = warm.run_unordered();
    let before = (t1.pool_stats().read_copies, t2.pool_stats().read_copies);
    let mut join = BulkDistanceJoin::new(&t1, &t2, config).unwrap();
    let n = join.run_unordered().len();
    assert!(n > 0);
    let after = (t1.pool_stats().read_copies, t2.pool_stats().read_copies);
    assert_eq!(before, after, "bulk warm reads copied page bytes");
    assert_eq!(before.0, 0, "harvest used the copying read API");
    assert_eq!(before.1, 0, "harvest used the copying read API");
}

/// Degenerate grids: a forced sliver-thin cell width exercises the
/// per-axis cell-count cap and maximal replication; output must not change.
#[test]
fn sliver_cells_match_default_grid() {
    let rects: Vec<Rect<2>> = (0..200)
        .map(|i| {
            let x = (i % 20) as f64 * 0.5;
            let y = (i / 20) as f64;
            Rect::new([x, y], [x + 0.4, y + 1.3])
        })
        .collect();
    let t1 = tree(&rects, 5);
    let t2 = tree(&rects, 5);
    let config = JoinConfig {
        exclude_equal_ids: true,
        ..JoinConfig::default()
    }
    .with_range(0.1, 2.0);
    let mut default_grid = BulkDistanceJoin::new(&t1, &t2, config).unwrap();
    let mut sliver = BulkDistanceJoin::with_bulk_config(
        &t1,
        &t2,
        config,
        BulkConfig {
            cell_width: Some(0.07),
            ..BulkConfig::default()
        },
    )
    .unwrap();
    let mut a: Vec<_> = default_grid
        .run_unordered()
        .iter()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect();
    let mut b: Vec<_> = sliver
        .run_unordered()
        .iter()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    assert!(sliver.bulk_stats().pairs_deduped > 0);
}
