//! Configuration-space fuzzing: any combination of traversal policy, tie
//! policy, queue backend, distance range, result bound, estimation bound
//! and ordering must produce exactly the brute-force answer on random data.

use proptest::prelude::*;
use sdj_core::{
    DistanceJoin, DmaxStrategy, EstimationBound, JoinConfig, QueueBackend, ResultOrder, SemiConfig,
    SemiFilter, TiePolicy, TraversalPolicy,
};
use sdj_geom::{Metric, Point};
use sdj_pqueue::HybridConfig;
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

const EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct FuzzCase {
    a: Vec<Point<2>>,
    b: Vec<Point<2>>,
    fanout: usize,
    traversal: TraversalPolicy,
    tie: TiePolicy,
    hybrid_dt: Option<f64>,
    metric: Metric,
    range: Option<(f64, f64)>,
    max_pairs: Option<u64>,
    estimation: EstimationBound,
    descending: bool,
    semi: Option<(SemiFilter, DmaxStrategy)>,
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::xy(x, y)).collect())
}

fn arb_case() -> impl Strategy<Value = FuzzCase> {
    let traversal = prop::sample::select(vec![
        TraversalPolicy::Basic,
        TraversalPolicy::Even,
        TraversalPolicy::Simultaneous,
    ]);
    let tie = prop::sample::select(vec![TiePolicy::DepthFirst, TiePolicy::BreadthFirst]);
    let metric = prop::sample::select(vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chessboard,
    ]);
    let estimation =
        prop::sample::select(vec![EstimationBound::AllPairs, EstimationBound::ExistsPair]);
    let semi = prop::option::of((
        prop::sample::select(vec![
            SemiFilter::Outside,
            SemiFilter::Inside1,
            SemiFilter::Inside2,
        ]),
        prop::sample::select(vec![
            DmaxStrategy::None,
            DmaxStrategy::Local,
            DmaxStrategy::GlobalNodes,
            DmaxStrategy::GlobalAll,
        ]),
    ));
    (
        (
            arb_points(45),
            arb_points(60),
            3usize..7,
            traversal,
            tie,
            prop::option::of(0.05..5.0f64),
        ),
        (
            metric,
            prop::option::of((0.0..4.0f64, 0.0..10.0f64)),
            prop::option::of(1u64..80),
            estimation,
            any::<bool>(),
            semi,
        ),
    )
        .prop_map(
            |(
                (a, b, fanout, traversal, tie, hybrid_dt),
                (metric, range, max_pairs, estimation, descending, semi),
            )| FuzzCase {
                a,
                b,
                fanout,
                traversal,
                tie,
                hybrid_dt,
                metric,
                range: range.map(|(lo, w)| (lo, lo + w)),
                max_pairs,
                estimation,
                descending,
                semi,
            },
        )
}

fn tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_config_matches_bruteforce(case in arb_case()) {
        let mut config = JoinConfig {
            traversal: case.traversal,
            tie: case.tie,
            metric: case.metric,
            estimation: case.estimation,
            ..JoinConfig::default()
        };
        if let Some((lo, hi)) = case.range {
            config = config.with_range(lo, hi);
        }
        if let Some(k) = case.max_pairs {
            config.max_pairs = Some(k);
        }
        let descending_ok = case
            .semi
            .is_none_or(|(_, dmax)| matches!(dmax, DmaxStrategy::None));
        if case.descending && descending_ok {
            config.order = ResultOrder::Descending;
        }
        // Hybrid queue only supports ascending keys.
        if let (Some(dt), ResultOrder::Ascending) = (case.hybrid_dt, config.order) {
            config.queue = QueueBackend::Hybrid(HybridConfig {
                dt,
                page_size: 512,
                buffer_frames: 4,
                ..HybridConfig::default()
            });
        }

        let t1 = tree(&case.a, case.fanout);
        let t2 = tree(&case.b, case.fanout);

        let got: Vec<(u64, u64, f64)> = match case.semi {
            None => DistanceJoin::new(&t1, &t2, config)
                .map(|r| (r.oid1.0, r.oid2.0, r.distance))
                .collect(),
            Some((filter, dmax)) => {
                DistanceJoin::semi(&t1, &t2, config, SemiConfig { filter, dmax })
                    .map(|r| (r.oid1.0, r.oid2.0, r.distance))
                    .collect()
            }
        };

        // Brute-force reference under the same semantics.
        let (dmin, dmax_q) = case.range.unwrap_or((0.0, f64::INFINITY));
        let mut all: Vec<(u64, u64, f64)> = Vec::new();
        for (i, p) in case.a.iter().enumerate() {
            for (j, q) in case.b.iter().enumerate() {
                let d = case.metric.distance(p, q);
                if d >= dmin && d <= dmax_q {
                    all.push((i as u64, j as u64, d));
                }
            }
        }
        let asc = matches!(config.order, ResultOrder::Ascending);
        all.sort_by(|x, y| {
            let o = x.2.partial_cmp(&y.2).unwrap();
            if asc { o } else { o.reverse() }
        });
        let want: Vec<(u64, f64)> = if case.semi.is_some() {
            // First occurrence per first object.
            let mut seen = std::collections::HashSet::new();
            all.iter()
                .filter(|(i, _, _)| seen.insert(*i))
                .map(|(i, _, d)| (*i, *d))
                .collect()
        } else {
            all.iter().map(|(i, _, d)| (*i, *d)).collect()
        };
        let limit = case.max_pairs.map_or(want.len(), |k| (k as usize).min(want.len()));

        prop_assert_eq!(got.len(), limit, "config: {:?}", config);
        for (idx, ((_, _, gd), (_, wd))) in got.iter().zip(&want).enumerate() {
            prop_assert!(
                (gd - wd).abs() < EPS,
                "result {idx}: {gd} vs {wd} under {:?} semi {:?}",
                config,
                case.semi
            );
        }
        // Semi-join: each first object at most once, and distances correct
        // per object.
        if case.semi.is_some() {
            let mut seen = std::collections::HashSet::new();
            for (o1, _, d) in &got {
                prop_assert!(seen.insert(*o1));
                let per_object: Vec<f64> = all
                    .iter()
                    .filter(|(i, _, _)| i == o1)
                    .map(|(_, _, d)| *d)
                    .collect();
                let best = if asc {
                    per_object.iter().cloned().fold(f64::INFINITY, f64::min)
                } else {
                    per_object.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                };
                prop_assert!((d - best).abs() < EPS);
            }
        }
    }
}
