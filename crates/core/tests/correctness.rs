//! Brute-force cross-checks for every join variant: the incremental
//! algorithms must produce exactly the distance-ordered results a nested
//! loop over the raw data produces.

use sdj_core::{
    DistanceJoin, DmaxStrategy, EstimationBound, JoinConfig, QueueBackend, ResultOrder, SemiConfig,
    SemiFilter, SliceOracle, TiePolicy, TraversalPolicy,
};
use sdj_datagen::{gaussian_clusters, tiger, uniform_points, unit_box};
use sdj_geom::{Metric, Point, Segment, SpatialObject};
use sdj_pqueue::HybridConfig;
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

const EPS: f64 = 1e-9;

fn build_tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut tree = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    tree
}

fn sample_sets() -> (Vec<Point<2>>, Vec<Point<2>>) {
    let a = tiger::water_like(180, 11);
    let b = tiger::roads_like(320, 11);
    (a, b)
}

/// All pair distances, ascending.
fn brute_distances(a: &[Point<2>], b: &[Point<2>], metric: Metric) -> Vec<f64> {
    let mut out: Vec<f64> = a
        .iter()
        .flat_map(|p| b.iter().map(move |q| metric.distance(p, q)))
        .collect();
    out.sort_by(|x, y| x.partial_cmp(y).unwrap());
    out
}

/// Per-first-object nearest distance, ascending over first objects' results.
fn brute_semi(a: &[Point<2>], b: &[Point<2>], metric: Metric) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = a
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let d = b
                .iter()
                .map(|q| metric.distance(p, q))
                .fold(f64::INFINITY, f64::min);
            (i, d)
        })
        .collect();
    out.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
    out
}

#[test]
fn join_matches_bruteforce_prefix_for_all_policies() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let want = brute_distances(&a, &b, Metric::Euclidean);
    for traversal in [
        TraversalPolicy::Basic,
        TraversalPolicy::Even,
        TraversalPolicy::Simultaneous,
    ] {
        for tie in [TiePolicy::DepthFirst, TiePolicy::BreadthFirst] {
            let config = JoinConfig {
                traversal,
                tie,
                ..JoinConfig::default()
            };
            let got: Vec<f64> = DistanceJoin::new(&t1, &t2, config)
                .take(500)
                .map(|r| r.distance)
                .collect();
            assert_eq!(got.len(), 500);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() < EPS,
                    "{traversal:?}/{tie:?}: result {i} = {g}, want {w}"
                );
            }
        }
    }
}

#[test]
fn full_join_of_small_sets_is_complete() {
    let a = uniform_points(40, &unit_box(), 5);
    let b = uniform_points(55, &unit_box(), 6);
    let t1 = build_tree(&a, 4);
    let t2 = build_tree(&b, 4);
    let want = brute_distances(&a, &b, Metric::Euclidean);
    let got: Vec<f64> = DistanceJoin::new(&t1, &t2, JoinConfig::default())
        .map(|r| r.distance)
        .collect();
    assert_eq!(got.len(), 40 * 55);
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn results_carry_correct_object_ids() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 8);
    let t2 = build_tree(&b, 8);
    for r in DistanceJoin::new(&t1, &t2, JoinConfig::default()).take(200) {
        let p = &a[r.oid1.0 as usize];
        let q = &b[r.oid2.0 as usize];
        assert!((Metric::Euclidean.distance(p, q) - r.distance).abs() < EPS);
    }
}

#[test]
fn all_metrics_order_correctly() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 8);
    let t2 = build_tree(&b, 8);
    for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chessboard] {
        let config = JoinConfig {
            metric,
            ..JoinConfig::default()
        };
        let got: Vec<f64> = DistanceJoin::new(&t1, &t2, config)
            .take(300)
            .map(|r| r.distance)
            .collect();
        let want = brute_distances(&a, &b, metric);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < EPS, "{metric:?}");
        }
    }
}

#[test]
fn distance_range_restriction() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let (dmin, dmax) = (0.05, 0.2);
    let config = JoinConfig::default().with_range(dmin, dmax);
    let got: Vec<f64> = DistanceJoin::new(&t1, &t2, config)
        .map(|r| r.distance)
        .collect();
    let want: Vec<f64> = brute_distances(&a, &b, Metric::Euclidean)
        .into_iter()
        .filter(|d| *d >= dmin && *d <= dmax)
        .collect();
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn max_pairs_estimation_returns_exactly_k() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let want = brute_distances(&a, &b, Metric::Euclidean);
    for k in [1usize, 10, 100, 1000] {
        for bound in [EstimationBound::AllPairs, EstimationBound::ExistsPair] {
            let config = JoinConfig {
                estimation: bound,
                ..JoinConfig::default()
            }
            .with_max_pairs(k as u64);
            let join = DistanceJoin::new(&t1, &t2, config);
            let got: Vec<f64> = join.map(|r| r.distance).collect();
            assert_eq!(got.len(), k, "{bound:?} k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < EPS, "{bound:?} k={k}");
            }
        }
    }
}

#[test]
fn estimation_prunes_queue_growth() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let mut unlimited = DistanceJoin::new(&t1, &t2, JoinConfig::default());
    for _ in 0..10 {
        unlimited.next().unwrap();
    }
    let q_unlimited = unlimited.stats().max_queue;

    let mut limited = DistanceJoin::new(&t1, &t2, JoinConfig::default().with_max_pairs(10));
    for _ in 0..10 {
        limited.next().unwrap();
    }
    let q_limited = limited.stats().max_queue;
    assert!(
        q_limited < q_unlimited,
        "estimation should cap the queue: {q_limited} vs {q_unlimited}"
    );
}

/// Regression: `max_queue` must observe *batch* insertions, not just single
/// pushes. Expansions stage children and flush them in one `push_batch`, so
/// both the flush-time sample and the backend high-water mark must keep the
/// reported peak at least the live queue length at every step.
#[test]
fn max_queue_tracks_batch_insertions() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let mut join = DistanceJoin::new(&t1, &t2, JoinConfig::default());
    let mut peak = 0usize;
    for _ in 0..200 {
        if join.next().is_none() {
            break;
        }
        let live = join.queue_len();
        peak = peak.max(live);
        assert!(
            join.stats().max_queue >= live,
            "high-water {} below live length {live}",
            join.stats().max_queue
        );
    }
    assert!(peak > 0, "run must actually grow the queue");
    assert!(join.stats().max_queue >= peak);
}

#[test]
fn hybrid_queue_backend_agrees_with_memory() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let mem: Vec<f64> = DistanceJoin::new(&t1, &t2, JoinConfig::default())
        .take(400)
        .map(|r| r.distance)
        .collect();
    for dt in [0.01, 0.1, 1.0] {
        let config = JoinConfig {
            queue: QueueBackend::Hybrid(HybridConfig::with_dt(dt)),
            ..JoinConfig::default()
        };
        let hyb: Vec<f64> = DistanceJoin::new(&t1, &t2, config)
            .take(400)
            .map(|r| r.distance)
            .collect();
        assert_eq!(mem.len(), hyb.len());
        for (m, h) in mem.iter().zip(&hyb) {
            assert!((m - h).abs() < EPS, "dt={dt}");
        }
    }
}

#[test]
fn semi_join_all_strategies_match_bruteforce() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let want = brute_semi(&a, &b, Metric::Euclidean);
    let variants = [
        (SemiFilter::Outside, DmaxStrategy::None),
        (SemiFilter::Inside1, DmaxStrategy::None),
        (SemiFilter::Inside2, DmaxStrategy::None),
        (SemiFilter::Inside2, DmaxStrategy::Local),
        (SemiFilter::Inside2, DmaxStrategy::GlobalNodes),
        (SemiFilter::Inside2, DmaxStrategy::GlobalAll),
    ];
    for (filter, dmax) in variants {
        let semi = SemiConfig { filter, dmax };
        let got: Vec<(u64, f64)> = DistanceJoin::semi(&t1, &t2, JoinConfig::default(), semi)
            .map(|r| (r.oid1.0, r.distance))
            .collect();
        assert_eq!(got.len(), a.len(), "{filter:?}/{dmax:?}: one result per o1");
        // Distances ascend.
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + EPS, "{filter:?}/{dmax:?}");
        }
        // Each first object appears once with its true NN distance.
        let mut seen = vec![false; a.len()];
        for (oid, d) in &got {
            assert!(!seen[*oid as usize], "{filter:?}/{dmax:?}: duplicate {oid}");
            seen[*oid as usize] = true;
            let nn = want.iter().find(|(i, _)| *i == *oid as usize).unwrap().1;
            assert!((d - nn).abs() < EPS, "{filter:?}/{dmax:?}: oid {oid}");
        }
    }
}

#[test]
fn semi_join_with_max_pairs() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let want = brute_semi(&a, &b, Metric::Euclidean);
    for k in [1usize, 25, 120] {
        let got: Vec<f64> = DistanceJoin::semi(
            &t1,
            &t2,
            JoinConfig::default().with_max_pairs(k as u64),
            SemiConfig::default(),
        )
        .map(|r| r.distance)
        .collect();
        assert_eq!(got.len(), k);
        for (g, (_, w)) in got.iter().zip(&want) {
            assert!((g - w).abs() < EPS, "k={k}");
        }
    }
}

#[test]
fn descending_join_reports_farthest_first() {
    let a = gaussian_clusters(60, 4, 0.05, &unit_box(), 9);
    let b = gaussian_clusters(80, 4, 0.05, &unit_box(), 10);
    let t1 = build_tree(&a, 5);
    let t2 = build_tree(&b, 5);
    let config = JoinConfig {
        order: ResultOrder::Descending,
        ..JoinConfig::default()
    };
    let got: Vec<f64> = DistanceJoin::new(&t1, &t2, config)
        .take(200)
        .map(|r| r.distance)
        .collect();
    let mut want = brute_distances(&a, &b, Metric::Euclidean);
    want.reverse();
    assert_eq!(got.len(), 200);
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn descending_semi_join_reports_farthest_partner_per_object() {
    let a = uniform_points(50, &unit_box(), 21);
    let b = uniform_points(70, &unit_box(), 22);
    let t1 = build_tree(&a, 5);
    let t2 = build_tree(&b, 5);
    let config = JoinConfig {
        order: ResultOrder::Descending,
        ..JoinConfig::default()
    };
    let semi = SemiConfig {
        filter: SemiFilter::Inside2,
        dmax: DmaxStrategy::None, // d_max bounds nearest partners: ascending only
    };
    let got: Vec<(u64, f64)> = DistanceJoin::semi(&t1, &t2, config, semi)
        .map(|r| (r.oid1.0, r.distance))
        .collect();
    assert_eq!(got.len(), a.len());
    for w in got.windows(2) {
        assert!(w[0].1 >= w[1].1 - EPS);
    }
    for (oid, d) in &got {
        let farthest = b
            .iter()
            .map(|q| Metric::Euclidean.distance(&a[*oid as usize], q))
            .fold(0.0f64, f64::max);
        assert!((d - farthest).abs() < EPS);
    }
}

#[test]
fn segment_objects_with_refinement_oracle() {
    // Indexed objects are line segments stored externally: leaf entries hold
    // obrs, and obr/obr pairs must be refined through the oracle.
    let mk_segs = |pts: &[Point<2>], len: f64, seed: u64| -> Vec<Segment> {
        pts.iter()
            .enumerate()
            .map(|(i, p)| {
                let angle = ((i as u64).wrapping_mul(seed) % 360) as f64;
                let (dx, dy) = (angle.to_radians().cos(), angle.to_radians().sin());
                Segment::new(*p, Point::xy(p.x() + len * dx, p.y() + len * dy))
            })
            .collect()
    };
    let pa = uniform_points(60, &unit_box(), 31);
    let pb = uniform_points(80, &unit_box(), 32);
    let segs_a = mk_segs(&pa, 0.08, 7919);
    let segs_b = mk_segs(&pb, 0.05, 104729);

    let mut t1 = RTree::new(RTreeConfig::small(5));
    for (i, s) in segs_a.iter().enumerate() {
        t1.insert(ObjectId(i as u64), s.mbr()).unwrap();
    }
    let mut t2 = RTree::new(RTreeConfig::small(5));
    for (i, s) in segs_b.iter().enumerate() {
        t2.insert(ObjectId(i as u64), s.mbr()).unwrap();
    }

    let oracle = SliceOracle::new(&segs_a, &segs_b, Metric::Euclidean);
    let got: Vec<f64> = DistanceJoin::with_oracle(&t1, &t2, oracle, JoinConfig::default())
        .take(500)
        .map(|r| r.distance)
        .collect();

    let mut want: Vec<f64> = segs_a
        .iter()
        .flat_map(|s| segs_b.iter().map(move |t| s.distance_to_segment(t)))
        .collect();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!((g - w).abs() < EPS, "result {i}: {g} vs {w}");
    }
}

#[test]
fn empty_inputs_yield_nothing() {
    let t_empty: RTree<2> = RTree::new(RTreeConfig::small(4));
    let a = uniform_points(10, &unit_box(), 1);
    let t1 = build_tree(&a, 4);
    assert_eq!(
        DistanceJoin::new(&t1, &t_empty, JoinConfig::default()).count(),
        0
    );
    assert_eq!(
        DistanceJoin::new(&t_empty, &t1, JoinConfig::default()).count(),
        0
    );
    assert_eq!(
        DistanceJoin::semi(&t_empty, &t1, JoinConfig::default(), SemiConfig::default()).count(),
        0
    );
}

#[test]
fn single_object_each_side() {
    let t1 = build_tree(&[Point::xy(0.0, 0.0)], 4);
    let t2 = build_tree(&[Point::xy(3.0, 4.0)], 4);
    let results: Vec<_> = DistanceJoin::new(&t1, &t2, JoinConfig::default()).collect();
    assert_eq!(results.len(), 1);
    assert!((results[0].distance - 5.0).abs() < EPS);
}

#[test]
fn identical_sets_include_zero_distances() {
    let a = uniform_points(30, &unit_box(), 77);
    let t1 = build_tree(&a, 4);
    let t2 = build_tree(&a, 4);
    let first: Vec<_> = DistanceJoin::new(&t1, &t2, JoinConfig::default())
        .take(30)
        .collect();
    assert!(first.iter().all(|r| r.distance.abs() < EPS));
}

#[test]
fn early_termination_is_much_cheaper_than_full_join() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 8);
    let t2 = build_tree(&b, 8);

    let mut one = DistanceJoin::new(&t1, &t2, JoinConfig::default());
    one.next().unwrap();
    let io_one = one.stats().node_accesses;

    let mut full = DistanceJoin::new(&t1, &t2, JoinConfig::default());
    let n = full.by_ref().count();
    assert_eq!(n, a.len() * b.len());
    let io_full = full.stats().node_accesses;
    assert!(
        io_one * 3 < io_full,
        "first result should touch far fewer nodes: {io_one} vs {io_full}"
    );
}

#[test]
fn stats_are_internally_consistent() {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let mut join = DistanceJoin::new(&t1, &t2, JoinConfig::default().with_max_pairs(50));
    let results = join.by_ref().count();
    let s = join.stats();
    assert_eq!(results as u64, s.pairs_reported);
    assert!(s.pairs_dequeued <= s.pairs_enqueued);
    assert!(s.max_queue > 0);
    assert!(s.distance_calcs > 0);
    assert_eq!(s.object_distance_calcs, 0, "exact oracle never refines");
    assert!(join.take_error().is_none());
}

#[test]
fn within_query_equivalence() {
    // A distance join with max distance = within predicate; compare against
    // a brute-force within join, ignoring order.
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let eps_d = 0.03;
    let got = DistanceJoin::new(&t1, &t2, JoinConfig::default().with_range(0.0, eps_d)).count();
    let want = a
        .iter()
        .flat_map(|p| b.iter().map(move |q| Metric::Euclidean.distance(p, q)))
        .filter(|d| *d <= eps_d)
        .count();
    assert_eq!(got, want);
}
