//! Key-domain and expansion-path equivalence: the squared-key domain and
//! the batched SoA kernels are pure performance changes, so every
//! combination of `KeyDomain` × `ExpansionPath` must produce the *same
//! stream* — identical pair order and bitwise-identical reported distances —
//! on any configuration, with and without a `[Dmin, Dmax]` restriction.
//! Also pins the tentpole's sqrt accounting: under squared Euclidean keys
//! the engine pays exactly one `sqrt` per reported result.

use proptest::prelude::*;
use sdj_core::{
    DistanceJoin, DmaxStrategy, ExpansionPath, JoinConfig, JoinStats, KeyDomain, ResultOrder,
    SemiConfig, SemiFilter, TraversalPolicy,
};
use sdj_geom::{Metric, Point};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::xy(x, y)).collect())
}

#[derive(Clone, Debug)]
struct Case {
    a: Vec<Point<2>>,
    b: Vec<Point<2>>,
    fanout: usize,
    traversal: TraversalPolicy,
    metric: Metric,
    range: Option<(f64, f64)>,
    max_pairs: Option<u64>,
    descending: bool,
    semi: Option<(SemiFilter, DmaxStrategy)>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    let traversal = prop::sample::select(vec![
        TraversalPolicy::Basic,
        TraversalPolicy::Even,
        TraversalPolicy::Simultaneous,
    ]);
    let metric = prop::sample::select(vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chessboard,
    ]);
    let semi = prop::option::of((
        prop::sample::select(vec![
            SemiFilter::Outside,
            SemiFilter::Inside1,
            SemiFilter::Inside2,
        ]),
        prop::sample::select(vec![
            DmaxStrategy::None,
            DmaxStrategy::Local,
            DmaxStrategy::GlobalNodes,
            DmaxStrategy::GlobalAll,
        ]),
    ));
    (
        arb_points(40),
        arb_points(50),
        3usize..7,
        traversal,
        metric,
        prop::option::of((0.0..4.0f64, 0.0..10.0f64)),
        prop::option::of(1u64..60),
        any::<bool>(),
        semi,
    )
        .prop_map(
            |(a, b, fanout, traversal, metric, range, max_pairs, descending, semi)| Case {
                a,
                b,
                fanout,
                traversal,
                metric,
                range: range.map(|(lo, w)| (lo, lo + w)),
                max_pairs,
                descending,
                semi,
            },
        )
}

/// The full result stream of one configuration, with distances as raw bits
/// so the comparison is exact, plus the run's final stats.
fn stream(
    case: &Case,
    domain: KeyDomain,
    path: ExpansionPath,
) -> (Vec<(u64, u64, u64)>, JoinStats) {
    let mut config = JoinConfig {
        traversal: case.traversal,
        metric: case.metric,
        ..JoinConfig::default()
    }
    .with_key_domain(domain)
    .with_expansion(path);
    if let Some((lo, hi)) = case.range {
        config = config.with_range(lo, hi);
    }
    if let Some(k) = case.max_pairs {
        config.max_pairs = Some(k);
    }
    let descending_ok = case
        .semi
        .is_none_or(|(_, dmax)| matches!(dmax, DmaxStrategy::None));
    if case.descending && descending_ok {
        config.order = ResultOrder::Descending;
    }
    let t1 = tree(&case.a, case.fanout);
    let t2 = tree(&case.b, case.fanout);
    match case.semi {
        None => {
            let mut join = DistanceJoin::new(&t1, &t2, config);
            let out = join
                .by_ref()
                .map(|r| (r.oid1.0, r.oid2.0, r.distance.to_bits()))
                .collect();
            assert!(join.take_error().is_none());
            (out, join.stats())
        }
        Some((filter, dmax)) => {
            let semi = SemiConfig { filter, dmax };
            let mut join = DistanceJoin::semi(&t1, &t2, config, semi);
            let out = join
                .by_ref()
                .map(|r| (r.oid1.0, r.oid2.0, r.distance.to_bits()))
                .collect();
            assert!(join.take_error().is_none());
            (out, join.stats())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `KeyDomain` × `ExpansionPath` combination emits the identical
    /// stream: the squared domain's monotone keys preserve the order and
    /// the deferred sqrt reproduces the plain-domain distances bit for bit.
    #[test]
    fn all_domain_path_combinations_emit_identical_streams(case in arb_case()) {
        let (reference, _) = stream(&case, KeyDomain::Squared, ExpansionPath::Batched);
        for (domain, path) in [
            (KeyDomain::Squared, ExpansionPath::Scalar),
            (KeyDomain::Squared, ExpansionPath::Lanes),
            (KeyDomain::Plain, ExpansionPath::Batched),
            (KeyDomain::Plain, ExpansionPath::Scalar),
            (KeyDomain::Plain, ExpansionPath::Lanes),
        ] {
            let (got, _) = stream(&case, domain, path);
            prop_assert_eq!(
                &got, &reference,
                "stream diverged under {:?}/{:?}", domain, path
            );
        }
    }

    /// Under squared Euclidean keys, `sqrt` is paid exactly once per
    /// reported result; the plain domain and the L1/L∞ metrics (whose key
    /// domain is the identity) never pay one.
    #[test]
    fn sqrt_calls_equal_reported_results(case in arb_case()) {
        for path in [ExpansionPath::Batched, ExpansionPath::Scalar] {
            let (results, stats) = stream(&case, KeyDomain::Squared, path);
            if matches!(case.metric, Metric::Euclidean) {
                prop_assert_eq!(stats.sqrt_calls, results.len() as u64);
                prop_assert_eq!(stats.sqrt_calls, stats.pairs_reported);
            } else {
                prop_assert_eq!(stats.sqrt_calls, 0);
            }
            let (_, plain_stats) = stream(&case, KeyDomain::Plain, path);
            prop_assert_eq!(plain_stats.sqrt_calls, 0);
        }
    }
}
