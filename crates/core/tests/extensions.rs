//! Tests for the §2.2.5 extensions: spatial selection windows, self-join
//! id exclusion, and their interaction with estimation and semi-joins.

use proptest::prelude::*;
use sdj_core::apps;
use sdj_core::{DistanceJoin, JoinConfig, SemiConfig};
use sdj_datagen::{tiger, uniform_points, unit_box};
use sdj_geom::{Metric, Point, Rect};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

const EPS: f64 = 1e-9;

fn build_tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut tree = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    tree
}

#[test]
fn window_restriction_matches_bruteforce() {
    let a = tiger::water_like(150, 17);
    let b = tiger::roads_like(300, 17);
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let w1 = Rect::new([0.2, 0.2], [0.7, 0.8]);
    let w2 = Rect::new([0.1, 0.3], [0.9, 0.9]);

    let got: Vec<f64> = DistanceJoin::new(&t1, &t2, JoinConfig::default())
        .with_windows(Some(w1), Some(w2))
        .map(|r| r.distance)
        .collect();

    let mut want: Vec<f64> = a
        .iter()
        .filter(|p| w1.contains_point(p))
        .flat_map(|p| {
            b.iter()
                .filter(|q| w2.contains_point(q))
                .map(move |q| Metric::Euclidean.distance(p, q))
        })
        .collect();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());

    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn one_sided_window() {
    let a = uniform_points(100, &unit_box(), 23);
    let b = uniform_points(100, &unit_box(), 24);
    let t1 = build_tree(&a, 5);
    let t2 = build_tree(&b, 5);
    let w1 = Rect::new([0.0, 0.0], [0.5, 0.5]);
    let results: Vec<_> = DistanceJoin::new(&t1, &t2, JoinConfig::default())
        .with_windows(Some(w1), None)
        .collect();
    let left_in = a.iter().filter(|p| w1.contains_point(p)).count();
    assert_eq!(results.len(), left_in * b.len());
    for r in &results {
        assert!(w1.contains_point(&a[r.oid1.0 as usize]));
    }
}

#[test]
fn window_with_max_pairs_still_exact() {
    // Windows make subtree counts unsafe for estimation; the conservative
    // handling must still deliver exactly k correct results.
    let a = tiger::water_like(200, 31);
    let b = tiger::roads_like(400, 31);
    let t1 = build_tree(&a, 6);
    let t2 = build_tree(&b, 6);
    let w2 = Rect::new([0.25, 0.25], [0.75, 0.75]);

    let mut want: Vec<f64> = a
        .iter()
        .flat_map(|p| {
            b.iter()
                .filter(|q| w2.contains_point(q))
                .map(move |q| Metric::Euclidean.distance(p, q))
        })
        .collect();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());

    for k in [1usize, 10, 50] {
        let got: Vec<f64> =
            DistanceJoin::new(&t1, &t2, JoinConfig::default().with_max_pairs(k as u64))
                .with_windows(None, Some(w2))
                .map(|r| r.distance)
                .collect();
        assert_eq!(got.len(), k.min(want.len()));
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < EPS, "k={k}");
        }
    }
}

#[test]
fn window_semi_join_restricts_partners() {
    // Semi-join with a window on the second side: nearest partner *inside
    // the window*.
    let a = uniform_points(60, &unit_box(), 41);
    let b = uniform_points(120, &unit_box(), 42);
    let t1 = build_tree(&a, 5);
    let t2 = build_tree(&b, 5);
    let w2 = Rect::new([0.0, 0.0], [0.6, 1.0]);
    let results: Vec<_> =
        DistanceJoin::semi(&t1, &t2, JoinConfig::default(), SemiConfig::default())
            .with_windows(None, Some(w2))
            .collect();
    assert_eq!(results.len(), a.len());
    for r in &results {
        let p = &a[r.oid1.0 as usize];
        let want = b
            .iter()
            .filter(|q| w2.contains_point(q))
            .map(|q| Metric::Euclidean.distance(p, q))
            .fold(f64::INFINITY, f64::min);
        assert!((r.distance - want).abs() < EPS);
        assert!(w2.contains_point(&b[r.oid2.0 as usize]));
    }
}

#[test]
fn exclusion_with_max_pairs_exact() {
    let pts = uniform_points(80, &unit_box(), 51);
    let t = build_tree(&pts, 5);
    let mut want: Vec<f64> = (0..pts.len())
        .flat_map(|i| {
            let pts = &pts;
            (0..pts.len())
                .filter(move |j| *j != i)
                .map(move |j| Metric::Euclidean.distance(&pts[i], &pts[j]))
        })
        .collect();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for k in [1usize, 20, 200] {
        let config = JoinConfig {
            exclude_equal_ids: true,
            ..JoinConfig::default()
        }
        .with_max_pairs(k as u64);
        let got: Vec<f64> = DistanceJoin::new(&t, &t, config)
            .map(|r| r.distance)
            .collect();
        assert_eq!(got.len(), k);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < EPS, "k={k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All-nearest-neighbours over random point sets always matches brute
    /// force, including duplicate coordinates (distinct ids at distance 0).
    #[test]
    fn all_nn_property(
        coords in prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 2..60),
        dup in any::<bool>(),
    ) {
        let mut pts: Vec<Point<2>> = coords.iter().map(|(x, y)| Point::xy(*x, *y)).collect();
        if dup {
            let first = pts[0];
            pts.push(first); // force a zero-distance non-self pair
        }
        let tree = build_tree(&pts, 4);
        let result = apps::all_nearest_neighbors(&tree, Metric::Euclidean);
        prop_assert_eq!(result.len(), pts.len());
        for r in &result {
            prop_assert_ne!(r.oid1, r.oid2);
            let p = &pts[r.oid1.0 as usize];
            let want = pts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j as u64 != r.oid1.0)
                .map(|(_, q)| Metric::Euclidean.distance(p, q))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((r.distance - want).abs() < EPS);
        }
    }

    /// The closest pair within a random set matches brute force.
    #[test]
    fn closest_pair_within_property(
        coords in prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 2..50),
    ) {
        let pts: Vec<Point<2>> = coords.iter().map(|(x, y)| Point::xy(*x, *y)).collect();
        let tree = build_tree(&pts, 4);
        let got = apps::closest_pair_within(&tree, Metric::Euclidean).unwrap();
        let mut want = f64::INFINITY;
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i != j {
                    want = want.min(Metric::Euclidean.distance(&pts[i], &pts[j]));
                }
            }
        }
        prop_assert!((got.distance - want).abs() < EPS);
    }
}
