//! Profiling must be a pure observer: attaching span accounting (off,
//! sampled, or always) must not change a single bit of any result stream,
//! and in always mode the recorded per-phase self-times must conserve —
//! they sum to no more than the measured wall clock, and every phase that
//! was entered has positive time.

use std::time::Instant;

use proptest::prelude::*;
use sdj_core::{
    BulkConfig, BulkDistanceJoin, DistanceJoin, DmaxStrategy, JoinConfig, SemiConfig, SemiFilter,
};
use sdj_geom::Point;
use sdj_obs::{ObsContext, SpanMode};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::xy(x, y)).collect())
}

/// The result stream as exact bits: object ids plus the distance's raw
/// IEEE-754 representation, so "bit-identical" means exactly that.
type Bits = Vec<(u64, u64, u64)>;

fn join_bits(t1: &RTree<2>, t2: &RTree<2>, config: JoinConfig, ctx: Option<&ObsContext>) -> Bits {
    let mut join = DistanceJoin::new(t1, t2, config);
    if let Some(ctx) = ctx {
        join = join.with_obs(ctx);
    }
    join.map(|r| (r.oid1.0, r.oid2.0, r.distance.to_bits()))
        .collect()
}

fn semi_bits(
    t1: &RTree<2>,
    t2: &RTree<2>,
    config: JoinConfig,
    semi: SemiConfig,
    ctx: Option<&ObsContext>,
) -> Bits {
    let mut join = DistanceJoin::semi(t1, t2, config, semi);
    if let Some(ctx) = ctx {
        join = join.with_obs(ctx);
    }
    join.map(|r| (r.oid1.0, r.oid2.0, r.distance.to_bits()))
        .collect()
}

fn bulk_bits(t1: &RTree<2>, t2: &RTree<2>, config: JoinConfig, ctx: Option<&ObsContext>) -> Bits {
    let mut join =
        BulkDistanceJoin::with_bulk_config_obs(t1, t2, config, BulkConfig::default(), ctx)
            .expect("bulk join construction");
    join.run()
        .into_iter()
        .map(|r| (r.oid1.0, r.oid2.0, r.distance.to_bits()))
        .collect()
}

/// Every observation mode that a caller can attach.
fn modes() -> [Option<ObsContext>; 3] {
    [
        Some(ObsContext::noop().with_span_mode(SpanMode::Off)),
        Some(ObsContext::noop()), // SpanMode::Sampled is the default
        Some(ObsContext::noop().with_span_mode(SpanMode::Always)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streams_are_bit_identical_with_profiling_on_and_off(
        a in arb_points(40),
        b in arb_points(50),
        fanout in 3usize..7,
        max_pairs in prop::option::of(1u64..60),
        dmax in prop::option::of(0.5..8.0f64),
    ) {
        let mut config = JoinConfig::default();
        if let Some(k) = max_pairs {
            config.max_pairs = Some(k);
        }
        if let Some(hi) = dmax {
            config = config.with_range(0.0, hi);
        }
        let t1 = tree(&a, fanout);
        let t2 = tree(&b, fanout);
        let semi = SemiConfig { filter: SemiFilter::Outside, dmax: DmaxStrategy::Local };

        let base_join = join_bits(&t1, &t2, config, None);
        let base_semi = semi_bits(&t1, &t2, config, semi, None);
        let base_bulk = bulk_bits(&t1, &t2, config, None);
        for ctx in modes() {
            let ctx = ctx.as_ref();
            prop_assert_eq!(&join_bits(&t1, &t2, config, ctx), &base_join);
            prop_assert_eq!(&semi_bits(&t1, &t2, config, semi, ctx), &base_semi);
            prop_assert_eq!(&bulk_bits(&t1, &t2, config, ctx), &base_bulk);
        }
    }
}

/// Conservation check helper: runs `f` with an always-mode context, then
/// asserts (a) the per-phase self-times sum to no more than the wall time
/// around the run (with a small allowance for the 1 ns zero-span clamp),
/// and (b) every phase that was entered measured every call and accrued
/// positive time.
fn assert_conserves(label: &str, f: impl FnOnce(&ObsContext)) {
    let ctx = ObsContext::noop().with_span_mode(SpanMode::Always);
    let start = Instant::now();
    f(&ctx);
    let wall_ns = start.elapsed().as_nanos() as f64;

    let snap = ctx.registry.snapshot();
    assert!(!snap.spans.is_empty(), "{label}: no phases recorded");
    let mut attributed = 0.0;
    for s in &snap.spans {
        assert!(s.calls > 0, "{label}: snapshot contains an untouched phase");
        assert_eq!(
            s.sampled_calls, s.calls,
            "{label}: always mode must measure every {} span",
            s.phase
        );
        assert!(
            s.sampled_ns >= s.calls,
            "{label}: phase {} was entered {} times but only accrued {} ns",
            s.phase,
            s.calls,
            s.sampled_ns
        );
        attributed += s.est_total_ns();
    }
    // Self-times are disjoint slices of the run, so their sum is bounded
    // by wall time; the clamp can add up to 1 ns per span on top.
    let clamp_allowance: u64 = snap.spans.iter().map(|s| s.calls).sum();
    assert!(
        attributed <= wall_ns + clamp_allowance as f64,
        "{label}: attributed {attributed:.0} ns exceeds wall {wall_ns:.0} ns"
    );
    // And on a serial run of this size the spans should explain most of
    // the wall time, not a sliver of it.
    assert!(
        attributed >= wall_ns * 0.5,
        "{label}: attributed {attributed:.0} ns is under half of wall {wall_ns:.0} ns"
    );
}

fn grid_points(n: usize, step: f64) -> Vec<Point<2>> {
    let side = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| Point::xy((i % side) as f64 * step, (i / side) as f64 * step))
        .collect()
}

#[test]
fn incremental_span_self_times_conserve() {
    let t1 = tree(&grid_points(900, 0.11), 8);
    let t2 = tree(&grid_points(900, 0.13), 8);
    let config = JoinConfig::default().with_max_pairs(4_000);
    assert_conserves("incremental", |ctx| {
        let n = DistanceJoin::new(&t1, &t2, config).with_obs(ctx).count();
        assert_eq!(n, 4_000);
    });
}

#[test]
fn bulk_span_self_times_conserve() {
    let t1 = tree(&grid_points(900, 0.11), 8);
    let t2 = tree(&grid_points(900, 0.13), 8);
    let config = JoinConfig::default().with_range(0.0, 0.3);
    assert_conserves("bulk", |ctx| {
        let mut join = BulkDistanceJoin::with_bulk_config_obs(
            &t1,
            &t2,
            config,
            BulkConfig::default(),
            Some(ctx),
        )
        .expect("bulk join construction");
        assert!(!join.run().is_empty());
    });
}
