//! Chaos suite: fuzzed fault schedules over join and semi-join runs.
//!
//! The fail-clean invariant (DESIGN.md §11): under ANY fault schedule a run
//! either completes with a result stream bit-identical to the fault-free
//! run, or emits a correct prefix of that stream and then stops with a typed
//! [`StorageError`] — never a panic, never a wrong, duplicated, or missing
//! pair before the error point.
//!
//! The serial engine is deterministic for a fixed configuration, so the
//! faulted run must track the golden run result-for-result until the first
//! unrecovered fault. Each schedule rebuilds its trees from scratch:
//! bit-flip faults permanently damage pages in the simulated disk, so a
//! damaged tree must not leak into the next case.

use std::sync::Arc;

use proptest::prelude::*;
use sdj_core::{DistanceJoin, JoinConfig, QueueBackend, SemiConfig};
use sdj_datagen::tiger;
use sdj_geom::Point;
use sdj_pqueue::{HybridConfig, KeyScale};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};
use sdj_storage::{FaultConfig, FaultInjector, StorageError};

fn build_tree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut tree = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    tree
}

fn sample_sets() -> (Vec<Point<2>>, Vec<Point<2>>) {
    (tiger::water_like(60, 5), tiger::roads_like(80, 5))
}

/// A result stream as comparable bits: (oid1, oid2, distance bits).
type Stream = Vec<(u64, u64, u64)>;

/// The hybrid spill tier is sized to spill aggressively (tiny `D_T`, small
/// pages, two frames) so fault schedules actually reach the disk paths.
fn hybrid_backend(dt: f64) -> QueueBackend {
    QueueBackend::Hybrid(HybridConfig {
        dt,
        page_size: 256,
        buffer_frames: 2,
        key_scale: KeyScale::Squared,
        ..HybridConfig::default()
    })
}

/// Runs a join (or semi-join) to completion under an optional fault
/// schedule, returning the emitted stream and the terminal error, if any.
fn run(
    config: JoinConfig,
    semi: Option<SemiConfig>,
    fault: Option<(&FaultConfig, u32)>,
) -> (Stream, Option<StorageError>, u64) {
    let (a, b) = sample_sets();
    let t1 = build_tree(&a, 5);
    let t2 = build_tree(&b, 5);
    // One injector shared by both trees and the queue's spill pager: the
    // run is single-threaded, so the combined operation sequence — and with
    // it the schedule — is deterministic. Installed only after the build so
    // construction is never faulted.
    let mut retries_recorded = 0;
    let injector = fault.map(|(cfg, retry_limit)| {
        let inj = Arc::new(FaultInjector::new(cfg.clone()));
        t1.set_fault_injector(Some(Arc::clone(&inj)));
        t2.set_fault_injector(Some(Arc::clone(&inj)));
        t1.set_retry_limit(retry_limit);
        t2.set_retry_limit(retry_limit);
        (inj, retry_limit)
    });
    let mut join = match semi {
        Some(s) => DistanceJoin::semi(&t1, &t2, config, s),
        None => DistanceJoin::new(&t1, &t2, config),
    };
    if let Some((inj, retry_limit)) = &injector {
        join.set_queue_fault_injector(Some(Arc::clone(inj)));
        join.set_queue_retry_limit(*retry_limit);
    }
    let stream: Stream = (&mut join)
        .map(|r| (r.oid1.0, r.oid2.0, r.distance.to_bits()))
        .collect();
    let error = join.take_error();
    if injector.is_some() {
        retries_recorded =
            t1.pool_stats().retries + t2.pool_stats().retries + join.queue_pool_stats().retries;
    }
    (stream, error, retries_recorded)
}

/// Prefix-or-identical: the chaos invariant, shared by every case below.
fn assert_fail_clean(golden: &Stream, got: &Stream, error: &Option<StorageError>) {
    match error {
        None => assert_eq!(
            got, golden,
            "fault-free completion must be bit-identical to the golden run"
        ),
        Some(e) => {
            assert!(
                got.len() <= golden.len(),
                "faulted run emitted more results than exist ({} > {}), error {e}",
                got.len(),
                golden.len()
            );
            assert_eq!(
                got,
                &golden[..got.len()],
                "faulted run diverged from the golden stream before its error ({e})"
            );
        }
    }
}

fn fuzzed_fault_config(
    seed: u64,
    read_transient: f64,
    write_transient: f64,
    bit_flip: f64,
    torn_write: f64,
    disk_full_after: Option<u64>,
) -> FaultConfig {
    FaultConfig {
        seed,
        read_transient,
        write_transient,
        bit_flip,
        torn_write,
        disk_full_after,
        ..FaultConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Joins under fuzzed mixed fault schedules, across queue backends.
    #[test]
    fn join_is_fail_clean_under_fuzzed_schedules(
        seed in any::<u64>(),
        read_p in 0.0..0.02f64,
        write_p in 0.0..0.02f64,
        flip_p in 0.0..0.01f64,
        torn_p in 0.0..0.01f64,
        disk_full in prop::option::of(0u64..12),
        retries in 0u32..3,
        dt in prop::option::of(0.05..0.5f64),
    ) {
        let config = JoinConfig {
            queue: dt.map_or(QueueBackend::Memory, hybrid_backend),
            ..JoinConfig::default()
        };
        let (golden, no_err, _) = run(config, None, None);
        prop_assert!(no_err.is_none(), "golden run must be fault-free");
        let fault = fuzzed_fault_config(seed, read_p, write_p, flip_p, torn_p, disk_full);
        let (got, error, _) = run(config, None, Some((&fault, retries)));
        assert_fail_clean(&golden, &got, &error);
    }

    /// Semi-joins under the same fuzzed schedules.
    #[test]
    fn semi_join_is_fail_clean_under_fuzzed_schedules(
        seed in any::<u64>(),
        read_p in 0.0..0.02f64,
        write_p in 0.0..0.02f64,
        flip_p in 0.0..0.01f64,
        torn_p in 0.0..0.01f64,
        retries in 0u32..3,
        dt in prop::option::of(0.05..0.5f64),
    ) {
        let config = JoinConfig {
            queue: dt.map_or(QueueBackend::Memory, hybrid_backend),
            ..JoinConfig::default()
        };
        let semi = SemiConfig::default();
        let (golden, no_err, _) = run(config, Some(semi), None);
        prop_assert!(no_err.is_none(), "golden run must be fault-free");
        let fault = fuzzed_fault_config(seed, read_p, write_p, flip_p, torn_p, None);
        let (got, error, _) = run(config, Some(semi), Some((&fault, retries)));
        assert_fail_clean(&golden, &got, &error);
    }

    /// With retries enabled, a transient-only schedule must complete — and
    /// complete identically: transient faults are recoverable by definition.
    #[test]
    fn transient_only_with_retries_completes_identically(
        seed in any::<u64>(),
        p in 0.005..0.05f64,
        dt in prop::option::of(0.05..0.5f64),
    ) {
        let config = JoinConfig {
            queue: dt.map_or(QueueBackend::Memory, hybrid_backend),
            ..JoinConfig::default()
        };
        let (golden, _, _) = run(config, None, None);
        let fault = FaultConfig::transient_only(seed, p);
        // 16 retries: (1-p)^16 failure odds per op are negligible at p ≤ 5%.
        let (got, error, retries) = run(config, None, Some((&fault, 16)));
        prop_assert!(error.is_none(), "transient-only schedule failed: {error:?}");
        prop_assert_eq!(got, golden);
        // The schedule is probabilistic, so a lucky seed may inject nothing;
        // retries must be recorded whenever something was injected.
        let _ = retries;
    }
}

/// Deterministic spot checks for each fault class, hybrid backend.

#[test]
fn nth_read_fault_without_retries_is_a_typed_error() {
    let config = JoinConfig {
        queue: hybrid_backend(0.1),
        ..JoinConfig::default()
    };
    let (golden, _, _) = run(config, None, None);
    let fault = FaultConfig {
        seed: 3,
        fail_read_nth: Some(1),
        ..FaultConfig::default()
    };
    let (got, error, _) = run(config, None, Some((&fault, 0)));
    assert_fail_clean(&golden, &got, &error);
    assert!(
        matches!(error, Some(StorageError::Io { transient: true })),
        "expected the injected transient Io to surface, got {error:?}"
    );
}

#[test]
fn bit_flip_surfaces_as_checksum_corruption() {
    let config = JoinConfig {
        queue: hybrid_backend(0.1),
        ..JoinConfig::default()
    };
    let (golden, _, _) = run(config, None, None);
    let fault = FaultConfig {
        seed: 11,
        bit_flip: 1.0,
        ..FaultConfig::default()
    };
    let (got, error, _) = run(config, None, Some((&fault, 4)));
    assert_fail_clean(&golden, &got, &error);
    assert!(
        matches!(error, Some(StorageError::Corrupt(_))),
        "a flipped stored bit must be caught by the page checksum, got {error:?}"
    );
}

#[test]
fn disk_full_during_spill_surfaces_as_typed_error() {
    // D_T small enough that the spill tier must allocate pages.
    let config = JoinConfig {
        queue: hybrid_backend(0.02),
        ..JoinConfig::default()
    };
    let (golden, _, _) = run(config, None, None);
    let fault = FaultConfig {
        seed: 5,
        disk_full_after: Some(0),
        ..FaultConfig::default()
    };
    let (got, error, _) = run(config, None, Some((&fault, 4)));
    assert_fail_clean(&golden, &got, &error);
    assert!(
        matches!(error, Some(StorageError::DiskFull)),
        "exhausted allocation budget must surface as DiskFull, got {error:?}"
    );
}

#[test]
fn torn_write_is_never_retried_and_poisons_the_page() {
    let config = JoinConfig {
        queue: hybrid_backend(0.05),
        ..JoinConfig::default()
    };
    let (golden, _, _) = run(config, None, None);
    let fault = FaultConfig {
        seed: 17,
        torn_write: 1.0,
        ..FaultConfig::default()
    };
    let (got, error, _) = run(config, None, Some((&fault, 8)));
    assert_fail_clean(&golden, &got, &error);
    assert!(
        matches!(
            error,
            Some(StorageError::Io { transient: false } | StorageError::Corrupt(_))
        ),
        "a torn write must fail hard (or be caught by checksum on re-read), got {error:?}"
    );
}

#[test]
fn transient_faults_record_retries_in_pool_stats() {
    let config = JoinConfig {
        queue: hybrid_backend(0.05),
        ..JoinConfig::default()
    };
    let (golden, _, _) = run(config, None, None);
    // High enough rate that injections are certain over hundreds of ops.
    let fault = FaultConfig::transient_only(23, 0.05);
    let (got, error, retries) = run(config, None, Some((&fault, 16)));
    assert!(
        error.is_none(),
        "retries must absorb transient faults: {error:?}"
    );
    assert_eq!(got, golden);
    assert!(
        retries > 0,
        "recovered transient faults must count as retries"
    );
}

#[test]
fn ordered_intersection_join_survives_tree_faults() {
    use sdj_core::OrderedIntersectionJoin;
    use sdj_geom::Metric;

    // Inflate the points into overlapping rectangles so the intersection
    // join has real work to do.
    let build_rect_tree = |points: &[Point<2>]| {
        let mut tree = RTree::new(RTreeConfig::small(5));
        for (i, p) in points.iter().enumerate() {
            let r = sdj_geom::Rect::new(
                [p.coords()[0] - 0.05, p.coords()[1] - 0.05],
                [p.coords()[0] + 0.05, p.coords()[1] + 0.05],
            );
            tree.insert(ObjectId(i as u64), r).unwrap();
        }
        tree
    };
    let (a, b) = sample_sets();
    let t1 = build_rect_tree(&a);
    let t2 = build_rect_tree(&b);
    let focus = Point::xy(0.5, 0.5);
    let golden: Vec<_> = OrderedIntersectionJoin::new(&t1, &t2, focus, Metric::Euclidean)
        .map(|p| (p.oid1.0, p.oid2.0, p.distance_from_focus.to_bits()))
        .collect();
    assert!(!golden.is_empty(), "inflated rectangles must intersect");

    let t1 = build_rect_tree(&a);
    let t2 = build_rect_tree(&b);
    let inj = Arc::new(FaultInjector::new(FaultConfig {
        seed: 29,
        read_transient: 0.05,
        ..FaultConfig::default()
    }));
    t1.set_fault_injector(Some(Arc::clone(&inj)));
    t2.set_fault_injector(Some(inj));
    let mut join = OrderedIntersectionJoin::new(&t1, &t2, focus, Metric::Euclidean);
    let got: Vec<_> = (&mut join)
        .map(|p| (p.oid1.0, p.oid2.0, p.distance_from_focus.to_bits()))
        .collect();
    match join.take_error() {
        None => assert_eq!(got, golden),
        Some(_) => assert_eq!(got, golden[..got.len()]),
    }
}

/// Kind-confusing corruption: a spilled pair whose tag bytes are damaged
/// into *valid but wrong* kinds (an object demoted to a node, a node
/// promoted to an object), not just invalid ones. The decoder either
/// rejects the bytes as [`StorageError::Corrupt`], or yields a pair whose
/// claimed kinds are internally honest — in particular, any pair
/// `is_final` would report carries an object id on BOTH sides, so the
/// join's finalisation path can always take its typed-error branch and
/// never needs a panicking unwrap. This pins the invariant the engine's
/// fail-clean finalisation relies on.
#[test]
fn kind_confused_pair_decodes_to_error_or_honest_kinds() {
    use sdj_core::{Item, Pair};
    use sdj_pqueue::Codec;
    use sdj_storage::codec::{PageReader, PageWriter};

    let mbr = sdj_geom::Rect::new([0.25, 0.5], [1.0, 2.0]);
    let pair: Pair<2> = Pair {
        item1: Item::Object {
            oid: ObjectId(7),
            mbr,
        },
        item2: Item::Object {
            oid: ObjectId(11),
            mbr,
        },
    };
    let size = Pair::<2>::encoded_size();
    let item_size = Item::<2>::encoded_size();
    let mut buf = vec![0u8; size];
    let mut w = PageWriter::new(&mut buf);
    pair.encode(&mut w).unwrap();

    let mut corrupt_rejections = 0;
    for tag1 in 0u8..=3 {
        for tag2 in 0u8..=3 {
            let mut bytes = buf.clone();
            bytes[0] = tag1;
            bytes[item_size] = tag2;
            let mut r = PageReader::new(&bytes);
            match Pair::<2>::decode(&mut r) {
                Err(StorageError::Corrupt(_)) => corrupt_rejections += 1,
                Err(e) => panic!("kind confusion must surface as Corrupt, got {e:?}"),
                Ok(p) => {
                    for exact_obrs in [false, true] {
                        if p.is_final(exact_obrs) {
                            assert!(
                                p.item1.object_id().is_some() && p.item2.object_id().is_some(),
                                "a final pair must expose object ids on both sides: {p:?}"
                            );
                        }
                    }
                }
            }
        }
    }
    // Tag 3 is invalid on either side: 7 of the 16 combinations.
    assert_eq!(corrupt_rejections, 7, "invalid tags must all be rejected");
}
