//! The adaptive handoff's correctness contract against the pure
//! incremental engine:
//!
//! * **Ordered mode**: `prefix ++ seeded-bulk(ordered)` reports a distance
//!   sequence bit-identical to the pure incremental stream, with a handoff
//!   forced at *any* checkpoint — before the first pop, mid-run, mid-spill
//!   on the hybrid queue's disk tiers, after the last result, or never
//!   (forced beyond exhaustion). Equal-distance tie order may differ, the
//!   same contract the forced-bulk and parallel paths have.
//! * **Within-range mode**: the unordered remainder keeps the output
//!   multiset-equal.
//! * **Fail-clean (chaos)**: under fuzzed fault schedules — including
//!   faults landing inside the handoff's frontier drain and harvest — the
//!   run either completes identically or emits a correct prefix and stops
//!   with a typed error (the PR 5 contract).

use std::sync::Arc;

use proptest::prelude::*;
use sdj_core::bulk::BulkConfig;
use sdj_core::{
    AdaptiveConfig, AdaptiveDistanceJoin, AdaptiveOutcome, DistanceJoin, ExpansionPath, JoinConfig,
    QueueBackend,
};
use sdj_geom::{Metric, Rect};
use sdj_pqueue::{HybridConfig, KeyScale};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};
use sdj_storage::{FaultConfig, FaultInjector};

fn tree(rects: &[Rect<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, r) in rects.iter().enumerate() {
        t.insert(ObjectId(i as u64), *r).unwrap();
    }
    t
}

/// Rectangles in a 10×10 box: mostly points, some extended boxes.
fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect<2>>> {
    prop::collection::vec(
        (
            0.0..10.0f64,
            0.0..10.0f64,
            prop_oneof![Just(0.0), 0.0..2.0f64],
            prop_oneof![Just(0.0), 0.0..2.0f64],
        ),
        1..max,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
            .collect()
    })
}

/// An aggressively-spilling hybrid queue (tiny `D_T`, small pages, two
/// frames) so forced handoffs land while pairs sit on every tier.
fn hybrid_backend(dt: f64) -> QueueBackend {
    QueueBackend::Hybrid(HybridConfig {
        dt,
        page_size: 256,
        buffer_frames: 2,
        key_scale: KeyScale::Squared,
        ..HybridConfig::default()
    })
}

#[derive(Clone, Debug)]
struct Case {
    a: Vec<Rect<2>>,
    b: Vec<Rect<2>>,
    fanout: usize,
    metric: Metric,
    range: Option<(f64, f64)>,
    max_pairs: Option<u64>,
    exclude_equal_ids: bool,
    lanes: bool,
    hybrid_dt: Option<f64>,
    /// Pop count the handoff is forced at: 0 = before the first pop; large
    /// values exercise "after the last result" and "never fires".
    force_at: u64,
    pop_stride: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    let metric = prop::sample::select(vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chessboard,
    ]);
    (
        arb_rects(30),
        arb_rects(35),
        3usize..7,
        metric,
        prop::option::of((0.0..4.0f64, 0.0..10.0f64)),
        prop::option::of(1u64..50),
        any::<bool>(),
        any::<bool>(),
        prop::option::of(0.05..0.5f64),
        (
            prop_oneof![Just(0u64), 1u64..300, 2_000u64..1_000_000],
            1u64..64,
        ),
    )
        .prop_map(
            |(
                a,
                b,
                fanout,
                metric,
                range,
                max_pairs,
                exclude_equal_ids,
                lanes,
                hybrid_dt,
                (force_at, pop_stride),
            )| Case {
                a,
                b,
                fanout,
                metric,
                range: range.map(|(lo, w)| (lo, lo + w)),
                max_pairs,
                exclude_equal_ids,
                lanes,
                hybrid_dt,
                force_at,
                pop_stride,
            },
        )
}

fn config_of(case: &Case) -> JoinConfig {
    let mut config = JoinConfig {
        metric: case.metric,
        exclude_equal_ids: case.exclude_equal_ids,
        queue: case.hybrid_dt.map_or(QueueBackend::Memory, hybrid_backend),
        ..JoinConfig::default()
    };
    if let Some((lo, hi)) = case.range {
        config = config.with_range(lo, hi);
    }
    if let Some(k) = case.max_pairs {
        config.max_pairs = Some(k);
    }
    if case.lanes {
        config = config.with_expansion(ExpansionPath::Lanes);
    }
    config
}

fn adaptive_config_of(case: &Case) -> AdaptiveConfig {
    AdaptiveConfig {
        pop_stride: case.pop_stride,
        force_handoff_at: Some(case.force_at),
        ..AdaptiveConfig::default()
    }
}

/// `(distance bits, oid1, oid2)` triples.
type Stream = Vec<(u64, u64, u64)>;

fn canon(results: &[(u64, u64, u64)]) -> Stream {
    let mut v = results.to_vec();
    v.sort_unstable();
    v
}

fn triples(results: &[sdj_core::ResultPair]) -> Stream {
    results
        .iter()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect()
}

fn incremental_stream(case: &Case) -> Stream {
    let t1 = tree(&case.a, case.fanout);
    let t2 = tree(&case.b, case.fanout);
    let mut join = DistanceJoin::new(&t1, &t2, config_of(case));
    let out = join
        .by_ref()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect();
    assert!(join.take_error().is_none());
    out
}

/// Serial adaptive run with the case's forced handoff; ordered remainder.
fn adaptive_stream(case: &Case) -> (Stream, bool) {
    let t1 = tree(&case.a, case.fanout);
    let t2 = tree(&case.b, case.fanout);
    let join = AdaptiveDistanceJoin::with_configs(
        &t1,
        &t2,
        config_of(case),
        BulkConfig::default(),
        adaptive_config_of(case),
    );
    let run = join.run();
    assert!(
        run.error.is_none(),
        "fault-free run errored: {:?}",
        run.error
    );
    (triples(&run.results), run.replanned.is_some())
}

/// Same handoff, unordered remainder (the within-range consumer).
fn adaptive_stream_unordered(case: &Case) -> Stream {
    let t1 = tree(&case.a, case.fanout);
    let t2 = tree(&case.b, case.fanout);
    let join = AdaptiveDistanceJoin::with_configs(
        &t1,
        &t2,
        config_of(case),
        BulkConfig::default(),
        adaptive_config_of(case),
    );
    match join.execute() {
        AdaptiveOutcome::Completed(run) => {
            assert!(run.error.is_none());
            triples(&run.results)
        }
        AdaptiveOutcome::Handoff(h) => {
            let mut bulk = h.bulk;
            let tail = bulk.run_unordered();
            let mut out = triples(&h.prefix);
            out.extend(triples(&tail));
            out
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Ordered mode: the merged stream's distance sequence is bit-identical
    /// to the pure incremental stream, for a handoff forced anywhere.
    #[test]
    fn ordered_adaptive_reports_identical_distances(case in arb_case()) {
        let reference = incremental_stream(&case);
        let (got, _) = adaptive_stream(&case);
        prop_assert_eq!(got.len(), reference.len());
        let ref_dists: Vec<u64> = reference.iter().map(|r| r.0).collect();
        let got_dists: Vec<u64> = got.iter().map(|r| r.0).collect();
        prop_assert_eq!(got_dists, ref_dists);
        prop_assert_eq!(canon(&got), canon(&reference));
    }

    /// Within-range mode: the unordered remainder keeps multiset equality.
    #[test]
    fn unordered_adaptive_is_multiset_equal(case in arb_case()) {
        // `run_unordered` falls back to the ordered merge under `max_pairs`
        // (truncation needs global order); exercise the true unordered path.
        let case = Case { max_pairs: None, ..case };
        let reference = incremental_stream(&case);
        let got = adaptive_stream_unordered(&case);
        prop_assert_eq!(canon(&got), canon(&reference));
    }

    /// The pull-paced cursor produces the same stream as the one-shot
    /// `run()`, bit-for-bit and in the same order, regardless of how the
    /// pulls chop it up — the invariant that lets a session hold an
    /// adaptive join paused between batches.
    #[test]
    fn cursor_stream_matches_run(case in arb_case(), batch in 1usize..7) {
        let (reference, replanned) = adaptive_stream(&case);

        let t1 = tree(&case.a, case.fanout);
        let t2 = tree(&case.b, case.fanout);
        let join = AdaptiveDistanceJoin::with_configs(
            &t1,
            &t2,
            config_of(&case),
            BulkConfig::default(),
            adaptive_config_of(&case),
        );
        let mut cursor = join.cursor();
        let mut out = Vec::new();
        loop {
            let before = out.len();
            let done = cursor.pull(batch, &mut out).expect("fault-free cursor");
            if done {
                break;
            }
            prop_assert!(out.len() > before, "pull made no progress");
        }
        prop_assert!(cursor.is_done());
        prop_assert_eq!(triples(&out), reference);
        prop_assert_eq!(cursor.replanned().is_some(), replanned);
        // A drained cursor holds no queue or buffered-result memory.
        prop_assert_eq!(cursor.queue_bytes(), 0);
        prop_assert_eq!(cursor.buffered_bytes(), 0);
    }
}

// Chaos: a fault schedule over the trees and the hybrid queue's pager,
// with the handoff forced mid-run so schedules land inside the frontier
// drain and harvest too. Fail-clean means: no error → bit-identical to the
// fault-free adaptive stream; error → a correct prefix of it.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adaptive_is_fail_clean_under_fuzzed_schedules(
        seed in any::<u64>(),
        read_p in 0.0..0.02f64,
        write_p in 0.0..0.02f64,
        flip_p in 0.0..0.01f64,
        torn_p in 0.0..0.01f64,
        retries in 0u32..3,
        dt in prop::option::of(0.05..0.5f64),
        force_at in prop_oneof![Just(0u64), 1u64..200],
        stride in 1u64..32,
    ) {
        let pts_a = sdj_datagen::tiger::water_like(60, 5);
        let pts_b = sdj_datagen::tiger::roads_like(80, 5);
        let case = Case {
            a: pts_a.iter().map(|p| p.to_rect()).collect(),
            b: pts_b.iter().map(|p| p.to_rect()).collect(),
            fanout: 5,
            metric: Metric::Euclidean,
            range: None,
            max_pairs: None,
            exclude_equal_ids: false,
            lanes: false,
            hybrid_dt: dt,
            force_at,
            pop_stride: stride,
        };
        let (golden, _) = adaptive_stream(&case);

        // Faulted run: trees rebuilt from scratch (bit flips permanently
        // damage simulated pages), injector installed only after the build.
        let t1 = tree(&case.a, case.fanout);
        let t2 = tree(&case.b, case.fanout);
        let fault = FaultConfig {
            seed,
            read_transient: read_p,
            write_transient: write_p,
            bit_flip: flip_p,
            torn_write: torn_p,
            ..FaultConfig::default()
        };
        let inj = Arc::new(FaultInjector::new(fault));
        t1.set_fault_injector(Some(Arc::clone(&inj)));
        t2.set_fault_injector(Some(Arc::clone(&inj)));
        t1.set_retry_limit(retries);
        t2.set_retry_limit(retries);
        let mut join = AdaptiveDistanceJoin::with_configs(
            &t1,
            &t2,
            config_of(&case),
            BulkConfig::default(),
            adaptive_config_of(&case),
        );
        join.set_queue_fault_injector(Some(Arc::clone(&inj)));
        join.set_queue_retry_limit(retries);
        let run = join.run();
        let got = triples(&run.results);
        match &run.error {
            None => prop_assert_eq!(got, golden),
            Some(e) => {
                prop_assert!(
                    got.len() <= golden.len(),
                    "faulted run emitted more results than exist ({} > {}), error {}",
                    got.len(), golden.len(), e
                );
                prop_assert_eq!(
                    &got[..],
                    &golden[..got.len()],
                    "faulted run diverged from the golden stream before its error ({})", e
                );
            }
        }
    }
}

/// A handoff forced before the first pop degenerates to a pure (seeded)
/// bulk run over the root frontier; the stream must still match.
#[test]
fn handoff_before_first_pop_matches_incremental() {
    let rects: Vec<Rect<2>> = (0..300)
        .map(|i| {
            let p = [(i % 20) as f64 * 0.5, (i / 20) as f64 * 0.6];
            Rect::new(p, p)
        })
        .collect();
    let case = Case {
        a: rects.clone(),
        b: rects,
        fanout: 6,
        metric: Metric::Euclidean,
        range: Some((0.0, 1.1)),
        max_pairs: None,
        exclude_equal_ids: true,
        lanes: false,
        hybrid_dt: None,
        force_at: 0,
        pop_stride: 4096,
    };
    let reference = incremental_stream(&case);
    let (got, replanned) = adaptive_stream(&case);
    assert!(replanned, "forced handoff at pop 0 must fire");
    let ref_dists: Vec<u64> = reference.iter().map(|r| r.0).collect();
    let got_dists: Vec<u64> = got.iter().map(|r| r.0).collect();
    assert_eq!(got_dists, ref_dists);
    assert_eq!(canon(&got), canon(&reference));
}

/// A forced pop count beyond exhaustion never fires: the run is the pure
/// incremental stream, tie order included.
#[test]
fn handoff_beyond_exhaustion_is_pure_incremental() {
    let rects: Vec<Rect<2>> = (0..150)
        .map(|i| {
            let p = [(i % 15) as f64, (i / 15) as f64];
            Rect::new(p, p)
        })
        .collect();
    let case = Case {
        a: rects.clone(),
        b: rects,
        fanout: 5,
        metric: Metric::Manhattan,
        range: Some((0.0, 2.0)),
        max_pairs: Some(40),
        exclude_equal_ids: false,
        lanes: false,
        hybrid_dt: None,
        force_at: u64::MAX,
        pop_stride: 64,
    };
    let reference = incremental_stream(&case);
    let (got, replanned) = adaptive_stream(&case);
    assert!(!replanned, "handoff must not fire past exhaustion");
    assert_eq!(got, reference, "no-handoff adaptive must be bit-identical");
}

/// `STOP AFTER k` across the handoff: the seeded remainder owes exactly
/// `k - prefix` results and the merged stream truncates there.
#[test]
fn stop_after_truncates_across_the_handoff() {
    let rects: Vec<Rect<2>> = (0..400)
        .map(|i| {
            let p = [(i % 20) as f64 * 0.37, (i / 20) as f64 * 0.53];
            Rect::new(p, p)
        })
        .collect();
    for force_at in [0, 25, 90, 400] {
        let case = Case {
            a: rects.clone(),
            b: rects.clone(),
            fanout: 6,
            metric: Metric::Euclidean,
            range: None,
            max_pairs: Some(64),
            exclude_equal_ids: true,
            lanes: false,
            hybrid_dt: None,
            force_at,
            pop_stride: 16,
        };
        let reference = incremental_stream(&case);
        assert_eq!(reference.len(), 64);
        let (got, _) = adaptive_stream(&case);
        assert_eq!(got.len(), 64, "force_at={force_at}");
        let ref_dists: Vec<u64> = reference.iter().map(|r| r.0).collect();
        let got_dists: Vec<u64> = got.iter().map(|r| r.0).collect();
        assert_eq!(got_dists, ref_dists, "force_at={force_at}");
    }
}

/// The replan ledger: one switched checkpoint at most, signals recorded in
/// checkpoint order, and the switch's pop coordinate honours the force.
#[test]
fn signals_record_the_single_switch() {
    let rects: Vec<Rect<2>> = (0..250)
        .map(|i| {
            let p = [(i % 25) as f64 * 0.41, (i / 25) as f64 * 0.77];
            Rect::new(p, p)
        })
        .collect();
    let case = Case {
        a: rects.clone(),
        b: rects,
        fanout: 5,
        metric: Metric::Euclidean,
        range: Some((0.0, 1.5)),
        max_pairs: None,
        exclude_equal_ids: true,
        lanes: false,
        hybrid_dt: None,
        force_at: 40,
        pop_stride: 8,
    };
    let t1 = tree(&case.a, case.fanout);
    let t2 = tree(&case.b, case.fanout);
    let join = AdaptiveDistanceJoin::with_configs(
        &t1,
        &t2,
        config_of(&case),
        BulkConfig::default(),
        AdaptiveConfig {
            // Infinite hysteresis silences the cost model, so the switch
            // coordinate is exactly the forced one.
            hysteresis: f64::INFINITY,
            ..adaptive_config_of(&case)
        },
    );
    let run = join.run();
    assert!(run.error.is_none());
    let info = run.replanned.expect("forced switch must fire");
    assert_eq!(info.at_pop, 40);
    assert!(info.forced);
    assert_eq!(run.signals.iter().filter(|s| s.switched).count(), 1);
    let last = run.signals.last().unwrap();
    assert!(last.switched, "the switch ends the checkpoint ledger");
    assert_eq!(last.pops, 40);
    for w in run.signals.windows(2) {
        assert!(w[0].checkpoint < w[1].checkpoint);
        assert!(w[0].pops <= w[1].pops);
    }
    assert!(run.bulk_stats.is_some());
}
