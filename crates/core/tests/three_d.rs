//! The paper's algorithms are dimension-generic ("arbitrary spatial data
//! types in any dimensions"); exercise the whole stack in 3-D.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sdj_core::{DistanceJoin, JoinConfig, SemiConfig};
use sdj_geom::{Metric, Point};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

const EPS: f64 = 1e-9;

fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
            ])
        })
        .collect()
}

fn tree(points: &[Point<3>]) -> RTree<3> {
    let mut t = RTree::new(RTreeConfig {
        page_size: 1024,
        fanout_cap: Some(8),
        buffer_frames: 64,
        ..RTreeConfig::default()
    });
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

#[test]
fn three_d_join_matches_bruteforce() {
    let a = random_points(120, 1);
    let b = random_points(180, 2);
    let t1 = tree(&a);
    let t2 = tree(&b);
    t1.validate().unwrap();
    t2.validate().unwrap();
    for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chessboard] {
        let config = JoinConfig {
            metric,
            ..JoinConfig::default()
        };
        let got: Vec<f64> = DistanceJoin::new(&t1, &t2, config)
            .take(400)
            .map(|r| r.distance)
            .collect();
        let mut want: Vec<f64> = a
            .iter()
            .flat_map(|p| b.iter().map(move |q| metric.distance(p, q)))
            .collect();
        want.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < EPS, "{metric:?}");
        }
    }
}

#[test]
fn three_d_semi_join_and_estimation() {
    let a = random_points(90, 3);
    let b = random_points(150, 4);
    let t1 = tree(&a);
    let t2 = tree(&b);

    let semi: Vec<(u64, f64)> =
        DistanceJoin::semi(&t1, &t2, JoinConfig::default(), SemiConfig::default())
            .map(|r| (r.oid1.0, r.distance))
            .collect();
    assert_eq!(semi.len(), a.len());
    for (oid, d) in &semi {
        let nn = b
            .iter()
            .map(|q| Metric::Euclidean.distance(&a[*oid as usize], q))
            .fold(f64::INFINITY, f64::min);
        assert!((d - nn).abs() < EPS);
    }

    // Estimation stays exact in 3-D (MINMAXDIST face enumeration included).
    let mut want: Vec<f64> = a
        .iter()
        .flat_map(|p| b.iter().map(move |q| Metric::Euclidean.distance(p, q)))
        .collect();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for bound in [
        sdj_core::EstimationBound::AllPairs,
        sdj_core::EstimationBound::ExistsPair,
    ] {
        let config = JoinConfig {
            estimation: bound,
            ..JoinConfig::default()
        }
        .with_max_pairs(200);
        let got: Vec<f64> = DistanceJoin::new(&t1, &t2, config)
            .map(|r| r.distance)
            .collect();
        assert_eq!(got.len(), 200, "{bound:?}");
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < EPS, "{bound:?}");
        }
    }
}

// (The 3-D octree join lives in sdj-quadtree's test suite to avoid a
// dev-dependency cycle.)
