//! Per-engine observability handle.
//!
//! A [`JoinObs`] is built once from an [`ObsContext`] and moved into a
//! [`DistanceJoin`](crate::DistanceJoin) via
//! [`with_obs`](crate::DistanceJoin::with_obs). It owns clones of every
//! instrument the join touches (created up front, so the hot path never
//! locks the registry) plus the shared event sink and the sampling
//! cadences. The uninstrumented engine stores `None` and pays a single
//! branch per hook site.

use std::sync::Arc;

use sdj_obs::{
    Counter, Event, EventSink, Gauge, Histogram, ObsContext, PairKind, Phase, Side, SpanTimer,
};

/// Instrumentation state carried by one join engine (serial run, frontier
/// partitioner, or parallel worker).
pub struct JoinObs {
    sink: Arc<dyn EventSink>,
    pop_sample_every: u64,
    result_sample_every: u64,
    detail: bool,
    /// Emit `ResultReported` events (disabled for parallel workers, whose
    /// per-shard ranks would interleave; the executor emits them from the
    /// merged stream instead).
    emit_results: bool,
    worker: u32,
    pops: u64,
    /// Last bound announced via `BoundTightened`; only strict improvements
    /// emit again.
    last_bound: f64,
    queue_depth: Arc<Gauge>,
    pop_distance: Arc<Histogram>,
    result_distance: Arc<Histogram>,
    results: Arc<Counter>,
    expansions: Arc<Counter>,
    semi_bound_updates: Arc<Counter>,
    bound_tightenings: Arc<Counter>,
    /// Phase-span timer ([`sdj_obs::span`]); `None` when the context has
    /// spans off.
    spans: Option<SpanTimer>,
}

impl JoinObs {
    /// Handle for a serial engine (worker id 0).
    #[must_use]
    pub fn new(ctx: &ObsContext) -> Self {
        Self::for_worker(ctx, 0)
    }

    /// Handle for parallel worker `worker` (0 = the partitioner).
    #[must_use]
    pub fn for_worker(ctx: &ObsContext, worker: u32) -> Self {
        let r = &ctx.registry;
        Self {
            sink: Arc::clone(&ctx.sink),
            pop_sample_every: ctx.pop_sample_every,
            result_sample_every: ctx.result_sample_every,
            detail: ctx.detail,
            emit_results: true,
            worker,
            pops: 0,
            last_bound: f64::INFINITY,
            queue_depth: r.gauge("join.queue_depth"),
            pop_distance: r.histogram("join.pop_distance"),
            result_distance: r.histogram("join.result_distance"),
            results: r.counter("join.results"),
            expansions: r.counter("join.expansions"),
            semi_bound_updates: r.counter("join.semi_bound_updates"),
            bound_tightenings: r.counter("join.bound_tightenings"),
            spans: SpanTimer::from_context(ctx),
        }
    }

    /// Opens a phase span (no-op when spans are off). Must be matched by
    /// [`JoinObs::span_exit`] with the same phase.
    #[inline]
    pub(crate) fn span_enter(&mut self, phase: Phase) {
        if let Some(t) = &mut self.spans {
            t.enter(phase);
        }
    }

    /// Closes the innermost phase span (no-op when spans are off).
    #[inline]
    pub(crate) fn span_exit(&mut self, phase: Phase) {
        if let Some(t) = &mut self.spans {
            t.exit(phase);
        }
    }

    /// Suppresses per-engine `ResultReported` events (counters still
    /// accumulate). Used by the parallel executor, which reports ranks from
    /// the merged stream.
    #[must_use]
    pub fn suppress_result_events(mut self) -> Self {
        self.emit_results = false;
        self
    }

    /// The worker id this handle reports under.
    #[must_use]
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Emits a `WorkerFinished` event; called by the executor when a
    /// worker's result stream ends.
    pub fn finish(&self, results: u64) {
        self.sink.emit(&Event::WorkerFinished {
            worker: self.worker,
            results,
        });
    }

    pub(crate) fn on_pop(&mut self, kind: PairKind, dist: f64, queue_len: usize, results: u64) {
        self.pops += 1;
        self.pop_distance.record(dist);
        self.queue_depth.set(queue_len as i64);
        if self.detail {
            self.sink.emit(&Event::PairPopped { kind, dist });
        }
        if self.pops.is_multiple_of(self.pop_sample_every) {
            self.sink.emit(&Event::QueueSampled {
                pops: self.pops,
                len: queue_len as u64,
                results,
            });
        }
    }

    pub(crate) fn on_expand(&mut self, side: Side, children: u32) {
        self.expansions.inc();
        if self.detail {
            self.sink.emit(&Event::NodeExpanded { side, children });
        }
    }

    pub(crate) fn on_result(&mut self, rank: u64, dist: f64) {
        self.results.inc();
        self.result_distance.record(dist);
        if self.emit_results && rank.is_multiple_of(self.result_sample_every) {
            self.sink.emit(&Event::ResultReported { rank, dist });
        }
    }

    pub(crate) fn on_semi_bound(&mut self) {
        self.semi_bound_updates.inc();
    }

    /// Notes the engine's current proven maximum distance; emits
    /// `BoundTightened` only on strict improvement.
    pub(crate) fn on_bound(&mut self, bound: f64) {
        if bound < self.last_bound {
            self.last_bound = bound;
            self.bound_tightenings.inc();
            self.sink.emit(&Event::BoundTightened {
                worker: self.worker,
                bound,
            });
        }
    }
}

impl std::fmt::Debug for JoinObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinObs")
            .field("worker", &self.worker)
            .field("pops", &self.pops)
            .field("detail", &self.detail)
            .finish_non_exhaustive()
    }
}
