//! Queue elements: pairs of items, one from each spatial index.
//!
//! §2.2.1: "each element contains a pair of items, one from each of the
//! input spatial indexes … An item can be either a data object or a node".
//! With object bounding rectangles stored in the leaves there are five pair
//! kinds in play: node/node, node/obr, obr/node, obr/obr and object/object.

use sdj_geom::{KeySpace, Metric, OrdF64, Rect};
use sdj_pqueue::{Codec, QueueKey};
use sdj_rtree::ObjectId;

use crate::index::NodeId;
use sdj_storage::codec::{PageReader, PageWriter};
use sdj_storage::StorageError;

/// One side of a queued pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Item<const D: usize> {
    /// An index node (with its level and region, taken from the parent
    /// entry; the root's region is the index's root region).
    Node {
        /// The node's id within its index.
        page: NodeId,
        /// Node level (0 = leaf).
        level: u8,
        /// Region covered by the node.
        mbr: Rect<D>,
    },
    /// An object bounding rectangle from a leaf (`[O]` in the paper's
    /// notation: "in practice the object reference must be enqueued along
    /// with the bounding rectangle").
    Obr {
        /// The referenced object.
        oid: ObjectId,
        /// Its minimal bounding rectangle.
        mbr: Rect<D>,
    },
    /// A data object whose exact distance has already been computed (only
    /// produced when objects are stored externally to the leaves).
    Object {
        /// The referenced object.
        oid: ObjectId,
        /// Its minimal bounding rectangle.
        mbr: Rect<D>,
    },
}

impl<const D: usize> Item<D> {
    /// The item's rectangle (node region or object bounding rectangle).
    #[must_use]
    pub fn rect(&self) -> &Rect<D> {
        match self {
            Item::Node { mbr, .. } | Item::Obr { mbr, .. } | Item::Object { mbr, .. } => mbr,
        }
    }

    /// True for node items.
    #[must_use]
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node { .. })
    }

    /// The node level, if this is a node.
    #[must_use]
    pub fn node_level(&self) -> Option<u8> {
        match self {
            Item::Node { level, .. } => Some(*level),
            _ => None,
        }
    }

    /// The object id, if this is an obr or object.
    #[must_use]
    pub fn object_id(&self) -> Option<ObjectId> {
        match self {
            Item::Obr { oid, .. } | Item::Object { oid, .. } => Some(*oid),
            Item::Node { .. } => None,
        }
    }

    /// A compact identity used for hashing pairs (estimation set `M`,
    /// semi-join bound tables).
    #[must_use]
    pub fn identity(&self) -> ItemId {
        match self {
            Item::Node { page, .. } => ItemId::Node(*page),
            Item::Obr { oid, .. } | Item::Object { oid, .. } => ItemId::Object(oid.0),
        }
    }
}

/// Hashable identity of an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ItemId {
    /// A node, by node id.
    Node(NodeId),
    /// An object (or its bounding rectangle), by object id.
    Object(u64),
}

/// A queued pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pair<const D: usize> {
    /// Item from the first index (`R1`).
    pub item1: Item<D>,
    /// Item from the second index (`R2`).
    pub item2: Item<D>,
}

impl<const D: usize> Pair<D> {
    /// Creates a pair.
    #[must_use]
    pub fn new(item1: Item<D>, item2: Item<D>) -> Self {
        Self { item1, item2 }
    }

    /// MINDIST between the pair's items (the queue key's distance part).
    #[must_use]
    pub fn mindist(&self, metric: Metric) -> f64 {
        metric.mindist_rect_rect(self.item1.rect(), self.item2.rect())
    }

    /// MAXDIST between the pair's items: an upper bound on the distance of
    /// every object pair generated from this pair.
    #[must_use]
    pub fn maxdist(&self, metric: Metric) -> f64 {
        metric.maxdist_rect_rect(self.item1.rect(), self.item2.rect())
    }

    /// MINMAXDIST between the pair's items: an upper bound on the distance
    /// of the *closest* object pair generated from this pair (valid because
    /// bounding rectangles are minimal at every level).
    #[must_use]
    pub fn minmaxdist(&self, metric: Metric) -> f64 {
        metric.minmaxdist_rect_rect(self.item1.rect(), self.item2.rect())
    }

    /// MINDIST in `keys`'s key domain (squared under sqrt-free Euclidean
    /// keys) — what the join actually pushes as [`PairKey::dist`].
    #[must_use]
    pub fn mindist_key(&self, keys: KeySpace) -> f64 {
        keys.mindist_rect_rect(self.item1.rect(), self.item2.rect())
    }

    /// MAXDIST in `keys`'s key domain.
    #[must_use]
    pub fn maxdist_key(&self, keys: KeySpace) -> f64 {
        keys.maxdist_rect_rect(self.item1.rect(), self.item2.rect())
    }

    /// MINMAXDIST in `keys`'s key domain.
    #[must_use]
    pub fn minmaxdist_key(&self, keys: KeySpace) -> f64 {
        keys.minmaxdist_rect_rect(self.item1.rect(), self.item2.rect())
    }

    /// Hashable identity of the pair.
    #[must_use]
    pub fn identity(&self) -> (ItemId, ItemId) {
        (self.item1.identity(), self.item2.identity())
    }

    /// True when both items are final (object, or exact obr) and the pair
    /// can be reported.
    #[must_use]
    pub fn is_final(&self, exact_obrs: bool) -> bool {
        let obj = |it: &Item<D>| match it {
            Item::Object { .. } => true,
            Item::Obr { .. } => exact_obrs,
            Item::Node { .. } => false,
        };
        obj(&self.item1) && obj(&self.item2)
    }
}

/// How equal-distance pairs are ordered (§2.2.2).
///
/// Pairs containing objects or obrs always sort ahead of pairs with nodes;
/// among node pairs, `DepthFirst` prefers deeper (lower-level) nodes,
/// producing a depth-first-like traversal, while `BreadthFirst` prefers
/// shallower ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TiePolicy {
    /// Deeper node pairs first (the paper's best performer).
    #[default]
    DepthFirst,
    /// Shallower node pairs first.
    BreadthFirst,
}

/// The composite priority-queue key: primary distance, then the
/// tie-breaking rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PairKey {
    /// Key-domain distance between the pair's items (MINDIST for ascending
    /// joins, negated MAXDIST for descending ones). Under the default
    /// squared Euclidean key domain this is a *squared* distance; the join
    /// converts back with one `sqrt` when it reports a result.
    pub dist: OrdF64,
    /// Tie rank: smaller pops first.
    pub tie: u8,
}

impl PairKey {
    /// Builds the key for a pair whose item distance is `dist`.
    #[must_use]
    pub fn new<const D: usize>(dist: f64, pair: &Pair<D>, tie_policy: TiePolicy) -> Self {
        let node_level = match (pair.item1.node_level(), pair.item2.node_level()) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(u8::MAX).min(b.unwrap_or(u8::MAX))),
        };
        let tie = match node_level {
            // Objects and obrs ahead of everything.
            None => 0,
            Some(level) => match tie_policy {
                // Deeper level (smaller value) first.
                TiePolicy::DepthFirst => 1 + level,
                // Shallower level first.
                TiePolicy::BreadthFirst => u8::MAX - level,
            },
        };
        Self {
            dist: OrdF64::new(dist),
            tie,
        }
    }
}

impl QueueKey for PairKey {
    fn distance(&self) -> f64 {
        self.dist.get()
    }

    // The flat heap folds this into its compact entry tag; together with
    // the order bits it reproduces this key's full `Ord`.
    fn tie_rank(&self) -> u8 {
        self.tie
    }

    // The key *is* its order image — `(dist, tie)` and nothing else — so
    // the flat heap stores no key copies and rebuilds popped keys from
    // their compact entries.
    fn from_parts(bits: u64, tie_rank: u8) -> Self {
        Self {
            dist: OrdF64::new(sdj_pqueue::f64_from_order_bits(bits)),
            tie: tie_rank,
        }
    }
}

impl Codec for PairKey {
    fn encoded_size() -> usize {
        9
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        w.put_f64(self.dist.get())?;
        w.put_u8(self.tie)
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        let dist = r.get_f64()?;
        let tie = r.get_u8()?;
        if dist.is_nan() {
            return Err(StorageError::Corrupt("NaN pair key"));
        }
        Ok(Self {
            dist: OrdF64::new(dist),
            tie,
        })
    }
}

// Item/Pair codecs so pairs can spill to the hybrid queue's disk tier.

const TAG_NODE: u8 = 0;
const TAG_OBR: u8 = 1;
const TAG_OBJECT: u8 = 2;

impl<const D: usize> Codec for Item<D> {
    fn encoded_size() -> usize {
        // tag + id + level + rect
        1 + 8 + 1 + 16 * D
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        let (tag, id, level, mbr) = match self {
            Item::Node { page, level, mbr } => (TAG_NODE, *page, *level, mbr),
            Item::Obr { oid, mbr } => (TAG_OBR, oid.0, 0, mbr),
            Item::Object { oid, mbr } => (TAG_OBJECT, oid.0, 0, mbr),
        };
        w.put_u8(tag)?;
        w.put_u64(id)?;
        w.put_u8(level)?;
        for a in 0..D {
            w.put_f64(mbr.lo()[a])?;
        }
        for a in 0..D {
            w.put_f64(mbr.hi()[a])?;
        }
        Ok(())
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        let tag = r.get_u8()?;
        let id = r.get_u64()?;
        let level = r.get_u8()?;
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for v in &mut lo {
            *v = r.get_f64()?;
        }
        for v in &mut hi {
            *v = r.get_f64()?;
        }
        for a in 0..D {
            if !lo[a].is_finite() || !hi[a].is_finite() || lo[a] > hi[a] {
                return Err(StorageError::Corrupt("invalid item rectangle"));
            }
        }
        let mbr = Rect::new(lo, hi);
        Ok(match tag {
            TAG_NODE => Item::Node {
                page: id,
                level,
                mbr,
            },
            TAG_OBR => Item::Obr {
                oid: ObjectId(id),
                mbr,
            },
            TAG_OBJECT => Item::Object {
                oid: ObjectId(id),
                mbr,
            },
            _ => return Err(StorageError::Corrupt("unknown item tag")),
        })
    }
}

impl<const D: usize> Codec for Pair<D> {
    fn encoded_size() -> usize {
        2 * Item::<D>::encoded_size()
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        self.item1.encode(w)?;
        self.item2.encode(w)
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        Ok(Self {
            item1: Item::decode(r)?,
            item2: Item::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: f64, hi: f64) -> Rect<2> {
        Rect::new([lo, lo], [hi, hi])
    }

    fn node(page: u64, level: u8) -> Item<2> {
        Item::Node {
            page,
            level,
            mbr: rect(0.0, 1.0),
        }
    }

    fn obr(oid: u64) -> Item<2> {
        Item::Obr {
            oid: ObjectId(oid),
            mbr: rect(0.0, 0.0),
        }
    }

    #[test]
    fn tie_ranks_objects_first() {
        let oo = Pair::new(obr(1), obr(2));
        let nn_deep = Pair::new(node(1, 0), node(2, 0));
        let nn_shallow = Pair::new(node(1, 3), node(2, 3));
        let k_oo = PairKey::new(1.0, &oo, TiePolicy::DepthFirst);
        let k_deep = PairKey::new(1.0, &nn_deep, TiePolicy::DepthFirst);
        let k_shallow = PairKey::new(1.0, &nn_shallow, TiePolicy::DepthFirst);
        assert!(k_oo < k_deep);
        assert!(k_deep < k_shallow);
    }

    #[test]
    fn breadth_first_flips_node_order() {
        let nn_deep = Pair::new(node(1, 0), node(2, 0));
        let nn_shallow = Pair::new(node(1, 3), node(2, 3));
        let k_deep = PairKey::new(1.0, &nn_deep, TiePolicy::BreadthFirst);
        let k_shallow = PairKey::new(1.0, &nn_shallow, TiePolicy::BreadthFirst);
        assert!(k_shallow < k_deep);
        // Objects still first.
        let k_oo = PairKey::new(1.0, &Pair::new(obr(1), obr(2)), TiePolicy::BreadthFirst);
        assert!(k_oo < k_shallow);
    }

    #[test]
    fn distance_dominates_ties() {
        let oo = Pair::new(obr(1), obr(2));
        let nn = Pair::new(node(1, 5), node(2, 5));
        assert!(
            PairKey::new(1.0, &nn, TiePolicy::DepthFirst)
                < PairKey::new(2.0, &oo, TiePolicy::DepthFirst)
        );
    }

    #[test]
    fn mixed_pair_uses_min_node_level() {
        let pair = Pair::new(node(1, 4), obr(2));
        let key = PairKey::new(0.0, &pair, TiePolicy::DepthFirst);
        assert_eq!(key.tie, 5);
    }

    #[test]
    fn pair_codec_roundtrip() {
        let pairs = [
            Pair::new(node(3, 2), node(9, 1)),
            Pair::new(obr(7), node(1, 0)),
            Pair::new(
                Item::Object {
                    oid: ObjectId(u64::MAX),
                    mbr: rect(-4.0, 4.0),
                },
                obr(0),
            ),
        ];
        for p in pairs {
            let mut buf = vec![0u8; Pair::<2>::encoded_size()];
            p.encode(&mut PageWriter::new(&mut buf)).unwrap();
            let back = Pair::<2>::decode(&mut PageReader::new(&buf)).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn key_codec_roundtrip() {
        let k = PairKey {
            dist: OrdF64::new(123.456),
            tie: 7,
        };
        let mut buf = vec![0u8; PairKey::encoded_size()];
        k.encode(&mut PageWriter::new(&mut buf)).unwrap();
        assert_eq!(PairKey::decode(&mut PageReader::new(&buf)).unwrap(), k);
    }

    #[test]
    fn identity_distinguishes_kinds() {
        assert_ne!(node(5, 0).identity(), obr(5).identity());
        assert_eq!(
            obr(5).identity(),
            Item::<2>::Object {
                oid: ObjectId(5),
                mbr: rect(0.0, 0.0)
            }
            .identity(),
            "an obr and its object are the same identity (paper §2.3 fn. 5)"
        );
    }

    #[test]
    fn is_final_depends_on_exactness() {
        let p = Pair::new(obr(1), obr(2));
        assert!(p.is_final(true));
        assert!(!p.is_final(false));
        let q = Pair::new(
            Item::Object {
                oid: ObjectId(1),
                mbr: rect(0.0, 0.0),
            },
            Item::Object {
                oid: ObjectId(2),
                mbr: rect(0.0, 0.0),
            },
        );
        assert!(q.is_final(false));
        assert!(!Pair::new(node(1, 0), obr(1)).is_final(true));
    }
}
