//! Maximum-distance estimation from a bound on the result count (§2.2.4).
//!
//! When the query promises to consume at most `K` pairs (`STOP AFTER`), the
//! algorithm can *derive* a shrinking maximum distance: it maintains a set
//! `M` of pairs that are on the priority queue, each contributing a lower
//! bound on how many result pairs it can generate (from the minimum fan-out
//! and the level of its nodes) and an upper bound `d_max` on the distance of
//! those results. Whenever the counts in `M` cover `K`, every queued or
//! future pair whose MINDIST exceeds the largest retained `d_max` is dead
//! weight and can be rejected.
//!
//! The paper organises `M` as a priority queue on `d_max` plus a hash table;
//! here a `BTreeMap` keyed by `(d_max, seq)` plays the role of the priority
//! queue (same asymptotics, simpler deletion).
//!
//! Counts are deliberately *lower* bounds: over-estimating them could shrink
//! the maximum distance below the true `K`-th result distance and force a
//! restart (§2.2.4); with lower bounds no restart is ever needed.
//!
//! The estimator is agnostic to the join's key domain: `d_max` values are
//! whatever monotone keys the engine feeds it (squared distances under the
//! default Euclidean configuration), and [`Estimator::current_dmax`] answers
//! in the same domain.

use std::collections::{BTreeMap, HashMap, HashSet};

use sdj_geom::OrdF64;

use crate::pair::ItemId;

/// Set-`M` key: the full pair identity for distance joins; only the first
/// item for semi-joins, where "the first item in each pair is unique"
/// (§2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum MKey {
    Join(ItemId, ItemId),
    Semi(ItemId),
}

struct MEntry {
    count: u64,
    dmax: OrdF64,
    seq: u64,
    /// Second item, kept so a dequeued pair can be matched exactly.
    item2: ItemId,
}

/// Estimator mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EstimatorMode {
    /// Distance join: `M` keyed by the whole pair, counts multiply.
    Join,
    /// Distance semi-join: `M` keyed by the first item, counts come from the
    /// first subtree alone.
    Semi,
}

/// The §2.2.4 / §2.3 maximum-distance estimator.
pub struct Estimator {
    mode: EstimatorMode,
    k_remaining: u64,
    dmax: f64,
    entries: HashMap<MKey, MEntry>,
    by_dmax: BTreeMap<(OrdF64, u64), MKey>,
    total: u128,
    seq: u64,
    /// Times the global bound strictly decreased (observability).
    tightenings: u64,
    /// Semi-join: first-item nodes that have been expanded; pairs led by
    /// them may no longer enter `M` (their descendants would double-count).
    processed: HashSet<ItemId>,
}

impl Estimator {
    /// Creates an estimator for `k` result pairs, starting from the query's
    /// explicit maximum distance (or `+inf`).
    #[must_use]
    pub fn new(mode: EstimatorMode, k: u64, initial_dmax: f64) -> Self {
        Self {
            mode,
            k_remaining: k,
            dmax: initial_dmax,
            entries: HashMap::new(),
            by_dmax: BTreeMap::new(),
            total: 0,
            seq: 0,
            tightenings: 0,
            processed: HashSet::new(),
        }
    }

    /// The current estimated maximum distance.
    #[must_use]
    pub fn current_dmax(&self) -> f64 {
        self.dmax
    }

    /// Remaining result budget.
    #[must_use]
    pub fn k_remaining(&self) -> u64 {
        self.k_remaining
    }

    /// Number of pairs currently in `M`.
    #[must_use]
    pub fn m_len(&self) -> usize {
        self.entries.len()
    }

    /// Times [`Estimator::current_dmax`] has strictly decreased so far.
    #[must_use]
    pub fn tightenings(&self) -> u64 {
        self.tightenings
    }

    fn key_of(&self, item1: ItemId, item2: ItemId) -> MKey {
        match self.mode {
            EstimatorMode::Join => MKey::Join(item1, item2),
            EstimatorMode::Semi => MKey::Semi(item1),
        }
    }

    /// Offers a pair that is being inserted into the priority queue.
    /// `dmax_pair` must upper-bound the distance of the `count` result pairs
    /// the pair is guaranteed to generate; the caller has already checked
    /// eligibility (`dist >= Dmin`, `dmax_pair <= current_dmax`).
    pub fn offer(&mut self, item1: ItemId, item2: ItemId, dmax_pair: f64, count: u64) {
        if count == 0 || self.k_remaining == 0 {
            return;
        }
        if self.mode == EstimatorMode::Semi && self.processed.contains(&item1) {
            return;
        }
        let key = self.key_of(item1, item2);
        let dmax = OrdF64::new(dmax_pair);
        if let Some(existing) = self.entries.get(&key) {
            // Semi-join: keep whichever pair led by item1 has the smaller
            // d_max (§2.3). Join mode can only collide if the same pair is
            // enqueued twice, which the traversal never does.
            if existing.dmax <= dmax {
                return;
            }
            self.remove_key(key);
        }
        let seq = self.seq;
        self.seq += 1;
        self.entries.insert(
            key,
            MEntry {
                count,
                dmax,
                seq,
                item2,
            },
        );
        self.by_dmax.insert((dmax, seq), key);
        self.total += u128::from(count);
        self.tighten();
    }

    /// Notes that a pair has been removed from the priority queue.
    pub fn on_dequeue(&mut self, item1: ItemId, item2: ItemId) {
        let key = self.key_of(item1, item2);
        if let Some(entry) = self.entries.get(&key) {
            // Semi-join keys ignore item2, so make sure this is the same
            // pair before dropping it.
            if entry.item2 == item2 {
                self.remove_key(key);
            }
        }
    }

    /// Semi-join: notes that a first-side node is about to be expanded.
    /// Its `M` entry (if any) is dropped and it is barred from re-entry so
    /// its descendants' counts cannot double with its own.
    pub fn on_expand_item1(&mut self, item1: ItemId) {
        if self.mode != EstimatorMode::Semi {
            return;
        }
        self.processed.insert(item1);
        let key = MKey::Semi(item1);
        if self.entries.contains_key(&key) {
            self.remove_key(key);
        }
    }

    /// Notes a reported result pair; the shrinking budget may allow further
    /// tightening.
    pub fn on_report(&mut self) {
        self.k_remaining = self.k_remaining.saturating_sub(1);
        self.tighten();
    }

    fn remove_key(&mut self, key: MKey) {
        // Callers check presence; an absent key is simply a no-op rather
        // than a panic path.
        if let Some(entry) = self.entries.remove(&key) {
            self.by_dmax.remove(&(entry.dmax, entry.seq));
            self.total -= u128::from(entry.count);
        }
    }

    /// Drops the largest-`d_max` entries while the rest still cover the
    /// budget, then lowers the global bound to the largest retained `d_max`.
    fn tighten(&mut self) {
        if self.k_remaining == 0 {
            return;
        }
        let k = u128::from(self.k_remaining);
        while let Some((&(_, _), &key)) = self.by_dmax.last_key_value() {
            let count = u128::from(self.entries[&key].count);
            if self.total - count >= k {
                self.remove_key(key);
            } else {
                break;
            }
        }
        if self.total >= k {
            if let Some((&(dmax, _), _)) = self.by_dmax.last_key_value() {
                if dmax.get() < self.dmax {
                    self.dmax = dmax.get();
                    self.tightenings += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u64) -> ItemId {
        ItemId::Object(i)
    }

    fn node(i: u64) -> ItemId {
        ItemId::Node(i)
    }

    #[test]
    fn bound_appears_once_counts_cover_k() {
        let mut e = Estimator::new(EstimatorMode::Join, 10, f64::INFINITY);
        e.offer(node(1), node(2), 5.0, 6);
        assert_eq!(e.current_dmax(), f64::INFINITY, "6 < 10: no bound yet");
        e.offer(node(3), node(4), 8.0, 6);
        assert_eq!(e.current_dmax(), 8.0, "12 >= 10: bounded by largest dmax");
    }

    #[test]
    fn larger_dmax_entries_are_dropped_when_redundant() {
        let mut e = Estimator::new(EstimatorMode::Join, 10, f64::INFINITY);
        e.offer(node(1), node(2), 3.0, 10);
        assert_eq!(e.current_dmax(), 3.0);
        // A worse pair adds nothing and must not loosen the bound.
        e.offer(node(3), node(4), 9.0, 50);
        assert_eq!(e.current_dmax(), 3.0);
        assert_eq!(e.m_len(), 1, "redundant entry dropped");
    }

    #[test]
    fn bound_never_increases() {
        let mut e = Estimator::new(EstimatorMode::Join, 5, f64::INFINITY);
        e.offer(node(1), node(2), 2.0, 5);
        assert_eq!(e.current_dmax(), 2.0);
        e.on_dequeue(node(1), node(2));
        assert_eq!(e.m_len(), 0);
        // M is empty again, but the proven bound stays.
        assert_eq!(e.current_dmax(), 2.0);
    }

    #[test]
    fn report_shrinks_budget_and_tightens() {
        let mut e = Estimator::new(EstimatorMode::Join, 2, f64::INFINITY);
        e.offer(obj(1), obj(2), 1.0, 1);
        e.offer(obj(3), obj(4), 4.0, 1);
        assert_eq!(e.current_dmax(), 4.0);
        e.on_dequeue(obj(1), obj(2));
        e.on_report();
        // Budget is 1 and the remaining entry covers it at dmax 4.
        assert_eq!(e.k_remaining(), 1);
        assert_eq!(e.current_dmax(), 4.0);
        e.offer(obj(5), obj(6), 2.0, 1);
        assert_eq!(e.current_dmax(), 2.0, "tighter entry takes over");
    }

    #[test]
    fn semi_mode_keeps_one_entry_per_first_item() {
        let mut e = Estimator::new(EstimatorMode::Semi, 100, f64::INFINITY);
        e.offer(obj(1), node(10), 5.0, 1);
        e.offer(obj(1), node(11), 3.0, 1);
        assert_eq!(e.m_len(), 1, "same first item replaces");
        e.offer(obj(1), node(12), 9.0, 1);
        assert_eq!(e.m_len(), 1, "worse dmax ignored");
        // Dequeue with the non-matching second item must not remove.
        e.on_dequeue(obj(1), node(10));
        assert_eq!(e.m_len(), 1);
        e.on_dequeue(obj(1), node(11));
        assert_eq!(e.m_len(), 0);
    }

    #[test]
    fn semi_mode_bars_processed_nodes() {
        let mut e = Estimator::new(EstimatorMode::Semi, 100, f64::INFINITY);
        e.offer(node(1), node(10), 5.0, 4);
        e.on_expand_item1(node(1));
        assert_eq!(e.m_len(), 0, "expanded node leaves M");
        e.offer(node(1), node(11), 2.0, 4);
        assert_eq!(e.m_len(), 0, "and may not re-enter");
        // Other nodes unaffected.
        e.offer(node(2), node(11), 2.0, 4);
        assert_eq!(e.m_len(), 1);
    }

    #[test]
    fn explicit_max_distance_is_the_ceiling() {
        let mut e = Estimator::new(EstimatorMode::Join, 1, 10.0);
        assert_eq!(e.current_dmax(), 10.0);
        e.offer(node(1), node(2), 20.0, 5);
        // Caller normally pre-filters dmax > ceiling; even if offered, the
        // bound must not grow past the ceiling.
        assert!(e.current_dmax() <= 20.0);
        let mut e2 = Estimator::new(EstimatorMode::Join, 1, 10.0);
        e2.offer(node(1), node(2), 4.0, 5);
        assert_eq!(e2.current_dmax(), 4.0);
    }

    #[test]
    fn zero_count_offers_are_ignored() {
        let mut e = Estimator::new(EstimatorMode::Join, 1, f64::INFINITY);
        e.offer(node(1), node(2), 1.0, 0);
        assert_eq!(e.m_len(), 0);
        assert_eq!(e.current_dmax(), f64::INFINITY);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Clone, Debug)]
        enum Op {
            Offer {
                i1: u64,
                i2: u64,
                dmax: f64,
                count: u64,
            },
            Dequeue {
                i1: u64,
                i2: u64,
            },
            Expand {
                i1: u64,
            },
            Report,
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                4 => (0u64..20, 0u64..20, 0.0..100.0f64, 1u64..8).prop_map(
                    |(i1, i2, dmax, count)| Op::Offer { i1, i2, dmax, count }
                ),
                2 => (0u64..20, 0u64..20).prop_map(|(i1, i2)| Op::Dequeue { i1, i2 }),
                1 => (0u64..20).prop_map(|i1| Op::Expand { i1 }),
                1 => Just(Op::Report),
            ]
        }

        proptest! {
            /// Under any operation sequence, the estimated maximum distance
            /// is monotone non-increasing and never drops below the largest
            /// d_max of a set that is *necessary* to cover K — i.e. the
            /// estimator only ever uses sound bounds it was given.
            #[test]
            fn dmax_is_monotone_and_sound(
                ops in prop::collection::vec(arb_op(), 1..120),
                k in 1u64..30,
                mode in prop::sample::select(vec![EstimatorMode::Join, EstimatorMode::Semi]),
            ) {
                let mut e = Estimator::new(mode, k, f64::INFINITY);
                let mut last = f64::INFINITY;
                for op in ops {
                    match op {
                        Op::Offer { i1, i2, dmax, count } => {
                            // Mirror the caller contract: only offer bounds
                            // at or below the current estimate.
                            if dmax <= e.current_dmax() {
                                e.offer(node(i1), node(i2), dmax, count);
                            }
                        }
                        Op::Dequeue { i1, i2 } => e.on_dequeue(node(i1), node(i2)),
                        Op::Expand { i1 } => e.on_expand_item1(node(i1)),
                        Op::Report => e.on_report(),
                    }
                    prop_assert!(
                        e.current_dmax() <= last + 1e-12,
                        "estimate must never loosen: {} -> {}",
                        last,
                        e.current_dmax()
                    );
                    last = e.current_dmax();
                }
            }
        }
    }
}
