//! The §2.2.5 secondary-ordering extension: an intersection join whose
//! results stream out ordered by their distance from a *focus* point.
//!
//! "We may wish to find the intersections of roads and rivers in order of
//! distance from a given house. … for the special case of finding
//! intersections, the distance functions could return ∞ for nonintersecting
//! pairs, but for intersecting pairs, the functions would return some
//! ordering value (such as the distance from the house)."
//!
//! That is exactly the implementation here: pairs whose rectangles do not
//! intersect are discarded outright (the ∞ case); surviving pairs are keyed
//! by the MINDIST from the focus to the *intersection* of their rectangles.
//! Consistency holds because a child pair's intersection region is contained
//! in its parent's, so keys never decrease down the tree.
//!
//! The ordering value is exact for objects stored directly in the leaves
//! (points and rectangles: the reported distance is from the focus to the
//! nearest point of the objects' common region). Extended objects would
//! need an oracle producing intersection geometry; their MBR-based ordering
//! value is still a valid lower bound.

use sdj_geom::{KeySpace, Metric, Point, SoaRects};
use sdj_rtree::ObjectId;
use sdj_storage::StorageError;

use crate::config::QueueBackend;
use crate::index::{IndexNode, SpatialIndex};
use crate::pair::{Item, Pair, PairKey, TiePolicy};
use crate::queue::JoinQueue;

/// One result of the ordered intersection join.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntersectionPair {
    /// Object from the first relation.
    pub oid1: ObjectId,
    /// Object from the second relation.
    pub oid2: ObjectId,
    /// Distance from the focus point to the pair's common region.
    pub distance_from_focus: f64,
}

/// Incremental intersection join ordered by distance from a focus point.
pub struct OrderedIntersectionJoin<'a, const D: usize, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    tree1: &'a I1,
    tree2: &'a I2,
    focus: Point<D>,
    /// Sqrt-free key domain of the ordering metric: queue keys are squared
    /// focus distances under Euclidean, and the single `sqrt` per result is
    /// paid when the pair is reported.
    keys: KeySpace,
    /// The distance join's queue and key scheme, reused: keys order by the
    /// focus distance of the common region, with the shared depth-first tie
    /// rank (object pairs ahead of node pairs, deeper nodes first).
    queue: JoinQueue<D>,
    /// Reusable node buffer: expansions stream pages into it instead of
    /// allocating a fresh entry vector per read.
    node_scratch: IndexNode<D>,
    /// Struct-of-arrays copy of the scratch node's entry rectangles — the
    /// operand of the batched focus-intersection kernel.
    soa: SoaRects<D>,
    /// Key output column of the batched kernel, reused across expansions.
    keys_buf: Vec<f64>,
    error: Option<StorageError>,
}

impl<'a, const D: usize, I1, I2> OrderedIntersectionJoin<'a, D, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    /// Starts the join: intersecting `(o1, o2)` pairs, nearest to `focus`
    /// first.
    #[must_use]
    pub fn new(tree1: &'a I1, tree2: &'a I2, focus: Point<D>, metric: Metric) -> Self {
        let keys = KeySpace::squared(metric);
        let mut join = Self {
            tree1,
            tree2,
            focus,
            keys,
            queue: JoinQueue::new(
                &QueueBackend::Memory,
                crate::config::QueueLayout::Pairing,
                keys,
            ),
            node_scratch: IndexNode::empty(),
            soa: SoaRects::new(),
            keys_buf: Vec::new(),
            error: None,
        };
        join.seed();
        join
    }

    fn seed(&mut self) {
        if self.tree1.is_empty() || self.tree2.is_empty() {
            return;
        }
        let roots = (|| -> sdj_storage::Result<Pair<D>> {
            Ok(Pair::new(
                Item::Node {
                    page: self.tree1.root_id(),
                    level: self.tree1.root_level(),
                    mbr: self.tree1.root_region()?,
                },
                Item::Node {
                    page: self.tree2.root_id(),
                    level: self.tree2.root_level(),
                    mbr: self.tree2.root_region()?,
                },
            ))
        })();
        if let Err(e) = roots.and_then(|pair| self.consider(pair)) {
            self.error = Some(e);
        }
    }

    /// Takes a pending I/O error, if iteration stopped because of one.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    /// Discards non-intersecting pairs (the "∞" case) and enqueues the rest
    /// keyed by the focus distance of their common region.
    fn consider(&mut self, pair: Pair<D>) -> sdj_storage::Result<()> {
        let common = pair.item1.rect().intersection(pair.item2.rect());
        if common.is_empty() {
            return Ok(());
        }
        let k = self.keys.mindist_point_rect(&self.focus, &common);
        let key = PairKey::new(k, &pair, TiePolicy::DepthFirst);
        self.queue.push(key, pair)
    }

    fn expand(&mut self, pair: &Pair<D>, first_side: bool) -> sdj_storage::Result<()> {
        let (node_item, other) = if first_side {
            (&pair.item1, pair.item2)
        } else {
            (&pair.item2, pair.item1)
        };
        let Item::Node { page, .. } = *node_item else {
            unreachable!("expand on a non-node item")
        };
        // Stream the page into the reusable scratch buffers, then compute
        // every child's key — MINDIST from the focus to the child ∩ other
        // intersection, +inf when disjoint — in one batched kernel pass.
        let mut node = std::mem::take(&mut self.node_scratch);
        let mut soa = std::mem::take(&mut self.soa);
        let mut kbuf = std::mem::take(&mut self.keys_buf);
        let mut read = if first_side {
            self.tree1.read_node_into(page, &mut node)
        } else {
            self.tree2.read_node_into(page, &mut node)
        };
        if read.is_ok() {
            soa.clear();
            for e in &node.entries {
                soa.push(e.rect());
            }
            kbuf.clear();
            soa.focus_intersection_keys(
                self.keys,
                other.rect(),
                &self.focus,
                0..soa.len(),
                &mut kbuf,
            );
            for (entry, &k) in node.entries.iter().zip(&kbuf) {
                if !k.is_finite() {
                    continue;
                }
                let child = match entry {
                    crate::index::IndexEntry::Object { oid, mbr } => Item::Obr {
                        oid: *oid,
                        mbr: *mbr,
                    },
                    crate::index::IndexEntry::Child { id, level, region } => Item::Node {
                        page: *id,
                        level: *level,
                        mbr: *region,
                    },
                };
                let child_pair = if first_side {
                    Pair::new(child, other)
                } else {
                    Pair::new(other, child)
                };
                let key = PairKey::new(k, &child_pair, TiePolicy::DepthFirst);
                if let Err(e) = self.queue.push(key, child_pair) {
                    read = Err(e);
                    break;
                }
            }
        }
        self.node_scratch = node;
        self.soa = soa;
        self.keys_buf = kbuf;
        read
    }

    fn step(&mut self) -> sdj_storage::Result<Option<IntersectionPair>> {
        while let Some((key, pair)) = self.queue.pop()? {
            if pair.is_final(true) {
                // Same fail-clean contract as the distance join: a
                // kind-confused decode surfaces as a typed error.
                let corrupt = StorageError::Corrupt("final pair holds a node-kind item");
                return Ok(Some(IntersectionPair {
                    oid1: pair.item1.object_id().ok_or(corrupt.clone())?,
                    oid2: pair.item2.object_id().ok_or(corrupt)?,
                    // The only key → distance conversion: one sqrt per
                    // reported pair under the squared Euclidean domain.
                    distance_from_focus: self.keys.to_distance(key.dist.get()),
                }));
            }
            // Expand the shallower node (even traversal); node/obr pairs
            // expand their node side.
            match (pair.item1.node_level(), pair.item2.node_level()) {
                (Some(l1), Some(l2)) => self.expand(&pair, l1 >= l2)?,
                (Some(_), None) => self.expand(&pair, true)?,
                (None, Some(_)) => self.expand(&pair, false)?,
                (None, None) => {
                    return Err(StorageError::Corrupt(
                        "pair kind combination impossible for an intact queue",
                    ))
                }
            }
        }
        Ok(None)
    }
}

impl<const D: usize, I1, I2> Iterator for OrderedIntersectionJoin<'_, D, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    type Item = IntersectionPair;

    fn next(&mut self) -> Option<IntersectionPair> {
        match self.step() {
            Ok(r) => r,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Rect;
    use sdj_rtree::{RTree, RTreeConfig};

    fn rect_tree(rects: &[Rect<2>]) -> RTree<2> {
        let mut t = RTree::new(RTreeConfig::small(4));
        for (i, r) in rects.iter().enumerate() {
            t.insert(ObjectId(i as u64), *r).unwrap();
        }
        t
    }

    fn grid_rects(n: usize, size: f64, stride: f64, offset: f64) -> Vec<Rect<2>> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let x = (i % side) as f64 * stride + offset;
                let y = (i / side) as f64 * stride + offset;
                Rect::new([x, y], [x + size, y + size])
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce_ordering() {
        // Two overlapping rectangle grids; intersections ordered by focus
        // distance.
        let a = grid_rects(49, 1.2, 1.0, 0.0);
        let b = grid_rects(64, 0.8, 0.9, 0.3);
        let t1 = rect_tree(&a);
        let t2 = rect_tree(&b);
        let focus = Point::xy(3.5, 3.5);

        let got: Vec<(u64, u64, f64)> =
            OrderedIntersectionJoin::new(&t1, &t2, focus, Metric::Euclidean)
                .map(|p| (p.oid1.0, p.oid2.0, p.distance_from_focus))
                .collect();

        let mut want: Vec<(u64, u64, f64)> = Vec::new();
        for (i, r) in a.iter().enumerate() {
            for (j, s) in b.iter().enumerate() {
                let common = r.intersection(s);
                if !common.is_empty() {
                    want.push((
                        i as u64,
                        j as u64,
                        Metric::Euclidean.mindist_point_rect(&focus, &common),
                    ));
                }
            }
        }
        want.sort_by(|x, y| x.2.partial_cmp(&y.2).unwrap());

        assert_eq!(got.len(), want.len(), "every intersecting pair reported");
        for (g, w) in got.iter().zip(&want) {
            assert!((g.2 - w.2).abs() < 1e-9);
        }
        // All reported pairs really intersect.
        for (i, j, _) in &got {
            assert!(a[*i as usize].intersects(&b[*j as usize]));
        }
    }

    #[test]
    fn point_data_reports_coincident_points() {
        let pts_a = [
            Point::xy(1.0, 1.0),
            Point::xy(5.0, 5.0),
            Point::xy(9.0, 9.0),
        ];
        let pts_b = [
            Point::xy(5.0, 5.0),
            Point::xy(9.0, 9.0),
            Point::xy(2.0, 2.0),
        ];
        let t1 = rect_tree(&pts_a.map(|p| p.to_rect()));
        let t2 = rect_tree(&pts_b.map(|p| p.to_rect()));
        let focus = Point::xy(10.0, 10.0);
        let got: Vec<IntersectionPair> =
            OrderedIntersectionJoin::new(&t1, &t2, focus, Metric::Euclidean).collect();
        // Coincident pairs: (5,5) and (9,9); (9,9) is nearer to the focus.
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].oid1, ObjectId(2));
        assert_eq!(got[0].oid2, ObjectId(1));
        assert!(got[0].distance_from_focus < got[1].distance_from_focus);
    }

    #[test]
    fn empty_when_nothing_intersects() {
        let a = grid_rects(9, 0.1, 1.0, 0.0);
        let b = grid_rects(9, 0.1, 1.0, 0.5);
        let t1 = rect_tree(&a);
        let t2 = rect_tree(&b);
        assert_eq!(
            OrderedIntersectionJoin::new(&t1, &t2, Point::xy(0.0, 0.0), Metric::Euclidean).count(),
            0
        );
    }

    #[test]
    fn empty_inputs() {
        let t1: RTree<2> = RTree::new(RTreeConfig::small(4));
        let t2 = rect_tree(&[Rect::new([0.0, 0.0], [1.0, 1.0])]);
        assert_eq!(
            OrderedIntersectionJoin::new(&t1, &t2, Point::xy(0.0, 0.0), Metric::Euclidean).count(),
            0
        );
    }
}
