//! Pair-payload slab: an interning arena for queue items and the compact
//! pair handle the flat queue layout stores in place of fat [`Pair`]s.
//!
//! Under [`crate::config::QueueLayout::FlatDary`] the priority queue's
//! per-element payload is a [`PackedPair`] — two `u32` arena slots — while
//! the fat [`Item`]s live once each in an [`ItemArena`], shared by every
//! queued pair that references them. A node or object bounding rectangle
//! typically participates in many queued pairs at once (every child produced
//! by one expansion pairs with the *same* other item), so interning
//! collapses the dominant share of queue memory. Slots are
//! reference-counted and recycled through a free list: arena occupancy
//! tracks the set of *distinct* items currently queued, not the number of
//! queued pairs.
//!
//! The two join sides never unify — `R1`'s node 7 and `R2`'s node 7 are
//! different items — and neither do an object's exact ([`Item::Object`])
//! and bounding-rectangle ([`Item::Obr`]) forms, which share a paper
//! identity (§2.3 fn. 5) but differ in finality.

use std::collections::HashMap;

use sdj_pqueue::Codec;
use sdj_storage::codec::{PageReader, PageWriter};
use sdj_storage::StorageError;

use crate::pair::{Item, Pair};

/// Interning key, packed into one `u64`: relation side (bit 63), item kind
/// (bits 61–62), node/object id (low 61 bits). Two items with equal keys
/// are identical (a node id determines its level and region; an object id
/// determines its rectangle), which `intern` verifies in debug builds.
/// Packing keeps the interning map's buckets and the per-slot key column at
/// 8 bytes — the arena is resident queue memory, accounted per byte.
///
/// Kinds: 0 = node, 1 = obr, 2 = object. Obr and Object must not unify:
/// they share an id but differ in finality ([`Pair::is_final`]).
fn arena_key<const D: usize>(side: bool, item: &Item<D>) -> u64 {
    let (kind, id) = match item {
        Item::Node { page, .. } => (0u64, *page),
        Item::Obr { oid, .. } => (1, oid.0),
        Item::Object { oid, .. } => (2, oid.0),
    };
    debug_assert!(id < 1 << 61, "arena item id overflows the packed key");
    (u64::from(side) << 63) | (kind << 61) | id
}

/// Compact pair payload stored by the flat queue layout: two [`ItemArena`]
/// slots. Eight bytes in memory and on spill pages, versus the fat
/// [`Pair`]'s two inline items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedPair {
    /// Arena slot of the first-relation item.
    pub i1: u32,
    /// Arena slot of the second-relation item.
    pub i2: u32,
}

impl Codec for PackedPair {
    fn encoded_size() -> usize {
        8
    }

    fn encode(&self, w: &mut PageWriter<'_>) -> sdj_storage::Result<()> {
        w.put_u32(self.i1)?;
        w.put_u32(self.i2)
    }

    fn decode(r: &mut PageReader<'_>) -> sdj_storage::Result<Self> {
        Ok(Self {
            i1: r.get_u32()?,
            i2: r.get_u32()?,
        })
    }
}

/// Reference-counted interning arena of queue items, indexed by `u32`
/// slots. Spilled [`PackedPair`]s keep their referenced items pinned here
/// (the reference is taken at push and dropped at pop, bracketing any disk
/// residency in between), so resolution never touches storage.
#[derive(Debug)]
pub struct ItemArena<const D: usize> {
    /// Slot payloads; freed slots keep their stale item (items are `Copy`)
    /// until reuse.
    items: Vec<Item<D>>,
    /// Interning key of each slot, for map removal on release.
    keys: Vec<u64>,
    /// Reference count of each slot; 0 marks a free-listed slot.
    refs: Vec<u32>,
    /// Freed slots awaiting reuse.
    free: Vec<u32>,
    /// Key → slot lookup for live slots.
    map: HashMap<u64, u32>,
    /// Live (referenced) slots.
    live: usize,
    /// Lifetime high-water mark of `live`.
    high_water: usize,
    /// Allocations served from the free list.
    recycled: u64,
    /// Hard cap on distinct slots. Exceeding it is a typed
    /// [`StorageError::ResourceExhausted`], never a panic: the slot index
    /// must fit `u32` (the `PackedPair` wire format), and a session
    /// operator may lower the cap to bound a runaway query.
    slot_limit: u32,
}

impl<const D: usize> Default for ItemArena<D> {
    fn default() -> Self {
        Self {
            items: Vec::new(),
            keys: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            live: 0,
            high_water: 0,
            recycled: 0,
            slot_limit: u32::MAX,
        }
    }
}

impl<const D: usize> ItemArena<D> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena capped at `limit` distinct slots. The representation
    /// cap (`u32::MAX`) always applies; a lower limit turns the arena into
    /// a per-query admission guard that fails clean instead of growing
    /// without bound.
    #[must_use]
    pub fn with_slot_limit(limit: u32) -> Self {
        Self {
            slot_limit: limit,
            ..Self::default()
        }
    }

    /// Distinct items currently referenced.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Lifetime high-water mark of [`live`](Self::live).
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Allocations served from the free list instead of growing the arena.
    #[must_use]
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Approximate resident bytes: slot columns plus the interning map, all
    /// at capacity.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<Item<D>>()
            + self.keys.capacity() * std::mem::size_of::<u64>()
            + self.refs.capacity() * std::mem::size_of::<u32>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            // Hashbrown stores (K, V) buckets plus one control byte each.
            + self.map.capacity() * (std::mem::size_of::<(u64, u32)>() + 1)
    }

    /// Reserves one more slot in `v` with 25% amortized growth instead of
    /// `Vec`'s doubling — same bargain as the flat heap's entry arrays
    /// (see `sdj_pqueue::FlatHeap`): a few extra reallocation copies for a
    /// ≤ 1.25× capacity overshoot on resident queue memory.
    #[inline]
    fn reserve_one<T>(v: &mut Vec<T>) {
        if v.len() == v.capacity() {
            v.reserve_exact((v.capacity() / 4).max(32));
        }
    }

    /// Interns one item, returning its slot and taking one reference.
    ///
    /// # Errors
    ///
    /// [`StorageError::ResourceExhausted`] when growing past the slot limit
    /// (the `u32` representation cap, or a lower per-session one) — the
    /// query that overflowed is killed cleanly, not the process.
    pub fn intern(&mut self, side: bool, item: &Item<D>) -> sdj_storage::Result<u32> {
        let key = arena_key(side, item);
        if let Some(&slot) = self.map.get(&key) {
            debug_assert_eq!(
                &self.items[slot as usize], item,
                "two distinct items interned under one arena key"
            );
            self.refs[slot as usize] = self.refs[slot as usize].saturating_add(1);
            return Ok(slot);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.recycled += 1;
                self.items[slot as usize] = *item;
                self.keys[slot as usize] = key;
                self.refs[slot as usize] = 1;
                slot
            }
            None => {
                let slot = u32::try_from(self.items.len())
                    .ok()
                    .filter(|&s| s < self.slot_limit)
                    .ok_or(StorageError::ResourceExhausted("pair-slab arena slots"))?;
                Self::reserve_one(&mut self.items);
                Self::reserve_one(&mut self.keys);
                Self::reserve_one(&mut self.refs);
                self.items.push(*item);
                self.keys.push(key);
                self.refs.push(1);
                slot
            }
        };
        self.map.insert(key, slot);
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        Ok(slot)
    }

    /// Interns both sides of a pair, returning the compact payload.
    ///
    /// # Errors
    ///
    /// Propagates [`intern`](Self::intern) slot exhaustion; a first-side
    /// reference already taken is released so a failed pair leaks nothing.
    pub fn intern_pair(&mut self, pair: &Pair<D>) -> sdj_storage::Result<PackedPair> {
        let i1 = self.intern(false, &pair.item1)?;
        let i2 = match self.intern(true, &pair.item2) {
            Ok(i2) => i2,
            Err(e) => {
                self.release(i1);
                return Err(e);
            }
        };
        Ok(PackedPair { i1, i2 })
    }

    /// The fat item in `slot` (which must hold a live reference).
    #[must_use]
    pub fn resolve(&self, slot: u32) -> Item<D> {
        debug_assert!(self.refs[slot as usize] > 0, "resolving a freed arena slot");
        self.items[slot as usize]
    }

    /// Reconstructs the fat pair behind a compact payload.
    #[must_use]
    pub fn resolve_pair(&self, pair: PackedPair) -> Pair<D> {
        Pair::new(self.resolve(pair.i1), self.resolve(pair.i2))
    }

    /// Drops one reference to `slot`, free-listing it at zero.
    pub fn release(&mut self, slot: u32) {
        let i = slot as usize;
        debug_assert!(self.refs[i] > 0, "releasing a freed arena slot");
        self.refs[i] -= 1;
        if self.refs[i] == 0 {
            self.map.remove(&self.keys[i]);
            Self::reserve_one(&mut self.free);
            self.free.push(slot);
            self.live -= 1;
        }
    }

    /// Drops the references a [`intern_pair`](Self::intern_pair) call took.
    pub fn release_pair(&mut self, pair: PackedPair) {
        self.release(pair.i1);
        self.release(pair.i2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Rect;
    use sdj_rtree::ObjectId;

    fn node(page: u64) -> Item<2> {
        Item::Node {
            page,
            level: 1,
            mbr: Rect::new([0.0, 0.0], [1.0, 1.0]),
        }
    }

    fn obr(oid: u64) -> Item<2> {
        Item::Obr {
            oid: ObjectId(oid),
            mbr: Rect::new([0.5, 0.5], [0.5, 0.5]),
        }
    }

    #[test]
    fn interning_shares_slots_and_counts_refs() {
        let mut arena = ItemArena::<2>::new();
        let a = arena.intern(false, &node(1)).unwrap();
        let b = arena.intern(false, &node(1)).unwrap();
        assert_eq!(a, b, "same side + item interns to one slot");
        assert_eq!(arena.live(), 1);
        arena.release(a);
        assert_eq!(arena.live(), 1, "one reference remains");
        arena.release(b);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn sides_and_kinds_do_not_unify() {
        let mut arena = ItemArena::<2>::new();
        let left = arena.intern(false, &node(1)).unwrap();
        let right = arena.intern(true, &node(1)).unwrap();
        assert_ne!(left, right, "R1 and R2 items are distinct");
        let o = Item::Object {
            oid: ObjectId(9),
            mbr: Rect::new([0.5, 0.5], [0.5, 0.5]),
        };
        let as_obr = arena.intern(false, &obr(9)).unwrap();
        let as_object = arena.intern(false, &o).unwrap();
        assert_ne!(as_obr, as_object, "obr and exact object are distinct");
        assert_eq!(arena.live(), 4);
    }

    #[test]
    fn released_slots_are_recycled() {
        let mut arena = ItemArena::<2>::new();
        for round in 0..10u64 {
            let pp = arena
                .intern_pair(&Pair::new(node(round), obr(round + 100)))
                .unwrap();
            assert_eq!(
                arena.resolve_pair(pp),
                Pair::new(node(round), obr(round + 100))
            );
            arena.release_pair(pp);
        }
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.high_water(), 2, "only one pair live at a time");
        assert_eq!(arena.recycled(), 18, "rounds after the first reuse slots");
    }

    #[test]
    fn packed_pair_codec_roundtrip() {
        use sdj_storage::codec::{PageReader, PageWriter};
        let pp = PackedPair {
            i1: 7,
            i2: u32::MAX,
        };
        let mut buf = vec![0u8; PackedPair::encoded_size()];
        pp.encode(&mut PageWriter::new(&mut buf)).unwrap();
        assert_eq!(PackedPair::decode(&mut PageReader::new(&buf)).unwrap(), pp);
    }

    #[test]
    fn slot_limit_is_a_typed_error_and_recycling_still_works() {
        let mut arena = ItemArena::<2>::with_slot_limit(2);
        let pp = arena.intern_pair(&Pair::new(node(1), obr(2))).unwrap();
        // A third distinct slot exceeds the cap and fails clean, releasing
        // the first-side reference the failed pair had already taken.
        let err = arena
            .intern_pair(&Pair::new(node(3), obr(4)))
            .expect_err("cap exceeded");
        assert_eq!(
            err,
            StorageError::ResourceExhausted("pair-slab arena slots")
        );
        assert_eq!(arena.live(), 2, "failed intern_pair leaks no references");
        // Releasing frees capacity: the free list serves new items under the
        // same cap.
        arena.release_pair(pp);
        let again = arena.intern_pair(&Pair::new(node(3), obr(4))).unwrap();
        assert_eq!(arena.resolve_pair(again), Pair::new(node(3), obr(4)));
    }

    #[test]
    fn approx_bytes_reflects_capacity() {
        let mut arena = ItemArena::<2>::new();
        assert_eq!(arena.approx_bytes(), 0);
        for i in 0..100 {
            arena.intern(false, &node(i)).unwrap();
        }
        assert!(arena.approx_bytes() >= 100 * std::mem::size_of::<Item<2>>());
    }
}
