//! A lock-free distance bound shared between the workers of a parallel run.
//!
//! Each worker of the parallel executor drives an independent copy of the
//! serial engine over a disjoint shard of the pair queue. A bound proven by
//! one worker's estimator ("the K results still owed all lie within `d`")
//! holds globally — the merged result set is a superset of any single
//! shard's — so workers publish their estimator's maximum distance here and
//! read the fleet-wide minimum back into their own pruning checks.
//!
//! The published values live in the join's *key domain* (squared distances
//! under the default Euclidean configuration, plain distances otherwise —
//! see `JoinConfig::key_space`). All workers of a run share one config and
//! therefore one domain, and the monotone distance → key map preserves the
//! min, so nothing here needs to know which domain is in use.
//!
//! The bound is a non-negative `f64` stored as its IEEE-754 bit pattern in
//! an [`AtomicU64`]. For non-negative floats the bit patterns order exactly
//! like the values, so `fetch_min` on the raw bits is `fetch_min` on the
//! distances — no compare-exchange loop needed.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically non-increasing distance bound shared across threads.
#[derive(Debug)]
pub struct SharedDistanceBound {
    bits: AtomicU64,
}

impl Default for SharedDistanceBound {
    fn default() -> Self {
        Self::new(f64::INFINITY)
    }
}

impl SharedDistanceBound {
    /// Creates a bound starting at `initial`.
    ///
    /// # Panics
    /// Panics if `initial` is negative or NaN (the bit-pattern ordering trick
    /// requires non-negative values).
    #[must_use]
    pub fn new(initial: f64) -> Self {
        assert!(
            initial >= 0.0,
            "shared distance bounds must be non-negative"
        );
        Self {
            bits: AtomicU64::new(initial.to_bits()),
        }
    }

    /// The current bound.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Lowers the bound to `bound` if it is tighter than the current value.
    /// Non-finite or negative candidates are ignored (they can only arise
    /// from callers that have nothing to prove). Returns true when this call
    /// strictly lowered the bound — the executor emits a `BoundTightened`
    /// event per strict improvement.
    pub fn tighten(&self, bound: f64) -> bool {
        if bound.is_nan() || bound < 0.0 {
            return false;
        }
        // Non-negative f64 bit patterns are monotone in the value, so an
        // integer fetch_min implements a float min atomically.
        let prev = self.bits.fetch_min(bound.to_bits(), Ordering::AcqRel);
        bound < f64::from_bits(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial_and_only_tightens() {
        let b = SharedDistanceBound::new(10.0);
        assert_eq!(b.get(), 10.0);
        assert!(!b.tighten(12.0), "looser bound is not an improvement");
        assert_eq!(b.get(), 10.0, "looser bound ignored");
        assert!(b.tighten(4.5));
        assert_eq!(b.get(), 4.5);
        assert!(!b.tighten(4.5), "equal bound is not a strict improvement");
        assert_eq!(b.get(), 4.5);
    }

    #[test]
    fn default_is_unbounded() {
        let b = SharedDistanceBound::default();
        assert_eq!(b.get(), f64::INFINITY);
        b.tighten(f64::INFINITY);
        assert_eq!(b.get(), f64::INFINITY);
        b.tighten(0.0);
        assert_eq!(b.get(), 0.0);
    }

    #[test]
    fn rejects_invalid_candidates() {
        let b = SharedDistanceBound::new(5.0);
        b.tighten(-1.0);
        b.tighten(f64::NAN);
        assert_eq!(b.get(), 5.0);
    }

    #[test]
    fn concurrent_tighten_converges_to_minimum() {
        let b = SharedDistanceBound::default();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        b.tighten(f64::from(1 + (i.wrapping_mul(2654435761) + t) % 1000));
                    }
                });
            }
        });
        assert_eq!(b.get(), 1.0);
    }
}
