//! The incremental distance join (§2.2) and distance semi-join (§2.3).
//!
//! One engine implements both operations: a priority queue of item pairs,
//! keyed by distance with configurable tie-breaking, from which object pairs
//! stream out in distance order. The semi-join is the same traversal with
//! first-item duplicate suppression and optional `d_max` pruning layered on.
//!
//! The engine is generic over the two spatial indexes ([`SpatialIndex`]),
//! which may even be of different kinds — §2.2's "the algorithm works for
//! any spatial data structure based on a hierarchical decomposition".
//!
//! The iterator's entire state is the priority queue (plus bookkeeping), so
//! a pipelined consumer can stop after any number of results having paid
//! only for what it consumed — the paper's central claim.
//!
//! # Key domain
//!
//! All internal distances — queue keys, range restrictions, estimator and
//! semi-join bounds, the shared cross-worker bound — live in the
//! configuration's *key space* ([`JoinConfig::key_space`]). Under the
//! default [`crate::config::KeyDomain::Squared`] these are squared Euclidean
//! distances: the monotone `x ↦ x²` map preserves every comparison, so the
//! pop order is untouched while MINDIST/MAXDIST evaluations skip their
//! `sqrt`. The single root per result is paid in [`DistanceJoin::report`],
//! and reported distances are bitwise identical to a plain-domain run
//! (`DESIGN.md` §8 gives the argument).

use sdj_geom::{KeySpace, Rect, SoaRects};
use sdj_obs::{ObsContext, PairKind, Phase, Side};
use sdj_rtree::{ObjectId, RTree};
use sdj_storage::StorageError;

use crate::bound::SharedDistanceBound;
use crate::config::{EstimationBound, ExpansionPath, JoinConfig, ResultOrder, TraversalPolicy};
use crate::estimate::{Estimator, EstimatorMode};
use crate::index::{IndexEntry, IndexNode, NodeId, SpatialIndex};
use crate::obs::JoinObs;
use crate::oracle::{DistanceOracle, MbrOracle};
use crate::pair::{Item, Pair, PairKey};
use crate::queue::JoinQueue;
use crate::semi::{SeenSet, SemiConfig, SemiState};
use crate::stats::JoinStats;
use crate::view::{NodeView, ViewCache, VIEW_CACHE_CAP};

/// Routes a MINDIST column pass by expansion path: `lanes` selects the
/// explicit fixed-width lane kernel ([`ExpansionPath::Lanes`]), otherwise the
/// plain batched kernel runs. Both produce identical bits, so every caller
/// (expansion, sweep windows, the bulk executor) is free to A/B them.
#[inline]
pub(crate) fn mindist_keys_into<const D: usize>(
    soa: &SoaRects<D>,
    lanes: bool,
    keys: KeySpace,
    q: &Rect<D>,
    range: std::ops::Range<usize>,
    out: &mut Vec<f64>,
) {
    if lanes {
        soa.mindist_keys_lanes(keys, q, range, out);
    } else {
        soa.mindist_keys(keys, q, range, out);
    }
}

/// [`mindist_keys_into`] for the MAXDIST column pass.
#[inline]
pub(crate) fn maxdist_keys_into<const D: usize>(
    soa: &SoaRects<D>,
    lanes: bool,
    keys: KeySpace,
    q: &Rect<D>,
    range: std::ops::Range<usize>,
    out: &mut Vec<f64>,
) {
    if lanes {
        soa.maxdist_keys_lanes(keys, q, range, out);
    } else {
        soa.maxdist_keys(keys, q, range, out);
    }
}

/// One result of a distance join: a pair of objects and their distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResultPair {
    /// Object from the first relation.
    pub oid1: ObjectId,
    /// Object from the second relation.
    pub oid2: ObjectId,
    /// Distance between the two objects.
    pub distance: f64,
}

/// The incremental distance join / distance semi-join iterator.
///
/// Created by [`DistanceJoin::new`] (join) or [`DistanceJoin::semi`]
/// (semi-join); yields [`ResultPair`]s in the configured distance order.
/// Generic over the oracle for exact object distances and the two index
/// types (defaulting to R\*-trees).
pub struct DistanceJoin<'a, const D: usize, O = MbrOracle, I1 = RTree<D>, I2 = RTree<D>>
where
    O: DistanceOracle<D>,
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    tree1: &'a I1,
    tree2: &'a I2,
    oracle: O,
    config: JoinConfig,
    /// The key space every internal distance lives in (squared Euclidean by
    /// default); see the module docs.
    keys: KeySpace,
    /// `config.min_distance` mapped into the key domain.
    min_key: f64,
    /// `config.max_distance` mapped into the key domain.
    max_key: f64,
    queue: JoinQueue<D>,
    estimator: Option<Estimator>,
    semi: Option<SemiState>,
    stats: JoinStats,
    io_baseline: u64,
    reported: u64,
    done: bool,
    error: Option<StorageError>,
    /// §2.2.5 spatial selection: first-relation objects must fall inside
    /// this window.
    window1: Option<Rect<D>>,
    /// §2.2.5 spatial selection: second-relation objects must fall inside
    /// this window.
    window2: Option<Rect<D>>,
    /// Cross-worker maximum-distance bound of a parallel run (ascending
    /// order only): read for pruning, written from the estimator.
    shared_bound: Option<&'a SharedDistanceBound>,
    /// Instrumentation handle; `None` (the default) keeps the hot path to a
    /// single branch per hook site.
    obs: Option<JoinObs>,
    /// Pairs accepted by the filter pipeline but not yet in the queue;
    /// flushed in one batch per expansion.
    pending: Vec<(PairKey, Pair<D>)>,
    /// Reusable buffers for the expansion hot paths, so steady-state
    /// iteration performs no per-node allocation.
    scratch_entries1: Vec<IndexEntry<D>>,
    scratch_entries2: Vec<IndexEntry<D>>,
    scratch_children: Vec<(Pair<D>, f64)>,
    /// Key buffers the batched kernels write into.
    scratch_keys: Vec<f64>,
    scratch_keys2: Vec<f64>,
    /// Struct-of-arrays columns of the plane sweep's sorted right entries.
    scratch_soa2: SoaRects<D>,
    /// Per-side caches of decoded struct-of-arrays node views.
    views1: ViewCache<D>,
    views2: ViewCache<D>,
    /// Scratch page batches for queue-driven prefetch hints, one per side,
    /// handed to [`SpatialIndex::prefetch_nodes`].
    scratch_hints: Vec<NodeId>,
    scratch_hint_pages: Vec<NodeId>,
    /// Emission watermark, maintained only when the adaptive driver enables
    /// it ([`DistanceJoin::track_watermark`]); `None` keeps the result path
    /// free of the extra bookkeeping.
    watermark: Option<EmissionWatermark>,
}

/// The last emitted result's position in the (monotone, ascending) output
/// order: its key-domain distance plus every pair emitted at *exactly* that
/// key. A frontier-seeded bulk run filters its candidates against this
/// floor — strictly smaller keys were all emitted already (emission is
/// monotone non-decreasing), and equal keys are emitted iff they are not in
/// the tie set — so the seeded run produces exactly the not-yet-emitted
/// remainder. Comparisons happen in the key domain on both sides (the bulk
/// kernels produce bit-identical keys to the incremental kernels), so the
/// floor is exact: no epsilon, no sqrt round-trip.
#[derive(Clone, Debug, Default)]
pub struct EmissionWatermark {
    /// Key-domain value of the last emitted result; `-inf` before the
    /// first emission (nothing is below the floor).
    pub key: f64,
    /// `(oid1, oid2)` of every result emitted at exactly `key`, cleared
    /// whenever a strictly greater key is emitted.
    pub ties: Vec<(ObjectId, ObjectId)>,
}

impl EmissionWatermark {
    fn new() -> Self {
        Self {
            key: f64::NEG_INFINITY,
            ties: Vec::new(),
        }
    }
}

/// Outcome of processing one queue element.
enum StepOutcome {
    /// An object pair was reported.
    Result(ResultPair),
    /// The element was expanded, refined, or pruned; iteration continues.
    Continue,
    /// The queue is empty.
    Exhausted,
}

/// A partition of an in-flight join produced by
/// [`DistanceJoin::into_frontier`]: the results already reported while the
/// queue was grown (globally the closest — every later result is at least as
/// far), and the queue split into shards whose descendant object-pair sets
/// are pairwise disjoint, so independent engines resumed from them
/// ([`DistanceJoin::resume`]) jointly produce exactly the remaining results.
pub struct JoinFrontier<const D: usize> {
    /// Results reported during partitioning, in order.
    pub prefix: Vec<ResultPair>,
    /// Disjoint queue shards (round-robin dealt, so distances are spread
    /// evenly across them).
    pub shards: Vec<Vec<(PairKey, Pair<D>)>>,
    /// Semi-join: snapshot of the reported set at the split point.
    pub seen: Option<SeenSet>,
    /// Tightest maximum distance proven at the split point (query bound and
    /// estimator); seeds a parallel run's shared bound. Expressed in the
    /// join's key domain (squared under the default squared Euclidean keys),
    /// matching what resumed workers compare queue keys against.
    pub dmax_hint: f64,
    /// Results still owed after the prefix, when `max_pairs` was set.
    pub remaining_pairs: Option<u64>,
    /// Counters of the partitioning run.
    pub stats: JoinStats,
    /// I/O error that stopped partitioning early, if any.
    pub error: Option<sdj_storage::StorageError>,
    /// True when the serial run finished during partitioning (all shards are
    /// then empty and `prefix` is the complete result).
    pub exhausted: bool,
}

impl<'a, const D: usize, I1, I2> DistanceJoin<'a, D, MbrOracle, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    /// Starts a distance join over two indexes whose objects are stored
    /// directly in the leaves (points or rectangles).
    #[must_use]
    pub fn new(tree1: &'a I1, tree2: &'a I2, config: JoinConfig) -> Self {
        Self::with_oracle(tree1, tree2, MbrOracle, config)
    }

    /// Starts a distance semi-join ("for each object of `tree1`, its nearest
    /// partner in `tree2`, streamed in distance order").
    #[must_use]
    pub fn semi(tree1: &'a I1, tree2: &'a I2, config: JoinConfig, semi: SemiConfig) -> Self {
        Self::semi_with_oracle(tree1, tree2, MbrOracle, config, semi)
    }
}

impl<'a, const D: usize, O, I1, I2> DistanceJoin<'a, D, O, I1, I2>
where
    O: DistanceOracle<D>,
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    /// Starts a distance join with exact object distances supplied by
    /// `oracle` (objects stored externally to the leaves).
    #[must_use]
    pub fn with_oracle(tree1: &'a I1, tree2: &'a I2, oracle: O, config: JoinConfig) -> Self {
        Self::build(tree1, tree2, oracle, config, None)
    }

    /// Starts a distance semi-join with exact object distances supplied by
    /// `oracle`.
    #[must_use]
    pub fn semi_with_oracle(
        tree1: &'a I1,
        tree2: &'a I2,
        oracle: O,
        config: JoinConfig,
        semi: SemiConfig,
    ) -> Self {
        Self::build(tree1, tree2, oracle, config, Some(semi))
    }

    fn build(
        tree1: &'a I1,
        tree2: &'a I2,
        oracle: O,
        config: JoinConfig,
        semi_config: Option<SemiConfig>,
    ) -> Self {
        let mut join = Self::assemble(tree1, tree2, oracle, config, semi_config);
        join.seed();
        join
    }

    /// Everything [`build`](Self::build) does except seeding the queue.
    fn assemble(
        tree1: &'a I1,
        tree2: &'a I2,
        oracle: O,
        config: JoinConfig,
        semi_config: Option<SemiConfig>,
    ) -> Self {
        config.validate();
        let semi = semi_config.map(|mut sc| {
            if !matches!(sc.dmax, crate::semi::DmaxStrategy::None) {
                // The paper's d_max strategies all build on Inside2
                // filtering; upgrade silently.
                sc.filter = crate::semi::SemiFilter::Inside2;
                assert!(
                    matches!(config.order, ResultOrder::Ascending),
                    "semi-join d_max pruning bounds nearest partners and \
                     requires ascending order"
                );
            }
            SemiState::new(sc, tree1.len())
        });
        let keys = config.key_space();
        let estimator = match (config.max_pairs, config.order) {
            (Some(k), ResultOrder::Ascending) => Some(Estimator::new(
                if semi.is_some() {
                    EstimatorMode::Semi
                } else {
                    EstimatorMode::Join
                },
                k,
                // The estimator is domain-agnostic: it only compares and
                // stores values the join feeds it, all of which are keys.
                keys.to_key(config.max_distance),
            )),
            _ => None,
        };
        let io_baseline = tree1.io_misses() + tree2.io_misses();
        Self {
            tree1,
            tree2,
            oracle,
            config,
            keys,
            min_key: keys.to_key(config.min_distance),
            max_key: keys.to_key(config.max_distance),
            queue: JoinQueue::new(&config.queue, config.layout, keys),
            estimator,
            semi,
            stats: JoinStats::default(),
            io_baseline,
            reported: 0,
            done: false,
            error: None,
            window1: None,
            window2: None,
            shared_bound: None,
            obs: None,
            pending: Vec::new(),
            scratch_entries1: Vec::new(),
            scratch_entries2: Vec::new(),
            scratch_children: Vec::new(),
            scratch_keys: Vec::new(),
            scratch_keys2: Vec::new(),
            scratch_soa2: SoaRects::default(),
            views1: ViewCache::new(VIEW_CACHE_CAP),
            views2: ViewCache::new(VIEW_CACHE_CAP),
            scratch_hints: Vec::new(),
            scratch_hint_pages: Vec::new(),
            watermark: None,
        }
    }

    /// Resumes the join from one shard of a [`JoinFrontier`]. The shard's
    /// pairs enter the queue verbatim (their ancestors' filters already ran);
    /// `config` should carry the frontier's `remaining_pairs` as `max_pairs`
    /// and `seen` should be the frontier's snapshot so already-reported
    /// first objects are not searched again.
    #[must_use]
    pub fn resume(
        tree1: &'a I1,
        tree2: &'a I2,
        oracle: O,
        config: JoinConfig,
        semi_config: Option<SemiConfig>,
        shard: Vec<(PairKey, Pair<D>)>,
        seen: Option<SeenSet>,
    ) -> Self {
        let mut join = Self::assemble(tree1, tree2, oracle, config, semi_config);
        if let (Some(semi), Some(seen)) = (join.semi.as_mut(), seen) {
            semi.seen = seen;
        }
        // Shard pairs were counted as enqueued by the partitioning run; do
        // not recount them here so merged parallel stats keep push/pop
        // symmetry.
        if let Err(e) = join.queue.push_batch(shard) {
            join.error = Some(e);
            join.done = true;
        }
        join
    }

    /// Attaches a cross-worker distance bound (parallel execution, ascending
    /// order): dequeued or considered pairs beyond the bound are pruned, and
    /// bounds proven by this engine's estimator are published to it.
    #[must_use]
    pub fn with_shared_bound(mut self, bound: &'a SharedDistanceBound) -> Self {
        self.shared_bound = Some(bound);
        self
    }

    /// Instruments the engine: pops, expansions, results, bound tightenings
    /// and queue depth feed the context's sink and registry, and the hybrid
    /// queue backend (if selected) reports tier migrations and occupancy.
    #[must_use]
    pub fn with_obs(self, ctx: &ObsContext) -> Self {
        let obs = JoinObs::new(ctx);
        self.with_obs_handle(ctx, obs)
    }

    /// Like [`with_obs`](Self::with_obs) but with a caller-built handle
    /// (the parallel executor passes per-worker handles).
    #[must_use]
    pub fn with_obs_handle(mut self, ctx: &ObsContext, obs: JoinObs) -> Self {
        self.queue.attach_obs(ctx);
        self.obs = Some(obs);
        self
    }

    /// A mutable borrow of the attached instrumentation handle, if any.
    pub fn obs_mut(&mut self) -> Option<&mut JoinObs> {
        self.obs.as_mut()
    }

    /// Runs the serial engine until the queue holds at least
    /// `shards * min_pairs_per_shard` pairs (or the join finishes), then
    /// splits the queue into `shards` disjoint shards. Results produced on
    /// the way are returned as the frontier's ordered prefix.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn into_frontier(mut self, shards: usize, min_pairs_per_shard: usize) -> JoinFrontier<D> {
        assert!(shards >= 1, "a frontier needs at least one shard");
        let target = shards.saturating_mul(min_pairs_per_shard).max(shards);
        let mut prefix = Vec::new();
        let mut exhausted = false;
        while !self.done && self.queue.len() < target {
            match self.step() {
                Ok(StepOutcome::Result(r)) => prefix.push(r),
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Exhausted) => {
                    exhausted = true;
                    break;
                }
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    break;
                }
            }
        }
        // `done` set by the K-limit also finishes the run: the queue's
        // remainder is dead weight, not work to hand out.
        exhausted |= self.done;
        let mut shard_vecs: Vec<Vec<(PairKey, Pair<D>)>> = Vec::with_capacity(shards);
        let per_shard = self.queue.len().div_ceil(shards);
        shard_vecs.resize_with(shards, || Vec::with_capacity(per_shard));
        if !exhausted {
            self.span_enter(Phase::QueuePop);
            if shards == 1 {
                // A single shard needs no round-robin balance and its order
                // is irrelevant (resume re-heapifies, the adaptive handoff
                // harvests): drain without re-sorting work. The flat layout
                // walks its entry arrays straight off the slab.
                let shard = &mut shard_vecs[0];
                if let Err(e) = self
                    .queue
                    .drain_unordered(|key, pair| shard.push((key, pair)))
                {
                    if self.error.is_none() {
                        self.error = Some(e);
                    }
                }
            } else {
                let mut next = 0usize;
                loop {
                    match self.queue.pop() {
                        Ok(Some(entry)) => {
                            shard_vecs[next].push(entry);
                            next = (next + 1) % shards;
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // A fault while draining the queue loses the
                            // shards' completeness; surface the error so the
                            // executor aborts instead of running an
                            // incomplete partition.
                            if self.error.is_none() {
                                self.error = Some(e);
                            }
                            break;
                        }
                    }
                }
            }
            self.span_exit(Phase::QueuePop);
        }
        JoinFrontier {
            prefix,
            shards: shard_vecs,
            seen: self.semi.as_ref().map(|s| s.seen.clone()),
            dmax_hint: self.effective_max_key(),
            remaining_pairs: self
                .config
                .max_pairs
                .map(|k| k.saturating_sub(self.reported)),
            stats: self.stats(),
            error: self.error.take(),
            exhausted,
        }
    }

    /// Runs the engine for at most `max_pops` queue pops, appending every
    /// result produced to `out`. Returns `true` when the join finished
    /// (queue exhausted or the `K` limit reached) and `false` when the pop
    /// budget ran out first — the adaptive driver's checkpoint granularity,
    /// far finer than result granularity (a drain-heavy run can pop
    /// millions of node pairs between consecutive results). On a storage
    /// fault the engine is `done` and the error is returned; results
    /// already appended remain a correct prefix (the fail-clean contract).
    pub(crate) fn drive(
        &mut self,
        max_pops: u64,
        out: &mut Vec<ResultPair>,
    ) -> sdj_storage::Result<bool> {
        if self.done {
            return Ok(true);
        }
        let budget_end = self.stats.pairs_dequeued.saturating_add(max_pops);
        while self.stats.pairs_dequeued < budget_end {
            match self.step() {
                Ok(StepOutcome::Result(r)) => out.push(r),
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Exhausted) => {
                    self.done = true;
                    return Ok(true);
                }
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            }
            if self.done {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Starts maintaining the [`EmissionWatermark`] (adaptive handoff
    /// support). Must be enabled before any result is emitted so the floor
    /// covers the whole prefix.
    pub(crate) fn track_watermark(&mut self) {
        assert!(
            self.stats.pairs_reported == 0,
            "watermark tracking must start before the first result"
        );
        self.watermark = Some(EmissionWatermark::new());
    }

    /// The current emission watermark, if tracking was enabled.
    pub(crate) fn watermark(&self) -> Option<&EmissionWatermark> {
        self.watermark.as_ref()
    }

    /// Restricts the join to objects falling inside the given windows
    /// (§2.2.5's spatial-selection extension; `None` leaves a side
    /// unrestricted). Must be applied before consuming any results.
    ///
    /// # Panics
    /// Panics if results have already been consumed.
    #[must_use]
    pub fn with_windows(mut self, window1: Option<Rect<D>>, window2: Option<Rect<D>>) -> Self {
        assert!(
            self.stats.pairs_dequeued == 0,
            "windows must be set before iteration starts"
        );
        self.window1 = window1;
        self.window2 = window2;
        self
    }

    /// True if `item` can (for nodes) or does (for objects) satisfy the
    /// window restriction of its side.
    fn passes_window(item: &Item<D>, window: &Option<Rect<D>>) -> bool {
        match window {
            None => true,
            Some(w) => match item {
                // A subtree can still hold qualifying objects if its region
                // touches the window at all.
                Item::Node { mbr, .. } => w.intersects(mbr),
                // Objects must fall inside the window.
                Item::Obr { mbr, .. } | Item::Object { mbr, .. } => w.contains_rect(mbr),
            },
        }
    }

    /// Enqueues the initial root/root pair (Figure 3, line 2).
    fn seed(&mut self) {
        if self.tree1.is_empty() || self.tree2.is_empty() {
            self.done = true;
            return;
        }
        let roots = (|| -> sdj_storage::Result<Pair<D>> {
            let region1 = self.tree1.root_region()?;
            let region2 = self.tree2.root_region()?;
            self.stats.node_accesses += 2;
            Ok(Pair::new(
                Item::Node {
                    page: self.tree1.root_id(),
                    level: self.tree1.root_level(),
                    mbr: region1,
                },
                Item::Node {
                    page: self.tree2.root_id(),
                    level: self.tree2.root_level(),
                    mbr: region2,
                },
            ))
        })();
        match roots {
            Ok(pair) => self.consider(pair, None),
            Err(e) => {
                self.error = Some(e);
                self.done = true;
            }
        }
        if let Err(e) = self.flush_pending() {
            self.error = Some(e);
            self.done = true;
        }
    }

    // ------------------------------------------------------------ accessors

    /// Counters for the run so far (node I/O and queue high-water mark are
    /// sampled at call time).
    #[must_use]
    pub fn stats(&self) -> JoinStats {
        let mut s = self.stats;
        s.node_io = (self.tree1.io_misses() + self.tree2.io_misses())
            .saturating_sub(self.io_baseline)
            + self.queue.disk_stats().reads
            + self.queue.disk_stats().writes;
        // The queue's own high-water mark covers single pushes and resumed
        // shards; the flush-time sample covers batch insertions. Take the
        // max so neither path can under-report.
        s.max_queue = s.max_queue.max(self.queue.max_len());
        s.queue_bytes_peak = s.queue_bytes_peak.max(self.queue.queue_bytes());
        s
    }

    /// Current queue length.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The estimator's current maximum distance, if estimation is active.
    /// Converted out of the key domain, so it is a real distance regardless
    /// of configuration.
    #[must_use]
    pub fn estimated_max_distance(&self) -> Option<f64> {
        self.estimator
            .as_ref()
            .map(|est| self.keys.to_distance(est.current_dmax()))
    }

    /// Takes the pending I/O error, if iteration stopped because of one.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    /// Installs (or clears) a fault injector on the hybrid queue's spill
    /// pager. No-op for the memory backend.
    pub fn set_queue_fault_injector(
        &mut self,
        injector: Option<std::sync::Arc<sdj_storage::FaultInjector>>,
    ) {
        self.queue.set_fault_injector(injector);
    }

    /// Bounds how many times the hybrid queue's buffer pool retries an
    /// operation that failed with a transient fault. No-op for the memory
    /// backend.
    pub fn set_queue_retry_limit(&mut self, limit: u32) {
        self.queue.set_retry_limit(limit);
    }

    /// Buffer-pool statistics for the hybrid queue's spill tier (zeroed
    /// stats for the memory backend).
    #[must_use]
    pub fn queue_pool_stats(&self) -> sdj_storage::PoolStats {
        self.queue.pool_stats()
    }

    /// Hybrid-queue tiering information (`(tier stats, in-memory element
    /// peak)`), when the hybrid backend is in use.
    #[must_use]
    pub fn hybrid_queue_info(&self) -> Option<(sdj_pqueue::HybridStats, usize)> {
        self.queue.hybrid_info()
    }

    /// Item-arena occupancy under [`QueueLayout::FlatDary`](crate::QueueLayout::FlatDary):
    /// `(live distinct items, lifetime high-water, recycled allocations)`.
    /// `None` under the pairing layout.
    #[must_use]
    pub fn queue_slab_stats(&self) -> Option<(usize, usize, u64)> {
        self.queue.slab_stats()
    }

    /// Approximate resident bytes of the priority queue (heap storage, item
    /// arena, spill buffer pool). This is the number a per-session memory
    /// budget meters: the queue *is* the whole paused query state.
    #[must_use]
    pub fn queue_bytes(&self) -> usize {
        self.queue.queue_bytes()
    }

    /// Whether the join has finished (queue exhausted, result budget hit,
    /// or a storage error stopped it — see [`take_error`](Self::take_error)).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Registers this join's queue gauges under `{prefix}pq.*` in the
    /// context's registry (see [`JoinQueue::attach_obs_prefixed`]), without
    /// installing the engine-level [`JoinObs`] handle. The session service
    /// uses `session.<id>.` prefixes so concurrent cursors stay
    /// distinguishable in one registry.
    pub fn attach_queue_obs_prefixed(&mut self, ctx: &ObsContext, prefix: &str) {
        self.queue.attach_obs_prefixed(ctx, prefix);
    }

    // ----------------------------------------------------------- internals

    fn ascending(&self) -> bool {
        matches!(self.config.order, ResultOrder::Ascending)
    }

    /// The tightest known maximum key (query bound, estimator, and — for
    /// ascending runs — the cross-worker shared bound), in the key domain.
    /// True when the lane-unrolled column kernels are selected
    /// ([`ExpansionPath::Lanes`]).
    fn lanes(&self) -> bool {
        matches!(self.config.expansion, ExpansionPath::Lanes)
    }

    pub(crate) fn effective_max_key(&self) -> f64 {
        let mut max = match &self.estimator {
            Some(est) => self.max_key.min(est.current_dmax()),
            None => self.max_key,
        };
        if matches!(self.config.order, ResultOrder::Ascending) {
            if let Some(shared) = self.shared_bound {
                max = max.min(shared.get());
            }
        }
        max
    }

    /// The shared bound's current value (a key), when one is attached and
    /// applies (ascending order only — descending runs key on MAXDIST,
    /// where a maximum-distance bound proves nothing about rank).
    fn shared_max(&self) -> f64 {
        match self.shared_bound {
            Some(shared) if matches!(self.config.order, ResultOrder::Ascending) => shared.get(),
            _ => f64::INFINITY,
        }
    }

    /// Publishes the estimator's proven maximum key to the shared
    /// cross-worker bound (both live in the key domain). A bound proven from
    /// this engine's queue alone holds for the whole parallel run: the
    /// merged result set is a superset of this shard's, so "K results within
    /// d exist here" implies the global K-th result is within d too.
    fn publish_shared_bound(&mut self) {
        if let Some(est) = &self.estimator {
            let dmax = est.current_dmax();
            if let Some(shared) = self.shared_bound {
                shared.tighten(dmax);
            }
            if self.obs.is_some() {
                // Instrumentation reports real distances; convert only when
                // someone is listening (uncounted by `stats.sqrt_calls`,
                // which tracks the result path).
                let dist = self.keys.to_distance(dmax);
                if let Some(obs) = &mut self.obs {
                    obs.on_bound(dist);
                }
            }
        }
    }

    /// True when the item's rectangle is a *minimal* bounding rectangle
    /// (required for MINMAXDIST bounds): object MBRs always are; node
    /// regions only if the index guarantees it (R-trees yes, quadtrees no).
    fn item_minimal(item: &Item<D>, first_side: bool) -> bool {
        match item {
            Item::Obr { .. } | Item::Object { .. } => true,
            Item::Node { .. } => {
                if first_side {
                    I1::MINIMAL_REGIONS
                } else {
                    I2::MINIMAL_REGIONS
                }
            }
        }
    }

    /// MINMAXDIST key between the pair's items when both rectangles are
    /// minimal; falls back to the MAXDIST key (always a valid, looser upper
    /// bound) otherwise.
    fn tight_upper_bound(&mut self, pair: &Pair<D>) -> f64 {
        self.stats.distance_calcs += 1;
        if Self::item_minimal(&pair.item1, true) && Self::item_minimal(&pair.item2, false) {
            pair.minmaxdist_key(self.keys)
        } else {
            pair.maxdist_key(self.keys)
        }
    }

    /// Lower bound on result pairs generated from `item` (for estimation).
    fn min_objects(&self, item: &Item<D>, first_side: bool) -> u64 {
        match item {
            Item::Node { page, level, .. } => {
                if first_side {
                    self.tree1
                        .min_subtree_objects(*level, *page == self.tree1.root_id())
                } else {
                    self.tree2
                        .min_subtree_objects(*level, *page == self.tree2.root_id())
                }
            }
            Item::Obr { .. } | Item::Object { .. } => 1,
        }
    }

    /// Lower bound on the number of *reportable* result pairs a queued pair
    /// guarantees within its estimation bound. Spatial windows make subtree
    /// counts unsafe (objects inside a node may fail the window), and
    /// `exclude_equal_ids` voids pairs that could be self-pairs; both are
    /// handled conservatively here so the estimator never over-prunes.
    fn estimation_count(&self, pair: &Pair<D>) -> u64 {
        let windowed = self.window1.is_some() || self.window2.is_some();
        let exclude = self.config.exclude_equal_ids;
        let has_node = pair.item1.is_node() || pair.item2.is_node();
        if windowed && has_node {
            return 0;
        }
        match self.config.estimation {
            EstimationBound::ExistsPair => {
                // "Exists a pair within MINMAXDIST" — with exclusion, only
                // provable when both sides are distinct concrete objects.
                if exclude {
                    u64::from(!has_node && pair.item1.object_id() != pair.item2.object_id())
                } else {
                    1
                }
            }
            EstimationBound::AllPairs => {
                let c1 = self.min_objects(&pair.item1, true);
                let c2 = self.min_objects(&pair.item2, false);
                if self.semi.is_some() {
                    // Each first-side object has a partner within MAXDIST;
                    // under exclusion that partner might be itself unless a
                    // second partner (or a provably different object) exists.
                    if exclude {
                        let distinct_objects =
                            !has_node && pair.item1.object_id() != pair.item2.object_id();
                        if distinct_objects || c2 >= 2 {
                            c1
                        } else {
                            0
                        }
                    } else {
                        c1
                    }
                } else {
                    let all = c1.saturating_mul(c2);
                    if exclude {
                        if !has_node && pair.item1.object_id() == pair.item2.object_id() {
                            0
                        } else {
                            // At most min(c1, c2) of the guaranteed pairs can
                            // be self-pairs.
                            all.saturating_sub(c1.min(c2))
                        }
                    } else {
                        all
                    }
                }
            }
        }
    }

    /// Upper bound on the nearest-partner distance of `pair.item1` within
    /// `pair.item2` — MINMAXDIST where valid, MAXDIST for subtrees.
    ///
    /// With `exclude_equal_ids` (self-joins) the "a partner exists within
    /// this bound" witness must not be the object itself: bounds against a
    /// single possibly-identical object are void, bounds against a subtree
    /// need at least two objects in it, and only MAXDIST (which covers every
    /// object of the subtree, so in particular a non-self one) remains valid.
    fn semi_dmax_bound(&mut self, pair: &Pair<D>) -> f64 {
        // A minimum-distance restriction invalidates witnesses that may be
        // closer than `Dmin` (a too-close partner does not qualify as a
        // result, so it cannot justify discarding farther candidates). The
        // pair donates a bound only if *all* its generated pairs satisfy
        // `Dmin` — mirroring the §2.2.4 eligibility rule.
        if self.min_key > 0.0 {
            self.stats.distance_calcs += 1;
            if pair.mindist_key(self.keys) < self.min_key {
                return f64::INFINITY;
            }
        }
        // A second-side window invalidates witnesses that may fall outside
        // it: single partners must lie inside, subtrees must be wholly
        // inside (every bounded object then is too).
        if let Some(w) = &self.window2 {
            if !w.contains_rect(pair.item2.rect()) {
                return f64::INFINITY;
            }
        }
        if self.config.exclude_equal_ids {
            match &pair.item2 {
                Item::Obr { oid: o2, .. } | Item::Object { oid: o2, .. } => {
                    match pair.item1.object_id() {
                        // Two provably distinct objects: the exact witness.
                        Some(o1) if o1 != *o2 => {
                            self.stats.distance_calcs += 1;
                            return pair.minmaxdist_key(self.keys);
                        }
                        // Same object, or a first-side subtree that may
                        // contain the second-side object: no valid witness.
                        _ => return f64::INFINITY,
                    }
                }
                Item::Node { page, level, .. } => {
                    let c2 = self
                        .tree2
                        .min_subtree_objects(*level, *page == self.tree2.root_id());
                    if c2 < 2 {
                        return f64::INFINITY;
                    }
                    // >= 2 objects, all within MAXDIST: at least one is not
                    // the first-side object.
                    self.stats.distance_calcs += 1;
                    return pair.maxdist_key(self.keys);
                }
            }
        }
        match pair.item1 {
            Item::Obr { .. } | Item::Object { .. } => self.tight_upper_bound(pair),
            Item::Node { .. } => {
                self.stats.distance_calcs += 1;
                pair.maxdist_key(self.keys)
            }
        }
    }

    fn read_node1(&mut self, id: NodeId) -> sdj_storage::Result<IndexNode<D>> {
        self.stats.node_accesses += 1;
        self.tree1.read_node(id)
    }

    fn read_node2(&mut self, id: NodeId) -> sdj_storage::Result<IndexNode<D>> {
        self.stats.node_accesses += 1;
        self.tree2.read_node(id)
    }

    /// Checks the first tree's node `id` out of the view cache (decoding it
    /// only on a miss). Counted as a logical node access like
    /// [`read_node1`](Self::read_node1).
    fn checkout1(&mut self, id: NodeId) -> sdj_storage::Result<NodeView<D>> {
        self.stats.node_accesses += 1;
        let tree = self.tree1;
        self.views1.checkout(tree, id)
    }

    fn checkout2(&mut self, id: NodeId) -> sdj_storage::Result<NodeView<D>> {
        self.stats.node_accesses += 1;
        let tree = self.tree2;
        self.views2.checkout(tree, id)
    }

    fn child_item(entry: &IndexEntry<D>) -> Item<D> {
        match entry {
            IndexEntry::Object { oid, mbr } => Item::Obr {
                oid: *oid,
                mbr: *mbr,
            },
            IndexEntry::Child { id, level, region } => Item::Node {
                page: *id,
                level: *level,
                mbr: *region,
            },
        }
    }

    fn seen(&self, oid: ObjectId) -> bool {
        self.semi.as_ref().is_some_and(|s| s.seen.contains(oid.0))
    }

    /// Filter-and-enqueue pipeline for a non-final (or exact-final) pair.
    /// `known_mind` lets expansion sites reuse an already computed MINDIST
    /// key. Every distance in this pipeline is a key-domain value.
    fn consider(&mut self, pair: Pair<D>, known_mind: Option<f64>) {
        let keys = self.keys;
        let mind = known_mind.unwrap_or_else(|| {
            self.stats.distance_calcs += 1;
            pair.mindist_key(keys)
        });
        if pair.is_final(O::EXACT) {
            // Exact obrs: the MINDIST key between the bounding rectangles is
            // the object distance's key.
            self.enqueue_final(pair, mind);
            return;
        }

        // Spatial selection windows (§2.2.5).
        if !Self::passes_window(&pair.item1, &self.window1)
            || !Self::passes_window(&pair.item2, &self.window2)
        {
            self.stats.pruned_by_range += 1;
            return;
        }

        // Maximum-distance pruning (query bound, then estimator).
        if mind > self.max_key {
            self.stats.pruned_by_range += 1;
            return;
        }
        if let Some(est) = &self.estimator {
            if self.ascending() && mind > est.current_dmax() {
                self.stats.pruned_by_estimate += 1;
                return;
            }
        }
        if mind > self.shared_max() {
            self.stats.pruned_by_shared += 1;
            return;
        }

        // Minimum-distance pruning: a pair none of whose results can reach
        // Dmin is dead (Figure 5).
        let mut maxd: Option<f64> = None;
        if self.min_key > 0.0 {
            let m = {
                self.stats.distance_calcs += 1;
                pair.maxdist_key(keys)
            };
            if m < self.min_key {
                self.stats.pruned_by_range += 1;
                return;
            }
            maxd = Some(m);
        }

        // Semi-join global d_max bound for the first item.
        if let Some(semi) = &self.semi {
            if let Some(bound) = semi.bound_for(pair.item1.identity()) {
                if mind > bound {
                    self.stats.pruned_by_dmax += 1;
                    return;
                }
            }
        }

        // Maximum-distance estimation (§2.2.4).
        if self.estimator.is_some() && matches!(self.config.order, ResultOrder::Ascending) {
            let bound = match self.config.estimation {
                EstimationBound::AllPairs => match maxd {
                    Some(m) => m,
                    None => {
                        self.stats.distance_calcs += 1;
                        pair.maxdist_key(keys)
                    }
                },
                EstimationBound::ExistsPair => self.tight_upper_bound(&pair),
            };
            let count = self.estimation_count(&pair);
            let min_key = self.min_key;
            if let Some(est) = &mut self.estimator {
                if mind >= min_key && bound <= est.current_dmax() {
                    est.offer(pair.item1.identity(), pair.item2.identity(), bound, count);
                }
            }
            self.publish_shared_bound();
        }

        let key_dist = if self.ascending() {
            mind
        } else {
            let m = match maxd {
                Some(m) => m,
                None => {
                    self.stats.distance_calcs += 1;
                    pair.maxdist_key(keys)
                }
            };
            -m
        };
        self.push(PairKey::new(key_dist, &pair, self.config.tie), pair);
    }

    /// Filter-and-enqueue pipeline for a pair whose exact object distance is
    /// known. `key` is that distance in the key domain.
    fn enqueue_final(&mut self, pair: Pair<D>, key: f64) {
        if self.config.exclude_equal_ids && pair.item1.object_id() == pair.item2.object_id() {
            self.stats.filtered_self += 1;
            return;
        }
        if !Self::passes_window(&pair.item1, &self.window1)
            || !Self::passes_window(&pair.item2, &self.window2)
        {
            self.stats.pruned_by_range += 1;
            return;
        }
        if key > self.max_key || key < self.min_key {
            self.stats.pruned_by_range += 1;
            return;
        }
        if let Some(est) = &self.estimator {
            if self.ascending() && key > est.current_dmax() {
                self.stats.pruned_by_estimate += 1;
                return;
            }
        }
        if key > self.shared_max() {
            self.stats.pruned_by_shared += 1;
            return;
        }
        if let Some(oid1) = pair.item1.object_id() {
            if self.seen(oid1) {
                self.stats.filtered_seen += 1;
                return;
            }
            if let Some(semi) = &mut self.semi {
                if let Some(bound) = semi.bound_for(pair.item1.identity()) {
                    if key > bound {
                        self.stats.pruned_by_dmax += 1;
                        return;
                    }
                }
                // The pair itself proves a partner within this distance.
                if semi.update_bound(pair.item1.identity(), key) {
                    if let Some(obs) = &mut self.obs {
                        obs.on_semi_bound();
                    }
                }
            }
        }
        let ascending = self.ascending();
        if let Some(est) = &mut self.estimator {
            if ascending && key >= self.min_key && key <= est.current_dmax() {
                est.offer(pair.item1.identity(), pair.item2.identity(), key, 1);
                self.publish_shared_bound();
            }
        }
        let key_dist = if ascending { key } else { -key };
        self.push(PairKey::new(key_dist, &pair, self.config.tie), pair);
    }

    /// Stages a pair for insertion; [`flush_pending`](Self::flush_pending)
    /// moves staged pairs into the queue in one batch.
    fn push(&mut self, key: PairKey, pair: Pair<D>) {
        self.pending.push((key, pair));
    }

    /// Moves staged pairs into the queue, growing its arena at most once.
    /// Called after every expansion and at the end of each step, so the
    /// queue is fully materialised whenever an element is popped or the
    /// public accessors run. A hybrid-backend spill fault surfaces here; the
    /// caller aborts the run, so the partially flushed batch is never
    /// observed as output.
    /// Opens a phase span on the attached obs handle (no-op otherwise).
    #[inline]
    fn span_enter(&mut self, phase: Phase) {
        if let Some(obs) = &mut self.obs {
            obs.span_enter(phase);
        }
    }

    /// Closes the innermost phase span (no-op when uninstrumented).
    #[inline]
    fn span_exit(&mut self, phase: Phase) {
        if let Some(obs) = &mut self.obs {
            obs.span_exit(phase);
        }
    }

    fn flush_pending(&mut self) -> sdj_storage::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.stats.pairs_enqueued += self.pending.len() as u64;
        let mut pending = std::mem::take(&mut self.pending);
        self.span_enter(Phase::QueuePush);
        let flushed = self.queue.push_batch(pending.drain(..));
        self.span_exit(Phase::QueuePush);
        self.pending = pending;
        // Update the high-water marks once per flush, not once per push:
        // batch insertions must be observed too, and the byte sample is
        // taken when the queue is fullest (right after a flush).
        self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
        self.stats.queue_bytes_peak = self.stats.queue_bytes_peak.max(self.queue.queue_bytes());
        if self.obs.is_some() {
            self.queue.sync_gauges();
        }
        flushed
    }

    /// PROCESS_NODE1 / PROCESS_NODE2 (Figure 3): expands the node on
    /// `first_side`, pairing its entries with the other item.
    fn expand_one(&mut self, pair: &Pair<D>, first_side: bool) -> sdj_storage::Result<()> {
        self.span_enter(Phase::Expand);
        let r = match self.config.expansion {
            ExpansionPath::Batched | ExpansionPath::Lanes => {
                self.expand_one_batched(pair, first_side)
            }
            ExpansionPath::Scalar => self.expand_one_scalar(pair, first_side),
        };
        self.span_exit(Phase::Expand);
        r
    }

    /// [`expand_one`](Self::expand_one) over a cached struct-of-arrays node
    /// view: the MINDIST keys of all children against the other item come
    /// from one batched kernel pass per axis.
    fn expand_one_batched(&mut self, pair: &Pair<D>, first_side: bool) -> sdj_storage::Result<()> {
        let (node_item, other_item) = if first_side {
            (&pair.item1, &pair.item2)
        } else {
            (&pair.item2, &pair.item1)
        };
        let Item::Node { page, .. } = *node_item else {
            unreachable!("expand_one on a non-node item")
        };
        let other = *other_item;
        let keys = self.keys;

        let view = if first_side {
            // Semi-join estimation: the first-side node is being processed,
            // so its own M entry must not coexist with its children's.
            if self.semi.is_some() {
                if let Some(est) = &mut self.estimator {
                    est.on_expand_item1(pair.item1.identity());
                }
            }
            self.checkout1(page)?
        } else {
            self.checkout2(page)?
        };
        let n = view.rects.len();
        if let Some(obs) = &mut self.obs {
            let side = if first_side {
                Side::First
            } else {
                Side::Second
            };
            obs.on_expand(side, n as u32);
        }
        let lanes = self.lanes();
        let mut minds = std::mem::take(&mut self.scratch_keys);
        minds.clear();
        self.span_enter(Phase::Kernel);
        mindist_keys_into(&view.rects, lanes, keys, other.rect(), 0..n, &mut minds);
        self.span_exit(Phase::Kernel);
        self.stats.distance_calcs += n as u64;

        if first_side {
            let inherited = self
                .semi
                .as_ref()
                .and_then(|s| s.bound_for(pair.item1.identity()));
            let global = self.semi.as_ref().is_some_and(|s| {
                matches!(
                    s.config.dmax,
                    crate::semi::DmaxStrategy::GlobalNodes | crate::semi::DmaxStrategy::GlobalAll
                )
            });
            for (entry, &mind) in view.node.entries.iter().zip(&minds) {
                let child = Self::child_item(entry);
                if let Some(oid) = child.object_id() {
                    if self
                        .semi
                        .as_ref()
                        .is_some_and(|s| s.filters_on_expand() && s.seen.contains(oid.0))
                    {
                        self.stats.filtered_seen += 1;
                        continue;
                    }
                }
                let child_pair = Pair::new(child, other);
                // Global bound maintenance: children inherit their parent's
                // bound and may tighten it with their own pair's d_max.
                if global {
                    let own = self.semi_dmax_bound(&child_pair);
                    let bound = inherited.map_or(own, |b| b.min(own));
                    if let Some(semi) = &mut self.semi {
                        if semi.update_bound(child.identity(), bound) {
                            if let Some(obs) = &mut self.obs {
                                obs.on_semi_bound();
                            }
                        }
                    }
                }
                self.consider(child_pair, Some(mind));
            }
            self.scratch_keys = minds;
            self.views1.checkin(page, view);
        } else {
            let item1 = pair.item1;
            let local = self.semi.as_ref().is_some_and(SemiState::uses_local_bound);
            if local {
                // Two passes: first compute per-child d_max bounds to find
                // the smallest, then prune siblings that cannot beat it
                // (§4.2.1 "Local"). MINDIST keys are already batched.
                let mut children = std::mem::take(&mut self.scratch_children);
                children.clear();
                children.reserve(n);
                let mut best_bound = f64::INFINITY;
                for (entry, &mind) in view.node.entries.iter().zip(&minds) {
                    let child = Self::child_item(entry);
                    let child_pair = Pair::new(item1, child);
                    let bound = self.semi_dmax_bound(&child_pair);
                    best_bound = best_bound.min(bound);
                    children.push((child_pair, mind));
                }
                if let Some(semi) = &mut self.semi {
                    if semi.update_bound(item1.identity(), best_bound) {
                        if let Some(obs) = &mut self.obs {
                            obs.on_semi_bound();
                        }
                    }
                }
                let effective = self
                    .semi
                    .as_ref()
                    .and_then(|s| s.bound_for(item1.identity()))
                    .map_or(best_bound, |b| b.min(best_bound));
                for &(child_pair, mind) in &children {
                    if mind > effective {
                        self.stats.pruned_by_dmax += 1;
                        continue;
                    }
                    self.consider(child_pair, Some(mind));
                }
                self.scratch_children = children;
            } else {
                for (entry, &mind) in view.node.entries.iter().zip(&minds) {
                    let child = Self::child_item(entry);
                    self.consider(Pair::new(item1, child), Some(mind));
                }
            }
            self.scratch_keys = minds;
            self.views2.checkin(page, view);
        }
        Ok(())
    }

    /// [`expand_one`](Self::expand_one) with per-entry scalar bound
    /// evaluations — the pre-kernel behaviour, selectable for A/B runs via
    /// [`ExpansionPath::Scalar`].
    fn expand_one_scalar(&mut self, pair: &Pair<D>, first_side: bool) -> sdj_storage::Result<()> {
        let (node_item, other_item) = if first_side {
            (&pair.item1, &pair.item2)
        } else {
            (&pair.item2, &pair.item1)
        };
        let Item::Node { page, .. } = *node_item else {
            unreachable!("expand_one on a non-node item")
        };
        let other = *other_item;

        if first_side {
            // Semi-join estimation: the first-side node is being processed,
            // so its own M entry must not coexist with its children's.
            if self.semi.is_some() {
                if let Some(est) = &mut self.estimator {
                    est.on_expand_item1(pair.item1.identity());
                }
            }
            let inherited = self
                .semi
                .as_ref()
                .and_then(|s| s.bound_for(pair.item1.identity()));
            let node = self.read_node1(page)?;
            if let Some(obs) = &mut self.obs {
                obs.on_expand(Side::First, node.entries.len() as u32);
            }
            for entry in &node.entries {
                let child = Self::child_item(entry);
                if let Some(oid) = child.object_id() {
                    if self
                        .semi
                        .as_ref()
                        .is_some_and(|s| s.filters_on_expand() && s.seen.contains(oid.0))
                    {
                        self.stats.filtered_seen += 1;
                        continue;
                    }
                }
                let child_pair = Pair::new(child, other);
                // Global bound maintenance: children inherit their parent's
                // bound and may tighten it with their own pair's d_max.
                let global = self.semi.as_ref().is_some_and(|s| {
                    matches!(
                        s.config.dmax,
                        crate::semi::DmaxStrategy::GlobalNodes
                            | crate::semi::DmaxStrategy::GlobalAll
                    )
                });
                if global {
                    let own = self.semi_dmax_bound(&child_pair);
                    let bound = inherited.map_or(own, |b| b.min(own));
                    if let Some(semi) = &mut self.semi {
                        if semi.update_bound(child.identity(), bound) {
                            if let Some(obs) = &mut self.obs {
                                obs.on_semi_bound();
                            }
                        }
                    }
                }
                self.consider(child_pair, None);
            }
        } else {
            let node = self.read_node2(page)?;
            if let Some(obs) = &mut self.obs {
                obs.on_expand(Side::Second, node.entries.len() as u32);
            }
            let item1 = pair.item1;
            let local = self.semi.as_ref().is_some_and(SemiState::uses_local_bound);
            if local {
                // Two passes: first compute per-child distances and d_max
                // bounds to find the smallest bound, then prune siblings
                // that cannot beat it (§4.2.1 "Local"). The children buffer
                // is owned by the join and reused across expansions.
                let keys = self.keys;
                let mut children = std::mem::take(&mut self.scratch_children);
                children.clear();
                children.reserve(node.entries.len());
                let mut best_bound = f64::INFINITY;
                for entry in &node.entries {
                    let child = Self::child_item(entry);
                    let child_pair = Pair::new(item1, child);
                    self.stats.distance_calcs += 1;
                    let mind = child_pair.mindist_key(keys);
                    let bound = self.semi_dmax_bound(&child_pair);
                    best_bound = best_bound.min(bound);
                    children.push((child_pair, mind));
                }
                if let Some(semi) = &mut self.semi {
                    if semi.update_bound(item1.identity(), best_bound) {
                        if let Some(obs) = &mut self.obs {
                            obs.on_semi_bound();
                        }
                    }
                }
                let effective = self
                    .semi
                    .as_ref()
                    .and_then(|s| s.bound_for(item1.identity()))
                    .map_or(best_bound, |b| b.min(best_bound));
                for &(child_pair, mind) in &children {
                    if mind > effective {
                        self.stats.pruned_by_dmax += 1;
                        continue;
                    }
                    self.consider(child_pair, Some(mind));
                }
                self.scratch_children = children;
            } else {
                for entry in &node.entries {
                    let child = Self::child_item(entry);
                    self.consider(Pair::new(item1, child), None);
                }
            }
        }
        Ok(())
    }

    /// "Simultaneous" expansion of a node/node pair (§2.2.2): both nodes are
    /// opened and their entries paired with a plane sweep restricted by the
    /// distance range.
    fn expand_both(&mut self, pair: &Pair<D>) -> sdj_storage::Result<()> {
        self.span_enter(Phase::Expand);
        let r = match self.config.expansion {
            ExpansionPath::Batched | ExpansionPath::Lanes => self.expand_both_batched(pair),
            ExpansionPath::Scalar => self.expand_both_scalar(pair),
        };
        self.span_exit(Phase::Expand);
        r
    }

    /// [`expand_both`](Self::expand_both) over cached struct-of-arrays node
    /// views: the range-restriction filters and the per-window MINDIST keys
    /// of the plane sweep all come from batched kernel passes.
    fn expand_both_batched(&mut self, pair: &Pair<D>) -> sdj_storage::Result<()> {
        let (Item::Node { page: p1, .. }, Item::Node { page: p2, .. }) = (&pair.item1, &pair.item2)
        else {
            unreachable!("expand_both on a non-node pair")
        };
        let (p1, p2) = (*p1, *p2);
        if self.semi.is_some() {
            if let Some(est) = &mut self.estimator {
                est.on_expand_item1(pair.item1.identity());
            }
        }
        let view1 = self.checkout1(p1)?;
        let view2 = match self.checkout2(p2) {
            Ok(view) => view,
            Err(e) => {
                self.views1.checkin(p1, view1);
                return Err(e);
            }
        };
        if let Some(obs) = &mut self.obs {
            obs.on_expand(Side::Both, (view1.rects.len() + view2.rects.len()) as u32);
        }
        let keys = self.keys;
        let lanes = self.lanes();
        let eff_max = if self.ascending() {
            self.effective_max_key()
        } else {
            f64::INFINITY
        };
        let min_key = self.min_key;

        // Restriction of the search space: drop entries that are out of
        // range with respect to the space spanned by the other node. The
        // MINDIST (and, under a `Dmin` restriction, MAXDIST) keys of a whole
        // node against the other item come from one kernel pass per axis;
        // the filter then walks the key columns. All buffers are owned by
        // the join and reused across expansions.
        let mut minds = std::mem::take(&mut self.scratch_keys);
        let mut maxds = std::mem::take(&mut self.scratch_keys2);
        let mut entries1 = std::mem::take(&mut self.scratch_entries1);
        let mut entries2 = std::mem::take(&mut self.scratch_entries2);

        let r2 = pair.item2.rect();
        let n1 = view1.rects.len();
        minds.clear();
        self.span_enter(Phase::Kernel);
        mindist_keys_into(&view1.rects, lanes, keys, r2, 0..n1, &mut minds);
        if min_key > 0.0 {
            maxds.clear();
            maxdist_keys_into(&view1.rects, lanes, keys, r2, 0..n1, &mut maxds);
            self.stats.distance_calcs += n1 as u64;
        }
        self.span_exit(Phase::Kernel);
        self.stats.distance_calcs += n1 as u64;
        entries1.clear();
        entries1.reserve(n1);
        for (i, e) in view1.node.entries.iter().enumerate() {
            if minds[i] > eff_max {
                self.stats.pruned_by_range += 1;
                continue;
            }
            if min_key > 0.0 && maxds[i] < min_key {
                self.stats.pruned_by_range += 1;
                continue;
            }
            if let Some(oid) = e.object_id() {
                if self
                    .semi
                    .as_ref()
                    .is_some_and(|s| s.filters_on_expand() && s.seen.contains(oid.0))
                {
                    self.stats.filtered_seen += 1;
                    continue;
                }
            }
            entries1.push(*e);
        }

        let r1 = pair.item1.rect();
        let n2 = view2.rects.len();
        minds.clear();
        self.span_enter(Phase::Kernel);
        mindist_keys_into(&view2.rects, lanes, keys, r1, 0..n2, &mut minds);
        if min_key > 0.0 {
            maxds.clear();
            maxdist_keys_into(&view2.rects, lanes, keys, r1, 0..n2, &mut maxds);
            self.stats.distance_calcs += n2 as u64;
        }
        self.span_exit(Phase::Kernel);
        self.stats.distance_calcs += n2 as u64;
        entries2.clear();
        entries2.reserve(n2);
        for (i, e) in view2.node.entries.iter().enumerate() {
            if minds[i] > eff_max {
                self.stats.pruned_by_range += 1;
                continue;
            }
            if min_key > 0.0 && maxds[i] < min_key {
                self.stats.pruned_by_range += 1;
                continue;
            }
            entries2.push(*e);
        }
        self.views1.checkin(p1, view1);
        self.views2.checkin(p2, view2);

        // Plane sweep along axis 0 (entries are `Copy`, so the filtered
        // buffers outlive the checked-in views): for each left entry, only
        // right entries whose x-interval can lie within `eff_max` are
        // considered ("the algorithm must sweep along the entries in the
        // other node up to the coordinate value x2 + Dmax"). The window
        // bounds compare single-axis gaps against the key-domain bound via
        // [`KeySpace::axis_gap_exceeds`] — no sqrt, and an infinite bound
        // degenerates to the full window in both domains. Each window's
        // MINDIST keys come from one kernel pass over the sorted columns.
        // `total_cmp` keeps the sweep well-defined even if a corrupt page
        // decoded to a NaN coordinate (NaNs sort last; the pair is still
        // pruned or reported by the distance kernels, never a panic).
        self.span_enter(Phase::Sweep);
        entries2.sort_by(|a, b| a.rect().lo()[0].total_cmp(&b.rect().lo()[0]));
        let mut soa2 = std::mem::take(&mut self.scratch_soa2);
        soa2.clear();
        for e in &entries2 {
            soa2.push(e.rect());
        }
        let max_width2 = entries2
            .iter()
            .map(|e| e.rect().extent(0))
            .fold(0.0f64, f64::max);
        for e1 in &entries1 {
            let e1_lo = e1.rect().lo()[0];
            let e1_hi = e1.rect().hi()[0];
            let lo2s = soa2.lo_axis(0);
            // A right entry starting at `lo2` is out of reach on the left
            // when even the closest point of the widest right rectangle
            // (`lo2 + max_width2`) is more than the bound away from `e1`'s
            // left edge. Monotone in `lo2`, so a binary search applies.
            let start = lo2s.partition_point(|&lo2| {
                let t = e1_lo - lo2 - max_width2;
                t > 0.0 && keys.axis_gap_exceeds(t, eff_max)
            });
            // Out of reach on the right as soon as the right entry starts
            // more than the bound past `e1`'s right edge; also monotone.
            let end = start
                + lo2s[start..].partition_point(|&lo2| {
                    let t = lo2 - e1_hi;
                    !(t > 0.0 && keys.axis_gap_exceeds(t, eff_max))
                });
            if start == end {
                continue;
            }
            minds.clear();
            self.span_enter(Phase::Kernel);
            mindist_keys_into(&soa2, lanes, keys, e1.rect(), start..end, &mut minds);
            self.span_exit(Phase::Kernel);
            self.stats.distance_calcs += (end - start) as u64;
            let c1 = Self::child_item(e1);
            for (e2, &mind) in entries2[start..end].iter().zip(&minds) {
                let c2 = Self::child_item(e2);
                self.consider(Pair::new(c1, c2), Some(mind));
            }
        }
        self.span_exit(Phase::Sweep);
        self.scratch_keys = minds;
        self.scratch_keys2 = maxds;
        self.scratch_entries1 = entries1;
        self.scratch_entries2 = entries2;
        self.scratch_soa2 = soa2;
        Ok(())
    }

    /// [`expand_both`](Self::expand_both) with per-entry scalar bound
    /// evaluations — the pre-kernel behaviour, selectable for A/B runs via
    /// [`ExpansionPath::Scalar`].
    fn expand_both_scalar(&mut self, pair: &Pair<D>) -> sdj_storage::Result<()> {
        let (Item::Node { page: p1, .. }, Item::Node { page: p2, .. }) = (&pair.item1, &pair.item2)
        else {
            unreachable!("expand_both on a non-node pair")
        };
        if self.semi.is_some() {
            if let Some(est) = &mut self.estimator {
                est.on_expand_item1(pair.item1.identity());
            }
        }
        let node1 = self.read_node1(*p1)?;
        let node2 = self.read_node2(*p2)?;
        if let Some(obs) = &mut self.obs {
            obs.on_expand(
                Side::Both,
                (node1.entries.len() + node2.entries.len()) as u32,
            );
        }
        let keys = self.keys;
        let eff_max = if self.ascending() {
            self.effective_max_key()
        } else {
            f64::INFINITY
        };
        let min_key = self.min_key;

        // Restriction of the search space: drop entries that are out of
        // range with respect to the space spanned by the other node. The
        // entry buffers are owned by the join and reused across expansions
        // (entries are `Copy`, so they can outlive the node reads).
        let r2 = pair.item2.rect();
        let mut entries1 = std::mem::take(&mut self.scratch_entries1);
        entries1.clear();
        entries1.reserve(node1.entries.len());
        for e in &node1.entries {
            self.stats.distance_calcs += 1;
            if keys.mindist_rect_rect(e.rect(), r2) > eff_max {
                self.stats.pruned_by_range += 1;
                continue;
            }
            if min_key > 0.0 {
                self.stats.distance_calcs += 1;
                if keys.maxdist_rect_rect(e.rect(), r2) < min_key {
                    self.stats.pruned_by_range += 1;
                    continue;
                }
            }
            if let Some(oid) = e.object_id() {
                if self
                    .semi
                    .as_ref()
                    .is_some_and(|s| s.filters_on_expand() && s.seen.contains(oid.0))
                {
                    self.stats.filtered_seen += 1;
                    continue;
                }
            }
            entries1.push(*e);
        }
        let r1 = pair.item1.rect();
        let mut entries2 = std::mem::take(&mut self.scratch_entries2);
        entries2.clear();
        entries2.reserve(node2.entries.len());
        for e in &node2.entries {
            self.stats.distance_calcs += 1;
            if keys.mindist_rect_rect(e.rect(), r1) > eff_max {
                self.stats.pruned_by_range += 1;
                continue;
            }
            if min_key > 0.0 {
                self.stats.distance_calcs += 1;
                if keys.maxdist_rect_rect(e.rect(), r1) < min_key {
                    self.stats.pruned_by_range += 1;
                    continue;
                }
            }
            entries2.push(*e);
        }

        // Plane sweep along axis 0, with the same key-domain window bounds
        // as the batched path (see `expand_both_batched`).
        // `total_cmp` keeps the sweep well-defined even if a corrupt page
        // decoded to a NaN coordinate (NaNs sort last; the pair is still
        // pruned or reported by the distance kernels, never a panic).
        entries2.sort_by(|a, b| a.rect().lo()[0].total_cmp(&b.rect().lo()[0]));
        let max_width2 = entries2
            .iter()
            .map(|e| e.rect().extent(0))
            .fold(0.0f64, f64::max);
        for e1 in &entries1 {
            let e1_lo = e1.rect().lo()[0];
            let e1_hi = e1.rect().hi()[0];
            let start = entries2.partition_point(|e| {
                let t = e1_lo - e.rect().lo()[0] - max_width2;
                t > 0.0 && keys.axis_gap_exceeds(t, eff_max)
            });
            for e2 in &entries2[start..] {
                let t = e2.rect().lo()[0] - e1_hi;
                if t > 0.0 && keys.axis_gap_exceeds(t, eff_max) {
                    break;
                }
                let c1 = Self::child_item(e1);
                let c2 = Self::child_item(e2);
                self.consider(Pair::new(c1, c2), None);
            }
        }
        self.scratch_entries1 = entries1;
        self.scratch_entries2 = entries2;
        Ok(())
    }

    /// Reports the pair `(o1, o2)` whose distance key is `key`, updating
    /// semi-join and estimator state. Returns `None` when the semi-join
    /// suppresses the pair. This is where the key domain ends: the single
    /// `sqrt` per reported result is paid here (and counted in
    /// [`JoinStats::sqrt_calls`]), after the suppression filters.
    fn report(&mut self, oid1: ObjectId, oid2: ObjectId, key: f64) -> Option<ResultPair> {
        self.span_enter(Phase::Emit);
        let r = self.report_inner(oid1, oid2, key);
        self.span_exit(Phase::Emit);
        r
    }

    fn report_inner(&mut self, oid1: ObjectId, oid2: ObjectId, key: f64) -> Option<ResultPair> {
        if self.config.exclude_equal_ids && oid1 == oid2 {
            self.stats.filtered_self += 1;
            return None;
        }
        if let Some(semi) = &mut self.semi {
            if !semi.seen.insert(oid1.0) {
                self.stats.filtered_seen += 1;
                return None;
            }
        }
        if let Some(wm) = &mut self.watermark {
            if key > wm.key {
                wm.key = key;
                wm.ties.clear();
            }
            wm.ties.push((oid1, oid2));
        }
        let distance = self.keys.to_distance(key);
        if self.keys.is_squared() {
            self.stats.sqrt_calls += 1;
        }
        if let Some(est) = &mut self.estimator {
            est.on_report();
        }
        self.publish_shared_bound();
        self.stats.pairs_reported += 1;
        self.reported += 1;
        if let Some(obs) = &mut self.obs {
            obs.on_result(self.reported, distance);
        }
        if let Some(k) = self.config.max_pairs {
            if self.reported >= k {
                self.done = true;
            }
        }
        Some(ResultPair {
            oid1,
            oid2,
            distance,
        })
    }

    /// Processes exactly one queue element, flushing staged insertions
    /// afterwards so the queue is consistent between steps (the frontier
    /// partitioner measures `queue.len()` at step granularity).
    fn step(&mut self) -> sdj_storage::Result<StepOutcome> {
        let outcome = self.step_inner();
        let flushed = self.flush_pending();
        if outcome.is_ok() {
            // Surface a flush fault (the step's own error takes precedence:
            // it happened first and the flush ran on its partial state).
            flushed?;
        }
        if self.config.prefetch_depth > 0 {
            self.emit_prefetch_hints();
        }
        outcome
    }

    /// Queue-driven prefetch (run right after the staged pairs are flushed,
    /// so the queue reflects the true frontier): visits up to
    /// `prefetch_depth` pairs nearest the head of the priority queue — the
    /// pairs the next steps will pop — and hands their node pages to the
    /// indexes as batch hints. Hints only touch buffer-pool state (prefetch
    /// reads, counted apart from demand misses), never the result stream.
    fn emit_prefetch_hints(&mut self) {
        let mut pages1 = std::mem::take(&mut self.scratch_hints);
        let mut pages2 = std::mem::take(&mut self.scratch_hint_pages);
        pages1.clear();
        pages2.clear();
        self.queue.peek_top(self.config.prefetch_depth, |_, pair| {
            if let Item::Node { page, .. } = pair.item1 {
                pages1.push(page);
            }
            if let Item::Node { page, .. } = pair.item2 {
                pages2.push(page);
            }
        });
        pages1.sort_unstable();
        pages1.dedup();
        if !pages1.is_empty() {
            self.stats.prefetch_hints += pages1.len() as u64;
            self.tree1.prefetch_nodes(&pages1);
        }
        pages2.sort_unstable();
        pages2.dedup();
        if !pages2.is_empty() {
            self.stats.prefetch_hints += pages2.len() as u64;
            self.tree2.prefetch_nodes(&pages2);
        }
        self.scratch_hints = pages1;
        self.scratch_hint_pages = pages2;
    }

    /// One iteration of the algorithm's main loop (Figure 3).
    fn step_inner(&mut self) -> sdj_storage::Result<StepOutcome> {
        self.span_enter(Phase::QueuePop);
        let popped = self.queue.pop();
        self.span_exit(Phase::QueuePop);
        let Some((key, pair)) = popped? else {
            return Ok(StepOutcome::Exhausted);
        };
        self.stats.pairs_dequeued += 1;
        if self.obs.is_some() {
            let kind = match (pair.item1.is_node(), pair.item2.is_node()) {
                (true, true) => PairKind::NodeNode,
                (true, false) => PairKind::NodeObject,
                (false, true) => PairKind::ObjectNode,
                (false, false) => PairKind::ObjectObject,
            };
            // Descending runs key on negated MAXDIST; report the magnitude.
            // Instrumentation sees real distances (uncounted by
            // `stats.sqrt_calls`, which tracks the result path).
            let dist = self.keys.to_distance(key.dist.get().abs());
            let queue_len = self.queue.len();
            let results = self.reported;
            if let Some(obs) = &mut self.obs {
                obs.on_pop(kind, dist, queue_len, results);
            }
        }
        let ascending = self.ascending();
        if let Some(est) = &mut self.estimator {
            est.on_dequeue(pair.item1.identity(), pair.item2.identity());
            if ascending && key.dist.get() > est.current_dmax() {
                self.stats.pruned_by_estimate += 1;
                return Ok(StepOutcome::Continue);
            }
        }
        if key.dist.get() > self.shared_max() {
            self.stats.pruned_by_shared += 1;
            return Ok(StepOutcome::Continue);
        }
        if self.semi.is_some() {
            // The dequeue-time filters are the semi-join's dedup work; the
            // span must close before any early return, hence the flag.
            self.span_enter(Phase::Dedup);
            let mut filtered = false;
            if let Some(semi) = &self.semi {
                if semi.filters_on_dequeue() {
                    if let Some(oid1) = pair.item1.object_id() {
                        if semi.seen.contains(oid1.0) {
                            self.stats.filtered_seen += 1;
                            filtered = true;
                        }
                    }
                }
                if !filtered && ascending {
                    if let Some(bound) = semi.bound_for(pair.item1.identity()) {
                        if key.dist.get() > bound {
                            self.stats.pruned_by_dmax += 1;
                            filtered = true;
                        }
                    }
                }
            }
            self.span_exit(Phase::Dedup);
            if filtered {
                return Ok(StepOutcome::Continue);
            }
        }

        if pair.is_final(O::EXACT) {
            let result_key = if ascending {
                key.dist.get()
            } else {
                -key.dist.get()
            };
            // A final pair must carry object ids on both sides. A
            // kind-confused decode (a corrupt spill page whose item tag says
            // node where an object is required) surfaces here as the typed
            // fail-clean error instead of aborting co-hosted sessions.
            let oid1 = pair
                .item1
                .object_id()
                .ok_or(StorageError::Corrupt("final pair holds a node-kind item"))?;
            let oid2 = pair
                .item2
                .object_id()
                .ok_or(StorageError::Corrupt("final pair holds a node-kind item"))?;
            return Ok(match self.report(oid1, oid2, result_key) {
                Some(result) => StepOutcome::Result(result),
                None => StepOutcome::Continue,
            });
        }

        match (&pair.item1, &pair.item2) {
            (Item::Obr { oid: o1, .. }, Item::Obr { oid: o2, .. }) => {
                // Refinement (Figure 3, lines 7–14): compute the exact
                // object distance; report immediately if it is still the
                // front of the queue, re-enqueue otherwise.
                let (o1, o2) = (*o1, *o2);
                self.stats.object_distance_calcs += 1;
                // The oracle answers in real distances; map its answer into
                // the key domain once and stay there.
                let k = self.keys.to_key(self.oracle.object_distance(o1, o2)?);
                if k < self.min_key || k > self.effective_max_key() {
                    self.stats.pruned_by_range += 1;
                    return Ok(StepOutcome::Continue);
                }
                let key_dist = if ascending { k } else { -k };
                let object_pair = Pair::new(
                    Item::Object {
                        oid: o1,
                        mbr: *pair.item1.rect(),
                    },
                    Item::Object {
                        oid: o2,
                        mbr: *pair.item2.rect(),
                    },
                );
                let new_key = PairKey::new(key_dist, &object_pair, self.config.tie);
                let report_now = match self.queue.peek_key()? {
                    Some(front) => new_key <= front,
                    None => true,
                };
                if report_now {
                    if let Some(result) = self.report(o1, o2, k) {
                        return Ok(StepOutcome::Result(result));
                    }
                } else {
                    self.enqueue_final(object_pair, k);
                }
            }
            (Item::Node { level: l1, .. }, Item::Node { level: l2, .. }) => {
                let (l1, l2) = (*l1, *l2);
                match self.config.traversal {
                    TraversalPolicy::Basic => self.expand_one(&pair, true)?,
                    TraversalPolicy::Even => {
                        // Process the node at the shallower level (the
                        // one closer to its root); at equal levels, the
                        // one covering more space — this keeps the
                        // traversal symmetric in the join order, as the
                        // paper observes for its Even variant.
                        let first = match l1.cmp(&l2) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Equal => {
                                pair.item1.rect().area() >= pair.item2.rect().area()
                            }
                        };
                        self.expand_one(&pair, first)?;
                    }
                    TraversalPolicy::Simultaneous => self.expand_both(&pair)?,
                }
            }
            (Item::Node { .. }, _) => self.expand_one(&pair, true)?,
            (_, Item::Node { .. }) => self.expand_one(&pair, false)?,
            // Every legitimately constructed pair is covered above; the only
            // way to land here is a kind-confused decode from a corrupt spill
            // page, which must fail clean rather than panic.
            _ => {
                return Err(StorageError::Corrupt(
                    "pair kind combination impossible for an intact queue",
                ))
            }
        }
        Ok(StepOutcome::Continue)
    }

    /// The algorithm's main loop, run until the next result.
    fn next_result(&mut self) -> sdj_storage::Result<Option<ResultPair>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.step()? {
                StepOutcome::Result(result) => return Ok(Some(result)),
                StepOutcome::Continue => {}
                StepOutcome::Exhausted => {
                    self.done = true;
                    return Ok(None);
                }
            }
        }
    }
}

impl<const D: usize, O, I1, I2> Iterator for DistanceJoin<'_, D, O, I1, I2>
where
    O: DistanceOracle<D>,
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    type Item = ResultPair;

    fn next(&mut self) -> Option<ResultPair> {
        match self.next_result() {
            Ok(r) => r,
            Err(e) => {
                self.error = Some(e);
                self.done = true;
                None
            }
        }
    }
}

/// Type alias emphasising semi-join usage.
pub type DistanceSemiJoin<'a, const D: usize, O = MbrOracle, I1 = RTree<D>, I2 = RTree<D>> =
    DistanceJoin<'a, D, O, I1, I2>;
