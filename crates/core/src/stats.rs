//! Per-run performance counters, matching the measures the paper reports
//! (Table 1: distance calculations, maximum queue size, node I/O).

/// Counters accumulated by one join execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// All bound-distance evaluations (MINDIST/MAXDIST/MINMAXDIST between
    /// items).
    pub distance_calcs: u64,
    /// Exact object-to-object distance computations.
    pub object_distance_calcs: u64,
    /// Pairs pushed onto the priority queue.
    pub pairs_enqueued: u64,
    /// Pairs popped from the priority queue.
    pub pairs_dequeued: u64,
    /// Result pairs reported.
    pub pairs_reported: u64,
    /// High-water mark of the queue length.
    pub max_queue: usize,
    /// High-water mark of the queue's approximate resident bytes (entry
    /// storage, item arena, spill buffer pool), sampled once per insertion
    /// flush.
    pub queue_bytes_peak: usize,
    /// Logical node reads performed by the join (each may or may not hit the
    /// buffer pool).
    pub node_accesses: u64,
    /// Buffer-pool misses across both trees during the join: the paper's
    /// "node I/O" measure.
    pub node_io: u64,
    /// Pairs rejected by the `[Dmin, Dmax]` range restriction.
    pub pruned_by_range: u64,
    /// Pairs rejected by the estimated maximum distance (§2.2.4).
    pub pruned_by_estimate: u64,
    /// Pairs rejected by semi-join `d_max` bounds (§4.2.1).
    pub pruned_by_dmax: u64,
    /// Pairs rejected by the executor's shared cross-worker distance bound.
    pub pruned_by_shared: u64,
    /// Pairs dropped because their first object already produced a
    /// semi-join result.
    pub filtered_seen: u64,
    /// Self-pairs dropped by `exclude_equal_ids` (self-join applications).
    pub filtered_self: u64,
    /// Key-to-distance conversions (`sqrt` under the squared Euclidean key
    /// domain). With the default squared keys this equals the number of
    /// reported results: every internal bound, prune, and queue key stays in
    /// the sqrt-free key domain, so the root is paid exactly once per
    /// emitted pair. Always zero under a plain key domain.
    pub sqrt_calls: u64,
    /// Node pages handed to the indexes as queue-driven prefetch hints
    /// (zero unless `JoinConfig::prefetch_depth` is set). Whether a hint
    /// became an actual prefetch read or hit is counted by the buffer pool,
    /// not here.
    pub prefetch_hints: u64,
}

impl JoinStats {
    /// Sum of all pruning counters.
    #[must_use]
    pub fn total_pruned(&self) -> u64 {
        self.pruned_by_range
            + self.pruned_by_estimate
            + self.pruned_by_dmax
            + self.pruned_by_shared
            + self.filtered_seen
            + self.filtered_self
    }

    /// Accumulates `other` into `self`: counters add, high-water marks take
    /// the maximum. Used to aggregate per-worker stats of a parallel run.
    pub fn merge(&mut self, other: &JoinStats) {
        self.distance_calcs += other.distance_calcs;
        self.object_distance_calcs += other.object_distance_calcs;
        self.pairs_enqueued += other.pairs_enqueued;
        self.pairs_dequeued += other.pairs_dequeued;
        self.pairs_reported += other.pairs_reported;
        self.max_queue = self.max_queue.max(other.max_queue);
        self.queue_bytes_peak = self.queue_bytes_peak.max(other.queue_bytes_peak);
        self.node_accesses += other.node_accesses;
        self.node_io += other.node_io;
        self.pruned_by_range += other.pruned_by_range;
        self.pruned_by_estimate += other.pruned_by_estimate;
        self.pruned_by_dmax += other.pruned_by_dmax;
        self.pruned_by_shared += other.pruned_by_shared;
        self.filtered_seen += other.filtered_seen;
        self.filtered_self += other.filtered_self;
        self.sqrt_calls += other.sqrt_calls;
        self.prefetch_hints += other.prefetch_hints;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_pruned_sums() {
        let s = JoinStats {
            pruned_by_range: 1,
            pruned_by_estimate: 2,
            pruned_by_dmax: 3,
            filtered_seen: 4,
            ..JoinStats::default()
        };
        assert_eq!(s.total_pruned(), 10);
    }

    #[test]
    fn merge_adds_counters_and_maxes_peaks() {
        let mut a = JoinStats {
            distance_calcs: 10,
            pairs_reported: 2,
            max_queue: 7,
            ..JoinStats::default()
        };
        let b = JoinStats {
            distance_calcs: 5,
            pairs_reported: 1,
            max_queue: 12,
            pruned_by_shared: 3,
            ..JoinStats::default()
        };
        a.merge(&b);
        assert_eq!(a.distance_calcs, 15);
        assert_eq!(a.pairs_reported, 3);
        assert_eq!(a.max_queue, 12);
        assert_eq!(a.pruned_by_shared, 3);
    }
}
