//! Join configuration: the paper's design space as data.

use sdj_geom::Metric;
use sdj_pqueue::HybridConfig;

pub use crate::pair::TiePolicy;
/// Queue memory layout (`DESIGN.md` §14): `Pairing` is the paper's
/// pointer-based pairing heap over fat pairs; `FlatDary` stores 16-byte
/// compact entries in a flat 4-ary implicit heap with pair payloads interned
/// in a shared item arena. Result streams are bit-identical across layouts.
pub use sdj_pqueue::Layout as QueueLayout;

/// How node/node pairs are expanded (§2.2.2, evaluated in §4.1.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TraversalPolicy {
    /// Always process item 1 (the basic algorithm of Figure 3).
    Basic,
    /// Process the node at the shallower level, keeping the two trees
    /// evenly descended (the paper's best performer).
    #[default]
    Even,
    /// Process both nodes simultaneously, pairing their entries with a
    /// plane sweep restricted by the current maximum distance.
    Simultaneous,
}

/// Queue backend (§3.2 / §4.1.3).
#[derive(Clone, Copy, Debug, Default)]
pub enum QueueBackend {
    /// Purely in-memory pairing heap.
    #[default]
    Memory,
    /// The hybrid three-tier memory/disk queue with its `D_T` increment.
    Hybrid(HybridConfig),
}

/// Which upper-bound distance feeds the maximum-distance estimator
/// (§2.2.3/§2.2.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EstimationBound {
    /// MAXDIST: bounds *every* object pair generated from the pair, so the
    /// full lower-bound subtree count may be credited.
    #[default]
    AllPairs,
    /// MINMAXDIST: bounds only the *closest* generated pair, so a single
    /// result is credited. Tighter distances, smaller counts.
    ExistsPair,
}

/// Result ordering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ResultOrder {
    /// Closest pairs first.
    #[default]
    Ascending,
    /// Farthest pairs first (§2.2.5: keys become upper-bound distances).
    Descending,
}

/// Domain of the priority-queue keys and every internal pruning bound.
///
/// Euclidean distances are monotone in their squares, so ordering pairs by
/// squared distance pops them in exactly the same order while skipping the
/// `sqrt` in every MINDIST/MAXDIST/MINMAXDIST evaluation. The single root is
/// paid when a result is reported. Reported distances are bitwise identical
/// between the two domains (see `DESIGN.md` §8). Manhattan/Chessboard keys
/// are identical under both settings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KeyDomain {
    /// Squared Euclidean keys; `sqrt` deferred to result reporting.
    #[default]
    Squared,
    /// Keys are plain distances (the pre-kernel behaviour, kept for A/B
    /// comparisons).
    Plain,
}

/// Which implementation computes child bounds during node expansion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExpansionPath {
    /// Batched struct-of-arrays kernels over a cached per-page `NodeView`
    /// (`sdj_geom::kernels`): one pass per axis over contiguous `lo`/`hi`
    /// columns.
    #[default]
    Batched,
    /// Per-entry scalar bound evaluations (the pre-kernel behaviour, kept
    /// for A/B comparisons).
    Scalar,
    /// The batched kernels with their hottest column passes (MINDIST and
    /// MAXDIST over the expansion/sweep windows) unrolled into explicit
    /// fixed-width f64 lanes (`sdj_geom::LANE_WIDTH`). Element arithmetic is
    /// unchanged, so result streams are bit-identical to [`Self::Batched`].
    Lanes,
}

/// Full configuration of an incremental distance join.
#[derive(Clone, Copy, Debug)]
pub struct JoinConfig {
    /// Point metric underlying all distance functions.
    pub metric: Metric,
    /// Node/node expansion policy.
    pub traversal: TraversalPolicy,
    /// Equal-distance ordering.
    pub tie: TiePolicy,
    /// Priority-queue backend.
    pub queue: QueueBackend,
    /// Priority-queue memory layout, applied to whichever backend is
    /// selected (this field overrides any layout carried by a
    /// [`HybridConfig`]). Pop order and result streams are identical across
    /// layouts; only footprint and cache behaviour differ.
    pub layout: QueueLayout,
    /// Minimum result distance (`WHERE d >= dmin`); pairs that cannot reach
    /// it are pruned via MAXDIST.
    pub min_distance: f64,
    /// Maximum result distance (`WHERE d <= dmax`).
    pub max_distance: f64,
    /// `STOP AFTER` bound on the number of result pairs; enables the
    /// maximum-distance estimation of §2.2.4.
    pub max_pairs: Option<u64>,
    /// Bound family used by the estimator.
    pub estimation: EstimationBound,
    /// Result ordering (descending disables estimation and requires the
    /// memory queue backend).
    pub order: ResultOrder,
    /// Suppress result pairs whose two object ids are equal — for
    /// self-joins such as the all-nearest-neighbours application of §1,
    /// where an object must not be its own nearest neighbour.
    pub exclude_equal_ids: bool,
    /// Key domain for queue keys and pruning bounds (default: squared
    /// Euclidean keys, deferring the `sqrt` to result reporting).
    pub key_domain: KeyDomain,
    /// Expansion implementation (default: batched SoA kernels).
    pub expansion: ExpansionPath,
    /// Queue-driven node prefetch depth: after each expansion, up to this
    /// many node-child pages from the smallest-key pairs about to enter the
    /// queue (i.e. nearest its head) are handed to the indexes as batch
    /// prefetch hints. `0` (the default) disables hinting entirely —
    /// result streams are identical either way, and prefetch reads are
    /// counted separately from demand misses, so the node-I/O measure stays
    /// comparable.
    pub prefetch_depth: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            metric: Metric::Euclidean,
            traversal: TraversalPolicy::default(),
            tie: TiePolicy::default(),
            queue: QueueBackend::default(),
            layout: QueueLayout::default(),
            min_distance: 0.0,
            max_distance: f64::INFINITY,
            max_pairs: None,
            estimation: EstimationBound::default(),
            order: ResultOrder::default(),
            exclude_equal_ids: false,
            key_domain: KeyDomain::default(),
            expansion: ExpansionPath::default(),
            prefetch_depth: 0,
        }
    }
}

impl JoinConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on invalid combinations (negative range bounds, inverted
    /// range, descending order with a hybrid queue — whose disk buckets are
    /// keyed by non-negative distance).
    pub fn validate(&self) {
        assert!(
            self.min_distance >= 0.0 && self.max_distance >= 0.0,
            "distance bounds must be non-negative"
        );
        assert!(
            self.min_distance <= self.max_distance,
            "min_distance exceeds max_distance"
        );
        if matches!(self.order, ResultOrder::Descending) {
            assert!(
                matches!(self.queue, QueueBackend::Memory),
                "descending joins require the memory queue backend"
            );
        }
    }

    /// Convenience: limit the result to `k` pairs (enables estimation).
    #[must_use]
    pub fn with_max_pairs(mut self, k: u64) -> Self {
        self.max_pairs = Some(k);
        self
    }

    /// Convenience: restrict result distances to `[min, max]`.
    #[must_use]
    pub fn with_range(mut self, min: f64, max: f64) -> Self {
        self.min_distance = min;
        self.max_distance = max;
        self
    }

    /// Convenience: select the key domain.
    #[must_use]
    pub fn with_key_domain(mut self, key_domain: KeyDomain) -> Self {
        self.key_domain = key_domain;
        self
    }

    /// Convenience: select the expansion implementation.
    #[must_use]
    pub fn with_expansion(mut self, expansion: ExpansionPath) -> Self {
        self.expansion = expansion;
        self
    }

    /// Convenience: select the queue memory layout.
    #[must_use]
    pub fn with_layout(mut self, layout: QueueLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Convenience: enable queue-driven node prefetch with the given depth
    /// (`0` disables it).
    #[must_use]
    pub fn with_prefetch(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// The key space implied by `metric` and `key_domain`: all queue keys,
    /// shared bounds, and range restrictions live in this space.
    #[must_use]
    pub fn key_space(&self) -> sdj_geom::KeySpace {
        match self.key_domain {
            KeyDomain::Squared => sdj_geom::KeySpace::squared(self.metric),
            KeyDomain::Plain => sdj_geom::KeySpace::plain(self.metric),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_best_variant() {
        let c = JoinConfig::default();
        assert_eq!(c.traversal, TraversalPolicy::Even);
        assert_eq!(c.tie, TiePolicy::DepthFirst);
        assert_eq!(c.min_distance, 0.0);
        assert_eq!(c.max_distance, f64::INFINITY);
        c.validate();
    }

    #[test]
    fn builders_compose() {
        let c = JoinConfig::default()
            .with_range(1.0, 5.0)
            .with_max_pairs(10);
        assert_eq!(c.min_distance, 1.0);
        assert_eq!(c.max_distance, 5.0);
        assert_eq!(c.max_pairs, Some(10));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "min_distance exceeds max_distance")]
    fn inverted_range_rejected() {
        JoinConfig::default().with_range(5.0, 1.0).validate();
    }

    #[test]
    #[should_panic(expected = "memory queue")]
    fn descending_hybrid_rejected() {
        let c = JoinConfig {
            order: ResultOrder::Descending,
            queue: QueueBackend::Hybrid(HybridConfig::default()),
            ..JoinConfig::default()
        };
        c.validate();
    }
}
