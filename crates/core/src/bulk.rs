//! Bulk partition/plane-sweep distance join — the non-incremental execution
//! path.
//!
//! The incremental engine ([`crate::DistanceJoin`]) is optimal for "fast
//! first results": a consumer that stops after `k` pairs pays only for what
//! it consumed. A consumer that *drains* the result set (a full within-range
//! join, or `k` close to the result count) pays the priority queue for an
//! ordering it may not need. Following the grid-partitioned plane-sweep
//! joins of the in-memory spatial join literature (see `PAPERS.md`, arXiv
//! 1908.11740), this module trades the queue for an embarrassingly parallel
//! batch plan:
//!
//! 1. **Harvest**: both trees are walked once and their leaf object entries
//!    collected — no queue, no per-pair node re-reads.
//! 2. **Grid partition**: a uniform grid over the union of the two root
//!    regions, cell width derived from the `Dmax` restriction and the object
//!    density (see [`BulkConfig`]). Left entries are replicated into every
//!    cell their MBR overlaps; right entries into every cell their MBR
//!    *expanded by `Dmax`* overlaps, so each cell is a self-contained join
//!    problem: every qualifying pair co-occurs in at least one cell.
//! 3. **Per-cell plane sweep**: inside a cell, right entries are sorted by
//!    `lo[0]` and each left entry scans only the window whose axis-0 gap can
//!    stay within `Dmax` — the same sweep the incremental engine uses for
//!    simultaneous node expansion, evaluated by the batched [`SoaRects`]
//!    kernels in the configured key domain (no `sqrt`, and bit-identical
//!    keys to the incremental path).
//! 4. **Replicate-and-dedup**: a pair that co-occurs in several cells is
//!    emitted only by its *owner* cell — the cell containing the reference
//!    point `max(L.lo, min(L.hi, R.lo - Dmax))` (per axis). The reference
//!    point is a pure function of the pair, lies in every cell range the
//!    pair was replicated to, and belongs to exactly one cell, so the output
//!    is an exact multiset without any cross-cell communication.
//!
//! Cells share nothing — no queue, no bound, no locks — so a parallel
//! driver (see `sdj-exec`) can sweep cells on independent workers and only
//! concatenate (unordered within-range mode) or k-way merge (ordered mode)
//! the per-cell runs.
//!
//! # Correctness contract
//!
//! Within-range output is multiset-equal to the incremental engine's, and
//! ordered output reports bitwise-identical distances: final pair keys come
//! from the same axis-major kernel fold as the engine's, and the single
//! `sqrt` per reported pair is deferred exactly the same way. Equal-distance
//! pairs are emitted in a deterministic (object-id) order that may differ
//! from the incremental engine's tie order — the same contract the parallel
//! executor's merged stream has. `crates/core/tests/bulk_equivalence.rs`
//! enforces both properties under proptest.

use sdj_geom::{KeySpace, OrdF64, Rect, SoaRects};
use sdj_obs::{ObsContext, Phase, SpanTimer};
use sdj_rtree::ObjectId;

use crate::config::{ExpansionPath, JoinConfig, ResultOrder};
use crate::index::{IndexEntry, IndexNode, SpatialIndex};
use crate::join::{mindist_keys_into, EmissionWatermark, ResultPair};
use crate::stats::JoinStats;

/// Hard ceiling on the total number of grid cells, shared across any
/// dimensionality (the per-axis cap is derived from it).
const MAX_TOTAL_CELLS: usize = 1 << 18;

/// Tuning knobs of the bulk path's grid sizing.
#[derive(Clone, Copy, Debug)]
pub struct BulkConfig {
    /// Forces the cell width (all axes) instead of deriving it from `Dmax`
    /// and density. Used by the equivalence fuzzers to exercise degenerate
    /// grids; per-axis cell counts are still capped, so the effective width
    /// may be larger. Must be positive and finite.
    pub cell_width: Option<f64>,
    /// Density target: the derived width aims at roughly this many entries
    /// per cell (before `Dmax` widening).
    pub target_per_cell: usize,
}

impl Default for BulkConfig {
    fn default() -> Self {
        Self {
            cell_width: None,
            target_per_cell: 64,
        }
    }
}

/// Counters specific to the bulk path, alongside the usual [`JoinStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BulkStats {
    /// Total grid cells.
    pub cells: u64,
    /// Cells whose (left slice, right slice) pair was actually swept — both
    /// sides non-empty.
    pub cell_pairs_swept: u64,
    /// Candidate pairs suppressed by the owner-cell dedup rule (each is a
    /// replica encounter of a pair owned by another cell).
    pub pairs_deduped: u64,
    /// Left-entry replicas across cells (≥ left entry count).
    pub replicated1: u64,
    /// Right-entry replicas across cells (≥ right entry count; grows with
    /// `Dmax` relative to the cell width).
    pub replicated2: u64,
    /// Candidates suppressed by the adaptive handoff's emission-watermark
    /// floor: pairs the incremental prefix already reported (key strictly
    /// below the floor, or equal and in the tie set). Zero outside
    /// frontier-seeded runs.
    pub below_watermark: u64,
}

impl BulkStats {
    /// Accumulates `other` into `self` (all counters add).
    pub fn merge(&mut self, other: &BulkStats) {
        self.cells += other.cells;
        self.cell_pairs_swept += other.cell_pairs_swept;
        self.pairs_deduped += other.pairs_deduped;
        self.replicated1 += other.replicated1;
        self.replicated2 += other.replicated2;
        self.below_watermark += other.below_watermark;
    }
}

/// One qualifying pair in the key domain, before the deferred `sqrt`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BulkHit {
    /// The pair's distance key ([`JoinConfig::key_space`] domain).
    pub key: f64,
    /// Object from the first relation.
    pub oid1: ObjectId,
    /// Object from the second relation.
    pub oid2: ObjectId,
}

impl BulkHit {
    /// The deterministic merge key: distance first (negated for descending
    /// runs), then object ids — the bulk path's equal-distance tie order.
    fn sort_key(&self, ascending: bool) -> (OrdF64, u64, u64) {
        let k = if ascending { self.key } else { -self.key };
        (OrdF64::new(k), self.oid1.0, self.oid2.0)
    }
}

/// Per-sweep counters returned by [`BulkDistanceJoin::sweep_cell`]; the
/// caller (serial `run` or a parallel driver) merges them into the join's
/// stats with [`BulkDistanceJoin::absorb_tally`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CellTally {
    /// MINDIST kernel evaluations performed.
    pub distance_calcs: u64,
    /// Candidates suppressed by the owner-cell dedup rule.
    pub deduped: u64,
    /// Candidates rejected by the `[Dmin, Dmax]` restriction.
    pub pruned_by_range: u64,
    /// Self-pairs dropped by `exclude_equal_ids`.
    pub filtered_self: u64,
    /// Candidates dropped by the emission-watermark floor (adaptive
    /// handoff; see [`BulkStats::below_watermark`]).
    pub below_watermark: u64,
    /// Hits appended to the output run.
    pub emitted: u64,
    /// True if both slices were non-empty and a sweep actually ran.
    pub swept: bool,
}

/// Reusable per-worker scratch for cell sweeps: sorted index slices, the
/// struct-of-arrays window operand and the key column. One instance serves
/// every cell a worker sweeps — the `ViewCache`/SoA buffer-reuse pattern of
/// the incremental engine, so steady-state sweeping performs no allocation.
#[derive(Debug, Default)]
pub struct CellScratch<const D: usize> {
    left: Vec<u32>,
    right: Vec<u32>,
    soa2: SoaRects<D>,
    keys_buf: Vec<f64>,
    /// Per-worker phase-span timer: every cell swept with this scratch
    /// records Sweep/Kernel/Dedup spans into the context's shared set.
    spans: Option<SpanTimer>,
}

impl<const D: usize> CellScratch<D> {
    /// Scratch whose sweeps record phase spans into `ctx`'s registry.
    #[must_use]
    pub fn for_context(ctx: &ObsContext) -> Self {
        Self {
            spans: SpanTimer::from_context(ctx),
            ..Self::default()
        }
    }
}

/// A uniform grid over the joint bounding box.
#[derive(Clone, Debug)]
struct Grid<const D: usize> {
    origin: [f64; D],
    width: [f64; D],
    dims: [usize; D],
    stride: [usize; D],
    total: usize,
}

impl<const D: usize> Grid<D> {
    /// A single-cell grid (used for empty inputs and unbounded `Dmax`).
    fn single(origin: [f64; D]) -> Self {
        Self {
            origin,
            width: [f64::INFINITY; D],
            dims: [1; D],
            stride: [1; D],
            total: 1,
        }
    }

    fn build(bbox: &Rect<D>, cell_width: f64) -> Self {
        let per_axis_cap = (MAX_TOTAL_CELLS as f64)
            .powf(1.0 / D as f64)
            .floor()
            .max(1.0) as usize;
        let mut dims = [1usize; D];
        let mut width = [f64::INFINITY; D];
        if cell_width.is_finite() && cell_width > 0.0 {
            for a in 0..D {
                let extent = bbox.hi()[a] - bbox.lo()[a];
                if extent > 0.0 {
                    let n = (extent / cell_width).ceil();
                    dims[a] = (n as usize).clamp(1, per_axis_cap);
                    // Recompute the width so the grid exactly tiles the
                    // bounding box even after the cap clamps the count.
                    width[a] = extent / dims[a] as f64;
                }
            }
        }
        let mut stride = [0usize; D];
        let mut total = 1usize;
        for a in 0..D {
            stride[a] = total;
            total *= dims[a];
        }
        Self {
            origin: *bbox.lo(),
            width,
            dims,
            stride,
            total,
        }
    }

    /// Cell coordinate of `x` along axis `a`, clamped into the grid. Cell
    /// indexing is monotone in `x` (subtraction, division and `floor` all
    /// are), which the owner-cell dedup rule relies on. Non-finite inputs
    /// (a `Dmax = ∞` expansion) saturate at the clamp.
    fn cell_axis(&self, a: usize, x: f64) -> usize {
        if self.dims[a] == 1 {
            return 0;
        }
        let t = ((x - self.origin[a]) / self.width[a]).floor();
        (t as i64).clamp(0, self.dims[a] as i64 - 1) as usize
    }

    /// The flat id of the cell with per-axis coordinates `c`.
    fn flat(&self, c: [usize; D]) -> usize {
        c.iter().zip(&self.stride).map(|(&ca, &sa)| ca * sa).sum()
    }

    /// Per-axis coordinates of flat cell `id`.
    fn coords(&self, id: usize) -> [usize; D] {
        std::array::from_fn(|a| (id / self.stride[a]) % self.dims[a])
    }

    /// Visits every cell overlapping the per-axis coordinate ranges
    /// `[lo[a], hi[a]]`.
    fn for_each_cell(&self, lo: [usize; D], hi: [usize; D], mut f: impl FnMut(usize)) {
        let mut c = lo;
        loop {
            f(self.flat(c));
            let mut a = 0;
            loop {
                if a == D {
                    return;
                }
                c[a] += 1;
                if c[a] <= hi[a] {
                    break;
                }
                c[a] = lo[a];
                a += 1;
            }
        }
    }
}

/// The bulk partition/plane-sweep distance join.
///
/// Constructed from two [`SpatialIndex`]es (the trees are read once, during
/// construction) and a [`JoinConfig`]; the range restriction, metric, key
/// domain, expansion path, `exclude_equal_ids` and `max_pairs` settings all
/// apply exactly as in the incremental engine. Semi-joins and spatial
/// selection windows are *not* supported — the planner routes those to the
/// incremental path.
#[derive(Debug)]
pub struct BulkDistanceJoin<const D: usize> {
    config: JoinConfig,
    bulk_config: BulkConfig,
    keys: KeySpace,
    lanes: bool,
    min_key: f64,
    max_key: f64,
    /// `Dmax` in distance units — the geometric expansion radius.
    dmax: f64,
    grid: Grid<D>,
    entries1: Vec<(ObjectId, Rect<D>)>,
    entries2: Vec<(ObjectId, Rect<D>)>,
    cells1: Vec<Vec<u32>>,
    cells2: Vec<Vec<u32>>,
    /// Cells with both slices non-empty — the parallel work units.
    active: Vec<u32>,
    /// Emission-watermark floor of a frontier-seeded run (`-inf` + empty
    /// tie set otherwise, which filters nothing): candidates with
    /// `key < floor_key` were all emitted by the incremental prefix, and
    /// candidates at exactly `floor_key` were emitted iff their id pair is
    /// in `floor_ties` (sorted for binary search).
    floor_key: f64,
    floor_ties: Vec<(u64, u64)>,
    stats: JoinStats,
    bulk: BulkStats,
    /// Phase-span timer for the serial driver (build, merge and finish
    /// phases; parallel drivers time those stages with their own timers).
    spans: Option<SpanTimer>,
}

impl<const D: usize> BulkDistanceJoin<D> {
    /// Builds the partition for a bulk join of `tree1` × `tree2` under
    /// `config`, with default grid tuning.
    ///
    /// # Errors
    /// Propagates storage errors from the single harvesting pass over each
    /// tree.
    ///
    /// # Panics
    /// Panics on an invalid `config` (see [`JoinConfig::validate`]).
    pub fn new<I1, I2>(tree1: &I1, tree2: &I2, config: JoinConfig) -> sdj_storage::Result<Self>
    where
        I1: SpatialIndex<D> + ?Sized,
        I2: SpatialIndex<D> + ?Sized,
    {
        Self::with_bulk_config(tree1, tree2, config, BulkConfig::default())
    }

    /// [`BulkDistanceJoin::new`] with explicit grid tuning.
    ///
    /// # Errors
    /// Propagates storage errors from the harvesting pass.
    ///
    /// # Panics
    /// Panics on an invalid `config`, or a forced `cell_width` that is not
    /// positive and finite.
    pub fn with_bulk_config<I1, I2>(
        tree1: &I1,
        tree2: &I2,
        config: JoinConfig,
        bulk_config: BulkConfig,
    ) -> sdj_storage::Result<Self>
    where
        I1: SpatialIndex<D> + ?Sized,
        I2: SpatialIndex<D> + ?Sized,
    {
        Self::with_bulk_config_obs(tree1, tree2, config, bulk_config, None)
    }

    /// [`BulkDistanceJoin::with_bulk_config`] with phase-span observability:
    /// the harvest pass records a [`Phase::Partition`] span and the cell
    /// replication a [`Phase::Replicate`] span into `ctx`'s registry, and
    /// the serial `run` drivers record merge/emit spans.
    ///
    /// # Errors
    /// Propagates storage errors from the harvesting pass.
    ///
    /// # Panics
    /// Panics on an invalid `config` or forced `cell_width` (see
    /// [`BulkDistanceJoin::with_bulk_config`]).
    pub fn with_bulk_config_obs<I1, I2>(
        tree1: &I1,
        tree2: &I2,
        config: JoinConfig,
        bulk_config: BulkConfig,
        ctx: Option<&ObsContext>,
    ) -> sdj_storage::Result<Self>
    where
        I1: SpatialIndex<D> + ?Sized,
        I2: SpatialIndex<D> + ?Sized,
    {
        let mut spans = ctx.and_then(SpanTimer::from_context);
        config.validate();
        if let Some(w) = bulk_config.cell_width {
            assert!(
                w.is_finite() && w > 0.0,
                "forced cell width must be positive and finite"
            );
        }
        let keys = config.key_space();
        let mut stats = JoinStats::default();
        let io_before = tree1.io_misses() + tree2.io_misses();

        let mut entries1 = Vec::with_capacity(tree1.len());
        let mut entries2 = Vec::with_capacity(tree2.len());
        if let Some(t) = &mut spans {
            t.enter(Phase::Partition);
        }
        let harvested = harvest(tree1, &mut stats, &mut entries1)
            .and_then(|()| harvest(tree2, &mut stats, &mut entries2));
        if let Some(t) = &mut spans {
            t.exit(Phase::Partition);
        }
        harvested?;
        stats.node_io = (tree1.io_misses() + tree2.io_misses()) - io_before;
        assert!(
            entries1.len() <= u32::MAX as usize && entries2.len() <= u32::MAX as usize,
            "bulk join supports at most u32::MAX objects per side"
        );

        let dmax = config.max_distance;
        let grid = if entries1.is_empty() || entries2.is_empty() {
            Grid::single([0.0; D])
        } else {
            let bbox = match (tree1.root_region(), tree2.root_region()) {
                (Ok(r1), Ok(r2)) => r1.union(&r2),
                _ => joint_bbox(&entries1, &entries2),
            };
            let w = bulk_config.cell_width.unwrap_or_else(|| {
                derived_cell_width(&bbox, dmax, entries1.len() + entries2.len(), &bulk_config)
            });
            Grid::build(&bbox, w)
        };

        let mut join = Self {
            config,
            bulk_config,
            keys,
            lanes: matches!(config.expansion, ExpansionPath::Lanes),
            min_key: keys.to_key(config.min_distance),
            max_key: keys.to_key(config.max_distance),
            dmax,
            grid,
            entries1,
            entries2,
            cells1: Vec::new(),
            cells2: Vec::new(),
            active: Vec::new(),
            floor_key: f64::NEG_INFINITY,
            floor_ties: Vec::new(),
            stats,
            bulk: BulkStats::default(),
            spans,
        };
        if let Some(t) = &mut join.spans {
            t.enter(Phase::Replicate);
        }
        join.replicate();
        if let Some(t) = &mut join.spans {
            t.exit(Phase::Replicate);
        }
        Ok(join)
    }

    /// Builds a bulk join seeded from an exported incremental frontier
    /// (the adaptive handoff): the entry sets are the objects harvested
    /// from the frontier's queue pairs — no tree pass runs here — and the
    /// run is restricted to the *remainder* of the incremental stream by
    /// two bounds, both in the key domain so comparisons are exact against
    /// the bit-identical kernel keys:
    ///
    /// * `floor` — the incremental prefix's [`EmissionWatermark`]:
    ///   candidates strictly below it were all emitted already (ascending
    ///   emission is monotone), candidates at exactly its key are dropped
    ///   iff they are in its tie set.
    /// * `max_key_hint` — the tightest maximum key the paused engine had
    ///   proven (query bound and estimator, [`crate::JoinFrontier::dmax_hint`]):
    ///   every result still owed lies within it, and everything above it
    ///   is either out of range or was legitimately pruned. The geometric
    ///   expansion radius (grid replication, owner-cell rule) is derived
    ///   from it with a one-sided pad so the `sqrt` round-trip out of the
    ///   key domain can never under-cover the exact key filter.
    ///
    /// # Panics
    /// Panics on an invalid `config`, a forced non-finite `cell_width`, or
    /// more than `u32::MAX` entries per side.
    #[must_use]
    pub fn from_frontier(
        entries1: Vec<(ObjectId, Rect<D>)>,
        entries2: Vec<(ObjectId, Rect<D>)>,
        config: JoinConfig,
        bulk_config: BulkConfig,
        floor: Option<&EmissionWatermark>,
        max_key_hint: f64,
        ctx: Option<&ObsContext>,
    ) -> Self {
        let spans = ctx.and_then(SpanTimer::from_context);
        config.validate();
        if let Some(w) = bulk_config.cell_width {
            assert!(
                w.is_finite() && w > 0.0,
                "forced cell width must be positive and finite"
            );
        }
        assert!(
            entries1.len() <= u32::MAX as usize && entries2.len() <= u32::MAX as usize,
            "bulk join supports at most u32::MAX objects per side"
        );
        let keys = config.key_space();
        let max_key = keys.to_key(config.max_distance).min(max_key_hint);
        // Geometric radius covering the key filter: pad the distance-domain
        // image of the hint one-sided (sqrt of a squared key rounds to
        // nearest, ≤ 1 ulp either way) so replication windows and the
        // owner-cell reference point never exclude a pair the exact
        // key-domain filter would keep.
        let hint_dist = keys.to_distance(max_key_hint);
        let padded = if hint_dist.is_finite() {
            hint_dist + hint_dist * 1e-9 + f64::MIN_POSITIVE
        } else {
            hint_dist
        };
        let dmax = config.max_distance.min(padded);

        let grid = if entries1.is_empty() || entries2.is_empty() {
            Grid::single([0.0; D])
        } else {
            let bbox = joint_bbox(&entries1, &entries2);
            let w = bulk_config.cell_width.unwrap_or_else(|| {
                derived_cell_width(&bbox, dmax, entries1.len() + entries2.len(), &bulk_config)
            });
            Grid::build(&bbox, w)
        };

        let (floor_key, mut floor_ties) = match floor {
            Some(wm) => (
                wm.key,
                wm.ties.iter().map(|&(a, b)| (a.0, b.0)).collect::<Vec<_>>(),
            ),
            None => (f64::NEG_INFINITY, Vec::new()),
        };
        floor_ties.sort_unstable();
        floor_ties.dedup();

        let mut join = Self {
            config,
            bulk_config,
            keys,
            lanes: matches!(config.expansion, ExpansionPath::Lanes),
            min_key: keys.to_key(config.min_distance),
            max_key,
            dmax,
            grid,
            entries1,
            entries2,
            cells1: Vec::new(),
            cells2: Vec::new(),
            active: Vec::new(),
            floor_key,
            floor_ties,
            stats: JoinStats::default(),
            bulk: BulkStats::default(),
            spans,
        };
        if let Some(t) = &mut join.spans {
            t.enter(Phase::Replicate);
        }
        join.replicate();
        if let Some(t) = &mut join.spans {
            t.exit(Phase::Replicate);
        }
        join
    }

    /// Distributes both entry sets into the grid cells: left entries over
    /// the cells their MBR overlaps, right entries over the cells their
    /// `Dmax`-expanded MBR overlaps — widened by one cell per axis as
    /// insurance against floating-point boundary rounding (the owner-cell
    /// rule evaluates `R.lo - Dmax` with the same expression, so a pair's
    /// owner always falls inside its replication ranges).
    fn replicate(&mut self) {
        let grid = &self.grid;
        self.cells1 = std::iter::repeat_with(Vec::new).take(grid.total).collect();
        self.cells2 = std::iter::repeat_with(Vec::new).take(grid.total).collect();
        self.bulk.cells = grid.total as u64;

        for (i, (_, r)) in self.entries1.iter().enumerate() {
            let lo = std::array::from_fn(|a| grid.cell_axis(a, r.lo()[a]));
            let hi = std::array::from_fn(|a| grid.cell_axis(a, r.hi()[a]));
            grid.for_each_cell(lo, hi, |c| {
                self.cells1[c].push(i as u32);
                self.bulk.replicated1 += 1;
            });
        }
        let dmax = self.dmax;
        for (i, (_, r)) in self.entries2.iter().enumerate() {
            let lo = std::array::from_fn(|a| grid.cell_axis(a, r.lo()[a] - dmax).saturating_sub(1));
            let hi = std::array::from_fn(|a| {
                (grid.cell_axis(a, r.hi()[a] + dmax) + 1).min(grid.dims[a] - 1)
            });
            grid.for_each_cell(lo, hi, |c| {
                self.cells2[c].push(i as u32);
                self.bulk.replicated2 += 1;
            });
        }
        self.active = (0..grid.total)
            .filter(|&c| !self.cells1[c].is_empty() && !self.cells2[c].is_empty())
            .map(|c| c as u32)
            .collect();
    }

    /// The cells worth sweeping (both slices non-empty) — the work units a
    /// parallel driver distributes.
    #[must_use]
    pub fn active_cells(&self) -> &[u32] {
        &self.active
    }

    /// Counters of the build phase plus every tally absorbed so far.
    #[must_use]
    pub fn stats(&self) -> JoinStats {
        self.stats
    }

    /// Bulk-path counters (cells, sweeps, dedup suppressions, replicas).
    #[must_use]
    pub fn bulk_stats(&self) -> BulkStats {
        self.bulk
    }

    /// The configuration the join was built with.
    #[must_use]
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }

    /// Merges a sweep's counters into the join's stats. Parallel drivers
    /// call this once per finished cell (under their own aggregation lock);
    /// the serial `run` methods do it inline.
    pub fn absorb_tally(&mut self, t: &CellTally) {
        self.stats.distance_calcs += t.distance_calcs;
        self.stats.pruned_by_range += t.pruned_by_range;
        self.stats.filtered_self += t.filtered_self;
        self.bulk.pairs_deduped += t.deduped;
        self.bulk.below_watermark += t.below_watermark;
        if t.swept {
            self.bulk.cell_pairs_swept += 1;
        }
    }

    /// Sweeps one cell, appending its qualifying pairs (key domain) to
    /// `out`. Takes `&self` so independent workers can sweep disjoint cells
    /// concurrently, each with its own [`CellScratch`] and output run;
    /// the returned [`CellTally`] carries the counters.
    #[must_use]
    pub fn sweep_cell(
        &self,
        cell: usize,
        scratch: &mut CellScratch<D>,
        out: &mut Vec<BulkHit>,
    ) -> CellTally {
        let mut tally = CellTally::default();
        let left = &self.cells1[cell];
        let right = &self.cells2[cell];
        if left.is_empty() || right.is_empty() {
            return tally;
        }
        tally.swept = true;
        if let Some(t) = &mut scratch.spans {
            t.enter(Phase::Sweep);
        }
        let keys = self.keys;
        let entries1 = &self.entries1;
        let entries2 = &self.entries2;

        // Sort the right slice by lo[0] and decode it into the SoA window
        // operand (scratch buffers are reused across cells; `total_cmp`
        // keeps the sweep well-defined under NaN coordinates).
        scratch.right.clear();
        scratch.right.extend_from_slice(right);
        scratch.right.sort_unstable_by(|&i, &j| {
            entries2[i as usize].1.lo()[0].total_cmp(&entries2[j as usize].1.lo()[0])
        });
        scratch.soa2.clear();
        let mut max_width2 = 0.0f64;
        for &i in &scratch.right {
            let r = &entries2[i as usize].1;
            scratch.soa2.push(r);
            max_width2 = max_width2.max(r.extent(0));
        }
        scratch.left.clear();
        scratch.left.extend_from_slice(left);

        let cell_coords = self.grid.coords(cell);
        let max_key = self.max_key;
        let min_key = self.min_key;
        let floor_key = self.floor_key;
        let exclude_equal = self.config.exclude_equal_ids;
        let dmax = self.dmax;

        for &li in &scratch.left {
            let (oid1, r1) = &entries1[li as usize];
            let e1_lo = r1.lo()[0];
            let e1_hi = r1.hi()[0];
            let lo2s = scratch.soa2.lo_axis(0);
            // The incremental engine's sweep window (see
            // `DistanceJoin::expand_both_batched`): right entries whose
            // axis-0 interval cannot come within `Dmax` of `r1` are skipped
            // without a distance evaluation; both bounds are monotone in
            // `lo[0]`, so binary searches find them.
            let start = lo2s.partition_point(|&lo2| {
                let t = e1_lo - lo2 - max_width2;
                t > 0.0 && keys.axis_gap_exceeds(t, max_key)
            });
            let end = start
                + lo2s[start..].partition_point(|&lo2| {
                    let t = lo2 - e1_hi;
                    !(t > 0.0 && keys.axis_gap_exceeds(t, max_key))
                });
            if start == end {
                continue;
            }
            scratch.keys_buf.clear();
            if let Some(t) = &mut scratch.spans {
                t.enter(Phase::Kernel);
            }
            mindist_keys_into(
                &scratch.soa2,
                self.lanes,
                keys,
                r1,
                start..end,
                &mut scratch.keys_buf,
            );
            if let Some(t) = &mut scratch.spans {
                t.exit(Phase::Kernel);
            }
            tally.distance_calcs += (end - start) as u64;
            if let Some(t) = &mut scratch.spans {
                t.enter(Phase::Dedup);
            }
            for (w, &key) in (start..end).zip(&scratch.keys_buf) {
                let ri = scratch.right[w];
                let (oid2, r2) = &entries2[ri as usize];
                // Owner-cell dedup: emit only from the cell holding the
                // pair's reference point. The per-axis clamp into `r1`
                // keeps the point inside the left replication range even
                // when `R.lo - Dmax` rounds past `L.hi`.
                let owned = (0..D).all(|a| {
                    let p = r1.lo()[a].max(r1.hi()[a].min(r2.lo()[a] - dmax));
                    self.grid.cell_axis(a, p) == cell_coords[a]
                });
                if !owned {
                    tally.deduped += 1;
                    continue;
                }
                if key > max_key || key < min_key {
                    tally.pruned_by_range += 1;
                    continue;
                }
                if key < floor_key
                    || (key == floor_key
                        && self.floor_ties.binary_search(&(oid1.0, oid2.0)).is_ok())
                {
                    tally.below_watermark += 1;
                    continue;
                }
                if exclude_equal && oid1 == oid2 {
                    tally.filtered_self += 1;
                    continue;
                }
                out.push(BulkHit {
                    key,
                    oid1: *oid1,
                    oid2: *oid2,
                });
                tally.emitted += 1;
            }
            if let Some(t) = &mut scratch.spans {
                t.exit(Phase::Dedup);
            }
        }
        if let Some(t) = &mut scratch.spans {
            t.exit(Phase::Sweep);
        }
        tally
    }

    /// Within-range mode: every qualifying pair, in no particular order
    /// (cell order, which is deterministic but not distance-sorted). With
    /// `max_pairs` set there is no well-defined "first k unordered" subset,
    /// so this falls back to [`BulkDistanceJoin::run`] and truncates there.
    pub fn run_unordered(&mut self) -> Vec<ResultPair> {
        if self.config.max_pairs.is_some() {
            return self.run();
        }
        // Hand the join's timer to the scratch for the sweep loop (the
        // sweeps record through the scratch), then take it back for finish.
        let mut scratch = CellScratch {
            spans: self.spans.take(),
            ..CellScratch::default()
        };
        let mut hits = Vec::new();
        for c in 0..self.active.len() {
            let cell = self.active[c] as usize;
            let tally = self.sweep_cell(cell, &mut scratch, &mut hits);
            self.absorb_tally(&tally);
        }
        self.spans = scratch.spans.take();
        self.finish(hits)
    }

    /// Ordered mode: per-cell runs are sorted and k-way merged into one
    /// distance-ordered result (ascending or descending per the config),
    /// truncated to `max_pairs` if set.
    pub fn run(&mut self) -> Vec<ResultPair> {
        let ascending = matches!(self.config.order, ResultOrder::Ascending);
        let mut scratch = CellScratch {
            spans: self.spans.take(),
            ..CellScratch::default()
        };
        let mut runs = Vec::with_capacity(self.active.len());
        for c in 0..self.active.len() {
            let cell = self.active[c] as usize;
            let mut run = Vec::new();
            let tally = self.sweep_cell(cell, &mut scratch, &mut run);
            self.absorb_tally(&tally);
            if !run.is_empty() {
                // Per-cell run sorting is part of the merge work.
                if let Some(t) = &mut scratch.spans {
                    t.enter(Phase::Merge);
                }
                sort_run(&mut run, ascending);
                if let Some(t) = &mut scratch.spans {
                    t.exit(Phase::Merge);
                }
                runs.push(run);
            }
        }
        self.spans = scratch.spans.take();
        if let Some(t) = &mut self.spans {
            t.enter(Phase::Merge);
        }
        let merged = merge_sorted_runs(runs, ascending, self.config.max_pairs);
        if let Some(t) = &mut self.spans {
            t.exit(Phase::Merge);
        }
        self.finish(merged)
    }

    /// Converts hits to reported results, paying the deferred `sqrt` (once
    /// per emitted pair under squared keys) and counting emissions.
    pub fn finish(&mut self, hits: Vec<BulkHit>) -> Vec<ResultPair> {
        if let Some(t) = &mut self.spans {
            t.enter(Phase::Emit);
        }
        let keys = self.keys;
        let squared = keys.is_squared();
        let mut out = Vec::with_capacity(hits.len());
        for h in hits {
            if squared {
                self.stats.sqrt_calls += 1;
            }
            self.stats.pairs_reported += 1;
            out.push(ResultPair {
                oid1: h.oid1,
                oid2: h.oid2,
                distance: keys.to_distance(h.key),
            });
        }
        if let Some(t) = &mut self.spans {
            t.exit(Phase::Emit);
        }
        out
    }

    /// The grid's per-axis cell counts (diagnostics and tests).
    #[must_use]
    pub fn grid_dims(&self) -> [usize; D] {
        self.grid.dims
    }

    /// Effective bulk tuning (after defaulting).
    #[must_use]
    pub fn bulk_config(&self) -> &BulkConfig {
        &self.bulk_config
    }
}

/// Sorts one cell's run into the bulk path's deterministic emission order.
pub fn sort_run(run: &mut [BulkHit], ascending: bool) {
    run.sort_unstable_by_key(|h| h.sort_key(ascending));
}

/// K-way merges per-cell sorted runs (each ordered by [`sort_run`]) into a
/// single ordered result, truncated to `max_pairs` if set. Runs must each be
/// sorted; the merge holds one head per run — the classic tournament the
/// parallel stream merge uses, minus the channels.
#[must_use]
pub fn merge_sorted_runs(
    runs: Vec<Vec<BulkHit>>,
    ascending: bool,
    max_pairs: Option<u64>,
) -> Vec<BulkHit> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// `(sort key, run index)` tournament entry.
    type Head = Reverse<((OrdF64, u64, u64), usize)>;

    let total: usize = runs.iter().map(Vec::len).sum();
    let limit = max_pairs.map_or(total, |k| (k as usize).min(total));
    let mut out = Vec::with_capacity(limit);
    let mut heap: BinaryHeap<Head> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Reverse((r[0].sort_key(ascending), i)))
        .collect();
    let mut cursors = vec![0usize; runs.len()];
    while out.len() < limit {
        let Some(Reverse((_, i))) = heap.pop() else {
            break;
        };
        let pos = cursors[i];
        out.push(runs[i][pos]);
        cursors[i] = pos + 1;
        if pos + 1 < runs[i].len() {
            heap.push(Reverse((runs[i][pos + 1].sort_key(ascending), i)));
        }
    }
    out
}

/// Collects every leaf object entry of `tree` with a single depth-first
/// walk, reusing one node buffer (the R-tree decodes straight off its page
/// guards, so warm reads never copy page bytes — asserted by the bulk
/// equivalence tests via the pool's `read_copies` counter).
fn harvest<const D: usize, I>(
    tree: &I,
    stats: &mut JoinStats,
    out: &mut Vec<(ObjectId, Rect<D>)>,
) -> sdj_storage::Result<()>
where
    I: SpatialIndex<D> + ?Sized,
{
    if tree.is_empty() {
        return Ok(());
    }
    let mut stack = vec![tree.root_id()];
    let mut buf = IndexNode::empty();
    while let Some(id) = stack.pop() {
        tree.read_node_into(id, &mut buf)?;
        stats.node_accesses += 1;
        for e in &buf.entries {
            match e {
                IndexEntry::Child { id, .. } => stack.push(*id),
                IndexEntry::Object { oid, mbr } => out.push((*oid, *mbr)),
            }
        }
    }
    Ok(())
}

/// Bounding box fallback when a root region is unavailable.
fn joint_bbox<const D: usize>(e1: &[(ObjectId, Rect<D>)], e2: &[(ObjectId, Rect<D>)]) -> Rect<D> {
    let mut bbox = Rect::empty();
    for (_, r) in e1.iter().chain(e2) {
        bbox = bbox.union(r);
    }
    bbox
}

/// The grid sizing rule: a density width targeting
/// [`BulkConfig::target_per_cell`] entries per cell, widened to at least
/// `Dmax` (cells narrower than the search radius multiply right-side
/// replication without shrinking any sweep window). An unbounded `Dmax`
/// degenerates to a single cell — one full plane sweep, which is also what
/// the incremental engine's simultaneous expansion would do.
fn derived_cell_width<const D: usize>(
    bbox: &Rect<D>,
    dmax: f64,
    n: usize,
    config: &BulkConfig,
) -> f64 {
    if !dmax.is_finite() {
        return f64::INFINITY;
    }
    let target_cells = (n / config.target_per_cell.max(1)).max(1);
    let mut volume = 1.0f64;
    for a in 0..D {
        volume *= (bbox.hi()[a] - bbox.lo()[a]).max(f64::MIN_POSITIVE);
    }
    let w_density = (volume / target_cells as f64).powf(1.0 / D as f64);
    w_density.max(dmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::DistanceJoin;
    use sdj_geom::Point;
    use sdj_rtree::{RTree, RTreeConfig};

    fn tree_of(points: &[(f64, f64)]) -> RTree<2> {
        let mut tree = RTree::new(RTreeConfig::small(4));
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(ObjectId(i as u64), Point::xy(x, y).to_rect())
                .unwrap();
        }
        tree
    }

    fn grid_points(n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|i| ((i % 8) as f64, (i / 8) as f64)).collect()
    }

    fn canon(mut v: Vec<ResultPair>) -> Vec<(u64, u64, u64)> {
        let mut out: Vec<(u64, u64, u64)> = v
            .drain(..)
            .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn bulk_matches_incremental_on_a_grid() {
        let t1 = tree_of(&grid_points(64));
        let t2 = tree_of(&grid_points(64));
        let config = JoinConfig::default().with_range(0.0, 2.5);
        let incremental: Vec<ResultPair> = DistanceJoin::new(&t1, &t2, config).collect();
        let mut bulk = BulkDistanceJoin::new(&t1, &t2, config).unwrap();
        let got = bulk.run_unordered();
        assert_eq!(canon(incremental), canon(got));
        assert!(bulk.bulk_stats().cell_pairs_swept >= 1);
    }

    #[test]
    fn ordered_run_reports_identical_distances() {
        let t1 = tree_of(&grid_points(48));
        let t2 = tree_of(&grid_points(40));
        let config = JoinConfig::default().with_range(0.5, 3.0);
        let incremental: Vec<ResultPair> = DistanceJoin::new(&t1, &t2, config).collect();
        let mut bulk = BulkDistanceJoin::new(&t1, &t2, config).unwrap();
        let got = bulk.run();
        assert_eq!(incremental.len(), got.len());
        for (a, b) in incremental.iter().zip(&got) {
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        assert_eq!(canon(incremental), canon(got));
    }

    fn tree_of_boxes(points: &[(f64, f64)], half: f64) -> RTree<2> {
        let mut tree = RTree::new(RTreeConfig::small(4));
        for (i, &(x, y)) in points.iter().enumerate() {
            let r = Rect::new([x - half, y - half], [x + half, y + half]);
            tree.insert(ObjectId(i as u64), r).unwrap();
        }
        tree
    }

    #[test]
    fn forced_tiny_cells_still_dedup_exactly() {
        // Extended MBRs straddle the (deliberately tiny) cells, so left
        // entries are replicated and the owner-cell rule must suppress the
        // duplicate encounters.
        let t1 = tree_of_boxes(&grid_points(64), 0.45);
        let t2 = tree_of(&grid_points(64));
        let config = JoinConfig::default().with_range(0.0, 1.5);
        let incremental: Vec<ResultPair> = DistanceJoin::new(&t1, &t2, config).collect();
        let mut bulk = BulkDistanceJoin::with_bulk_config(
            &t1,
            &t2,
            config,
            BulkConfig {
                cell_width: Some(0.6),
                ..BulkConfig::default()
            },
        )
        .unwrap();
        let got = bulk.run_unordered();
        assert_eq!(canon(incremental), canon(got));
        // Tiny cells force replication, hence duplicate suppression.
        assert!(
            bulk.bulk_stats().pairs_deduped > 0,
            "{:?}",
            bulk.bulk_stats()
        );
    }

    #[test]
    fn unbounded_dmax_degenerates_to_one_cell() {
        let t1 = tree_of(&grid_points(16));
        let t2 = tree_of(&grid_points(16));
        let mut bulk = BulkDistanceJoin::new(&t1, &t2, JoinConfig::default()).unwrap();
        assert_eq!(bulk.grid_dims(), [1, 1]);
        let got = bulk.run_unordered();
        assert_eq!(got.len(), 16 * 16);
    }

    #[test]
    fn max_pairs_truncates_the_ordered_stream() {
        let t1 = tree_of(&grid_points(32));
        let t2 = tree_of(&grid_points(32));
        let config = JoinConfig::default().with_max_pairs(10);
        let incremental: Vec<ResultPair> = DistanceJoin::new(&t1, &t2, config).collect();
        let mut bulk = BulkDistanceJoin::new(&t1, &t2, config).unwrap();
        let got = bulk.run();
        assert_eq!(got.len(), 10);
        for (a, b) in incremental.iter().zip(&got) {
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    #[test]
    fn empty_side_yields_no_results() {
        let t1 = tree_of(&grid_points(8));
        let t2: RTree<2> = RTree::new(RTreeConfig::small(4));
        let mut bulk = BulkDistanceJoin::new(&t1, &t2, JoinConfig::default()).unwrap();
        assert!(bulk.run_unordered().is_empty());
        assert_eq!(bulk.stats().pairs_reported, 0);
    }

    #[test]
    fn merge_sorted_runs_is_a_total_order_merge() {
        let mk = |keys: &[f64]| -> Vec<BulkHit> {
            keys.iter()
                .enumerate()
                .map(|(i, &k)| BulkHit {
                    key: k,
                    oid1: ObjectId(i as u64),
                    oid2: ObjectId(0),
                })
                .collect()
        };
        let runs = vec![mk(&[0.5, 2.0, 3.5]), mk(&[1.0, 1.5]), mk(&[])];
        let merged = merge_sorted_runs(runs, true, None);
        let got: Vec<f64> = merged.iter().map(|h| h.key).collect();
        assert_eq!(got, vec![0.5, 1.0, 1.5, 2.0, 3.5]);
        let runs = vec![mk(&[3.5, 2.0]), mk(&[4.0, 1.0])];
        let merged = merge_sorted_runs(runs, false, Some(3));
        let got: Vec<f64> = merged.iter().map(|h| h.key).collect();
        assert_eq!(got, vec![4.0, 3.5, 2.0]);
    }
}
