//! Exact object distances for the refinement step.
//!
//! The R-tree leaves hold object bounding rectangles. When the indexed
//! objects *are* their bounding rectangles (points, or rectangle data), the
//! obr distance is exact and obr/obr pairs can be reported directly — the
//! paper's "objects represented directly in the leaves" configuration. For
//! extended objects stored externally (e.g. line segments), dequeued obr/obr
//! pairs are refined by computing the exact object distance through a
//! [`DistanceOracle`] (Figure 3, lines 7–14).

use sdj_geom::{Metric, SpatialObject};
use sdj_rtree::ObjectId;
use sdj_storage::StorageError;

/// Source of exact object-to-object distances.
pub trait DistanceOracle<const D: usize> {
    /// True when leaf bounding-rectangle distance *is* the exact object
    /// distance, making refinement unnecessary.
    const EXACT: bool;

    /// Exact distance between object `o1` of the first relation and `o2` of
    /// the second.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] when an id does not resolve to a stored
    /// object — refinement of a pair whose ids the oracle has never heard
    /// of means the queue state is damaged, and the query fails clean
    /// instead of panicking the process.
    fn object_distance(&self, o1: ObjectId, o2: ObjectId) -> sdj_storage::Result<f64>;
}

/// Oracle for objects stored directly in the leaves (points, rectangles):
/// the obr distance is exact and this oracle is never consulted.
#[derive(Clone, Copy, Debug, Default)]
pub struct MbrOracle;

impl<const D: usize> DistanceOracle<D> for MbrOracle {
    const EXACT: bool = true;

    fn object_distance(&self, _o1: ObjectId, _o2: ObjectId) -> sdj_storage::Result<f64> {
        // Exact oracles never refine; being consulted at all means a
        // non-final pair was treated as refinable — corrupt queue state.
        Err(StorageError::Corrupt(
            "refinement requested from an exact oracle",
        ))
    }
}

/// Oracle backed by two object tables indexed by object id — the "external
/// object storage" configuration.
#[derive(Clone, Copy, Debug)]
pub struct SliceOracle<'a, O> {
    objects1: &'a [O],
    objects2: &'a [O],
    metric: Metric,
}

impl<'a, O> SliceOracle<'a, O> {
    /// Creates an oracle over the two object tables. Object ids index the
    /// tables directly.
    #[must_use]
    pub fn new(objects1: &'a [O], objects2: &'a [O], metric: Metric) -> Self {
        Self {
            objects1,
            objects2,
            metric,
        }
    }
}

impl<const D: usize, O: SpatialObject<D>> DistanceOracle<D> for SliceOracle<'_, O> {
    const EXACT: bool = false;

    fn object_distance(&self, o1: ObjectId, o2: ObjectId) -> sdj_storage::Result<f64> {
        const BAD_ID: StorageError = StorageError::Corrupt("object id outside the oracle table");
        let a = usize::try_from(o1.0)
            .ok()
            .and_then(|i| self.objects1.get(i))
            .ok_or(BAD_ID)?;
        let b = usize::try_from(o2.0)
            .ok()
            .and_then(|i| self.objects2.get(i))
            .ok_or(BAD_ID)?;
        Ok(a.min_distance(b, self.metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::{Point, Segment};

    #[test]
    fn slice_oracle_computes_exact_distances() {
        let a = [Segment::new(Point::xy(0.0, 0.0), Point::xy(1.0, 0.0))];
        let b = [
            Segment::new(Point::xy(0.0, 3.0), Point::xy(1.0, 3.0)),
            Segment::new(Point::xy(0.5, -2.0), Point::xy(0.5, 2.0)),
        ];
        let oracle = SliceOracle::new(&a, &b, Metric::Euclidean);
        assert_eq!(
            DistanceOracle::<2>::object_distance(&oracle, ObjectId(0), ObjectId(0)).unwrap(),
            3.0
        );
        assert_eq!(
            DistanceOracle::<2>::object_distance(&oracle, ObjectId(0), ObjectId(1)).unwrap(),
            0.0,
            "crossing segments"
        );
        const { assert!(!<SliceOracle<'static, Segment> as DistanceOracle<2>>::EXACT) };
    }

    #[test]
    fn out_of_table_ids_are_typed_errors() {
        let a = [Segment::new(Point::xy(0.0, 0.0), Point::xy(1.0, 0.0))];
        let oracle = SliceOracle::new(&a, &a, Metric::Euclidean);
        let err = DistanceOracle::<2>::object_distance(&oracle, ObjectId(0), ObjectId(7))
            .expect_err("id 7 is outside the table");
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn mbr_oracle_is_exact() {
        const { assert!(<MbrOracle as DistanceOracle<2>>::EXACT) };
        let err = DistanceOracle::<2>::object_distance(&MbrOracle, ObjectId(0), ObjectId(1))
            .expect_err("exact oracles refuse refinement");
        assert!(matches!(err, StorageError::Corrupt(_)));
    }
}
