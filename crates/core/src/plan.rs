//! Cost-based execution-path planner: incremental priority-queue join vs
//! bulk partition/plane-sweep join.
//!
//! The two executors answer the same query with opposite cost shapes. The
//! incremental engine ([`crate::DistanceJoin`]) pays a priority-queue
//! `log`-factor per produced pair but touches only the index regions that
//! can contribute to the first `K` results — unbeatable when `K` is small
//! relative to the result set. The bulk path ([`crate::BulkDistanceJoin`])
//! reads both trees once and sweeps grid cells with near-linear per-pair
//! cost, but always materialises *every* qualifying pair — unbeatable when
//! the consumer drains the result (a full within-range join, or `K` near
//! the result count).
//!
//! The planner estimates both costs from quantities that are cheap to read
//! before execution — input cardinalities, the joint bounding box, the
//! `[Dmin, Dmax]` restriction, `K`, and one cached page per tree (the root,
//! whose child rectangles yield the frontier signal below) — and picks the
//! smaller. The units are abstract "work units" (roughly: one distance
//! evaluation); the absolute values are meaningless, only the comparison
//! matters. The crossover the model predicts is measured empirically by the
//! `bench_planner` binary (see `BENCH_planner.json`), and [`PlanChoice`] is
//! surfaced in run reports so a misprediction is visible, and overridable
//! (`--force-plan` in `sdj-report`).
//!
//! # The frontier signal
//!
//! Under a `Dmax` restriction the incremental engine's dominant cost is
//! nearly independent of `K`: node pairs whose `mindist` is below the
//! frontier distance must be expanded before the results behind them can
//! surface, so a distance-restricted run pays for (most of) the restricted
//! *node frontier* even when the consumer stops early. That frontier is
//! invisible to pure cardinality statistics — a uniform and a clustered
//! workload with identical `(n, bbox, Dmax)` produce identical
//! [`PlanInputs`] cardinalities but frontiers an order of magnitude apart.
//! [`PlanInputs::from_trees`] therefore measures the top of the frontier
//! directly: it counts cross-tree root-child pairs within `Dmax` (at most
//! fanout² rectangle distances over two cached pages) and scales the count
//! by the average subtree cardinality, giving [`PlanInputs::est_frontier`].
//! Clustered trees put most root-child pairs far apart and score low;
//! uniform trees score high; the measured crossovers in
//! `BENCH_planner.json` separate accordingly.

use crate::config::JoinConfig;
use crate::index::SpatialIndex;

/// Which execution path the planner selected (or was forced to).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanChoice {
    /// The incremental priority-queue join.
    Incremental,
    /// The bulk partition/plane-sweep join.
    Bulk,
    /// The adaptive driver: start incremental, re-cost at checkpoints from
    /// observed signals, and hand the frontier to the bulk path mid-query
    /// if bulk wins by a hysteresis margin. Never produced by the static
    /// [`plan`] — it is a forced/driver-level mode, surfaced here so
    /// reports and forcing flags share one vocabulary.
    Adaptive,
}

impl PlanChoice {
    /// Stable lowercase name, used in reports and counters.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PlanChoice::Incremental => "incremental",
            PlanChoice::Bulk => "bulk",
            PlanChoice::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for PlanChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The planner's inputs: statistics of both trees plus the query knobs the
/// cost model reads. Build one with [`PlanInputs::from_trees`] or by hand
/// (the planner unit tests pin decisions on hand-built stats).
#[derive(Clone, Copy, Debug)]
pub struct PlanInputs<const D: usize> {
    /// Object count of the first relation.
    pub n1: usize,
    /// Object count of the second relation.
    pub n2: usize,
    /// Extent of the joint bounding box per axis (non-negative; `0.0` for
    /// degenerate axes).
    pub extent: [f64; D],
    /// `STOP AFTER` bound — `None` means the consumer drains the result.
    pub max_pairs: Option<u64>,
    /// Lower distance restriction (`Dmin`).
    pub min_distance: f64,
    /// Upper distance restriction (`Dmax`; may be infinite).
    pub max_distance: f64,
    /// Estimated size of the distance-restricted node frontier: cross-tree
    /// root-child pairs within `Dmax`, scaled by the average objects per
    /// root child (see the module docs). `0.0` when a root is unreadable —
    /// the model then degrades to its cardinality terms.
    pub est_frontier: f64,
}

impl<const D: usize> PlanInputs<D> {
    /// Reads the statistics off two spatial indexes and a join config.
    /// Touches only index metadata plus the two root pages (for the
    /// frontier signal) — both cached, at most fanout² rectangle-distance
    /// evaluations, no further I/O.
    pub fn from_trees<I1, I2>(tree1: &I1, tree2: &I2, config: &JoinConfig) -> Self
    where
        I1: SpatialIndex<D> + ?Sized,
        I2: SpatialIndex<D> + ?Sized,
    {
        let bbox = match (tree1.root_region(), tree2.root_region()) {
            (Ok(r1), Ok(r2)) => Some(r1.union(&r2)),
            (Ok(r), _) | (_, Ok(r)) => Some(r),
            _ => None,
        };
        let extent = match bbox {
            Some(b) => std::array::from_fn(|a| (b.hi()[a] - b.lo()[a]).max(0.0)),
            None => [0.0; D],
        };
        Self {
            n1: tree1.len(),
            n2: tree2.len(),
            extent,
            max_pairs: config.max_pairs,
            min_distance: config.min_distance,
            max_distance: config.max_distance,
            est_frontier: est_frontier(tree1, tree2, config.max_distance),
        }
    }
}

/// Measures the top of the distance-restricted node frontier: the number
/// of cross-tree root-child pairs whose `mindist` is within `dmax`, scaled
/// by the average objects per root child of both sides. Both root pages
/// are cached (or one demand read each); an unreadable or empty root
/// yields `0.0`.
fn est_frontier<const D: usize, I1, I2>(tree1: &I1, tree2: &I2, dmax: f64) -> f64
where
    I1: SpatialIndex<D> + ?Sized,
    I2: SpatialIndex<D> + ?Sized,
{
    use sdj_geom::{Metric, SpatialObject};
    let (Ok(root1), Ok(root2)) = (
        tree1.read_node(tree1.root_id()),
        tree2.read_node(tree2.root_id()),
    ) else {
        return 0.0;
    };
    let (m1, m2) = (root1.entries.len(), root2.entries.len());
    if m1 == 0 || m2 == 0 {
        return 0.0;
    }
    let within = if dmax.is_finite() {
        root1
            .entries
            .iter()
            .flat_map(|e1| root2.entries.iter().map(move |e2| (e1, e2)))
            .filter(|(e1, e2)| e1.rect().min_distance(e2.rect(), Metric::Euclidean) <= dmax)
            .count()
    } else {
        m1 * m2
    };
    let per_child = tree1.len() as f64 / m1 as f64 + tree2.len() as f64 / m2 as f64;
    within as f64 * per_child
}

/// The planner's verdict: the chosen path plus the estimates behind it, so
/// reports can show *why* a path was picked.
#[derive(Clone, Copy, Debug)]
pub struct Plan {
    /// The cheaper path under the cost model.
    pub choice: PlanChoice,
    /// Estimated work units of the incremental path.
    pub est_incremental: f64,
    /// Estimated work units of the bulk path.
    pub est_bulk: f64,
    /// Estimated qualifying pairs under the `[Dmin, Dmax]` restriction
    /// (uniformity assumption).
    pub est_pairs: f64,
}

/// Fixed setup charge of the incremental path (queue plumbing, initial node
/// descents) in work units.
const INCREMENTAL_SETUP: f64 = 1_000.0;
/// Work units charged per unit of [`PlanInputs::est_frontier`]: the
/// `K`-independent cost of expanding the distance-restricted node frontier
/// (child decode, kernel distances, queue staging) that a restricted run
/// pays before early results can surface. Calibrated against
/// `BENCH_planner.json`'s 100k × 100k sweep, where the measured frontier
/// (`incremental_distance_calcs` at `K = 10`) is ~5M on uniform data
/// against an `est_frontier` of ~1.3M, and ~0.4M on clustered data against
/// ~0.8M.
const INCREMENTAL_PER_FRONTIER: f64 = 0.7;
/// Work units charged per produced pair per `log2(n)` queue level: each
/// result costs queue pushes/pops over entries whose heap depth scales
/// with the input size. Retuned (16 → 0.4) together with the frontier
/// term: the old constant absorbed the then-unmodelled frontier cost into
/// the per-pair slope, which over-penalised large-`K` runs on clustered
/// data.
const INCREMENTAL_PER_PAIR_LEVEL: f64 = 0.4;
/// Fixed setup charge of the bulk path: both trees must be fully harvested
/// and partitioned before the first result can be emitted, whereas the
/// incremental path can stop after its first descent.
const BULK_SETUP: f64 = 1_500.0;
/// Work units the bulk path pays per harvested entry (leaf read, grid
/// replication, sort amortisation).
const BULK_PER_ENTRY: f64 = 4.0;
/// Work units the bulk path pays per candidate pair inside sweep windows
/// (kernel evaluation plus dedup/range filtering).
const BULK_PER_PAIR: f64 = 2.0;

/// Result-cardinality estimate under a uniformity assumption: along each
/// axis a pair within distance `d` keeps its centre gap within `d`, a
/// window of width `2d` out of the axis extent. `Dmax = ∞` (or a
/// degenerate axis) caps the axis selectivity at 1, i.e. the full cross
/// product. `Dmin` only *removes* pairs and mostly near zero distance,
/// where few pairs live; the model ignores it for cardinality (it still
/// reaches the executors as a filter).
fn est_pairs_of<const D: usize>(inputs: &PlanInputs<D>) -> f64 {
    let mut selectivity = 1.0f64;
    for a in 0..D {
        let ext = inputs.extent[a];
        let f = if inputs.max_distance.is_finite() && ext > 0.0 {
            (2.0 * inputs.max_distance / ext).min(1.0)
        } else {
            1.0
        };
        selectivity *= f;
    }
    inputs.n1 as f64 * inputs.n2 as f64 * selectivity
}

/// The `SDJ_PLAN_BIAS` knob: a positive factor multiplied into the *static*
/// incremental estimate before the comparison in [`plan`]. A value below 1
/// makes the static planner over-favour the incremental path, above 1 the
/// bulk path — a deliberate mis-calibration used by tests and benchmarks to
/// exercise the adaptive driver's recovery from a wrong initial pick. The
/// checkpoint re-costing ([`replan`]) never applies it: recovery must come
/// from observed signals, not from un-biasing the same constant.
fn plan_bias() -> f64 {
    std::env::var("SDJ_PLAN_BIAS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|b| b.is_finite() && *b > 0.0)
        .unwrap_or(1.0)
}

/// Chooses the execution path for `inputs` under the cost model above.
/// The reported `est_incremental` includes any `SDJ_PLAN_BIAS` factor, so
/// the recorded estimates always explain the recorded choice.
#[must_use]
pub fn plan<const D: usize>(inputs: &PlanInputs<D>) -> Plan {
    plan_with_bias(inputs, plan_bias())
}

/// [`plan`] with an explicit bias factor (see [`plan_bias`]).
fn plan_with_bias<const D: usize>(inputs: &PlanInputs<D>, bias: f64) -> Plan {
    let n1 = inputs.n1 as f64;
    let n2 = inputs.n2 as f64;
    let est_pairs = est_pairs_of(inputs);

    // How many pairs the incremental consumer will actually pull.
    let k_eff = match inputs.max_pairs {
        Some(k) => (k as f64).min(est_pairs),
        None => est_pairs,
    };
    let n_max = n1.max(n2).max(2.0);
    let est_incremental = (INCREMENTAL_SETUP
        + INCREMENTAL_PER_FRONTIER * inputs.est_frontier
        + k_eff * INCREMENTAL_PER_PAIR_LEVEL * n_max.log2())
        * bias;
    let est_bulk = BULK_SETUP + (n1 + n2) * BULK_PER_ENTRY + est_pairs * BULK_PER_PAIR;

    let choice = if est_incremental <= est_bulk {
        PlanChoice::Incremental
    } else {
        PlanChoice::Bulk
    };
    Plan {
        choice,
        est_incremental,
        est_bulk,
        est_pairs,
    }
}

/// Live progress counters of a running incremental join, read at an
/// adaptive checkpoint. All are cheap: they come off [`crate::JoinStats`]
/// and the queue length, no instrumentation required.
#[derive(Clone, Copy, Debug)]
pub struct ObservedProgress {
    /// Pairs dequeued so far (the checkpoint clock).
    pub pops: u64,
    /// Results reported so far.
    pub results: u64,
    /// Pairs enqueued so far.
    pub enqueued: u64,
    /// Current queue length.
    pub queue_len: usize,
}

/// A checkpoint re-costing verdict: remaining-work estimates for both
/// paths, evaluated from *observed* inputs, plus the hysteresis decision.
#[derive(Clone, Copy, Debug)]
pub struct Replan {
    /// Estimated remaining work units of continuing incrementally.
    pub est_incremental_remaining: f64,
    /// Estimated work units of switching to a frontier-seeded bulk run.
    pub est_bulk_remaining: f64,
    /// The frontier estimate after the observed ratchet (see [`replan`]).
    pub observed_frontier: f64,
    /// True when bulk wins by at least the hysteresis margin.
    pub switch: bool,
}

/// Re-evaluates the cost model mid-run with observed inputs: the static
/// frontier estimate is ratcheted up by what the run has actually staged
/// (`enqueued + queue_len` pairs have *provably* entered the frontier — the
/// estimate can only grow, never shrink, so a too-optimistic static pick is
/// corrected but a correct one is not thrashed), work already performed is
/// subtracted from the incremental side, and the bulk side is charged its
/// full setup plus the not-yet-emitted result mass. The switch fires only
/// when the remaining incremental estimate exceeds the remaining bulk
/// estimate by the `hysteresis` factor (> 1), so a near-tie never replans.
#[must_use]
pub fn replan<const D: usize>(
    inputs: &PlanInputs<D>,
    observed: &ObservedProgress,
    hysteresis: f64,
) -> Replan {
    let n1 = inputs.n1 as f64;
    let n2 = inputs.n2 as f64;
    let est_pairs = est_pairs_of(inputs);
    let k_eff = match inputs.max_pairs {
        Some(k) => (k as f64).min(est_pairs),
        None => est_pairs,
    };
    let n_max = n1.max(n2).max(2.0);

    let staged = observed.enqueued as f64 + observed.queue_len as f64;
    let observed_frontier = inputs.est_frontier.max(staged);
    let frontier_remaining =
        (observed_frontier - observed.pops as f64).max(observed.queue_len as f64);
    let results_remaining = (k_eff - observed.results as f64).max(0.0);
    let est_incremental_remaining = INCREMENTAL_PER_FRONTIER * frontier_remaining
        + results_remaining * INCREMENTAL_PER_PAIR_LEVEL * n_max.log2();
    // The bulk side still pays everything: full harvest-scale setup (the
    // frontier's subtrees are most of both trees when a switch is worth
    // considering) and the whole remaining result mass.
    let est_bulk_remaining = BULK_SETUP
        + (n1 + n2) * BULK_PER_ENTRY
        + (est_pairs - observed.results as f64).max(0.0) * BULK_PER_PAIR;

    Replan {
        est_incremental_remaining,
        est_bulk_remaining,
        observed_frontier,
        switch: est_incremental_remaining > hysteresis * est_bulk_remaining,
    }
}

/// Convenience: [`PlanInputs::from_trees`] followed by [`plan`].
pub fn plan_for_trees<const D: usize, I1, I2>(tree1: &I1, tree2: &I2, config: &JoinConfig) -> Plan
where
    I1: SpatialIndex<D> + ?Sized,
    I2: SpatialIndex<D> + ?Sized,
{
    plan(&PlanInputs::from_trees(tree1, tree2, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100k × 100k uniform points on the unit box, `Dmax = 0.001`. The
    /// frontier value is the measured one for these trees (~267 of 1600
    /// root-child pairs within `Dmax`, 2500 objects per child per side).
    fn uniform_inputs() -> PlanInputs<2> {
        PlanInputs {
            n1: 100_000,
            n2: 100_000,
            extent: [1.0, 1.0],
            max_pairs: None,
            min_distance: 0.0,
            max_distance: 0.001,
            est_frontier: 1_335_000.0,
        }
    }

    #[test]
    fn tiny_k_prefers_incremental() {
        let inputs = PlanInputs {
            max_pairs: Some(10),
            max_distance: f64::INFINITY,
            ..uniform_inputs()
        };
        let p = plan(&inputs);
        assert_eq!(p.choice, PlanChoice::Incremental);
        assert!(p.est_incremental < p.est_bulk);
    }

    #[test]
    fn full_drain_prefers_bulk() {
        // No STOP AFTER: the consumer drains every within-range pair — the
        // incremental path would pay the queue log-factor on all of them.
        let p = plan(&uniform_inputs());
        assert_eq!(p.choice, PlanChoice::Bulk);
        // ~100k*100k*(0.002)^2 = 40k pairs estimated.
        assert!(p.est_pairs > 10_000.0 && p.est_pairs < 100_000.0);
    }

    #[test]
    fn wide_range_small_inputs_prefer_bulk() {
        let inputs = PlanInputs {
            n1: 2_000,
            n2: 2_000,
            extent: [1.0, 1.0],
            max_pairs: None,
            min_distance: 0.0,
            max_distance: f64::INFINITY,
            // Unbounded range: every root-child pair is on the frontier
            // (40 × 40 pairs, 50 objects per leaf-level child per side).
            est_frontier: 160_000.0,
        };
        let p = plan(&inputs);
        assert_eq!(p.choice, PlanChoice::Bulk);
        // Unbounded Dmax means the full cross product qualifies.
        assert!((p.est_pairs - 4_000_000.0).abs() < 1.0);
    }

    #[test]
    fn large_k_on_large_inputs_crosses_to_bulk() {
        // K = 100k of an estimated ~40k-pair result: k_eff saturates at the
        // drain, so the decision matches the full-drain case.
        let inputs = PlanInputs {
            max_pairs: Some(100_000),
            ..uniform_inputs()
        };
        assert_eq!(plan(&inputs).choice, PlanChoice::Bulk);
    }

    #[test]
    fn dmin_only_restriction_is_a_drain() {
        // A pure Dmin restriction removes almost nothing from the estimate:
        // still a full-drain bulk pick.
        let inputs = PlanInputs {
            min_distance: 0.5,
            max_distance: f64::INFINITY,
            ..uniform_inputs()
        };
        assert_eq!(plan(&inputs).choice, PlanChoice::Bulk);
    }

    #[test]
    fn empty_inputs_prefer_incremental() {
        let inputs = PlanInputs::<2> {
            n1: 0,
            n2: 0,
            extent: [0.0, 0.0],
            max_pairs: None,
            min_distance: 0.0,
            max_distance: f64::INFINITY,
            est_frontier: 0.0,
        };
        // Nothing to do either way; the tie-break keeps the streaming path.
        assert_eq!(plan(&inputs).choice, PlanChoice::Incremental);
    }

    #[test]
    fn choice_names_are_stable() {
        assert_eq!(PlanChoice::Incremental.as_str(), "incremental");
        assert_eq!(PlanChoice::Bulk.as_str(), "bulk");
        assert_eq!(PlanChoice::Bulk.to_string(), "bulk");
        assert_eq!(PlanChoice::Adaptive.as_str(), "adaptive");
    }

    #[test]
    fn bias_flips_the_static_choice_only() {
        // The full-drain point picks bulk unbiased; a bias favouring the
        // incremental side flips the static choice (the mis-calibration
        // knob), but the checkpoint re-costing still says switch.
        let inputs = uniform_inputs();
        assert_eq!(plan_with_bias(&inputs, 1.0).choice, PlanChoice::Bulk);
        assert_eq!(plan_with_bias(&inputs, 0.1).choice, PlanChoice::Incremental);
        let observed = ObservedProgress {
            pops: 4096,
            results: 0,
            enqueued: 8000,
            queue_len: 6000,
        };
        assert!(replan(&inputs, &observed, 1.05).switch);
    }

    #[test]
    fn replan_switches_on_a_drain_heavy_run() {
        // Early checkpoint of the uniform full drain: almost all frontier
        // work is still ahead, the remaining-result mass is the whole
        // result set — bulk wins by more than the hysteresis margin.
        let r = replan(
            &uniform_inputs(),
            &ObservedProgress {
                pops: 4096,
                results: 10,
                enqueued: 9000,
                queue_len: 7000,
            },
            1.05,
        );
        assert!(r.switch);
        assert!(r.est_incremental_remaining > r.est_bulk_remaining);
    }

    #[test]
    fn replan_holds_on_a_cheap_frontier() {
        // Clustered-workload shape: the frontier estimate is well below the
        // bulk side's harvest cost, so no checkpoint ever switches — even
        // deep into the run.
        let inputs = PlanInputs {
            est_frontier: 600_000.0,
            ..uniform_inputs()
        };
        for pops in [0u64, 4096, 100_000, 500_000] {
            let r = replan(
                &inputs,
                &ObservedProgress {
                    pops,
                    results: (pops / 20).min(30_000),
                    enqueued: pops / 2,
                    queue_len: 4000,
                },
                1.05,
            );
            assert!(!r.switch, "spurious switch at {pops} pops");
        }
    }

    #[test]
    fn replan_ratchet_only_raises_the_frontier() {
        // Observed staging below the static estimate leaves it untouched;
        // above it, the estimate grows to match what provably entered.
        let inputs = uniform_inputs();
        let low = replan(
            &inputs,
            &ObservedProgress {
                pops: 0,
                results: 0,
                enqueued: 10,
                queue_len: 10,
            },
            1.05,
        );
        assert!((low.observed_frontier - inputs.est_frontier).abs() < 1e-9);
        let high = replan(
            &inputs,
            &ObservedProgress {
                pops: 0,
                results: 0,
                enqueued: 2_000_000,
                queue_len: 50_000,
            },
            1.05,
        );
        assert!((high.observed_frontier - 2_050_000.0).abs() < 1e-9);
    }
}
