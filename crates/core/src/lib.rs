//! Incremental distance join algorithms for spatial databases.
//!
//! This crate implements the two operations introduced by Hjaltason & Samet
//! (SIGMOD 1998) and the full design space their evaluation explores:
//!
//! * **Distance join** ([`DistanceJoin::new`]): the Cartesian product of two
//!   spatially indexed relations, streamed in order of the distance between
//!   the joined objects.
//! * **Distance semi-join** ([`DistanceJoin::semi`]): for each object of the
//!   first relation, its nearest partner in the second, streamed in distance
//!   order — a database-primitive clustering / discrete-Voronoi operation.
//!
//! Both are *incremental*: results are produced one at a time from a
//! priority queue of index-item pairs, so a pipelined consumer that stops
//! after `k` results pays only for what it consumed.
//!
//! The knobs of the paper's §2.2–§2.3 are all exposed through
//! [`JoinConfig`] and [`SemiConfig`]:
//!
//! | Paper concept | Here |
//! |---|---|
//! | tie-breaking (§2.2.2) | [`TiePolicy`] |
//! | node/node processing (§2.2.2) | [`TraversalPolicy`] |
//! | distance range (§2.2.3) | [`JoinConfig::with_range`] |
//! | max-distance estimation (§2.2.4) | [`JoinConfig::with_max_pairs`], [`EstimationBound`] |
//! | reverse ordering (§2.2.5) | [`ResultOrder::Descending`] |
//! | hybrid queue (§3.2) | [`QueueBackend::Hybrid`] |
//! | semi-join filtering (§4.2.1) | [`SemiFilter`] |
//! | semi-join d_max pruning (§4.2.1) | [`DmaxStrategy`] |
//!
//! # Example
//!
//! ```
//! use sdj_core::{DistanceJoin, JoinConfig};
//! use sdj_geom::Point;
//! use sdj_rtree::{ObjectId, RTree, RTreeConfig};
//!
//! let mut stores = RTree::new(RTreeConfig::small(8));
//! let mut warehouses = RTree::new(RTreeConfig::small(8));
//! for i in 0..100u64 {
//!     let p = Point::xy((i % 10) as f64, (i / 10) as f64);
//!     stores.insert(ObjectId(i), p.to_rect()).unwrap();
//! }
//! for i in 0..5u64 {
//!     let p = Point::xy(2.0 * i as f64, 5.0);
//!     warehouses.insert(ObjectId(i), p.to_rect()).unwrap();
//! }
//!
//! // The three closest (store, warehouse) pairs.
//! let closest: Vec<_> = DistanceJoin::new(&stores, &warehouses, JoinConfig::default())
//!     .take(3)
//!     .collect();
//! assert_eq!(closest.len(), 3);
//! assert!(closest[0].distance <= closest[1].distance);
//! ```

pub mod adaptive;
pub mod apps;
mod bound;
pub mod bulk;
mod config;
mod estimate;
pub mod index;
pub mod intersect;
mod join;
pub mod nn;
mod obs;
mod oracle;
mod pair;
pub mod plan;
mod queue;
mod semi;
mod slab;
mod stats;
mod view;

pub use adaptive::{
    AdaptiveConfig, AdaptiveCursor, AdaptiveDistanceJoin, AdaptiveOutcome, AdaptiveRun, Handoff,
    ReplanInfo, ReplanSignals,
};
pub use bound::SharedDistanceBound;
pub use bulk::{BulkConfig, BulkDistanceJoin, BulkHit, BulkStats, CellScratch, CellTally};
pub use config::{
    EstimationBound, ExpansionPath, JoinConfig, KeyDomain, QueueBackend, QueueLayout, ResultOrder,
    TiePolicy, TraversalPolicy,
};
pub use estimate::{Estimator, EstimatorMode};
pub use index::{IndexEntry, IndexNode, NodeId, SpatialIndex};
pub use intersect::{IntersectionPair, OrderedIntersectionJoin};
pub use join::{DistanceJoin, DistanceSemiJoin, EmissionWatermark, JoinFrontier, ResultPair};
pub use nn::{nearest_neighbors, IndexNearestNeighbors, IndexNeighbor};
pub use obs::JoinObs;
pub use oracle::{DistanceOracle, MbrOracle, SliceOracle};
pub use pair::{Item, ItemId, Pair, PairKey};
pub use plan::{plan, plan_for_trees, Plan, PlanChoice, PlanInputs};
pub use queue::JoinQueue;
pub use semi::{DmaxStrategy, SeenSet, SemiConfig, SemiFilter};
pub use slab::{ItemArena, PackedPair};
pub use stats::JoinStats;
