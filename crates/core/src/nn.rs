//! Index-generic incremental nearest-neighbour search.
//!
//! The Hjaltason–Samet nearest-neighbour algorithm (the single-tree parent
//! of the distance join, §2.2) expressed over the [`SpatialIndex`] trait:
//! one priority queue of nodes and objects keyed by MINDIST to the query
//! point. `sdj-rtree` ships its own specialised iterator; this one runs over
//! *any* index implementing the trait — in particular the PR quadtree.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sdj_geom::{KeySpace, Metric, OrdF64, Point, Rect, SoaRects};
use sdj_rtree::ObjectId;
use sdj_storage::StorageError;

use crate::index::{IndexEntry, IndexNode, NodeId, SpatialIndex};

/// One result of the generic nearest-neighbour iterator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexNeighbor<const D: usize> {
    /// The neighbour's object id.
    pub oid: ObjectId,
    /// The neighbour's bounding rectangle.
    pub mbr: Rect<D>,
    /// Distance from the query point.
    pub distance: f64,
}

enum QueueItem<const D: usize> {
    Node(NodeId),
    Object(ObjectId, Rect<D>),
}

struct Elem<const D: usize> {
    key: OrdF64,
    object_first: bool,
    seq: u64,
    item: QueueItem<D>,
}

impl<const D: usize> PartialEq for Elem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<const D: usize> Eq for Elem<D> {}
impl<const D: usize> PartialOrd for Elem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for Elem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| self.object_first.cmp(&other.object_first))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Iterator yielding an index's objects in increasing distance from a query
/// point.
pub struct IndexNearestNeighbors<'a, const D: usize, I: SpatialIndex<D>> {
    index: &'a I,
    query: Point<D>,
    /// Sqrt-free key domain of the metric: heap keys are squared distances
    /// under Euclidean, converted back once per reported neighbour.
    keys: KeySpace,
    heap: BinaryHeap<Elem<D>>,
    seq: u64,
    /// Reusable node buffer: expansions stream pages into it instead of
    /// allocating a fresh entry vector per read.
    node_scratch: IndexNode<D>,
    /// Struct-of-arrays copy of the scratch node's entry rectangles — the
    /// operand of the batched point-MINDIST kernel.
    soa: SoaRects<D>,
    /// Key output column of the batched kernel, reused across expansions.
    keys_buf: Vec<f64>,
    error: Option<StorageError>,
}

impl<'a, const D: usize, I: SpatialIndex<D>> IndexNearestNeighbors<'a, D, I> {
    /// Starts a search from `query`.
    #[must_use]
    pub fn new(index: &'a I, query: Point<D>, metric: Metric) -> Self {
        let mut nn = Self {
            index,
            query,
            keys: KeySpace::squared(metric),
            heap: BinaryHeap::new(),
            seq: 0,
            node_scratch: IndexNode::empty(),
            soa: SoaRects::new(),
            keys_buf: Vec::new(),
            error: None,
        };
        if !index.is_empty() {
            nn.push(OrdF64::ZERO, QueueItem::Node(index.root_id()));
        }
        nn
    }

    fn push(&mut self, key: OrdF64, item: QueueItem<D>) {
        let object_first = matches!(item, QueueItem::Object(..));
        self.heap.push(Elem {
            key,
            object_first,
            seq: self.seq,
            item,
        });
        self.seq += 1;
    }

    /// Takes a pending error, if iteration stopped because of one.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    fn step(&mut self) -> sdj_storage::Result<Option<IndexNeighbor<D>>> {
        while let Some(elem) = self.heap.pop() {
            match elem.item {
                QueueItem::Object(oid, mbr) => {
                    return Ok(Some(IndexNeighbor {
                        oid,
                        mbr,
                        // The only key → distance conversion: one sqrt per
                        // reported neighbour under the squared domain.
                        distance: self.keys.to_distance(elem.key.get()),
                    }));
                }
                QueueItem::Node(id) => {
                    // Stream the page into the reusable scratch buffers,
                    // then key all children in one batched kernel pass.
                    let mut node = std::mem::take(&mut self.node_scratch);
                    let mut soa = std::mem::take(&mut self.soa);
                    let mut kbuf = std::mem::take(&mut self.keys_buf);
                    let read = self.index.read_node_into(id, &mut node);
                    if read.is_ok() {
                        soa.clear();
                        for e in &node.entries {
                            soa.push(e.rect());
                        }
                        kbuf.clear();
                        soa.point_mindist_keys(self.keys, &self.query, 0..soa.len(), &mut kbuf);
                        for (entry, &k) in node.entries.iter().zip(&kbuf) {
                            let item = match entry {
                                IndexEntry::Object { oid, mbr } => QueueItem::Object(*oid, *mbr),
                                IndexEntry::Child { id, .. } => QueueItem::Node(*id),
                            };
                            self.push(OrdF64::new(k), item);
                        }
                    }
                    self.node_scratch = node;
                    self.soa = soa;
                    self.keys_buf = kbuf;
                    read?;
                }
            }
        }
        Ok(None)
    }
}

impl<const D: usize, I: SpatialIndex<D>> Iterator for IndexNearestNeighbors<'_, D, I> {
    type Item = IndexNeighbor<D>;

    fn next(&mut self) -> Option<IndexNeighbor<D>> {
        match self.step() {
            Ok(n) => n,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// Convenience: starts a nearest-neighbour scan over any spatial index.
#[must_use]
pub fn nearest_neighbors<const D: usize, I: SpatialIndex<D>>(
    index: &I,
    query: Point<D>,
    metric: Metric,
) -> IndexNearestNeighbors<'_, D, I> {
    IndexNearestNeighbors::new(index, query, metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_rtree::{RTree, RTreeConfig};

    #[test]
    fn generic_nn_over_rtree_matches_specialised() {
        let mut tree = RTree::new(RTreeConfig::small(5));
        let pts: Vec<Point<2>> = (0..150)
            .map(|i| Point::xy(((i * 37) % 101) as f64, ((i * 73) % 89) as f64))
            .collect();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
        }
        let q = Point::xy(42.0, 17.0);
        let generic: Vec<f64> = nearest_neighbors(&tree, q, Metric::Euclidean)
            .take(40)
            .map(|n| n.distance)
            .collect();
        let specialised: Vec<f64> = tree
            .nearest_neighbors(q, Metric::Euclidean)
            .take(40)
            .map(|n| n.distance)
            .collect();
        assert_eq!(generic, specialised);
    }

    #[test]
    fn empty_index_yields_nothing() {
        let tree: RTree<2> = RTree::new(RTreeConfig::small(4));
        assert_eq!(
            nearest_neighbors(&tree, Point::xy(0.0, 0.0), Metric::Euclidean).count(),
            0
        );
    }
}
