//! The index abstraction the join algorithms traverse.
//!
//! §2.2: "the algorithm works for any spatial data structure based on a
//! hierarchical decomposition … we assume a spatial data structure that
//! forms a tree structure, where each tree node represents some region of
//! space". [`SpatialIndex`] captures exactly that contract; `sdj-rtree`'s
//! R*-tree implements it here, and `sdj-quadtree`'s PR quadtree implements
//! it in its own crate — including *mixed* joins of one index kind against
//! another.
//!
//! One subtlety the paper calls out (§2.2.3): MINMAXDIST-style upper bounds
//! are only valid over *minimal* bounding rectangles, where every face
//! touches an object. R-tree regions are minimal; quadtree quadrants are
//! not. [`SpatialIndex::MINIMAL_REGIONS`] lets the join fall back to plain
//! MAXDIST bounds when node regions give no face guarantee.

use sdj_geom::Rect;
use sdj_rtree::{EntryPtr, ObjectId, PageId, RTree};
use sdj_storage::Result;

/// Opaque node identifier within an index (page numbers for the provided
/// implementations).
pub type NodeId = u64;

/// One entry of a traversed node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IndexEntry<const D: usize> {
    /// A child node, with the region its subtree is confined to.
    Child {
        /// The child's node id.
        id: NodeId,
        /// The child's level (see [`IndexNode::level`]).
        level: u8,
        /// Region covered by the child's subtree.
        region: Rect<D>,
    },
    /// An object, with its minimal bounding rectangle.
    Object {
        /// The object's id.
        oid: ObjectId,
        /// The object's minimal bounding rectangle.
        mbr: Rect<D>,
    },
}

impl<const D: usize> IndexEntry<D> {
    /// The entry's rectangle (child region or object MBR).
    #[must_use]
    pub fn rect(&self) -> &Rect<D> {
        match self {
            IndexEntry::Child { region, .. } => region,
            IndexEntry::Object { mbr, .. } => mbr,
        }
    }

    /// The object id, for object entries.
    #[must_use]
    pub fn object_id(&self) -> Option<ObjectId> {
        match self {
            IndexEntry::Object { oid, .. } => Some(*oid),
            IndexEntry::Child { .. } => None,
        }
    }
}

/// A traversed node: its level and entries.
///
/// Levels only need two properties: `0` means "all entries are objects",
/// and levels strictly decrease from parent to child — the join's
/// tie-breaking (depth-first vs breadth-first) and even traversal compare
/// them, nothing else does. Balanced structures use height above the leaves;
/// unbalanced ones may use any monotone encoding of shallowness.
#[derive(Clone, Debug)]
pub struct IndexNode<const D: usize> {
    /// Node level (0 = all-object node).
    pub level: u8,
    /// The node's entries.
    pub entries: Vec<IndexEntry<D>>,
}

impl<const D: usize> IndexNode<D> {
    /// An empty level-0 node — the starting state of a reusable read buffer
    /// for [`SpatialIndex::read_node_into`].
    #[must_use]
    pub fn empty() -> Self {
        Self {
            level: 0,
            entries: Vec::new(),
        }
    }
}

impl<const D: usize> Default for IndexNode<D> {
    fn default() -> Self {
        Self::empty()
    }
}

/// A hierarchical spatial index traversable by the incremental join.
pub trait SpatialIndex<const D: usize> {
    /// Whether node regions are minimal bounding rectangles (every face
    /// touched by an object). Enables MINMAXDIST-based bounds.
    const MINIMAL_REGIONS: bool;

    /// True if the index holds no objects.
    fn is_empty(&self) -> bool;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// The root node's id.
    fn root_id(&self) -> NodeId;

    /// The root node's level.
    fn root_level(&self) -> u8;

    /// The region of the root (the whole index's bounding region).
    fn root_region(&self) -> Result<Rect<D>>;

    /// Reads a node.
    fn read_node(&self, id: NodeId) -> Result<IndexNode<D>>;

    /// Reads a node into a caller-provided buffer, reusing its allocations.
    ///
    /// The expansion hot path reads one node per pop; this variant lets
    /// implementations decode straight into `out.entries` (the R-tree
    /// streams entries off the page buffer) instead of allocating a fresh
    /// `Vec` per read. The default delegates to [`SpatialIndex::read_node`].
    fn read_node_into(&self, id: NodeId, out: &mut IndexNode<D>) -> Result<()> {
        *out = self.read_node(id)?;
        Ok(())
    }

    /// A conservative lower bound on the objects in the subtree of a node
    /// at `level` (1 is always safe for a non-empty subtree).
    fn min_subtree_objects(&self, level: u8, is_root: bool) -> u64;

    /// Cumulative buffer misses (the node I/O measure); used to report
    /// per-run deltas.
    fn io_misses(&self) -> u64;

    /// Hints that the given nodes are likely to be read soon.
    ///
    /// Implementations backed by a buffer pool fault absent pages in and
    /// count them as *prefetch reads*, never as demand misses, so hinting
    /// must not perturb [`SpatialIndex::io_misses`]. Best-effort: hints may
    /// be ignored (the default does exactly that) and stale ids must not
    /// fail the join.
    fn prefetch_nodes(&self, _ids: &[NodeId]) {}
}

/// Chunk size for translating [`NodeId`] hints into page-id batches without
/// allocating.
const PREFETCH_CHUNK: usize = 16;

impl<const D: usize> SpatialIndex<D> for RTree<D> {
    const MINIMAL_REGIONS: bool = true;

    fn is_empty(&self) -> bool {
        RTree::is_empty(self)
    }

    fn len(&self) -> usize {
        RTree::len(self)
    }

    fn root_id(&self) -> NodeId {
        NodeId::from(RTree::root_id(self).0)
    }

    fn root_level(&self) -> u8 {
        self.height() - 1
    }

    fn root_region(&self) -> Result<Rect<D>> {
        self.mbr()
    }

    fn read_node(&self, id: NodeId) -> Result<IndexNode<D>> {
        let mut out = IndexNode::empty();
        SpatialIndex::read_node_into(self, id, &mut out)?;
        Ok(out)
    }

    fn read_node_into(&self, id: NodeId, out: &mut IndexNode<D>) -> Result<()> {
        // Node ids come from decoded pages; an out-of-range one means the
        // page was damaged, not a programming error.
        let page =
            PageId(u32::try_from(id).map_err(|_| {
                sdj_storage::StorageError::Corrupt("node id exceeds u32 page range")
            })?);
        out.entries.clear();
        let entries = &mut out.entries;
        out.level = self.scan_node(page, |level, e| {
            entries.push(match e.ptr {
                EntryPtr::Object(oid) => IndexEntry::Object { oid, mbr: e.mbr },
                EntryPtr::Child(child) => IndexEntry::Child {
                    id: NodeId::from(child.0),
                    level: level - 1,
                    region: e.mbr,
                },
            });
        })?;
        Ok(())
    }

    fn min_subtree_objects(&self, level: u8, is_root: bool) -> u64 {
        RTree::min_subtree_objects(self, level, is_root)
    }

    fn io_misses(&self) -> u64 {
        self.io_stats().misses
    }

    fn prefetch_nodes(&self, ids: &[NodeId]) {
        // Prefetching is best-effort by contract ("stale ids must not fail
        // the join"), so ids that don't fit a u32 page are skipped, not
        // reported.
        let mut pages = [PageId::INVALID; PREFETCH_CHUNK];
        for chunk in ids.chunks(PREFETCH_CHUNK) {
            let mut n = 0;
            for &id in chunk {
                if let Ok(page) = u32::try_from(id) {
                    pages[n] = PageId(page);
                    n += 1;
                }
            }
            if n > 0 {
                self.prefetch_pages(&pages[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Point;
    use sdj_rtree::RTreeConfig;

    #[test]
    fn rtree_implements_spatial_index() {
        let mut tree = RTree::new(RTreeConfig::small(4));
        for i in 0..40u64 {
            let p = Point::xy((i % 8) as f64, (i / 8) as f64);
            tree.insert(ObjectId(i), p.to_rect()).unwrap();
        }
        // Call through the trait explicitly (the inherent R-tree methods
        // would otherwise shadow it).
        fn as_index<const D: usize, I: SpatialIndex<D>>(i: &I) -> &I {
            i
        }
        let idx = as_index::<2, _>(&tree);
        assert_eq!(SpatialIndex::len(idx), 40);
        assert!(!SpatialIndex::is_empty(idx));
        let root = SpatialIndex::read_node(idx, SpatialIndex::root_id(idx)).unwrap();
        assert_eq!(root.level, SpatialIndex::root_level(idx));
        assert!(!root.entries.is_empty());
        // Walk to a leaf and check object entries appear at level 0.
        let mut node = root;
        while node.level > 0 {
            let IndexEntry::Child { id, level, .. } = node.entries[0] else {
                panic!("internal node with object entry");
            };
            assert_eq!(level, node.level - 1);
            node = SpatialIndex::read_node(idx, id).unwrap();
            assert_eq!(node.level, level);
        }
        assert!(node
            .entries
            .iter()
            .all(|e| matches!(e, IndexEntry::Object { .. })));
    }
}
