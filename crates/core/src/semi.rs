//! Distance semi-join bookkeeping (§2.3, evaluated in §4.2).
//!
//! A distance semi-join reports, for each object of the first relation, its
//! closest partner in the second — i.e. it is the distance join with pairs
//! `(o1, o2)` suppressed once some pair led by `o1` has been reported. The
//! knobs evaluated in §4.2.1 are *where* that suppression happens
//! ([`SemiFilter`]) and how aggressively known upper bounds on each
//! first-item's nearest-partner distance prune the queue
//! ([`DmaxStrategy`]).

use std::collections::HashMap;

use crate::pair::ItemId;

/// Where already-reported first objects are filtered out (§4.2.1, Figure 9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SemiFilter {
    /// Run the distance join unchanged; drop duplicates only as results
    /// emerge from the algorithm.
    Outside,
    /// Additionally drop dequeued pairs whose first item is an already
    /// reported object (filtering in `INC_DIST_JOIN`).
    Inside1,
    /// Additionally skip already-reported objects while expanding nodes
    /// (filtering in `PROCESS_NODE1` too) — the paper's best filter.
    #[default]
    Inside2,
}

/// How `d_max` upper bounds are exploited to prune pairs (§4.2.1). All
/// strategies imply [`SemiFilter::Inside2`] filtering, as in the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DmaxStrategy {
    /// No `d_max` pruning.
    None,
    /// While expanding the second item of a pair `(i1, n2)`: the nearest
    /// partner of `i1` is within the smallest child `d_max`, so sibling
    /// children farther than that are skipped.
    #[default]
    Local,
    /// `Local`, plus a global table of the smallest known `d_max` for every
    /// *node* of the first index, inherited by its children.
    GlobalNodes,
    /// `GlobalNodes`, plus the same table for first-index objects.
    GlobalAll,
}

/// Configuration of a distance semi-join run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SemiConfig {
    /// Duplicate-suppression placement.
    pub filter: SemiFilter,
    /// Upper-bound pruning strategy.
    pub dmax: DmaxStrategy,
}

/// A growable bit set over object ids — the paper's "bit string
/// representation" of the reported set `S` (§3.2).
#[derive(Clone, Debug, Default)]
pub struct SeenSet {
    bits: Vec<u64>,
    len: usize,
}

impl SeenSet {
    /// Creates an empty set with capacity hints for `n` object ids.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            bits: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// True if `oid` has been inserted.
    #[must_use]
    pub fn contains(&self, oid: u64) -> bool {
        let word = (oid / 64) as usize;
        self.bits
            .get(word)
            .is_some_and(|w| w & (1 << (oid % 64)) != 0)
    }

    /// Inserts `oid`; returns true if it was new.
    pub fn insert(&mut self, oid: u64) -> bool {
        let word = (oid / 64) as usize;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1 << (oid % 64);
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.len += 1;
        true
    }

    /// Number of inserted ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Mutable semi-join state carried by the join iterator.
pub(crate) struct SemiState {
    pub config: SemiConfig,
    /// Objects of the first relation already reported (the paper's `S`).
    pub seen: SeenSet,
    /// Smallest known nearest-partner upper bound per first-index item
    /// (`GlobalNodes` keeps nodes only; `GlobalAll` also objects).
    pub bounds: HashMap<ItemId, f64>,
}

impl SemiState {
    pub fn new(config: SemiConfig, first_len: usize) -> Self {
        Self {
            config,
            seen: SeenSet::with_capacity(first_len),
            bounds: HashMap::new(),
        }
    }

    /// Does the configuration filter dequeued pairs (`Inside1`/`Inside2`)?
    pub fn filters_on_dequeue(&self) -> bool {
        !matches!(self.config.filter, SemiFilter::Outside)
    }

    /// Does the configuration filter during node expansion (`Inside2`)?
    pub fn filters_on_expand(&self) -> bool {
        matches!(self.config.filter, SemiFilter::Inside2)
    }

    /// The global upper bound applicable to pairs led by `item1`, if the
    /// strategy tracks it. Bounds live in the join's key domain (squared
    /// distances under the default Euclidean configuration): the engine
    /// stores and compares them against MINDIST keys without conversion.
    pub fn bound_for(&self, item1: ItemId) -> Option<f64> {
        match (self.config.dmax, item1) {
            (DmaxStrategy::GlobalNodes, ItemId::Node(_)) | (DmaxStrategy::GlobalAll, _) => {
                self.bounds.get(&item1).copied()
            }
            _ => None,
        }
    }

    /// Records a (possibly improved) upper bound for `item1`. Returns true
    /// when the stored bound actually changed (a new entry, or a strictly
    /// tighter one) — the join counts these as `d_max` tightenings.
    pub fn update_bound(&mut self, item1: ItemId, bound: f64) -> bool {
        let tracked = matches!(
            (self.config.dmax, item1),
            (DmaxStrategy::GlobalNodes, ItemId::Node(_)) | (DmaxStrategy::GlobalAll, _)
        );
        if !tracked || !bound.is_finite() {
            return false;
        }
        match self.bounds.entry(item1) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if bound < *e.get() {
                    *e.get_mut() = bound;
                    true
                } else {
                    false
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(bound);
                true
            }
        }
    }

    /// Uses `Local` (or stronger) bounding during expansion?
    pub fn uses_local_bound(&self) -> bool {
        !matches!(self.config.dmax, DmaxStrategy::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seen_set_basics() {
        let mut s = SeenSet::with_capacity(10);
        assert!(!s.contains(3));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn seen_set_grows_past_capacity() {
        let mut s = SeenSet::with_capacity(1);
        assert!(s.insert(1_000_000));
        assert!(s.contains(1_000_000));
        assert!(!s.contains(999_999));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn seen_set_dense_usage() {
        let mut s = SeenSet::with_capacity(128);
        for i in 0..128 {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 128);
        assert!((0..128).all(|i| s.contains(i)));
        assert!(!s.contains(128));
    }

    #[test]
    fn bound_tracking_respects_strategy() {
        let mut st = SemiState::new(
            SemiConfig {
                filter: SemiFilter::Inside2,
                dmax: DmaxStrategy::GlobalNodes,
            },
            10,
        );
        st.update_bound(ItemId::Node(1), 5.0);
        st.update_bound(ItemId::Object(1), 5.0);
        assert_eq!(st.bound_for(ItemId::Node(1)), Some(5.0));
        assert_eq!(st.bound_for(ItemId::Object(1)), None, "nodes-only strategy");
        st.update_bound(ItemId::Node(1), 3.0);
        assert_eq!(st.bound_for(ItemId::Node(1)), Some(3.0));
        st.update_bound(ItemId::Node(1), 9.0);
        assert_eq!(st.bound_for(ItemId::Node(1)), Some(3.0), "never loosens");
    }

    #[test]
    fn global_all_tracks_objects_too() {
        let mut st = SemiState::new(
            SemiConfig {
                filter: SemiFilter::Inside2,
                dmax: DmaxStrategy::GlobalAll,
            },
            10,
        );
        st.update_bound(ItemId::Object(7), 2.5);
        assert_eq!(st.bound_for(ItemId::Object(7)), Some(2.5));
    }

    #[test]
    fn infinite_bounds_are_not_stored() {
        let mut st = SemiState::new(
            SemiConfig {
                filter: SemiFilter::Inside2,
                dmax: DmaxStrategy::GlobalAll,
            },
            10,
        );
        st.update_bound(ItemId::Object(7), f64::INFINITY);
        assert_eq!(st.bound_for(ItemId::Object(7)), None);
    }
}
