//! Ready-made applications of the incremental distance join (§1 of the
//! paper): closest pair, k closest pairs, all nearest neighbours, and the
//! discrete-Voronoi clustering assignment.
//!
//! "A variation of our incremental distance join algorithm can be used to
//! compute intersecting pairs, closest pair, and all nearest neighbors in a
//! set of objects" — each function here is a thin, correctly configured
//! wrapper over [`DistanceJoin`].

use std::collections::HashMap;

use sdj_geom::Metric;
use sdj_rtree::{ObjectId, RTree};

use crate::config::JoinConfig;
use crate::join::{DistanceJoin, ResultPair};
use crate::semi::{DmaxStrategy, SemiConfig, SemiFilter};

fn best_semi() -> SemiConfig {
    SemiConfig {
        filter: SemiFilter::Inside2,
        dmax: DmaxStrategy::GlobalAll,
    }
}

/// The closest pair of objects between two indexes, if both are non-empty.
#[must_use]
pub fn closest_pair<const D: usize>(
    tree1: &RTree<D>,
    tree2: &RTree<D>,
    metric: Metric,
) -> Option<ResultPair> {
    let config = JoinConfig {
        metric,
        ..JoinConfig::default()
    }
    .with_max_pairs(1);
    DistanceJoin::new(tree1, tree2, config).next()
}

/// The `k` closest pairs between two indexes, in ascending distance order.
#[must_use]
pub fn k_closest_pairs<const D: usize>(
    tree1: &RTree<D>,
    tree2: &RTree<D>,
    metric: Metric,
    k: u64,
) -> Vec<ResultPair> {
    let config = JoinConfig {
        metric,
        ..JoinConfig::default()
    }
    .with_max_pairs(k);
    DistanceJoin::new(tree1, tree2, config).collect()
}

/// The closest pair *within* one index (self-join, self-pairs excluded).
#[must_use]
pub fn closest_pair_within<const D: usize>(tree: &RTree<D>, metric: Metric) -> Option<ResultPair> {
    let config = JoinConfig {
        metric,
        exclude_equal_ids: true,
        ..JoinConfig::default()
    }
    .with_max_pairs(1);
    DistanceJoin::new(tree, tree, config).next()
}

/// All nearest neighbours within one index: for every object, its nearest
/// *other* object, streamed in ascending distance order (a self semi-join
/// with self-pairs excluded).
#[must_use]
pub fn all_nearest_neighbors<const D: usize>(tree: &RTree<D>, metric: Metric) -> Vec<ResultPair> {
    let config = JoinConfig {
        metric,
        exclude_equal_ids: true,
        ..JoinConfig::default()
    };
    DistanceJoin::semi(tree, tree, config, best_semi()).collect()
}

/// Discrete-Voronoi clustering (the stores/warehouses example of §1):
/// assigns every object of `objects` to its nearest site in `sites`,
/// returning `assignment[&oid] = site id`. Object ids may be arbitrary —
/// the assignment is keyed, not positional, so sparse ids (as produced by
/// insert/delete workloads) work and never panic.
#[must_use]
pub fn voronoi_assignment<const D: usize>(
    objects: &RTree<D>,
    sites: &RTree<D>,
    metric: Metric,
) -> HashMap<ObjectId, ObjectId> {
    let config = JoinConfig {
        metric,
        ..JoinConfig::default()
    };
    let mut assignment = HashMap::with_capacity(objects.len());
    for pair in DistanceJoin::semi(objects, sites, config, best_semi()) {
        assignment.entry(pair.oid1).or_insert(pair.oid2);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Point;
    use sdj_rtree::RTreeConfig;

    fn tree(pts: &[(f64, f64)]) -> RTree<2> {
        let mut t = RTree::new(RTreeConfig::small(4));
        for (i, (x, y)) in pts.iter().enumerate() {
            t.insert(ObjectId(i as u64), Point::xy(*x, *y).to_rect())
                .unwrap();
        }
        t
    }

    #[test]
    fn closest_pair_between_two_sets() {
        let a = tree(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = tree(&[(0.0, 1.0), (50.0, 50.0)]);
        let best = closest_pair(&a, &b, Metric::Euclidean).unwrap();
        assert_eq!(best.oid1, ObjectId(0));
        assert_eq!(best.oid2, ObjectId(0));
        assert_eq!(best.distance, 1.0);
    }

    #[test]
    fn k_closest_pairs_ordered() {
        let a = tree(&[(0.0, 0.0), (5.0, 0.0)]);
        let b = tree(&[(1.0, 0.0), (7.0, 0.0)]);
        let pairs = k_closest_pairs(&a, &b, Metric::Euclidean, 3);
        let ds: Vec<f64> = pairs.iter().map(|p| p.distance).collect();
        assert_eq!(ds, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn closest_pair_within_excludes_self() {
        let t = tree(&[(0.0, 0.0), (3.0, 0.0), (3.5, 0.0), (10.0, 0.0)]);
        let best = closest_pair_within(&t, Metric::Euclidean).unwrap();
        assert!((best.distance - 0.5).abs() < 1e-12);
        assert_ne!(best.oid1, best.oid2);
    }

    #[test]
    fn all_nn_matches_bruteforce() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (5.0, 5.0), (5.0, 6.0), (9.0, 0.0)];
        let t = tree(&pts);
        let result = all_nearest_neighbors(&t, Metric::Euclidean);
        assert_eq!(result.len(), pts.len());
        for r in &result {
            let (px, py) = pts[r.oid1.0 as usize];
            let p = Point::xy(px, py);
            let want = pts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j as u64 != r.oid1.0)
                .map(|(_, (x, y))| Metric::Euclidean.distance(&p, &Point::xy(*x, *y)))
                .fold(f64::INFINITY, f64::min);
            assert!((r.distance - want).abs() < 1e-12, "oid {}", r.oid1.0);
            assert_ne!(r.oid1, r.oid2, "no self pairs");
        }
        // Streamed ascending.
        for w in result.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn voronoi_assignment_is_total_and_correct() {
        let objects = tree(&[(0.0, 0.0), (1.0, 1.0), (9.0, 9.0), (10.0, 10.0)]);
        let sites = tree(&[(0.0, 0.0), (10.0, 10.0)]);
        let assignment = voronoi_assignment(&objects, &sites, Metric::Euclidean);
        assert_eq!(assignment.len(), 4);
        assert_eq!(assignment[&ObjectId(0)], ObjectId(0));
        assert_eq!(assignment[&ObjectId(1)], ObjectId(0));
        assert_eq!(assignment[&ObjectId(2)], ObjectId(1));
        assert_eq!(assignment[&ObjectId(3)], ObjectId(1));
    }

    #[test]
    fn voronoi_assignment_handles_sparse_ids() {
        // Ids far outside 0..len() — the shape an insert/delete workload
        // leaves behind. The old positional assignment panicked here.
        let mut objects = RTree::new(RTreeConfig::small(4));
        for (oid, (x, y)) in [
            (7u64, (0.0, 0.0)),
            (1_000_003, (1.0, 1.0)),
            (u64::from(u32::MAX) + 5, (10.0, 10.0)),
        ] {
            objects
                .insert(ObjectId(oid), Point::xy(x, y).to_rect())
                .unwrap();
        }
        let mut sites = RTree::new(RTreeConfig::small(4));
        sites
            .insert(ObjectId(42), Point::xy(0.0, 0.0).to_rect())
            .unwrap();
        sites
            .insert(ObjectId(99), Point::xy(10.0, 10.0).to_rect())
            .unwrap();
        let assignment = voronoi_assignment(&objects, &sites, Metric::Euclidean);
        assert_eq!(assignment.len(), 3, "every object assigned exactly once");
        assert_eq!(assignment[&ObjectId(7)], ObjectId(42));
        assert_eq!(assignment[&ObjectId(1_000_003)], ObjectId(42));
        assert_eq!(assignment[&ObjectId(u64::from(u32::MAX) + 5)], ObjectId(99));
    }

    #[test]
    fn empty_inputs() {
        let empty: RTree<2> = RTree::new(RTreeConfig::small(4));
        let t = tree(&[(0.0, 0.0)]);
        assert!(closest_pair(&empty, &t, Metric::Euclidean).is_none());
        assert!(closest_pair_within(&t, Metric::Euclidean).is_none());
        assert!(all_nearest_neighbors(&empty, Metric::Euclidean).is_empty());
    }

    #[test]
    fn single_object_self_join_yields_nothing() {
        let t = tree(&[(0.0, 0.0)]);
        assert!(all_nearest_neighbors(&t, Metric::Euclidean).is_empty());
    }
}
