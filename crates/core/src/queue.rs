//! The join's priority queue: a thin enum over the memory and hybrid
//! backends, tracking the paper's "maximum queue size" measure.

use sdj_pqueue::{HybridConfig, HybridQueue, PairingHeap, PriorityQueue};
use sdj_storage::DiskStats;

use crate::config::QueueBackend;
use crate::pair::{Pair, PairKey};

/// Priority queue of pairs, backed by either a pairing heap or the hybrid
/// memory/disk scheme.
pub enum JoinQueue<const D: usize> {
    /// Purely in-memory pairing heap.
    Memory(PairingHeap<PairKey, Pair<D>>),
    /// Hybrid three-tier queue.
    Hybrid(Box<HybridQueue<PairKey, Pair<D>>>),
}

impl<const D: usize> JoinQueue<D> {
    /// Creates the queue selected by `backend`, with keys in `keys`'s
    /// domain. The hybrid backend's `D_T` is expressed in distance units;
    /// its tier boundaries are mapped into the key domain via
    /// [`sdj_pqueue::KeyScale`], so the same config tiers identically under
    /// squared and plain keys.
    #[must_use]
    pub fn new(backend: &QueueBackend, keys: sdj_geom::KeySpace) -> Self {
        match backend {
            QueueBackend::Memory => JoinQueue::Memory(PairingHeap::new()),
            QueueBackend::Hybrid(config) => {
                let scale = if keys.is_squared() {
                    sdj_pqueue::KeyScale::Squared
                } else {
                    sdj_pqueue::KeyScale::Identity
                };
                JoinQueue::Hybrid(Box::new(HybridQueue::new(config.with_key_scale(scale))))
            }
        }
    }

    /// Creates a hybrid-backed queue directly.
    #[must_use]
    pub fn hybrid(config: HybridConfig) -> Self {
        JoinQueue::Hybrid(Box::new(HybridQueue::new(config)))
    }

    /// Inserts a pair. The memory backend is infallible; the hybrid backend
    /// surfaces disk faults (transient I/O, disk-full, corruption).
    pub fn push(&mut self, key: PairKey, pair: Pair<D>) -> sdj_storage::Result<()> {
        match self {
            JoinQueue::Memory(q) => {
                q.push(key, pair);
                Ok(())
            }
            JoinQueue::Hybrid(q) => PriorityQueue::push(q.as_mut(), key, pair),
        }
    }

    /// Inserts a batch of pairs. The memory backend grows its arena at most
    /// once for the whole batch; the hybrid backend falls back to per-element
    /// pushes (its tiering decisions are per-element anyway) and stops at the
    /// first storage error, dropping the rest of the batch — callers abort
    /// the join on `Err`, so the partial state is never observed as output.
    pub fn push_batch<I>(&mut self, batch: I) -> sdj_storage::Result<()>
    where
        I: IntoIterator<Item = (PairKey, Pair<D>)>,
    {
        match self {
            JoinQueue::Memory(q) => {
                q.push_batch(batch);
                Ok(())
            }
            JoinQueue::Hybrid(q) => {
                for (key, pair) in batch {
                    PriorityQueue::push(q.as_mut(), key, pair)?;
                }
                Ok(())
            }
        }
    }

    /// Removes the minimum pair.
    pub fn pop(&mut self) -> sdj_storage::Result<Option<(PairKey, Pair<D>)>> {
        match self {
            JoinQueue::Memory(q) => Ok(q.pop()),
            JoinQueue::Hybrid(q) => PriorityQueue::pop(q.as_mut()),
        }
    }

    /// The minimum key (may promote spilled elements in the hybrid case).
    pub fn peek_key(&mut self) -> sdj_storage::Result<Option<PairKey>> {
        match self {
            JoinQueue::Memory(q) => Ok(q.peek().cloned()),
            JoinQueue::Hybrid(q) => PriorityQueue::peek_key(q.as_mut()),
        }
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            JoinQueue::Memory(q) => q.len(),
            JoinQueue::Hybrid(q) => PriorityQueue::len(q.as_ref()),
        }
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime high-water mark of the length.
    #[must_use]
    pub fn max_len(&self) -> usize {
        match self {
            JoinQueue::Memory(q) => PriorityQueue::max_len(q),
            JoinQueue::Hybrid(q) => PriorityQueue::max_len(q.as_ref()),
        }
    }

    /// Visits up to `limit` entries near the head of the queue (see
    /// [`PairingHeap::peek_top`]): the minimum first, then subtree minima in
    /// breadth-first order. Memory backend only — the hybrid backend's head
    /// tier is reorganised on access, so peeking it is not side-effect-free;
    /// it simply gets no prefetch hints.
    pub fn peek_top(&self, limit: usize, visit: impl FnMut(&PairKey, &Pair<D>)) {
        if let JoinQueue::Memory(q) = self {
            q.peek_top(limit, visit);
        }
    }

    /// Disk traffic of the hybrid backend (zeros for the memory backend).
    #[must_use]
    pub fn disk_stats(&self) -> DiskStats {
        match self {
            JoinQueue::Memory(_) => DiskStats::default(),
            JoinQueue::Hybrid(q) => q.disk_stats(),
        }
    }

    /// Tiering information for the hybrid backend: `(tier stats, in-memory
    /// element peak)`. `None` for the memory backend.
    #[must_use]
    pub fn hybrid_info(&self) -> Option<(sdj_pqueue::HybridStats, usize)> {
        match self {
            JoinQueue::Memory(_) => None,
            JoinQueue::Hybrid(q) => Some((q.stats(), q.in_memory_peak())),
        }
    }

    /// Attaches a fault injector to the hybrid backend's simulated disk.
    /// No-op for the memory backend, which never touches storage.
    pub fn set_fault_injector(
        &mut self,
        injector: Option<std::sync::Arc<sdj_storage::FaultInjector>>,
    ) {
        if let JoinQueue::Hybrid(q) = self {
            q.set_fault_injector(injector);
        }
    }

    /// Bounds how many times the hybrid backend retries a transient disk
    /// fault before surfacing it. No-op for the memory backend.
    pub fn set_retry_limit(&mut self, limit: u32) {
        if let JoinQueue::Hybrid(q) = self {
            q.set_retry_limit(limit);
        }
    }

    /// Buffer-pool fault/retry counters of the hybrid backend (zeros for the
    /// memory backend).
    #[must_use]
    pub fn pool_stats(&self) -> sdj_storage::PoolStats {
        match self {
            JoinQueue::Memory(_) => sdj_storage::PoolStats::default(),
            JoinQueue::Hybrid(q) => q.pool_stats(),
        }
    }

    /// Attaches observability to the hybrid backend: tier migrations emit
    /// events to the context's sink and the `pq.tier.*` occupancy gauges are
    /// registered and kept in sync. No-op for the memory backend (the join's
    /// own `join.queue_depth` gauge covers it).
    pub fn attach_obs(&mut self, ctx: &sdj_obs::ObsContext) {
        if let JoinQueue::Hybrid(q) = self {
            let gauges = sdj_pqueue::TierGauges::register(&ctx.registry);
            q.attach_obs(std::sync::Arc::clone(&ctx.sink), Some(gauges));
            if let (Some(spill), Some(reload)) = (
                sdj_obs::LeafSpan::from_context(ctx, sdj_obs::Phase::Spill),
                sdj_obs::LeafSpan::from_context(ctx, sdj_obs::Phase::Reload),
            ) {
                q.attach_spans(spill, reload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{Item, TiePolicy};
    use sdj_geom::Rect;
    use sdj_rtree::ObjectId;

    fn pair(oid: u64) -> Pair<2> {
        let item = Item::Obr {
            oid: ObjectId(oid),
            mbr: Rect::new([0.0, 0.0], [0.0, 0.0]),
        };
        Pair::new(item, item)
    }

    #[test]
    fn both_backends_agree() {
        let keys = sdj_geom::KeySpace::plain(sdj_geom::Metric::Euclidean);
        let mut mem = JoinQueue::<2>::new(&QueueBackend::Memory, keys);
        let mut hyb = JoinQueue::<2>::hybrid(HybridConfig::with_dt(1.0));
        for (i, d) in [3.0, 0.5, 7.25, 1.5, 4.0].iter().enumerate() {
            let p = pair(i as u64);
            let k = PairKey::new(*d, &p, TiePolicy::DepthFirst);
            mem.push(k, p).unwrap();
            hyb.push(k, p).unwrap();
        }
        assert_eq!(mem.len(), hyb.len());
        loop {
            let a = mem.pop().unwrap();
            let b = hyb.pop().unwrap();
            assert_eq!(a.map(|(k, _)| k), b.map(|(k, _)| k));
            if a.is_none() {
                break;
            }
        }
        assert_eq!(mem.max_len(), 5);
        assert_eq!(hyb.max_len(), 5);
    }
}
