//! The join's priority queue: one facade over the four backend × layout
//! combinations, tracking the paper's "maximum queue size" measure plus the
//! queue's resident bytes.
//!
//! The [`crate::config::QueueBackend`] axis picks the paper's structure
//! (in-memory heap vs the §3.2 hybrid memory/disk scheme); the
//! [`QueueLayout`] axis picks its memory representation. Under
//! [`QueueLayout::FlatDary`] pairs are stored as 8-byte [`PackedPair`]
//! handles into a shared [`ItemArena`] and ordered by a flat 4-ary implicit
//! heap ([`sdj_pqueue::FlatHeap`]); the fat-pair pairing heap is the
//! default. All four combinations realise the same `(key, arrival)` total
//! order, so result streams are bit-identical across them.

use std::sync::Arc;

use sdj_obs::Gauge;
use sdj_pqueue::{FlatHeap, HybridConfig, HybridQueue, PairingHeap, PriorityQueue};
use sdj_storage::DiskStats;

use crate::config::{QueueBackend, QueueLayout};
use crate::pair::{Pair, PairKey};
use crate::slab::{ItemArena, PackedPair};

/// The backing structure: backend (memory/hybrid) × layout (pairing/flat).
enum Backend<const D: usize> {
    /// In-memory pairing heap over fat pairs.
    Pairing(PairingHeap<PairKey, Pair<D>>),
    /// In-memory flat 4-ary heap over compact pair handles, with the fat
    /// items interned once each in the arena.
    Flat {
        heap: FlatHeap<PairKey, PackedPair>,
        arena: ItemArena<D>,
    },
    /// Hybrid three-tier queue over fat pairs.
    HybridPairing(Box<HybridQueue<PairKey, Pair<D>>>),
    /// Hybrid three-tier queue over compact pair handles: the in-memory
    /// tiers use the flat layout and spill pages carry 8-byte records.
    /// Spilled handles keep their items pinned in the arena (references
    /// bracket the full push..pop window), so reloads never re-intern.
    HybridFlat {
        queue: Box<HybridQueue<PairKey, PackedPair>>,
        arena: ItemArena<D>,
    },
}

/// Priority queue of pairs; see the module docs for the backend × layout
/// matrix.
pub struct JoinQueue<const D: usize> {
    backend: Backend<D>,
    /// `pq.bytes` gauge (registered by [`attach_obs`](Self::attach_obs) for
    /// every backend), synced from [`queue_bytes`](Self::queue_bytes).
    bytes_gauge: Option<Arc<Gauge>>,
    /// `pq.slab_live` / `pq.slab_recycled` gauges (flat layouts only).
    slab_gauges: Option<(Arc<Gauge>, Arc<Gauge>)>,
}

impl<const D: usize> JoinQueue<D> {
    /// Creates the queue selected by `backend` and `layout`, with keys in
    /// `keys`'s domain. The hybrid backend's `D_T` is expressed in distance
    /// units; its tier boundaries are mapped into the key domain via
    /// [`sdj_pqueue::KeyScale`], so the same config tiers identically under
    /// squared and plain keys. `layout` overrides any layout carried by the
    /// backend's [`HybridConfig`] — the join config is the single switch.
    #[must_use]
    pub fn new(backend: &QueueBackend, layout: QueueLayout, keys: sdj_geom::KeySpace) -> Self {
        let backend = match (backend, layout) {
            (QueueBackend::Memory, QueueLayout::Pairing) => Backend::Pairing(PairingHeap::new()),
            (QueueBackend::Memory, QueueLayout::FlatDary) => Backend::Flat {
                heap: FlatHeap::new(),
                arena: ItemArena::new(),
            },
            (QueueBackend::Hybrid(config), layout) => {
                let scale = if keys.is_squared() {
                    sdj_pqueue::KeyScale::Squared
                } else {
                    sdj_pqueue::KeyScale::Identity
                };
                Self::hybrid_backend(config.with_key_scale(scale).with_layout(layout))
            }
        };
        Self {
            backend,
            bytes_gauge: None,
            slab_gauges: None,
        }
    }

    /// Creates a hybrid-backed queue directly, honouring `config.layout`.
    #[must_use]
    pub fn hybrid(config: HybridConfig) -> Self {
        Self {
            backend: Self::hybrid_backend(config),
            bytes_gauge: None,
            slab_gauges: None,
        }
    }

    fn hybrid_backend(config: HybridConfig) -> Backend<D> {
        match config.layout {
            QueueLayout::Pairing => Backend::HybridPairing(Box::new(HybridQueue::new(config))),
            QueueLayout::FlatDary => Backend::HybridFlat {
                queue: Box::new(HybridQueue::new(config)),
                arena: ItemArena::new(),
            },
        }
    }

    /// Inserts a pair. The memory backends are infallible; the hybrid
    /// backends surface disk faults (transient I/O, disk-full, corruption).
    pub fn push(&mut self, key: PairKey, pair: Pair<D>) -> sdj_storage::Result<()> {
        match &mut self.backend {
            Backend::Pairing(q) => {
                q.push(key, pair);
                Ok(())
            }
            Backend::Flat { heap, arena } => {
                heap.push(key, arena.intern_pair(&pair)?);
                Ok(())
            }
            Backend::HybridPairing(q) => PriorityQueue::push(q.as_mut(), key, pair),
            Backend::HybridFlat { queue, arena } => {
                let packed = arena.intern_pair(&pair)?;
                match PriorityQueue::push(queue.as_mut(), key, packed) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        // The pair never entered the queue; its references
                        // must not pin the arena.
                        arena.release_pair(packed);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Inserts a batch of pairs. The fat memory backend grows its arena at
    /// most once for the whole batch; the other backends push per element
    /// (hybrid tiering decisions are per-element anyway) and the fallible
    /// ones stop at the first storage error, dropping the rest of the batch
    /// — callers abort the join on `Err`, so the partial state is never
    /// observed as output.
    pub fn push_batch<I>(&mut self, batch: I) -> sdj_storage::Result<()>
    where
        I: IntoIterator<Item = (PairKey, Pair<D>)>,
    {
        match &mut self.backend {
            Backend::Pairing(q) => {
                q.push_batch(batch);
                Ok(())
            }
            Backend::Flat { heap, arena } => {
                // Intern the whole batch before handing it to the heap so a
                // mid-batch slot exhaustion releases every staged reference
                // and leaves the queue unchanged.
                let mut staged = Vec::new();
                for (key, pair) in batch {
                    match arena.intern_pair(&pair) {
                        Ok(packed) => staged.push((key, packed)),
                        Err(e) => {
                            for (_, packed) in staged {
                                arena.release_pair(packed);
                            }
                            return Err(e);
                        }
                    }
                }
                heap.push_batch(staged);
                Ok(())
            }
            _ => {
                for (key, pair) in batch {
                    self.push(key, pair)?;
                }
                Ok(())
            }
        }
    }

    /// Drains every queued pair in arbitrary order, visiting each exactly
    /// once, and leaves the queue empty. The flat memory backend walks its
    /// entry arrays directly, resolving interned slab payloads in place —
    /// no per-pop sifting and no fat-pair staging — which is what the
    /// adaptive handoff wants: the whole frontier, order discarded. The
    /// pairing backend pop-drains (its entries are pointer-linked), and the
    /// hybrid backends pop-drain too because spilled tiers must be reloaded
    /// through the ordered path anyway; those pops surface storage errors.
    pub fn drain_unordered(
        &mut self,
        mut visit: impl FnMut(PairKey, Pair<D>),
    ) -> sdj_storage::Result<()> {
        if matches!(
            self.backend,
            Backend::HybridPairing(_) | Backend::HybridFlat { .. }
        ) {
            while let Some((key, pair)) = self.pop()? {
                visit(key, pair);
            }
            return Ok(());
        }
        match &mut self.backend {
            Backend::Pairing(q) => {
                while let Some((key, pair)) = q.pop() {
                    visit(key, pair);
                }
            }
            Backend::Flat { heap, arena } => {
                heap.drain_unordered(|key, packed| {
                    let pair = arena.resolve_pair(packed);
                    arena.release_pair(packed);
                    visit(key, pair);
                });
            }
            Backend::HybridPairing(_) | Backend::HybridFlat { .. } => unreachable!(),
        }
        Ok(())
    }

    /// Removes the minimum pair.
    pub fn pop(&mut self) -> sdj_storage::Result<Option<(PairKey, Pair<D>)>> {
        match &mut self.backend {
            Backend::Pairing(q) => Ok(q.pop()),
            Backend::Flat { heap, arena } => Ok(heap.pop().map(|(key, packed)| {
                let pair = arena.resolve_pair(packed);
                arena.release_pair(packed);
                (key, pair)
            })),
            Backend::HybridPairing(q) => PriorityQueue::pop(q.as_mut()),
            Backend::HybridFlat { queue, arena } => {
                Ok(PriorityQueue::pop(queue.as_mut())?.map(|(key, packed)| {
                    let pair = arena.resolve_pair(packed);
                    arena.release_pair(packed);
                    (key, pair)
                }))
            }
        }
    }

    /// The minimum key (may promote spilled elements in the hybrid case).
    pub fn peek_key(&mut self) -> sdj_storage::Result<Option<PairKey>> {
        match &mut self.backend {
            Backend::Pairing(q) => Ok(q.peek().copied()),
            Backend::Flat { heap, .. } => Ok(heap.peek()),
            Backend::HybridPairing(q) => PriorityQueue::peek_key(q.as_mut()),
            Backend::HybridFlat { queue, .. } => PriorityQueue::peek_key(queue.as_mut()),
        }
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Pairing(q) => q.len(),
            Backend::Flat { heap, .. } => heap.len(),
            Backend::HybridPairing(q) => PriorityQueue::len(q.as_ref()),
            Backend::HybridFlat { queue, .. } => PriorityQueue::len(queue.as_ref()),
        }
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime high-water mark of the length.
    #[must_use]
    pub fn max_len(&self) -> usize {
        match &self.backend {
            Backend::Pairing(q) => PriorityQueue::max_len(q),
            Backend::Flat { heap, .. } => PriorityQueue::max_len(heap),
            Backend::HybridPairing(q) => PriorityQueue::max_len(q.as_ref()),
            Backend::HybridFlat { queue, .. } => PriorityQueue::max_len(queue.as_ref()),
        }
    }

    /// Approximate resident bytes of the queue: heap/entry storage at
    /// capacity, plus (flat layouts) the item arena and (hybrid backends)
    /// the spill buffer pool.
    #[must_use]
    pub fn queue_bytes(&self) -> usize {
        match &self.backend {
            Backend::Pairing(q) => q.approx_bytes(),
            Backend::Flat { heap, arena } => heap.approx_bytes() + arena.approx_bytes(),
            Backend::HybridPairing(q) => q.approx_bytes(),
            Backend::HybridFlat { queue, arena } => queue.approx_bytes() + arena.approx_bytes(),
        }
    }

    /// Item-arena occupancy for the flat layouts: `(live distinct items,
    /// lifetime high-water, recycled allocations)`. `None` under the
    /// pairing layout, which has no arena.
    #[must_use]
    pub fn slab_stats(&self) -> Option<(usize, usize, u64)> {
        match &self.backend {
            Backend::Pairing(_) | Backend::HybridPairing(_) => None,
            Backend::Flat { arena, .. } | Backend::HybridFlat { arena, .. } => {
                Some((arena.live(), arena.high_water(), arena.recycled()))
            }
        }
    }

    /// Visits up to `limit` entries near the head of the queue (see
    /// [`PairingHeap::peek_top`]): the minimum first, then subtree minima in
    /// breadth-first order. Memory backends only — the hybrid backends' head
    /// tier is reorganised on access, so peeking it is not side-effect-free;
    /// they simply get no prefetch hints. The flat layout materialises each
    /// visited pair from the arena.
    pub fn peek_top(&self, limit: usize, mut visit: impl FnMut(&PairKey, &Pair<D>)) {
        match &self.backend {
            Backend::Pairing(q) => q.peek_top(limit, visit),
            Backend::Flat { heap, arena } => {
                heap.peek_top(limit, |key, packed| {
                    visit(&key, &arena.resolve_pair(*packed));
                });
            }
            Backend::HybridPairing(_) | Backend::HybridFlat { .. } => {}
        }
    }

    /// Disk traffic of the hybrid backends (zeros for the memory backends).
    #[must_use]
    pub fn disk_stats(&self) -> DiskStats {
        match &self.backend {
            Backend::Pairing(_) | Backend::Flat { .. } => DiskStats::default(),
            Backend::HybridPairing(q) => q.disk_stats(),
            Backend::HybridFlat { queue, .. } => queue.disk_stats(),
        }
    }

    /// Tiering information for the hybrid backends: `(tier stats, in-memory
    /// element peak)`. `None` for the memory backends.
    #[must_use]
    pub fn hybrid_info(&self) -> Option<(sdj_pqueue::HybridStats, usize)> {
        match &self.backend {
            Backend::Pairing(_) | Backend::Flat { .. } => None,
            Backend::HybridPairing(q) => Some((q.stats(), q.in_memory_peak())),
            Backend::HybridFlat { queue, .. } => Some((queue.stats(), queue.in_memory_peak())),
        }
    }

    /// Attaches a fault injector to the hybrid backends' simulated disk.
    /// No-op for the memory backends, which never touch storage.
    pub fn set_fault_injector(
        &mut self,
        injector: Option<std::sync::Arc<sdj_storage::FaultInjector>>,
    ) {
        match &mut self.backend {
            Backend::Pairing(_) | Backend::Flat { .. } => {}
            Backend::HybridPairing(q) => q.set_fault_injector(injector),
            Backend::HybridFlat { queue, .. } => queue.set_fault_injector(injector),
        }
    }

    /// Bounds how many times the hybrid backends retry a transient disk
    /// fault before surfacing it. No-op for the memory backends.
    pub fn set_retry_limit(&mut self, limit: u32) {
        match &mut self.backend {
            Backend::Pairing(_) | Backend::Flat { .. } => {}
            Backend::HybridPairing(q) => q.set_retry_limit(limit),
            Backend::HybridFlat { queue, .. } => queue.set_retry_limit(limit),
        }
    }

    /// Buffer-pool fault/retry counters of the hybrid backends (zeros for
    /// the memory backends).
    #[must_use]
    pub fn pool_stats(&self) -> sdj_storage::PoolStats {
        match &self.backend {
            Backend::Pairing(_) | Backend::Flat { .. } => sdj_storage::PoolStats::default(),
            Backend::HybridPairing(q) => q.pool_stats(),
            Backend::HybridFlat { queue, .. } => queue.pool_stats(),
        }
    }

    /// Attaches observability: the `pq.bytes` gauge is registered for every
    /// backend (and `pq.slab_live`/`pq.slab_recycled` for the flat layouts),
    /// kept in sync by [`sync_gauges`](Self::sync_gauges); the hybrid
    /// backends additionally emit tier migrations to the context's sink and
    /// register the `pq.tier.*` occupancy gauges.
    pub fn attach_obs(&mut self, ctx: &sdj_obs::ObsContext) {
        self.attach_obs_prefixed(ctx, "");
    }

    /// [`attach_obs`](Self::attach_obs) with every gauge name prefixed —
    /// `{prefix}pq.bytes`, `{prefix}pq.slab_*`, `{prefix}pq.tier.*` — so a
    /// multi-session server can attribute each cursor's queue occupancy
    /// separately (`session.<id>.` prefixes) in one shared registry.
    pub fn attach_obs_prefixed(&mut self, ctx: &sdj_obs::ObsContext, prefix: &str) {
        self.bytes_gauge = Some(ctx.registry.gauge(&format!("{prefix}pq.bytes")));
        if self.slab_stats().is_some() {
            self.slab_gauges = Some((
                ctx.registry.gauge(&format!("{prefix}pq.slab_live")),
                ctx.registry.gauge(&format!("{prefix}pq.slab_recycled")),
            ));
        }
        let hybrid = match &mut self.backend {
            Backend::Pairing(_) | Backend::Flat { .. } => None,
            Backend::HybridPairing(q) => Some(q.as_mut() as &mut dyn HybridObsHook),
            Backend::HybridFlat { queue, .. } => Some(queue.as_mut() as &mut dyn HybridObsHook),
        };
        if let Some(q) = hybrid {
            let gauges = sdj_pqueue::TierGauges::register_prefixed(&ctx.registry, prefix);
            q.hook_obs(std::sync::Arc::clone(&ctx.sink), gauges);
            if let (Some(spill), Some(reload)) = (
                sdj_obs::LeafSpan::from_context(ctx, sdj_obs::Phase::Spill),
                sdj_obs::LeafSpan::from_context(ctx, sdj_obs::Phase::Reload),
            ) {
                q.hook_spans(spill, reload);
            }
        }
        self.sync_gauges();
    }

    /// Publishes the current byte and slab occupancies to the gauges
    /// registered by [`attach_obs`](Self::attach_obs); no-op when
    /// uninstrumented. The join calls this once per insertion flush.
    pub fn sync_gauges(&self) {
        if let Some(g) = &self.bytes_gauge {
            g.set(i64::try_from(self.queue_bytes()).unwrap_or(i64::MAX));
        }
        if let Some((live, recycled)) = &self.slab_gauges {
            if let Some((l, _, r)) = self.slab_stats() {
                live.set(i64::try_from(l).unwrap_or(i64::MAX));
                recycled.set(i64::try_from(r).unwrap_or(i64::MAX));
            }
        }
    }
}

/// Object-safe slice of [`HybridQueue`]'s obs hooks, so the two payload
/// instantiations share one attachment path.
trait HybridObsHook {
    fn hook_obs(
        &mut self,
        sink: std::sync::Arc<dyn sdj_obs::EventSink>,
        gauges: sdj_pqueue::TierGauges,
    );
    fn hook_spans(&mut self, spill: sdj_obs::LeafSpan, reload: sdj_obs::LeafSpan);
}

impl<V: sdj_pqueue::Codec + Clone> HybridObsHook for HybridQueue<PairKey, V> {
    fn hook_obs(
        &mut self,
        sink: std::sync::Arc<dyn sdj_obs::EventSink>,
        gauges: sdj_pqueue::TierGauges,
    ) {
        self.attach_obs(sink, Some(gauges));
    }

    fn hook_spans(&mut self, spill: sdj_obs::LeafSpan, reload: sdj_obs::LeafSpan) {
        self.attach_spans(spill, reload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{Item, TiePolicy};
    use sdj_geom::Rect;
    use sdj_rtree::ObjectId;

    fn pair(oid: u64) -> Pair<2> {
        let item = Item::Obr {
            oid: ObjectId(oid),
            mbr: Rect::new([0.0, 0.0], [0.0, 0.0]),
        };
        Pair::new(item, item)
    }

    fn keyspace() -> sdj_geom::KeySpace {
        sdj_geom::KeySpace::plain(sdj_geom::Metric::Euclidean)
    }

    #[test]
    fn both_backends_agree() {
        let mut mem = JoinQueue::<2>::new(&QueueBackend::Memory, QueueLayout::Pairing, keyspace());
        let mut hyb = JoinQueue::<2>::hybrid(HybridConfig::with_dt(1.0));
        for (i, d) in [3.0, 0.5, 7.25, 1.5, 4.0].iter().enumerate() {
            let p = pair(i as u64);
            let k = PairKey::new(*d, &p, TiePolicy::DepthFirst);
            mem.push(k, p).unwrap();
            hyb.push(k, p).unwrap();
        }
        assert_eq!(mem.len(), hyb.len());
        loop {
            let a = mem.pop().unwrap();
            let b = hyb.pop().unwrap();
            assert_eq!(a.map(|(k, _)| k), b.map(|(k, _)| k));
            if a.is_none() {
                break;
            }
        }
        assert_eq!(mem.max_len(), 5);
        assert_eq!(hyb.max_len(), 5);
    }

    #[test]
    fn layouts_pop_identical_pairs() {
        let mut fat = JoinQueue::<2>::new(&QueueBackend::Memory, QueueLayout::Pairing, keyspace());
        let mut flat =
            JoinQueue::<2>::new(&QueueBackend::Memory, QueueLayout::FlatDary, keyspace());
        // Repeated distances exercise the FIFO tie rule; repeated oids
        // exercise arena sharing.
        for (i, d) in [3.0, 0.5, 3.0, 1.5, 0.5, 3.0].iter().enumerate() {
            let p = pair((i % 3) as u64);
            let k = PairKey::new(*d, &p, TiePolicy::DepthFirst);
            fat.push(k, p).unwrap();
            flat.push(k, p).unwrap();
        }
        assert!(flat.slab_stats().is_some());
        assert!(fat.slab_stats().is_none());
        loop {
            let a = fat.pop().unwrap();
            let b = flat.pop().unwrap();
            assert_eq!(a, b, "pop streams must be identical across layouts");
            if a.is_none() {
                break;
            }
        }
        let (live, high, _) = flat.slab_stats().unwrap();
        assert_eq!(live, 0, "all arena references released");
        assert!(high <= 6, "at most one slot per distinct queued item side");
    }

    #[test]
    fn hybrid_layouts_pop_identical_pairs_across_spill() {
        let mut fat = JoinQueue::<2>::hybrid(HybridConfig::with_dt(0.5));
        let mut flat =
            JoinQueue::<2>::hybrid(HybridConfig::with_dt(0.5).with_layout(QueueLayout::FlatDary));
        for i in 0..200u64 {
            let p = pair(i % 7);
            let d = f64::from(u32::try_from(i).unwrap()) * 0.17;
            let k = PairKey::new(d, &p, TiePolicy::DepthFirst);
            fat.push(k, p).unwrap();
            flat.push(k, p).unwrap();
        }
        let mut popped = 0;
        loop {
            let a = fat.pop().unwrap();
            let b = flat.pop().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            popped += 1;
        }
        assert_eq!(popped, 200);
        let (live, _, _) = flat.slab_stats().unwrap();
        assert_eq!(live, 0);
    }

    #[test]
    fn flat_layout_reports_fewer_bytes() {
        let mut fat = JoinQueue::<2>::new(&QueueBackend::Memory, QueueLayout::Pairing, keyspace());
        let mut flat =
            JoinQueue::<2>::new(&QueueBackend::Memory, QueueLayout::FlatDary, keyspace());
        // One shared obr on each side — the expansion-shaped workload the
        // arena is built for.
        for i in 0..10_000u64 {
            let p = Pair::new(
                Item::Obr {
                    oid: ObjectId(i % 97),
                    mbr: Rect::new([0.0, 0.0], [0.0, 0.0]),
                },
                Item::Obr {
                    oid: ObjectId(i % 89),
                    mbr: Rect::new([0.0, 0.0], [0.0, 0.0]),
                },
            );
            let k = PairKey::new(
                f64::from(u32::try_from(i).unwrap()),
                &p,
                TiePolicy::DepthFirst,
            );
            fat.push(k, p).unwrap();
            flat.push(k, p).unwrap();
        }
        let (fat_bytes, flat_bytes) = (fat.queue_bytes(), flat.queue_bytes());
        assert!(
            flat_bytes * 2 <= fat_bytes,
            "flat layout should at least halve queue bytes: flat={flat_bytes} fat={fat_bytes}"
        );
    }
}
