//! Adaptive mid-query replanning: incremental → bulk frontier handoff.
//!
//! The static planner ([`crate::plan`]) must commit to an execution path
//! before the first page is read, from nothing but catalog-grade inputs
//! (cardinalities, extents, the query's restrictions) and a one-node
//! frontier probe. When those inputs mislead — a clustered workload probed
//! at a uniform-looking root, a `STOP AFTER k` whose k-th distance is far
//! beyond what the selectivity model guessed — the chosen path can be
//! several times slower than the alternative, and a static plan has no way
//! back.
//!
//! [`AdaptiveDistanceJoin`] removes the cliff. Every query starts on the
//! incremental engine (which is the right choice whenever few results are
//! consumed, and whose queue is, conveniently, a complete serialisation of
//! its own progress). At every `pop_stride` pops the driver reads the live
//! run signals that cost nothing to collect — pops, results, queue length,
//! pairs enqueued — and re-evaluates the PR 6 cost model with the static
//! frontier estimate *ratcheted up* by what the run has actually staged
//! ([`crate::plan::replan`]). When the model says the remaining incremental
//! work exceeds a frontier-seeded bulk run by at least a hysteresis margin,
//! the engine is paused, its queue exported ([`DistanceJoin::into_frontier`]
//! with one shard), the frontier's items harvested down to object entries,
//! and the remainder of the query handed to a [`BulkDistanceJoin`] seeded
//! with exactly those entries.
//!
//! # Why the handoff is exact
//!
//! The seeded bulk run sweeps the cross product of the harvested sides,
//! which *over*-generates relative to the frontier's true descendant pair
//! set: two objects harvested from different queue entries may form a pair
//! that was already emitted, or one that the paused engine had legitimately
//! pruned. Every such pair is re-excluded by construction:
//!
//! * **Already emitted** — ascending emission is monotone in the key
//!   domain, so every emitted pair lies at or below the engine's
//!   [`EmissionWatermark`] (last emitted key plus the tie set at exactly
//!   that key). The bulk sweep drops candidates strictly below the floor
//!   key, and candidates *at* the floor key iff they are in the tie set.
//!   Keys are compared bit-for-bit: both engines compute MINDIST with the
//!   same kernels in the same key domain, no `sqrt` round-trip.
//! * **Estimator-pruned** — the engine's maximum-distance bound only ever
//!   tightens, so a pair pruned at any earlier bound also exceeds the
//!   final bound exported as [`JoinFrontier::dmax_hint`]; the seeded run
//!   applies that hint as its maximum key.
//! * **Range-restricted / self pairs** — the bulk sweep re-applies
//!   `[Dmin, Dmax]` and `exclude_equal_ids` to every candidate.
//!
//! Completeness is the best-first invariant: every qualifying pair not yet
//! emitted is a descendant of exactly one queue entry, and harvesting an
//! entry's subtree(s) yields supersets of each side of every descendant
//! pair. With `STOP AFTER k`, the seeded run's `max_pairs` is set to the
//! results still owed, and its ordered merge truncates exactly there.
//!
//! Consequently `prefix ++ seeded-bulk(ordered)` reproduces the pure
//! incremental stream's distance sequence bit-for-bit (tie order within an
//! equal-distance group follows the bulk path's deterministic merge, the
//! same contract the forced-bulk and parallel paths already have), and the
//! unordered variant is multiset-equal — the property
//! `crates/core/tests/adaptive_equivalence.rs` fuzzes with handoffs forced
//! at arbitrary checkpoints.

use std::collections::{HashSet, VecDeque};

use sdj_geom::Rect;
use sdj_obs::{Event, ObsContext, Phase, PlanPath};
use sdj_rtree::{ObjectId, RTree};
use sdj_storage::StorageError;

use crate::bulk::{BulkConfig, BulkDistanceJoin, BulkStats};
use crate::config::{JoinConfig, ResultOrder};
use crate::index::{IndexEntry, IndexNode, NodeId, SpatialIndex};
use crate::join::{DistanceJoin, ResultPair};
use crate::oracle::MbrOracle;
use crate::pair::Item;
use crate::plan::{self, ObservedProgress, PlanInputs};
use crate::stats::JoinStats;

/// Knobs of the adaptive driver.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Queue pops between checkpoints. Signals are read and the model
    /// re-evaluated once per stride; the default keeps checkpoint overhead
    /// well below one part in a thousand of the pop work itself.
    pub pop_stride: u64,
    /// Hysteresis margin: the switch fires only when the re-costed
    /// remaining incremental work exceeds `hysteresis ×` the seeded-bulk
    /// estimate. Guards against flapping on model noise near the
    /// break-even point.
    pub hysteresis: f64,
    /// Maximum number of replans per run (the handoff is one-way, so this
    /// caps how many times the model may fire; the default allows the
    /// single incremental → bulk switch).
    pub max_replans: u32,
    /// Test knob: unconditionally hand off at the first checkpoint at or
    /// after this many pops, ignoring the cost model (`Some(0)` = before
    /// any pop). The equivalence suite uses it to force handoffs at
    /// arbitrary points; production runs leave it `None`.
    pub force_handoff_at: Option<u64>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            pop_stride: 4096,
            hysteresis: 1.05,
            max_replans: 1,
            force_handoff_at: None,
        }
    }
}

impl AdaptiveConfig {
    /// The defaults overridden from the environment, the same idiom as the
    /// planner's `SDJ_PLAN_BIAS`: `SDJ_ADAPTIVE_STRIDE` (pops between
    /// checkpoints), `SDJ_ADAPTIVE_HYSTERESIS` (switch margin), and
    /// `SDJ_ADAPTIVE_FORCE_AT` (unconditional handoff after N pops — the
    /// CI adaptive gate uses it to exercise a deterministic switch on
    /// workloads where the live model would correctly stay incremental).
    /// Unset or unparsable variables leave the default untouched.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(v) = env_parse::<u64>("SDJ_ADAPTIVE_STRIDE") {
            if v > 0 {
                config.pop_stride = v;
            }
        }
        if let Some(v) = env_parse::<f64>("SDJ_ADAPTIVE_HYSTERESIS") {
            if v.is_finite() && v > 0.0 {
                config.hysteresis = v;
            }
        }
        config.force_handoff_at = env_parse::<u64>("SDJ_ADAPTIVE_FORCE_AT");
        config
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// The signals read at one checkpoint, plus the re-costing verdict — kept
/// so reports and tests can replay why (and why not) a run switched.
#[derive(Clone, Copy, Debug)]
pub struct ReplanSignals {
    /// 1-based checkpoint index.
    pub checkpoint: u64,
    /// Pops performed when the checkpoint fired.
    pub pops: u64,
    /// Results emitted so far.
    pub results: u64,
    /// Queue length at the checkpoint.
    pub queue_len: usize,
    /// Pairs enqueued so far.
    pub pairs_enqueued: u64,
    /// The ratcheted frontier estimate (see [`crate::plan::replan`]).
    pub observed_frontier: f64,
    /// Pops per result so far (`inf` before the first result).
    pub pops_per_result: f64,
    /// Net queue growth per pop since the start.
    pub queue_growth_per_pop: f64,
    /// Sampled share of run self-time spent in queue phases
    /// (pop/push/spill/reload), when span profiling is on.
    pub queue_self_share: Option<f64>,
    /// Re-costed remaining work of staying incremental.
    pub est_incremental_remaining: f64,
    /// Re-costed work of the frontier-seeded bulk remainder.
    pub est_bulk_remaining: f64,
    /// Whether this checkpoint triggered the handoff.
    pub switched: bool,
}

/// Where and why a run switched paths.
#[derive(Clone, Copy, Debug)]
pub struct ReplanInfo {
    /// Pops performed when the switch fired.
    pub at_pop: u64,
    /// Results already emitted when the switch fired.
    pub at_pair: u64,
    /// Re-costed remaining incremental work at the switch.
    pub est_incremental_remaining: f64,
    /// Re-costed seeded-bulk work at the switch.
    pub est_bulk_remaining: f64,
    /// True when [`AdaptiveConfig::force_handoff_at`] fired instead of the
    /// cost model.
    pub forced: bool,
}

/// A finished (or failed-clean) adaptive run.
#[derive(Debug)]
pub struct AdaptiveRun {
    /// The result stream: the incremental prefix followed by the seeded
    /// bulk remainder (empty tail when no replan fired).
    pub results: Vec<ResultPair>,
    /// Counters of the incremental phase (including frontier harvest
    /// node accesses when a handoff ran).
    pub stats: JoinStats,
    /// Bulk-phase counters, when a handoff ran.
    pub bulk_stats: Option<BulkStats>,
    /// The switch record, when a handoff ran.
    pub replanned: Option<ReplanInfo>,
    /// Every checkpoint's signals, in order.
    pub signals: Vec<ReplanSignals>,
    /// Fail-clean terminal error: when `Some`, `results` is a correct
    /// prefix of the fault-free stream (the PR 5 contract — a fault inside
    /// the handoff itself surfaces here too, never as wrong results).
    pub error: Option<StorageError>,
}

/// An adaptive run paused at the handoff: the incremental prefix plus the
/// seeded bulk join, not yet swept — so an executor can sweep its cells
/// with a worker pool instead of serially.
pub struct Handoff<const D: usize> {
    /// Results the incremental phase emitted, in order.
    pub prefix: Vec<ResultPair>,
    /// The frontier-seeded bulk join, replicated and ready to run.
    pub bulk: BulkDistanceJoin<D>,
    /// The switch record.
    pub info: ReplanInfo,
    /// Incremental-phase counters (including harvest node accesses).
    pub inc_stats: JoinStats,
    /// Every checkpoint's signals, in order.
    pub signals: Vec<ReplanSignals>,
}

/// What [`AdaptiveDistanceJoin::execute`] produced.
///
/// Both variants are fat (a finished run's stats + signals, or a whole
/// seeded [`BulkDistanceJoin`]), but the value exists once per query and
/// is destructured immediately by the caller — boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
pub enum AdaptiveOutcome<const D: usize> {
    /// The incremental engine finished (or failed clean) before any
    /// checkpoint chose to switch — the run is complete.
    Completed(AdaptiveRun),
    /// A checkpoint switched: the remainder is the seeded bulk join.
    Handoff(Handoff<D>),
}

/// The adaptive driver: an incremental join that may hand its remainder to
/// a frontier-seeded bulk join mid-run. See the module docs.
///
/// Adaptivity is gated to plain ascending joins: descending order has no
/// monotone watermark, and the semi-join / window variants carry engine
/// state (seen-sets, clip windows) the bulk path does not model. Ineligible
/// configurations run the incremental engine to completion unchanged.
pub struct AdaptiveDistanceJoin<'a, const D: usize, I1 = RTree<D>, I2 = RTree<D>> {
    tree1: &'a I1,
    tree2: &'a I2,
    config: JoinConfig,
    bulk_config: BulkConfig,
    adaptive: AdaptiveConfig,
    ctx: Option<ObsContext>,
    queue_fault: Option<std::sync::Arc<sdj_storage::FaultInjector>>,
    queue_retry_limit: Option<u32>,
}

impl<'a, const D: usize, I1, I2> AdaptiveDistanceJoin<'a, D, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    /// Starts an adaptive join with default bulk and adaptive knobs.
    #[must_use]
    pub fn new(tree1: &'a I1, tree2: &'a I2, config: JoinConfig) -> Self {
        Self::with_configs(
            tree1,
            tree2,
            config,
            BulkConfig::default(),
            AdaptiveConfig::default(),
        )
    }

    /// Starts an adaptive join with explicit bulk and adaptive knobs.
    #[must_use]
    pub fn with_configs(
        tree1: &'a I1,
        tree2: &'a I2,
        config: JoinConfig,
        bulk_config: BulkConfig,
        adaptive: AdaptiveConfig,
    ) -> Self {
        config.validate();
        Self {
            tree1,
            tree2,
            config,
            bulk_config,
            adaptive,
            ctx: None,
            queue_fault: None,
            queue_retry_limit: None,
        }
    }

    /// Attaches instrumentation: the inner engines report through `ctx`,
    /// checkpoints sample the queue self-time share from its span registry,
    /// and a handoff emits [`Event::Replanned`] plus the `plan.replans` /
    /// `plan.replan_at_pair` gauges.
    #[must_use]
    pub fn with_obs(mut self, ctx: &ObsContext) -> Self {
        self.ctx = Some(ctx.clone());
        self
    }

    /// Injects faults into the incremental engine's hybrid queue pager
    /// (chaos testing; see [`DistanceJoin::set_queue_fault_injector`]).
    pub fn set_queue_fault_injector(
        &mut self,
        injector: Option<std::sync::Arc<sdj_storage::FaultInjector>>,
    ) {
        self.queue_fault = injector;
    }

    /// Bounds transient-fault retries of the hybrid queue's pager.
    pub fn set_queue_retry_limit(&mut self, limit: u32) {
        self.queue_retry_limit = Some(limit);
    }

    /// True when this configuration may replan (plain ascending join).
    #[must_use]
    pub fn eligible(&self) -> bool {
        matches!(self.config.order, ResultOrder::Ascending)
    }

    /// Runs to completion serially: drives the incremental engine through
    /// checkpoints and, if a handoff fires, sweeps the seeded bulk join
    /// ordered and appends its stream to the prefix.
    #[must_use]
    pub fn run(self) -> AdaptiveRun {
        match self.execute() {
            AdaptiveOutcome::Completed(run) => run,
            AdaptiveOutcome::Handoff(h) => {
                let mut bulk = h.bulk;
                let tail = bulk.run();
                let mut results = h.prefix;
                results.extend(tail);
                AdaptiveRun {
                    results,
                    stats: h.inc_stats,
                    bulk_stats: Some(bulk.bulk_stats()),
                    replanned: Some(h.info),
                    signals: h.signals,
                    error: None,
                }
            }
        }
    }

    /// Runs the incremental phase through its checkpoints and stops at the
    /// first of: engine exhaustion (run complete), a clean failure, or a
    /// handoff — returning the seeded bulk join unswept so the caller
    /// chooses serial or parallel execution of the remainder.
    #[must_use]
    pub fn execute(self) -> AdaptiveOutcome<D> {
        let (inputs, mut join) = self.build_engine();

        let eligible = self.eligible();
        let stride = self.adaptive.pop_stride.max(1);
        let mut results = Vec::new();
        let mut signals: Vec<ReplanSignals> = Vec::new();
        let mut checkpoint = 0u64;

        loop {
            let can_replan = eligible
                && signals.iter().filter(|s| s.switched).count()
                    < self.adaptive.max_replans as usize;
            // Once no checkpoint can ever fire again, drain without pausing.
            let budget = if !can_replan {
                u64::MAX
            } else {
                match self.adaptive.force_handoff_at {
                    // Stop exactly at the forced pop count.
                    Some(at) => {
                        let pops = join.stats().pairs_dequeued;
                        if at <= pops {
                            0
                        } else {
                            (at - pops).min(stride)
                        }
                    }
                    None => stride,
                }
            };
            if budget > 0 {
                match join.drive(budget, &mut results) {
                    Ok(true) => {
                        return AdaptiveOutcome::Completed(
                            self.completed(results, &join, signals, None),
                        )
                    }
                    Ok(false) => {}
                    Err(e) => {
                        return AdaptiveOutcome::Completed(self.completed(
                            results,
                            &join,
                            signals,
                            Some(e),
                        ))
                    }
                }
            }

            checkpoint += 1;
            let stats = join.stats();
            let observed = ObservedProgress {
                pops: stats.pairs_dequeued,
                results: stats.pairs_reported,
                enqueued: stats.pairs_enqueued,
                queue_len: join.queue_len(),
            };
            let forced = matches!(self.adaptive.force_handoff_at, Some(at) if observed.pops >= at);
            let verdict = plan::replan(&inputs, &observed, self.adaptive.hysteresis);
            let switch = forced || verdict.switch;
            signals.push(ReplanSignals {
                checkpoint,
                pops: observed.pops,
                results: observed.results,
                queue_len: observed.queue_len,
                pairs_enqueued: observed.enqueued,
                observed_frontier: verdict.observed_frontier,
                pops_per_result: if observed.results == 0 {
                    f64::INFINITY
                } else {
                    observed.pops as f64 / observed.results as f64
                },
                queue_growth_per_pop: if observed.pops == 0 {
                    0.0
                } else {
                    observed.queue_len as f64 / observed.pops as f64
                },
                queue_self_share: self.queue_self_share(),
                est_incremental_remaining: verdict.est_incremental_remaining,
                est_bulk_remaining: verdict.est_bulk_remaining,
                switched: switch,
            });
            if !switch {
                continue;
            }

            let info = ReplanInfo {
                at_pop: observed.pops,
                at_pair: observed.results,
                est_incremental_remaining: verdict.est_incremental_remaining,
                est_bulk_remaining: verdict.est_bulk_remaining,
                forced,
            };
            return self.handoff(join, results, signals, info);
        }
    }

    /// Builds the configured incremental engine (instrumentation, fault
    /// injection, watermark tracking) plus the planner inputs checkpoints
    /// re-cost against — the shared setup of [`Self::execute`] and
    /// [`Self::cursor`].
    fn build_engine(&self) -> (PlanInputs<D>, DistanceJoin<'a, D, MbrOracle, I1, I2>) {
        let inputs = PlanInputs::from_trees(self.tree1, self.tree2, &self.config);
        let mut join = DistanceJoin::new(self.tree1, self.tree2, self.config);
        if let Some(ctx) = &self.ctx {
            join = join.with_obs(ctx);
        }
        if let Some(inj) = &self.queue_fault {
            join.set_queue_fault_injector(Some(std::sync::Arc::clone(inj)));
        }
        if let Some(limit) = self.queue_retry_limit {
            join.set_queue_retry_limit(limit);
        }
        join.track_watermark();
        (inputs, join)
    }

    /// Converts the driver into a pull-paced cursor: the same
    /// checkpoint/replan/handoff machine as [`Self::execute`], but advanced
    /// only as far as the consumer's [`AdaptiveCursor::pull`] calls demand,
    /// so a session can hold the join paused between batches with the
    /// frontier intact.
    #[must_use]
    pub fn cursor(self) -> AdaptiveCursor<'a, D, I1, I2> {
        let (inputs, join) = self.build_engine();
        AdaptiveCursor {
            driver: self,
            inputs,
            state: CursorState::Incremental(Box::new(join)),
            buf: VecDeque::new(),
            signals: Vec::new(),
            replanned: None,
            stats: JoinStats::default(),
            bulk_stats: None,
            checkpoint: 0,
            pending_error: None,
        }
    }

    /// Sampled share of run self-time spent inside the queue (pop, push,
    /// spill, reload) — one of the live signals checkpoints record. `None`
    /// without instrumentation or before any span sample lands.
    fn queue_self_share(&self) -> Option<f64> {
        let ctx = self.ctx.as_ref()?;
        let snapshot = ctx.registry.spans().snapshot();
        let mut queue_ns = 0.0;
        let mut total_ns = 0.0;
        for p in &snapshot {
            let ns = p.est_total_ns();
            total_ns += ns;
            if matches!(
                p.phase,
                Phase::QueuePop | Phase::QueuePush | Phase::Spill | Phase::Reload
            ) {
                queue_ns += ns;
            }
        }
        (total_ns > 0.0).then(|| queue_ns / total_ns)
    }

    /// Wraps an incremental-only finish (exhaustion or clean failure).
    fn completed<O>(
        &self,
        results: Vec<ResultPair>,
        join: &DistanceJoin<'a, D, O, I1, I2>,
        signals: Vec<ReplanSignals>,
        error: Option<StorageError>,
    ) -> AdaptiveRun
    where
        O: crate::oracle::DistanceOracle<D>,
    {
        AdaptiveRun {
            results,
            stats: join.stats(),
            bulk_stats: None,
            replanned: None,
            signals,
            error,
        }
    }

    /// Pauses the engine, exports and harvests its frontier, and seeds the
    /// bulk remainder. Any fault inside the export or harvest fails clean:
    /// the prefix emitted so far is returned with the typed error.
    fn handoff<O>(
        &self,
        join: DistanceJoin<'a, D, O, I1, I2>,
        mut results: Vec<ResultPair>,
        signals: Vec<ReplanSignals>,
        info: ReplanInfo,
    ) -> AdaptiveOutcome<D>
    where
        O: crate::oracle::DistanceOracle<D>,
    {
        let floor = join.watermark().cloned();
        let mut frontier = join.into_frontier(1, 0);
        results.append(&mut frontier.prefix);
        let mut inc_stats = frontier.stats;
        if let Some(e) = frontier.error {
            return AdaptiveOutcome::Completed(AdaptiveRun {
                results,
                stats: inc_stats,
                bulk_stats: None,
                replanned: None,
                signals,
                error: Some(e),
            });
        }
        if frontier.exhausted {
            return AdaptiveOutcome::Completed(AdaptiveRun {
                results,
                stats: inc_stats,
                bulk_stats: None,
                replanned: None,
                signals,
                error: None,
            });
        }

        let shard = frontier.shards.pop().unwrap_or_default();
        let mut side1 = HarvestSide::default();
        let mut side2 = HarvestSide::default();
        for (_, pair) in &shard {
            let r = side1
                .collect(self.tree1, &pair.item1, &mut inc_stats)
                .and_then(|()| side2.collect(self.tree2, &pair.item2, &mut inc_stats));
            if let Err(e) = r {
                return AdaptiveOutcome::Completed(AdaptiveRun {
                    results,
                    stats: inc_stats,
                    bulk_stats: None,
                    replanned: None,
                    signals,
                    error: Some(e),
                });
            }
        }

        let mut seeded_config = self.config;
        seeded_config.max_pairs = frontier.remaining_pairs;
        let bulk = BulkDistanceJoin::from_frontier(
            side1.entries,
            side2.entries,
            seeded_config,
            self.bulk_config,
            floor.as_ref(),
            frontier.dmax_hint,
            self.ctx.as_ref(),
        );

        if let Some(ctx) = &self.ctx {
            ctx.sink.emit(&Event::Replanned {
                from: PlanPath::Incremental,
                to: PlanPath::Bulk,
                at_pop: info.at_pop,
                at_pair: info.at_pair,
                est_incremental_remaining: info.est_incremental_remaining,
                est_bulk_remaining: info.est_bulk_remaining,
            });
            ctx.registry.gauge("plan.replans").set(1);
            ctx.registry
                .gauge("plan.replan_at_pair")
                .set(i64::try_from(info.at_pair).unwrap_or(i64::MAX));
        }

        AdaptiveOutcome::Handoff(Handoff {
            prefix: results,
            bulk,
            info,
            inc_stats,
            signals,
        })
    }
}

/// Where an [`AdaptiveCursor`] currently is in its run.
enum CursorState<'a, const D: usize, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    /// Driving the incremental engine through checkpoints.
    Incremental(Box<DistanceJoin<'a, D, MbrOracle, I1, I2>>),
    /// A handoff fired; the seeded bulk remainder has been swept and its
    /// ordered tail is being drained.
    BulkTail(std::vec::IntoIter<ResultPair>),
    /// Exhausted (or failed clean).
    Finished,
}

/// A pull-driven adaptive join cursor.
///
/// [`AdaptiveDistanceJoin::execute`] owns its own loop: it drives the
/// engine stride after stride until exhaustion or a handoff, then hands the
/// whole remainder back at once. A cursor session cannot work that way — it
/// needs to surface results a batch at a time, pause indefinitely between
/// batches with the frontier held in place, and be cancelled mid-stream.
/// `AdaptiveCursor` is the same machine inverted: each [`Self::pull`]
/// drives at most one stride (so the checkpoint schedule, and therefore
/// the replan decision sequence, is *identical* to `execute`'s), buffers
/// any results the stride over-produced, and parks. When a checkpoint
/// fires the handoff, the seeded bulk remainder is swept serially on the
/// spot — the bulk path materialises by nature — and its ordered tail is
/// then drained batch by batch.
///
/// Fail-clean shape: a storage fault ends the stream, but every result
/// produced before it is still handed out first; the typed error surfaces
/// on the first `pull` after the buffered prefix drains (the PR 5
/// "correct prefix, then the error" contract, adapted to a pull API).
pub struct AdaptiveCursor<'a, const D: usize, I1 = RTree<D>, I2 = RTree<D>>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    driver: AdaptiveDistanceJoin<'a, D, I1, I2>,
    inputs: PlanInputs<D>,
    state: CursorState<'a, D, I1, I2>,
    /// Results a stride produced beyond what the consumer asked for.
    buf: VecDeque<ResultPair>,
    signals: Vec<ReplanSignals>,
    replanned: Option<ReplanInfo>,
    /// Incremental-phase counters, frozen when that phase ends.
    stats: JoinStats,
    bulk_stats: Option<BulkStats>,
    checkpoint: u64,
    /// A terminal fault, held until the buffered prefix has drained.
    pending_error: Option<StorageError>,
}

impl<'a, const D: usize, I1, I2> AdaptiveCursor<'a, D, I1, I2>
where
    I1: SpatialIndex<D>,
    I2: SpatialIndex<D>,
{
    /// Appends up to `n` further results to `out`, in stream order.
    ///
    /// Returns `Ok(true)` once the stream is exhausted (this call may have
    /// appended fewer than `n`, including zero). `Err` is terminal and
    /// fail-clean: everything appended across all `pull` calls so far is a
    /// correct prefix of the fault-free stream.
    pub fn pull(&mut self, n: usize, out: &mut Vec<ResultPair>) -> sdj_storage::Result<bool> {
        let target = out.len().saturating_add(n);
        while out.len() < target {
            if let Some(r) = self.buf.pop_front() {
                out.push(r);
                continue;
            }
            match &mut self.state {
                CursorState::Finished => {
                    if let Some(e) = self.pending_error.take() {
                        return Err(e);
                    }
                    return Ok(true);
                }
                CursorState::BulkTail(tail) => match tail.next() {
                    Some(r) => out.push(r),
                    None => self.state = CursorState::Finished,
                },
                CursorState::Incremental(_) => self.advance_incremental(),
            }
        }
        Ok(self.is_done())
    }

    /// One iteration of the `execute` loop: drive a stride (or up to the
    /// forced handoff point), then run the checkpoint, possibly switching
    /// to the bulk tail. Results land in `buf`; faults land in
    /// `pending_error` so the buffered prefix drains first.
    fn advance_incremental(&mut self) {
        let adaptive = self.driver.adaptive;
        let stride = adaptive.pop_stride.max(1);
        let can_replan = self.driver.eligible()
            && self.signals.iter().filter(|s| s.switched).count() < adaptive.max_replans as usize;
        let CursorState::Incremental(join) = &mut self.state else {
            return;
        };
        let budget = if !can_replan {
            u64::MAX
        } else {
            match adaptive.force_handoff_at {
                Some(at) => {
                    let pops = join.stats().pairs_dequeued;
                    if at <= pops {
                        0
                    } else {
                        (at - pops).min(stride)
                    }
                }
                None => stride,
            }
        };
        if budget > 0 {
            let mut chunk = Vec::new();
            let outcome = join.drive(budget, &mut chunk);
            self.buf.extend(chunk);
            match outcome {
                Ok(true) => {
                    self.stats = join.stats();
                    self.state = CursorState::Finished;
                    return;
                }
                Ok(false) => {}
                Err(e) => {
                    self.stats = join.stats();
                    self.pending_error = Some(e);
                    self.state = CursorState::Finished;
                    return;
                }
            }
        }

        self.checkpoint += 1;
        let stats = join.stats();
        let observed = ObservedProgress {
            pops: stats.pairs_dequeued,
            results: stats.pairs_reported,
            enqueued: stats.pairs_enqueued,
            queue_len: join.queue_len(),
        };
        let forced = matches!(adaptive.force_handoff_at, Some(at) if observed.pops >= at);
        let verdict = plan::replan(&self.inputs, &observed, adaptive.hysteresis);
        let switch = forced || verdict.switch;
        self.signals.push(ReplanSignals {
            checkpoint: self.checkpoint,
            pops: observed.pops,
            results: observed.results,
            queue_len: observed.queue_len,
            pairs_enqueued: observed.enqueued,
            observed_frontier: verdict.observed_frontier,
            pops_per_result: if observed.results == 0 {
                f64::INFINITY
            } else {
                observed.pops as f64 / observed.results as f64
            },
            queue_growth_per_pop: if observed.pops == 0 {
                0.0
            } else {
                observed.queue_len as f64 / observed.pops as f64
            },
            queue_self_share: self.driver.queue_self_share(),
            est_incremental_remaining: verdict.est_incremental_remaining,
            est_bulk_remaining: verdict.est_bulk_remaining,
            switched: switch,
        });
        if !switch {
            return;
        }

        let info = ReplanInfo {
            at_pop: observed.pops,
            at_pair: observed.results,
            est_incremental_remaining: verdict.est_incremental_remaining,
            est_bulk_remaining: verdict.est_bulk_remaining,
            forced,
        };
        let CursorState::Incremental(join) =
            std::mem::replace(&mut self.state, CursorState::Finished)
        else {
            return;
        };
        let pending: Vec<ResultPair> = self.buf.drain(..).collect();
        let signals = std::mem::take(&mut self.signals);
        match self.driver.handoff(*join, pending, signals, info) {
            AdaptiveOutcome::Completed(run) => {
                self.buf.extend(run.results);
                self.stats = run.stats;
                self.signals = run.signals;
                self.pending_error = run.error;
            }
            AdaptiveOutcome::Handoff(h) => {
                self.buf.extend(h.prefix);
                self.stats = h.inc_stats;
                self.signals = h.signals;
                self.replanned = Some(h.info);
                let mut bulk = h.bulk;
                let tail = bulk.run();
                self.bulk_stats = Some(bulk.bulk_stats());
                self.state = CursorState::BulkTail(tail.into_iter());
            }
        }
    }

    /// True once every result has been handed out and no error is pending.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.state, CursorState::Finished)
            && self.buf.is_empty()
            && self.pending_error.is_none()
    }

    /// Bytes held by the paused incremental engine's queue (all tiers).
    /// Zero once the incremental phase has ended.
    #[must_use]
    pub fn queue_bytes(&self) -> usize {
        match &self.state {
            CursorState::Incremental(j) => j.queue_bytes(),
            _ => 0,
        }
    }

    /// Bytes held by results a stride over-produced (or the materialised
    /// bulk tail still waiting to be drained).
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        let tail = match &self.state {
            CursorState::BulkTail(t) => t.len(),
            _ => 0,
        };
        (self.buf.len() + tail) * std::mem::size_of::<ResultPair>()
    }

    /// Incremental-phase counters (live while that phase runs).
    #[must_use]
    pub fn stats(&self) -> JoinStats {
        match &self.state {
            CursorState::Incremental(j) => j.stats(),
            _ => self.stats,
        }
    }

    /// Bulk-phase counters, once a handoff has run.
    #[must_use]
    pub fn bulk_stats(&self) -> Option<&BulkStats> {
        self.bulk_stats.as_ref()
    }

    /// The switch record, once a handoff has fired.
    #[must_use]
    pub fn replanned(&self) -> Option<&ReplanInfo> {
        self.replanned.as_ref()
    }

    /// Every checkpoint's signals so far, in order.
    #[must_use]
    pub fn signals(&self) -> &[ReplanSignals] {
        &self.signals
    }

    /// Re-registers the underlying queue's gauges under `prefix` (e.g.
    /// `session.3.`), for per-session attribution. No-op once the
    /// incremental phase has ended.
    pub fn attach_queue_obs_prefixed(&mut self, ctx: &ObsContext, prefix: &str) {
        if let CursorState::Incremental(j) = &mut self.state {
            j.attach_queue_obs_prefixed(ctx, prefix);
        }
    }
}

/// One side's harvest state: frontier items flattened to object entries,
/// with per-side dedup. A node's subtree is walked at most once (two
/// frontier pairs may share an item), and an object reached both directly
/// and through an ancestor node's walk is kept once — object identity is
/// the dedup key, so any overlap between harvested subtrees collapses.
#[derive(Default)]
struct HarvestSide<const D: usize> {
    entries: Vec<(ObjectId, Rect<D>)>,
    visited_nodes: HashSet<NodeId>,
    seen_oids: HashSet<u64>,
    buf: IndexNode<D>,
    stack: Vec<NodeId>,
}

impl<const D: usize> HarvestSide<D> {
    fn push_object(&mut self, oid: ObjectId, mbr: Rect<D>) {
        if self.seen_oids.insert(oid.0) {
            self.entries.push((oid, mbr));
        }
    }

    fn collect<I>(
        &mut self,
        tree: &I,
        item: &Item<D>,
        stats: &mut JoinStats,
    ) -> sdj_storage::Result<()>
    where
        I: SpatialIndex<D> + ?Sized,
    {
        match *item {
            Item::Obr { oid, mbr } | Item::Object { oid, mbr } => {
                self.push_object(oid, mbr);
                Ok(())
            }
            Item::Node { page, .. } => {
                if !self.visited_nodes.insert(page) {
                    return Ok(());
                }
                self.stack.clear();
                self.stack.push(page);
                while let Some(id) = self.stack.pop() {
                    tree.read_node_into(id, &mut self.buf)?;
                    stats.node_accesses += 1;
                    // Split borrows: drain entries out of the buffer before
                    // touching `self` again.
                    let entries = std::mem::take(&mut self.buf.entries);
                    for e in &entries {
                        match *e {
                            IndexEntry::Child { id, .. } => {
                                if self.visited_nodes.insert(id) {
                                    self.stack.push(id);
                                }
                            }
                            IndexEntry::Object { oid, mbr } => self.push_object(oid, mbr),
                        }
                    }
                    self.buf.entries = entries;
                    self.buf.entries.clear();
                }
                Ok(())
            }
        }
    }
}
