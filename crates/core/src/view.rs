//! Reusable struct-of-arrays node views for the expansion hot path.
//!
//! Every pop of a node pair re-reads a node and evaluates MINDIST (and
//! often MAXDIST) against each of its entries. The batched kernels in
//! [`sdj_geom::kernels`] want the entries' rectangles as per-axis `lo`/`hi`
//! columns; decoding a page into that layout costs one pass, so it pays to
//! do it once per page and reuse the result while the page stays hot. A
//! [`NodeView`] bundles the decoded entries with their [`SoaRects`] columns,
//! and a [`ViewCache`] keeps recently used views keyed by node id.
//!
//! The cache hands views out by value (`checkout`) and takes them back
//! (`checkin`) so the join can iterate a view's entries while calling
//! `&mut self` methods — no aliasing with the cache's own storage. Views are
//! never dropped: a cache miss refills a spare buffer, so steady-state
//! expansion performs no allocation.
//!
//! Staleness is a non-issue by construction: a join borrows its trees
//! immutably for its whole lifetime, and the cache lives inside the join.

use std::collections::HashMap;

use sdj_geom::SoaRects;
use sdj_storage::Result;

use crate::index::{IndexNode, NodeId, SpatialIndex};

/// Views retained per tree side before the least-recently-used one is
/// recycled. Sized for the working sets of §4's experiments: deep two-tree
/// traversals keep a handful of pages per side hot at a time.
pub(crate) const VIEW_CACHE_CAP: usize = 64;

/// A decoded node plus the struct-of-arrays layout of its entry rectangles.
#[derive(Debug, Default)]
pub(crate) struct NodeView<const D: usize> {
    /// The decoded node (level and entries).
    pub node: IndexNode<D>,
    /// Per-axis `lo`/`hi` columns of `node.entries[i].rect()`, in entry
    /// order — the operand the batched distance kernels run over.
    pub rects: SoaRects<D>,
}

impl<const D: usize> NodeView<D> {
    /// Refills the view from node `id` of `tree`, reusing all buffers.
    fn fill<I: SpatialIndex<D> + ?Sized>(&mut self, tree: &I, id: NodeId) -> Result<()> {
        tree.read_node_into(id, &mut self.node)?;
        self.rects.clear();
        for e in &self.node.entries {
            self.rects.push(e.rect());
        }
        Ok(())
    }
}

/// A small LRU cache of [`NodeView`]s, keyed by node id (page).
#[derive(Debug)]
pub(crate) struct ViewCache<const D: usize> {
    slots: HashMap<NodeId, (u64, NodeView<D>)>,
    spare: Vec<NodeView<D>>,
    tick: u64,
    cap: usize,
    hits: u64,
    fills: u64,
}

impl<const D: usize> ViewCache<D> {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            slots: HashMap::new(),
            spare: Vec::new(),
            tick: 0,
            cap,
            hits: 0,
            fills: 0,
        }
    }

    /// Hands out the view for node `id`, decoding it only on a cache miss.
    /// The view is *moved out* of the cache; return it with
    /// [`ViewCache::checkin`] once the expansion is done.
    pub(crate) fn checkout<I: SpatialIndex<D> + ?Sized>(
        &mut self,
        tree: &I,
        id: NodeId,
    ) -> Result<NodeView<D>> {
        if let Some((_, view)) = self.slots.remove(&id) {
            self.hits += 1;
            return Ok(view);
        }
        let mut view = self.spare.pop().unwrap_or_default();
        match view.fill(tree, id) {
            Ok(()) => {
                self.fills += 1;
                Ok(view)
            }
            Err(e) => {
                self.spare.push(view);
                Err(e)
            }
        }
    }

    /// Returns a checked-out view, retaining it for future hits (and
    /// recycling the least recently used view if the cache is full).
    pub(crate) fn checkin(&mut self, id: NodeId, view: NodeView<D>) {
        self.tick += 1;
        if self.slots.len() >= self.cap {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(&id, _)| id);
            if let Some(victim) = victim {
                if let Some((_, evicted)) = self.slots.remove(&victim) {
                    self.spare.push(evicted);
                }
            }
        }
        self.slots.insert(id, (self.tick, view));
    }

    /// (cache hits, page decodes) since construction.
    #[cfg(test)]
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.hits, self.fills)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Point;
    use sdj_rtree::{ObjectId, RTree, RTreeConfig};

    fn small_tree() -> RTree<2> {
        let mut tree = RTree::new(RTreeConfig::small(4));
        for i in 0..64u64 {
            let p = Point::xy((i % 8) as f64, (i / 8) as f64);
            tree.insert(ObjectId(i), p.to_rect()).unwrap();
        }
        tree
    }

    #[test]
    fn checkout_matches_read_node_and_hits_on_reuse() {
        let tree = small_tree();
        let root = SpatialIndex::root_id(&tree);
        let mut cache: ViewCache<2> = ViewCache::new(4);

        let view = cache.checkout(&tree, root).unwrap();
        let direct = SpatialIndex::read_node(&tree, root).unwrap();
        assert_eq!(view.node.level, direct.level);
        assert_eq!(view.node.entries, direct.entries);
        assert_eq!(view.rects.len(), direct.entries.len());
        for (i, e) in direct.entries.iter().enumerate() {
            assert_eq!(&view.rects.get(i), e.rect());
        }
        cache.checkin(root, view);

        let again = cache.checkout(&tree, root).unwrap();
        assert_eq!(cache.counters(), (1, 1));
        cache.checkin(root, again);
    }

    #[test]
    fn lru_eviction_recycles_buffers() {
        let tree = small_tree();
        let root = SpatialIndex::read_node(&tree, SpatialIndex::root_id(&tree)).unwrap();
        let child_ids: Vec<NodeId> = root
            .entries
            .iter()
            .filter_map(|e| match e {
                crate::index::IndexEntry::Child { id, .. } => Some(*id),
                crate::index::IndexEntry::Object { .. } => None,
            })
            .collect();
        assert!(child_ids.len() >= 3, "tree too shallow for the test");

        let mut cache: ViewCache<2> = ViewCache::new(2);
        for &id in &child_ids {
            let view = cache.checkout(&tree, id).unwrap();
            cache.checkin(id, view);
        }
        // Only `cap` views retained; each checkout so far was a fill.
        assert_eq!(cache.counters(), (0, child_ids.len() as u64));
        // The most recently used id is still cached.
        let last = *child_ids.last().unwrap();
        let view = cache.checkout(&tree, last).unwrap();
        assert_eq!(cache.counters().0, 1);
        cache.checkin(last, view);
    }
}
