//! Criterion microbenches for the substrates, including the ablations
//! DESIGN.md calls out: pairing heap vs flat 4-ary heap, hybrid-queue
//! tiering, plane-sweep vs all-pairs node expansion, and the distance bound
//! functions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sdj_core::{DistanceJoin, JoinConfig, QueueBackend, TraversalPolicy};
use sdj_datagen::{tiger, uniform_points, unit_box};
use sdj_geom::{Metric, OrdF64, Point, Rect};
use sdj_pqueue::{FlatHeap, HybridConfig, HybridQueue, PairingHeap, PriorityQueue};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn keys(n: usize) -> Vec<f64> {
    // Deterministic pseudo-random distances.
    (0..n)
        .map(|i| ((i as f64) * 0.754_877_666_247).fract() * 100.0)
        .collect()
}

fn bench_heaps(c: &mut Criterion) {
    let ks = keys(10_000);
    let mut group = c.benchmark_group("pqueue/push_pop_10k");
    group.bench_function("pairing_heap", |b| {
        b.iter_batched(
            PairingHeap::<OrdF64, u64>::new,
            |mut h| {
                for (i, k) in ks.iter().enumerate() {
                    h.push(OrdF64::new(*k), i as u64);
                }
                while let Some(x) = h.pop() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("flat_dary_heap", |b| {
        b.iter_batched(
            FlatHeap::<OrdF64, u64>::new,
            |mut h| {
                for (i, k) in ks.iter().enumerate() {
                    h.push(OrdF64::new(*k), i as u64);
                }
                while let Some(x) = h.pop() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("hybrid_dt10", |b| {
        b.iter_batched(
            || HybridQueue::<OrdF64, u64>::new(HybridConfig::with_dt(10.0)),
            |mut h| {
                for (i, k) in ks.iter().enumerate() {
                    h.push(OrdF64::new(*k), i as u64).expect("in-memory push");
                }
                while let Ok(Some(x)) = h.pop() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let pts = uniform_points(5_000, &unit_box(), 42);
    c.bench_function("rtree/insert_5k", |b| {
        b.iter(|| {
            let mut tree = RTree::new(RTreeConfig::default());
            for (i, p) in pts.iter().enumerate() {
                tree.insert(ObjectId(i as u64), p.to_rect()).unwrap();
            }
            black_box(tree.len())
        });
    });
    c.bench_function("rtree/bulk_load_5k", |b| {
        b.iter(|| {
            let items: Vec<_> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                .collect();
            black_box(RTree::bulk_load(RTreeConfig::default(), items).len())
        });
    });
    let tree = {
        let items: Vec<_> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
            .collect();
        RTree::bulk_load(RTreeConfig::default(), items)
    };
    c.bench_function("rtree/nn_first", |b| {
        b.iter(|| {
            black_box(
                tree.nearest_neighbors(Point::xy(0.5, 0.5), Metric::Euclidean)
                    .next(),
            )
        });
    });
    c.bench_function("rtree/window_1pct", |b| {
        let w = Rect::new([0.45, 0.45], [0.55, 0.55]);
        b.iter(|| black_box(tree.query_window(&w).unwrap().len()));
    });
}

fn join_env() -> (RTree<2>, RTree<2>) {
    let water = tiger::water_like(3_000, 5);
    let roads = tiger::roads_like(12_000, 5);
    let tw = RTree::bulk_load(
        RTreeConfig::default(),
        water
            .iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
            .collect(),
    );
    let tr = RTree::bulk_load(
        RTreeConfig::default(),
        roads
            .iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
            .collect(),
    );
    (tw, tr)
}

fn bench_join(c: &mut Criterion) {
    let (tw, tr) = join_env();
    let mut group = c.benchmark_group("join");
    group.sample_size(20);
    group.bench_function("first_pair", |b| {
        b.iter(|| {
            black_box(
                DistanceJoin::new(&tw, &tr, JoinConfig::default())
                    .next()
                    .unwrap(),
            )
        });
    });
    group.bench_function("1k_pairs_even", |b| {
        b.iter(|| {
            black_box(
                DistanceJoin::new(&tw, &tr, JoinConfig::default())
                    .take(1_000)
                    .count(),
            )
        });
    });
    // Ablation: sweep-based Simultaneous expansion under a tight max
    // distance, against one-node-at-a-time.
    group.bench_function("1k_pairs_simultaneous_maxdist", |b| {
        let config = JoinConfig {
            traversal: TraversalPolicy::Simultaneous,
            ..JoinConfig::default()
        }
        .with_range(0.0, 0.002);
        b.iter(|| black_box(DistanceJoin::new(&tw, &tr, config).take(1_000).count()));
    });
    group.bench_function("1k_pairs_even_maxdist", |b| {
        let config = JoinConfig::default().with_range(0.0, 0.002);
        b.iter(|| black_box(DistanceJoin::new(&tw, &tr, config).take(1_000).count()));
    });
    group.bench_function("1k_pairs_hybrid_queue", |b| {
        let config = JoinConfig {
            queue: QueueBackend::Hybrid(HybridConfig::with_dt(0.01)),
            ..JoinConfig::default()
        };
        b.iter(|| black_box(DistanceJoin::new(&tw, &tr, config).take(1_000).count()));
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let a = Rect::new([0.1, 0.2], [0.4, 0.5]);
    let b_ = Rect::new([0.6, 0.1], [0.9, 0.3]);
    let p = Point::xy(0.05, 0.95);
    let mut group = c.benchmark_group("metric");
    group.bench_function("mindist_rect_rect", |bch| {
        bch.iter(|| black_box(Metric::Euclidean.mindist_rect_rect(&a, &b_)));
    });
    group.bench_function("maxdist_rect_rect", |bch| {
        bch.iter(|| black_box(Metric::Euclidean.maxdist_rect_rect(&a, &b_)));
    });
    group.bench_function("minmaxdist_point_rect", |bch| {
        bch.iter(|| black_box(Metric::Euclidean.minmaxdist_point_rect(&p, &a)));
    });
    group.bench_function("minmaxdist_rect_rect", |bch| {
        bch.iter(|| black_box(Metric::Euclidean.minmaxdist_rect_rect(&a, &b_)));
    });
    group.finish();
}

criterion_group!(benches, bench_heaps, bench_rtree, bench_join, bench_metrics);
criterion_main!(benches);
