//! §4.2.3: the complete distance semi-join via the incremental algorithm
//! ("GlobalAll", its best variant) versus the nearest-neighbour alternative
//! (one NN search per outer object + final sort), in both join orders.
//!
//! The paper reports GlobalAll ≈ 25 s vs NN ≈ 27 s for Water ⋈ Roads and
//! 102 s vs 141 s for Roads ⋈ Water: the incremental algorithm wins both,
//! more clearly with the larger outer relation.

use sdj_baselines::{nn_semijoin, nn_semijoin_shuffled};
use sdj_bench::{fmt_secs, measure, Env, Table};
use sdj_core::{DmaxStrategy, JoinConfig, JoinStats, SemiConfig, SemiFilter};
use sdj_geom::Metric;

fn main() {
    let env = Env::from_args();
    println!("Section 4.2.3: complete distance semi-join, incremental vs NN-based");
    println!();
    let mut table = Table::new(&[
        "Order",
        "GlobalAll (s)",
        "NN leaf-order (s)",
        "NN random-order (s)",
        "GlobalAll node I/O",
        "NN leaf I/O",
        "NN random I/O",
        "Results",
    ]);
    for (label, swap) in [("Water x Roads", false), ("Roads x Water", true)] {
        let semi = SemiConfig {
            filter: SemiFilter::Inside2,
            dmax: DmaxStrategy::GlobalAll,
        };
        let outer = if swap {
            env.roads.len()
        } else {
            env.water.len()
        } as u64;
        let inc = sdj_bench::run_join(&env, swap, JoinConfig::default(), Some(semi), outer);
        assert_eq!(inc.produced, outer);

        env.reset_io();
        let (t1, t2) = if swap {
            (&env.roads_tree, &env.water_tree)
        } else {
            (&env.water_tree, &env.roads_tree)
        };
        let nn = measure(|| {
            let pairs = nn_semijoin(t1, t2, Metric::Euclidean).expect("simulated disk");
            (JoinStats::default(), pairs.len() as u64)
        });
        assert_eq!(nn.produced, outer);
        // The paper's times were disk-bound; the buffer-miss counts are the
        // hardware-independent comparison.
        let nn_io = t1.io_stats().misses + t2.io_stats().misses;

        // The leaf-order scan gives consecutive NN queries near-perfect
        // buffer locality; a relation scanned in storage order uncorrelated
        // with space does not get that.
        env.reset_io();
        let nn_rand = measure(|| {
            let pairs =
                nn_semijoin_shuffled(t1, t2, Metric::Euclidean, 42).expect("simulated disk");
            (JoinStats::default(), pairs.len() as u64)
        });
        assert_eq!(nn_rand.produced, outer);
        let nn_rand_io = t1.io_stats().misses + t2.io_stats().misses;

        table.row(&[
            label.to_string(),
            fmt_secs(inc.seconds),
            fmt_secs(nn.seconds),
            fmt_secs(nn_rand.seconds),
            inc.stats.node_io.to_string(),
            nn_io.to_string(),
            nn_rand_io.to_string(),
            outer.to_string(),
        ]);
    }
    table.print();
}
