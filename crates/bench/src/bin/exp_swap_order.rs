//! §4.1.1 (text): sensitivity to the order of the joined relations. The
//! distance join is symmetric, and Even traversal performs virtually the
//! same either way — but the Basic variant, which always expands the first
//! item of node/node pairs, blows up when the larger relation (Roads) comes
//! first ("too many pairs were generated for the priority queue").

use sdj_bench::{fmt_secs, sweep_up_to, Env, Table};
use sdj_core::{JoinConfig, TraversalPolicy};

fn main() {
    let env = Env::from_args();
    println!("Order sensitivity: Basic vs Even traversal, both join orders");
    println!();
    let mut table = Table::new(&[
        "Pairs",
        "Even W x R (s)",
        "Even R x W (s)",
        "Basic W x R (s)",
        "Basic R x W (s)",
        "Basic R x W queue",
        "Even R x W queue",
    ]);
    let max = ((env.water.len() * env.roads.len()) as u64).min(10_000);
    for k in sweep_up_to(max) {
        let even = JoinConfig {
            traversal: TraversalPolicy::Even,
            ..JoinConfig::default()
        };
        let basic = JoinConfig {
            traversal: TraversalPolicy::Basic,
            ..JoinConfig::default()
        };
        let ewr = sdj_bench::run_join(&env, false, even, None, k);
        let erw = sdj_bench::run_join(&env, true, even, None, k);
        let bwr = sdj_bench::run_join(&env, false, basic, None, k);
        let brw = sdj_bench::run_join(&env, true, basic, None, k);
        table.row(&[
            k.to_string(),
            fmt_secs(ewr.seconds),
            fmt_secs(erw.seconds),
            fmt_secs(bwr.seconds),
            fmt_secs(brw.seconds),
            brw.stats.max_queue.to_string(),
            erw.stats.max_queue.to_string(),
        ]);
    }
    table.print();
}
