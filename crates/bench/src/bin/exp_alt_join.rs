//! §4.1.4: alternative distance-join implementations — the nested-loop
//! approach (compute every pairwise distance, inner relation in memory)
//! against the incremental algorithm consuming 1 … 100,000 pairs, plus the
//! within-predicate spatial join + sort for a known maximum distance.
//!
//! The paper's full-scale nested loop took over 3.5 hours for ~7.5 billion
//! pairs; scale the environment so the Cartesian product stays tractable
//! (the default 0.2 gives ~300 M pairs).

use sdj_baselines::{nested_loop_count, within_join};
use sdj_bench::{fmt_secs, join_distance_at_ranks, measure, sweep_up_to, Env, Table};
use sdj_core::{JoinConfig, JoinStats};
use sdj_geom::Metric;

fn main() {
    let env = Env::from_args();
    let cartesian = env.water.len() as u64 * env.roads.len() as u64;
    println!("Section 4.1.4: alternative distance-join implementations");
    println!("Cartesian product: {cartesian} pairs");
    println!();

    // Nested loop: all distances, nothing stored (the paper's measurement).
    let water_objs: Vec<_> = env
        .water
        .iter()
        .enumerate()
        .map(|(i, p)| (sdj_rtree::ObjectId(i as u64), p.to_rect()))
        .collect();
    let roads_objs: Vec<_> = env
        .roads
        .iter()
        .enumerate()
        .map(|(i, p)| (sdj_rtree::ObjectId(i as u64), p.to_rect()))
        .collect();
    let nested = measure(|| {
        let n = nested_loop_count(
            &water_objs,
            &roads_objs,
            Metric::Euclidean,
            0.0,
            f64::INFINITY,
        );
        (JoinStats::default(), n)
    });
    println!(
        "Nested loop (all {} distances, none stored): {} s",
        nested.produced,
        fmt_secs(nested.seconds)
    );

    // Within-join + sort for the distance of pair #100,000 (or the largest
    // rank available): the non-incremental plan when a cut-off is known.
    let max = cartesian.min(100_000);
    let cutoff = join_distance_at_ranks(&env, &[max])[0];
    let within = measure(|| {
        let pairs = within_join(
            &env.water_tree,
            &env.roads_tree,
            Metric::Euclidean,
            0.0,
            cutoff,
        )
        .expect("simulated disk cannot fail");
        (JoinStats::default(), pairs.len() as u64)
    });
    println!(
        "Within-join + sort (dmax = dist of pair #{max}): {} s for {} pairs",
        fmt_secs(within.seconds),
        within.produced
    );
    println!();

    // The incremental join, for comparison, at each result count.
    let mut table = Table::new(&["Pairs", "Incremental (s)", "vs nested loop"]);
    for k in sweep_up_to(max) {
        let m = sdj_bench::run_join(&env, false, JoinConfig::default(), None, k);
        table.row(&[
            k.to_string(),
            fmt_secs(m.seconds),
            format!("{:.0}x faster", nested.seconds / m.seconds.max(1e-9)),
        ]);
    }
    table.print();
}
