//! Figure 8: execution time for storing the priority queue entirely in
//! memory versus offloading parts of it to disk with the hybrid scheme
//! (§3.2), for two values of the bucket increment `D_T`.
//!
//! The paper picked `D_T` values equal to the distances of result pairs
//! #7,663 and #34,906; this binary probes the same ranks. The paper's
//! memory-only collapse at 100,000 pairs was virtual-memory thrashing on a
//! 64 MB machine; that effect cannot be reproduced on modern RAM sizes, so
//! alongside wall-clock time the table reports the evidence that matters:
//! the in-memory high-water mark of each backend (elements resident at
//! peak) and the element count the hybrid queue parked on disk instead.

use sdj_bench::{fmt_secs, join_distance_at_ranks, sweep_up_to, Env, Table};
use sdj_core::{DistanceJoin, JoinConfig, QueueBackend};
use sdj_pqueue::HybridConfig;

struct Run {
    seconds: f64,
    mem_peak: usize,
    spilled: u64,
}

fn run(env: &Env, backend: QueueBackend, k: u64) -> Run {
    let config = JoinConfig {
        queue: backend,
        ..JoinConfig::default()
    };
    env.reset_io();
    let start = std::time::Instant::now();
    let mut join = DistanceJoin::new(&env.water_tree, &env.roads_tree, config);
    let produced = join.by_ref().take(k as usize).count() as u64;
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(produced, k, "environment too small for {k} pairs");
    match join.hybrid_queue_info() {
        None => Run {
            seconds,
            mem_peak: join.stats().max_queue,
            spilled: 0,
        },
        Some((stats, mem_peak)) => Run {
            seconds,
            mem_peak,
            spilled: stats.spilled,
        },
    }
}

fn main() {
    let env = Env::from_args();
    let max = ((env.water.len() * env.roads.len()) as u64).min(100_000);
    let ranks: Vec<u64> = [7_663u64, 34_906].into_iter().map(|r| r.min(max)).collect();
    eprintln!("# probing D_T candidates at ranks {ranks:?} ...");
    let dts = join_distance_at_ranks(&env, &ranks);
    eprintln!(
        "#   Hybrid1 D_T = {:.6}, Hybrid2 D_T = {:.6}",
        dts[0], dts[1]
    );

    println!("Figure 8: memory-only vs hybrid priority queue, Water x Roads");
    println!();
    let mut table = Table::new(&[
        "Pairs",
        "Memory (s)",
        "Hybrid1 (s)",
        "Hybrid2 (s)",
        "Mem peak",
        "Hyb1 peak",
        "Hyb1 spill",
        "Hyb2 peak",
        "Hyb2 spill",
    ]);
    for k in sweep_up_to(max) {
        let mem = run(&env, QueueBackend::Memory, k);
        let h1 = run(&env, QueueBackend::Hybrid(HybridConfig::with_dt(dts[0])), k);
        let h2 = run(&env, QueueBackend::Hybrid(HybridConfig::with_dt(dts[1])), k);
        table.row(&[
            k.to_string(),
            fmt_secs(mem.seconds),
            fmt_secs(h1.seconds),
            fmt_secs(h2.seconds),
            mem.mem_peak.to_string(),
            h1.mem_peak.to_string(),
            h1.spilled.to_string(),
            h2.mem_peak.to_string(),
            h2.spilled.to_string(),
        ]);
    }
    table.print();
}
