//! Buffer-pool I/O report for the sharded pool and queue-driven prefetch.
//!
//! Joins two uniform 100k-point sets, consuming the K = 100,000 closest
//! pairs through the serial engine under shard-count × prefetch
//! combinations, and writes the measurements to `BENCH_io.json` in the
//! current directory.
//!
//! The `1 shard, LRU, prefetch off` sample is the historical single-mutex
//! pool: its demand-miss count is the paper's node-I/O measure and is
//! byte-identical to the pre-sharding implementation (the storage test
//! suite pins this). Every combination emits the identical result stream —
//! the exec equivalence suites pin that too — so the numbers isolate the
//! I/O behaviour, not the answer.
//!
//! Honesty note: this container exposes a single CPU, so the report states
//! counters (demand misses, prefetch conversions, pager-lock acquisitions
//! avoided), not parallel speedups. The lock-avoidance counter is the
//! number of page accesses served without touching the shared pager mutex —
//! the contention the sharded pool removes when real cores are present.

use std::time::Instant;

use sdj_bench::build_tree;
use sdj_core::{DistanceJoin, JoinConfig};
use sdj_datagen::{uniform_points, unit_box};
use sdj_geom::Point;
use sdj_rtree::RTree;
use sdj_storage::PoolStats;

struct Sample {
    label: String,
    shards: usize,
    prefetch_depth: usize,
    seconds: f64,
    pairs: u64,
    stats: PoolStats,
    prefetch_hints: u64,
    shard_misses: Vec<u64>,
}

fn measure(
    t1: &mut RTree<2>,
    t2: &mut RTree<2>,
    frames: usize,
    shards: usize,
    depth: usize,
    k: u64,
) -> Sample {
    // Fresh cold pool per run: every sample pays the same cold start, and
    // the shard/prefetch settings apply from the first fault.
    t1.rebuild_buffer(frames, shards).expect("rebuild buffer");
    t2.rebuild_buffer(frames, shards).expect("rebuild buffer");
    let config = JoinConfig::default().with_max_pairs(k).with_prefetch(depth);
    let start = Instant::now();
    let mut join = DistanceJoin::new(t1, t2, config);
    let pairs = join.by_ref().count() as u64;
    let seconds = start.elapsed().as_secs_f64();
    let join_stats = join.stats();
    drop(join);
    let mut stats = t1.io_stats();
    stats.absorb(&t2.io_stats());
    let mut shard_misses: Vec<u64> = t1.shard_io_stats().iter().map(|s| s.misses).collect();
    for (m, s) in shard_misses.iter_mut().zip(t2.shard_io_stats()) {
        *m += s.misses;
    }
    let policy = if shards <= 1 { "LRU" } else { "CLOCK" };
    let label = if depth == 0 {
        format!("{shards} shard(s), {policy}, prefetch off")
    } else {
        format!("{shards} shard(s), {policy}, prefetch depth {depth}")
    };
    Sample {
        label,
        shards,
        prefetch_depth: depth,
        seconds,
        pairs,
        stats,
        prefetch_hints: join_stats.prefetch_hints,
        shard_misses,
    }
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
        Err(_) => default,
    }
}

fn main() {
    let n: usize = env_num("SDJ_BENCH_N", 100_000);
    let k: u64 = env_num("SDJ_BENCH_K", 100_000);
    let frames: usize = env_num("SDJ_BENCH_FRAMES", 128);
    let depth: usize = env_num("SDJ_BENCH_PREFETCH", 8);

    eprintln!("# building two uniform {n}-point trees ...");
    let a: Vec<Point<2>> = uniform_points(n, &unit_box(), 97);
    let b: Vec<Point<2>> = uniform_points(n, &unit_box(), 98);
    let mut t1 = build_tree(&a);
    let mut t2 = build_tree(&b);

    let combos = [(1usize, 0usize), (1, depth), (4, 0), (4, depth)];
    let mut samples = Vec::with_capacity(combos.len());
    for (shards, d) in combos {
        eprintln!("# serial join, K={k}, {frames} frames, {shards} shard(s), prefetch={d} ...");
        samples.push(measure(&mut t1, &mut t2, frames, shards, d, k));
    }
    let baseline = &samples[0];
    let baseline_misses = baseline.stats.misses;
    assert_eq!(
        baseline.stats.prefetch_reads + baseline.stats.prefetch_hits,
        0,
        "baseline must not prefetch"
    );
    // Warm-read zero-copy, counter-verified: the join's node reads go
    // through cached views and page guards, never the copying `read` API.
    for s in &samples {
        assert_eq!(
            s.stats.read_copies, 0,
            "join hot path performed a page copy ({})",
            s.label
        );
    }

    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let st = &s.stats;
        // Demand accesses that never touched the shared pager mutex: hits
        // complete entirely under their shard's lock. (Misses and prefetch
        // reads must serialise on the pager — that's the disk.)
        let avoided = st.hits;
        let conversion = if s.prefetch_depth == 0 || baseline_misses == 0 {
            0.0
        } else {
            st.prefetch_hits as f64 / baseline_misses as f64
        };
        let spread = s
            .shard_misses
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        rows.push_str(&format!(
            "    {{\"label\": \"{}\", \"shards\": {}, \"prefetch_depth\": {}, \
             \"seconds\": {:.6}, \"pairs\": {}, \"accesses\": {}, \"hits\": {}, \
             \"demand_misses\": {}, \"evictions\": {}, \"prefetch_reads\": {}, \
             \"prefetch_hits\": {}, \"prefetch_hints\": {}, \"read_copies\": {}, \
             \"pager_lock_acquisitions\": {}, \"pager_locks_avoided\": {}, \
             \"miss_conversion_vs_baseline\": {:.4}, \"per_shard_misses\": [{}]}}",
            s.label,
            s.shards,
            s.prefetch_depth,
            s.seconds,
            s.pairs,
            st.accesses(),
            st.hits,
            st.misses,
            st.evictions,
            st.prefetch_reads,
            st.prefetch_hits,
            s.prefetch_hints,
            st.read_copies,
            st.shared_lock_acquisitions,
            avoided,
            conversion,
            spread,
        ));
    }
    let host = sdj_obs::HostInfo::detect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"benchmark\": \"serial incremental distance join, \
         uniform {n} x {n} points, K = {k} closest pairs, {frames}-frame buffer per tree, \
         shard-count x prefetch A/B\",\n  \
         \"host\": {{\"nproc\": {}, \"build_profile\": \"{}\"}},\n  \
         \"note\": \"single-core wall-clock; all combinations emit the identical stream. \
         demand_misses of the 1-shard/prefetch-off row is the historical pool's node-I/O \
         count; prefetch reads are accounted separately from demand misses; \
         pager_locks_avoided counts demand accesses served entirely under one shard's \
         lock, never touching the shared pager mutex (the historical pool serialised \
         every access on one mutex). Counters, not speedups: this host has {} \
         CPU(s).\",\n  \
         \"samples\": [\n{rows}\n  ]\n}}\n",
        host.nproc, host.build_profile, host.nproc,
    );
    sdj_obs::write_atomic("BENCH_io.json", json.as_bytes()).expect("write BENCH_io.json");
    print!("{json}");

    for s in &samples {
        if s.prefetch_depth > 0 && s.shards == 1 && baseline_misses > 0 {
            let conv = s.stats.prefetch_hits as f64 / baseline_misses as f64;
            eprintln!(
                "# prefetch conversion at depth {}: {:.1}% of baseline demand misses \
                 ({} of {})",
                s.prefetch_depth,
                conv * 100.0,
                s.stats.prefetch_hits,
                baseline_misses
            );
        }
    }
    eprintln!("# wrote BENCH_io.json");
}
