//! Key-domain / kernel A/B report for the expansion hot path.
//!
//! Joins two uniform 100k-point sets, consuming the K = 100,000 closest
//! pairs through the serial engine under every `KeyDomain` ×
//! `ExpansionPath` combination, and writes the measurements to
//! `BENCH_kernels.json` in the current directory.
//!
//! The `plain/scalar` sample is the pre-kernel engine (per-entry scalar
//! bounds on real distances); `squared/batched` is the shipped default
//! (sqrt-free squared keys, struct-of-arrays MINDIST/MAXDIST kernels over
//! cached node views). All four emit the identical result stream — the
//! equivalence suites pin that — so the numbers isolate the cost of the
//! arithmetic, not the answer. Serial wall-clock on one core; no
//! parallelism involved.

use std::time::Instant;

use sdj_bench::build_tree;
use sdj_core::{DistanceJoin, ExpansionPath, JoinConfig, KeyDomain};
use sdj_datagen::{uniform_points, unit_box};
use sdj_geom::Point;
use sdj_rtree::RTree;

struct Sample {
    label: &'static str,
    seconds: f64,
    pairs: u64,
    distance_calcs: u64,
    sqrt_calls: u64,
}

fn measure(t1: &RTree<2>, t2: &RTree<2>, k: u64, domain: KeyDomain, path: ExpansionPath) -> Sample {
    let label = match (domain, path) {
        (KeyDomain::Plain, ExpansionPath::Scalar) => "plain/scalar (pre-kernel baseline)",
        (KeyDomain::Plain, ExpansionPath::Batched) => "plain/batched",
        (KeyDomain::Squared, ExpansionPath::Scalar) => "squared/scalar",
        (KeyDomain::Squared, ExpansionPath::Batched) => "squared/batched (default)",
        (KeyDomain::Squared, ExpansionPath::Lanes) => "squared/lanes (fixed-width)",
        (KeyDomain::Plain, ExpansionPath::Lanes) => "plain/lanes",
    };
    let config = JoinConfig::default()
        .with_max_pairs(k)
        .with_key_domain(domain)
        .with_expansion(path);
    let start = Instant::now();
    let mut join = DistanceJoin::new(t1, t2, config);
    let pairs = join.by_ref().count() as u64;
    let seconds = start.elapsed().as_secs_f64();
    let stats = join.stats();
    Sample {
        label,
        seconds,
        pairs,
        distance_calcs: stats.distance_calcs,
        sqrt_calls: stats.sqrt_calls,
    }
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
        Err(_) => default,
    }
}

fn main() {
    let n: usize = env_num("SDJ_BENCH_N", 100_000);
    let k: u64 = env_num("SDJ_BENCH_K", 100_000);

    eprintln!("# building two uniform {n}-point trees ...");
    let a: Vec<Point<2>> = uniform_points(n, &unit_box(), 97);
    let b: Vec<Point<2>> = uniform_points(n, &unit_box(), 98);
    let t1 = build_tree(&a);
    let t2 = build_tree(&b);

    let combos = [
        (KeyDomain::Plain, ExpansionPath::Scalar),
        (KeyDomain::Plain, ExpansionPath::Batched),
        (KeyDomain::Squared, ExpansionPath::Scalar),
        (KeyDomain::Squared, ExpansionPath::Batched),
        (KeyDomain::Squared, ExpansionPath::Lanes),
    ];
    let mut samples = Vec::with_capacity(combos.len());
    for (domain, path) in combos {
        eprintln!("# serial join, K={k}, {domain:?}/{path:?} ...");
        samples.push(measure(&t1, &t2, k, domain, path));
    }
    let baseline_secs = samples[0].seconds;

    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"label\": \"{}\", \"seconds\": {:.6}, \"pairs\": {}, \
             \"pairs_per_sec\": {:.1}, \"distance_calcs\": {}, \"sqrt_calls\": {}, \
             \"speedup_vs_baseline\": {:.3}}}",
            s.label,
            s.seconds,
            s.pairs,
            s.pairs as f64 / s.seconds.max(1e-12),
            s.distance_calcs,
            s.sqrt_calls,
            baseline_secs / s.seconds.max(1e-12),
        ));
    }
    let host = sdj_obs::HostInfo::detect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"benchmark\": \"serial incremental distance join, \
         uniform {n} x {n} points, K = {k} closest pairs, key-domain x expansion-path A/B\",\n  \
         \"host\": {{\"nproc\": {}, \"build_profile\": \"{}\"}},\n  \
         \"note\": \"single-core wall-clock; all combinations emit the identical stream, \
         sqrt_calls counts the deferred key-to-distance conversions on the result path\",\n  \
         \"samples\": [\n{rows}\n  ]\n}}\n",
        host.nproc, host.build_profile,
    );
    sdj_obs::write_atomic("BENCH_kernels.json", json.as_bytes()).expect("write BENCH_kernels.json");
    print!("{json}");
    eprintln!("# wrote BENCH_kernels.json");
}
