//! Ablations beyond the paper's figures (DESIGN.md §6): the estimation
//! bound family, R*-tree fan-out, buffer size, and the index substrate
//! (R*-tree vs PR quadtree vs mixed).

use sdj_bench::{fmt_secs, measure, Env, Table};
use sdj_core::{DistanceJoin, EstimationBound, JoinConfig};
use sdj_datagen::unit_box;
use sdj_quadtree::{PrQuadtree, QuadtreeConfig};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

fn main() {
    let env = Env::from_args();
    let k = 10_000u64.min((env.water.len() * env.roads.len()) as u64);

    // ---------------------------------------------------- estimation bound
    println!("Ablation A: estimation bound family (K = 1,000)");
    println!();
    let mut t = Table::new(&["Variant", "Time (s)", "Max queue", "Dist. calc."]);
    for (name, bound) in [
        ("AllPairs (MAXDIST)", EstimationBound::AllPairs),
        ("ExistsPair (MINMAXDIST)", EstimationBound::ExistsPair),
    ] {
        let config = JoinConfig {
            estimation: bound,
            ..JoinConfig::default()
        }
        .with_max_pairs(1_000);
        let m = sdj_bench::run_join(&env, false, config, None, 1_000);
        t.row(&[
            name.to_string(),
            fmt_secs(m.seconds),
            m.stats.max_queue.to_string(),
            m.stats.distance_calcs.to_string(),
        ]);
    }
    t.print();
    println!();

    // ------------------------------------------------------------- fan-out
    println!("Ablation B: R*-tree fan-out ({k} pairs)");
    println!();
    let mut t = Table::new(&["Fan-out", "Build (s)", "Join (s)", "Node I/O", "Max queue"]);
    for fanout in [10usize, 25, 50, 100] {
        let config = RTreeConfig {
            page_size: 8192,
            fanout_cap: Some(fanout),
            buffer_frames: 128,
            ..RTreeConfig::default()
        };
        let built = measure(|| {
            let w = RTree::bulk_load(
                config,
                env.water
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                    .collect(),
            );
            let r = RTree::bulk_load(
                config,
                env.roads
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                    .collect(),
            );
            (sdj_core::JoinStats::default(), (w.len() + r.len()) as u64)
        });
        let w = RTree::bulk_load(
            config,
            env.water
                .iter()
                .enumerate()
                .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                .collect(),
        );
        let r = RTree::bulk_load(
            config,
            env.roads
                .iter()
                .enumerate()
                .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                .collect(),
        );
        let run = measure(|| {
            let mut join = DistanceJoin::new(&w, &r, JoinConfig::default());
            let produced = join.by_ref().take(k as usize).count() as u64;
            (join.stats(), produced)
        });
        t.row(&[
            fanout.to_string(),
            fmt_secs(built.seconds),
            fmt_secs(run.seconds),
            run.stats.node_io.to_string(),
            run.stats.max_queue.to_string(),
        ]);
    }
    t.print();
    println!();

    // ------------------------------------------------------- buffer frames
    println!("Ablation C: buffer frames per tree ({k} pairs)");
    println!();
    let mut t = Table::new(&["Frames", "Join (s)", "Node I/O"]);
    for frames in [16usize, 64, 128, 512] {
        let config = RTreeConfig {
            buffer_frames: frames,
            ..RTreeConfig::default()
        };
        let w = RTree::bulk_load(
            config,
            env.water
                .iter()
                .enumerate()
                .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                .collect(),
        );
        let r = RTree::bulk_load(
            config,
            env.roads
                .iter()
                .enumerate()
                .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                .collect(),
        );
        w.reset_io_stats();
        r.reset_io_stats();
        let run = measure(|| {
            let mut join = DistanceJoin::new(&w, &r, JoinConfig::default());
            let produced = join.by_ref().take(k as usize).count() as u64;
            (join.stats(), produced)
        });
        t.row(&[
            frames.to_string(),
            fmt_secs(run.seconds),
            run.stats.node_io.to_string(),
        ]);
    }
    t.print();
    println!();

    // ------------------------------------------------------ index substrate
    println!("Ablation D: index substrate ({k} pairs)");
    println!();
    let mut qw = PrQuadtree::new(QuadtreeConfig::new(unit_box()));
    for (i, p) in env.water.iter().enumerate() {
        qw.insert(ObjectId(i as u64), *p).expect("in bounds");
    }
    let mut qr = PrQuadtree::new(QuadtreeConfig::new(unit_box()));
    for (i, p) in env.roads.iter().enumerate() {
        qr.insert(ObjectId(i as u64), *p).expect("in bounds");
    }
    let mut t = Table::new(&["Substrate", "Join (s)", "Max queue", "Node accesses"]);
    let rt = measure(|| {
        let mut join = DistanceJoin::new(&env.water_tree, &env.roads_tree, JoinConfig::default());
        let produced = join.by_ref().take(k as usize).count() as u64;
        (join.stats(), produced)
    });
    t.row(&[
        "R*-tree x R*-tree".into(),
        fmt_secs(rt.seconds),
        rt.stats.max_queue.to_string(),
        rt.stats.node_accesses.to_string(),
    ]);
    let qq = measure(|| {
        let mut join = DistanceJoin::new(&qw, &qr, JoinConfig::default());
        let produced = join.by_ref().take(k as usize).count() as u64;
        (join.stats(), produced)
    });
    t.row(&[
        "quadtree x quadtree".into(),
        fmt_secs(qq.seconds),
        qq.stats.max_queue.to_string(),
        qq.stats.node_accesses.to_string(),
    ]);
    let mixed = measure(|| {
        let mut join = DistanceJoin::new(&qw, &env.roads_tree, JoinConfig::default());
        let produced = join.by_ref().take(k as usize).count() as u64;
        (join.stats(), produced)
    });
    t.row(&[
        "quadtree x R*-tree".into(),
        fmt_secs(mixed.seconds),
        mixed.stats.max_queue.to_string(),
        mixed.stats.node_accesses.to_string(),
    ]);
    t.print();
}
