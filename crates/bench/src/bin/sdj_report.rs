//! `sdj-report`: run an instrumented distance join and emit a
//! schema-versioned [`RunReport`], or check / benchmark one.
//!
//! Three modes:
//!
//! * **Run** (default): joins two uniform `n`-point sets in two passes —
//!   pass 1 takes the `k` closest pairs (distance-vs-rank curve, the shape
//!   of the paper's Figures 7–8), pass 2 re-runs the join restricted to the
//!   proven distance range and drains it to exhaustion, which is what
//!   produces the grow-then-drain queue-size curve of Figure 6 (a
//!   `k`-limited run stops while its queue is still full). Writes the
//!   report atomically to `--out`, optionally logs every event as NDJSON to
//!   `--events`, and prints the two series as sparklines. `--sessions N`
//!   adds a third pass that opens `N` concurrent cursor sessions (plans
//!   cycling incremental/bulk/adaptive) over the same shared buffer pools,
//!   drains them round-robin, and records one per-session attribution row
//!   in the report's `sessions` array.
//! * **`--check FILE`**: parses and validates a previously written report
//!   (schema version, counters, rank/distance monotonicity; with
//!   `--expect-drain` also the Figure-6 queue shape; with
//!   `--expect-sessions N` also the service pass's attribution rows). Exits
//!   non-zero on any failure — this is the CI gate.
//! * **`--overhead`**: interleaved min-of-N timing of the uninstrumented
//!   engine against the same engine with a no-op sink attached; fails if
//!   the no-op instrumentation costs more than `SDJ_OVERHEAD_PCT` (default
//!   2%). The two runs must agree exactly on `distance_calcs`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use sdj_bench::build_tree;
use sdj_core::{
    AdaptiveConfig, BulkConfig, BulkStats, DistanceJoin, JoinConfig, JoinStats, Plan, PlanChoice,
    QueueLayout, ReplanInfo,
};
use sdj_datagen::{uniform_points, unit_box};
use sdj_exec::{run_planned, ParallelConfig};
use sdj_geom::Point;
use sdj_obs::{
    sparkline, CalibrationSection, EventSink, NdjsonWriter, ObsContext, ProfileSection,
    RunRecorder, RunReport, SessionSection, SpanMode, TeeSink,
};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};
use sdj_service::{drain_round_robin, JoinService, ServiceConfig, SessionConfig};
use sdj_storage::{BufferObs, FaultConfig, FaultInjector};

struct Args {
    n: usize,
    k: u64,
    threads: usize,
    out: String,
    events: Option<String>,
    check: Option<String>,
    expect_drain: bool,
    expect_retries: bool,
    expect_plan: Option<String>,
    expect_replans: Option<u64>,
    expect_profile: bool,
    expect_queue_bytes: bool,
    expect_pairs_match: Option<String>,
    overhead: bool,
    profile: bool,
    label: String,
    force_plan: Option<PlanChoice>,
    sessions: Option<usize>,
    expect_sessions: Option<usize>,
}

impl Args {
    fn parse() -> Self {
        let mut a = Args {
            n: 10_000,
            k: 1_000,
            threads: 1,
            out: "results/RunReport.json".into(),
            events: None,
            check: None,
            expect_drain: false,
            expect_retries: false,
            expect_plan: None,
            expect_replans: None,
            expect_profile: false,
            expect_queue_bytes: false,
            expect_pairs_match: None,
            overhead: false,
            profile: false,
            label: "uniform distance join".into(),
            force_plan: None,
            sessions: None,
            expect_sessions: None,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        let take = |argv: &[String], i: usize, flag: &str| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} takes a value"))
                .clone()
        };
        while i < argv.len() {
            match argv[i].as_str() {
                "--n" => {
                    a.n = take(&argv, i, "--n").parse().expect("--n takes an integer");
                    i += 1;
                }
                "--k" => {
                    a.k = take(&argv, i, "--k").parse().expect("--k takes an integer");
                    i += 1;
                }
                "--threads" => {
                    a.threads = take(&argv, i, "--threads")
                        .parse()
                        .expect("--threads takes an integer");
                    i += 1;
                }
                "--out" => {
                    a.out = take(&argv, i, "--out");
                    i += 1;
                }
                "--events" => {
                    a.events = Some(take(&argv, i, "--events"));
                    i += 1;
                }
                "--check" => {
                    a.check = Some(take(&argv, i, "--check"));
                    i += 1;
                }
                "--expect-drain" => a.expect_drain = true,
                "--expect-retries" => a.expect_retries = true,
                "--expect-plan" => {
                    a.expect_plan = Some(take(&argv, i, "--expect-plan"));
                    i += 1;
                }
                "--expect-replans" => {
                    a.expect_replans = Some(
                        take(&argv, i, "--expect-replans")
                            .parse()
                            .expect("--expect-replans takes an integer"),
                    );
                    i += 1;
                }
                "--expect-profile" => a.expect_profile = true,
                "--expect-queue-bytes" => a.expect_queue_bytes = true,
                "--expect-pairs-match" => {
                    a.expect_pairs_match = Some(take(&argv, i, "--expect-pairs-match"));
                    i += 1;
                }
                "--overhead" => a.overhead = true,
                "--profile" => a.profile = true,
                "--label" => {
                    a.label = take(&argv, i, "--label");
                    i += 1;
                }
                "--force-plan" => {
                    a.force_plan = Some(match take(&argv, i, "--force-plan").as_str() {
                        "incremental" => PlanChoice::Incremental,
                        "bulk" => PlanChoice::Bulk,
                        "adaptive" => PlanChoice::Adaptive,
                        other => {
                            panic!("--force-plan takes incremental|bulk|adaptive, got {other}")
                        }
                    });
                    i += 1;
                }
                "--sessions" => {
                    a.sessions = Some(
                        take(&argv, i, "--sessions")
                            .parse()
                            .expect("--sessions takes an integer"),
                    );
                    i += 1;
                }
                "--expect-sessions" => {
                    a.expect_sessions = Some(
                        take(&argv, i, "--expect-sessions")
                            .parse()
                            .expect("--expect-sessions takes an integer"),
                    );
                    i += 1;
                }
                other => panic!(
                    "unknown argument {other} (expected --n/--k/--threads/--out/--events/\
                     --check/--expect-drain/--expect-retries/--expect-plan/--expect-replans/\
                     --expect-profile/--expect-queue-bytes/--expect-pairs-match/\
                     --overhead/--profile/--label/--force-plan/--sessions/--expect-sessions)"
                ),
            }
            i += 1;
        }
        a
    }
}

fn build_env(n: usize) -> (RTree<2>, RTree<2>) {
    let a: Vec<Point<2>> = uniform_points(n, &unit_box(), 97);
    let b: Vec<Point<2>> = uniform_points(n, &unit_box(), 98);
    if chaos_from_env().is_some() {
        // Thrash-sized pools: the paper config's 128 frames can cache a
        // small tree whole, leaving the injector no pager I/O to fault.
        let config = RTreeConfig {
            buffer_frames: 8,
            ..sdj_bench::paper_tree_config()
        };
        let small = |pts: &[Point<2>]| {
            let items: Vec<_> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
                .collect();
            RTree::bulk_load(config, items)
        };
        (small(&a), small(&b))
    } else {
        (build_tree(&a), build_tree(&b))
    }
}

/// What pass 1 measures, whichever execution path ran it.
struct KPass {
    stats: JoinStats,
    produced: u64,
    dmax: f64,
    seconds: f64,
    plan: Plan,
    executed: PlanChoice,
    forced: bool,
    bulk: Option<BulkStats>,
    workers: usize,
    replanned: Option<ReplanInfo>,
}

/// Pass 1: the K closest pairs through the planner-selected (or forced)
/// execution path.
fn run_k_pass(
    t1: &RTree<2>,
    t2: &RTree<2>,
    k: u64,
    threads: usize,
    force: Option<PlanChoice>,
    ctx: &ObsContext,
) -> KPass {
    let config = JoinConfig::default()
        .with_max_pairs(k)
        .with_layout(queue_layout_from_env());
    let start = Instant::now();
    let run = run_planned(
        t1,
        t2,
        config,
        ParallelConfig::with_threads(threads),
        BulkConfig::default(),
        AdaptiveConfig::from_env(),
        force,
        Some(ctx.clone()),
    );
    let seconds = start.elapsed().as_secs_f64();
    assert!(run.error.is_none(), "pass 1 failed: {:?}", run.error);
    let dmax = run
        .results
        .iter()
        .map(|r| r.distance)
        .fold(0.0f64, f64::max);
    KPass {
        stats: run.stats,
        produced: run.results.len() as u64,
        dmax,
        seconds,
        plan: run.plan,
        executed: run.executed,
        forced: run.forced,
        bulk: run.bulk,
        workers: run.workers_spawned,
        replanned: run.replanned,
    }
}

/// Pass 2: the same join restricted to `[0, dmax]`, drained to exhaustion
/// through the *serial* engine — the single priority queue whose size curve
/// is the paper's Figure 6 (parallel workers each own a shard queue, which
/// is a different quantity).
fn run_drain_pass(t1: &RTree<2>, t2: &RTree<2>, dmax: f64, ctx: &ObsContext) -> u64 {
    let config = JoinConfig::default()
        .with_range(0.0, dmax)
        .with_layout(queue_layout_from_env());
    let mut join = DistanceJoin::new(t1, t2, config).with_obs(ctx);
    join.by_ref().count() as u64
}

/// Queue layout from the environment: `SDJ_QUEUE_LAYOUT=flat` selects the
/// compact flat 4-ary layout (DESIGN.md §14), `pairing` (or unset) the
/// default pointer-based pairing heap. Both passes and every execution
/// path use the selected layout; result streams are layout-invariant, which
/// the CI queue gate cross-checks via `--expect-pairs-match`.
fn queue_layout_from_env() -> QueueLayout {
    match std::env::var("SDJ_QUEUE_LAYOUT").as_deref() {
        Ok("flat") | Ok("flat_dary") => QueueLayout::FlatDary,
        Ok("pairing") | Err(_) => QueueLayout::Pairing,
        Ok(other) => panic!("SDJ_QUEUE_LAYOUT={other:?} (expected flat|pairing)"),
    }
}

/// Chaos mode from the environment: `SDJ_FAULT_SEED` (u64) enables a
/// deterministic transient-only fault schedule on both tree buffer pools at
/// rate `SDJ_FAULT_RATE` (default 0.01) with `SDJ_FAULT_RETRIES` bounded
/// retries (default 16). Retries must absorb every fault — the run still
/// completes, and the report records `buf.*.faults` / `buf.*.retries` for
/// the CI chaos gate (`--check --expect-retries`). The same seed reproduces
/// the same schedule.
struct Chaos {
    seed: u64,
    rate: f64,
    retries: u32,
}

fn chaos_from_env() -> Option<Chaos> {
    let seed = std::env::var("SDJ_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())?;
    let rate: f64 = std::env::var("SDJ_FAULT_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let retries: u32 = std::env::var("SDJ_FAULT_RETRIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    Some(Chaos {
        seed,
        rate,
        retries,
    })
}

fn install_chaos(t1: &RTree<2>, t2: &RTree<2>) {
    let Some(chaos) = chaos_from_env() else {
        return;
    };
    eprintln!(
        "# chaos: transient faults at rate {}, seed {}, retries {}",
        chaos.rate, chaos.seed, chaos.retries
    );
    let inj = Arc::new(FaultInjector::new(FaultConfig::transient_only(
        chaos.seed, chaos.rate,
    )));
    t1.set_fault_injector(Some(Arc::clone(&inj)));
    t2.set_fault_injector(Some(inj));
    t1.set_retry_limit(chaos.retries);
    t2.set_retry_limit(chaos.retries);
}

/// The service pass behind `--sessions N`: opens `n_sessions` concurrent
/// cursor sessions over the *same* two trees (one shared buffer pool per
/// tree), cycling the forced plan through incremental / bulk / adaptive so
/// every engine shape runs interleaved, drains them round-robin, and
/// returns one attribution row per session for the report's `sessions`
/// array. Every session must finish cleanly — a terminal session error
/// fails the whole report run.
fn run_sessions_pass(
    t1: &RTree<2>,
    t2: &RTree<2>,
    n_sessions: usize,
    k: u64,
    ctx: &ObsContext,
) -> Result<Vec<SessionSection>, String> {
    let service = JoinService::new(
        t1,
        t2,
        ServiceConfig {
            max_sessions: u32::try_from(n_sessions.max(1)).unwrap_or(u32::MAX),
            session_budget: None,
        },
    )
    .with_obs(ctx);
    let plans = [
        PlanChoice::Incremental,
        PlanChoice::Bulk,
        PlanChoice::Adaptive,
    ];
    let mut handles = Vec::with_capacity(n_sessions);
    for i in 0..n_sessions {
        let plan = plans[i % plans.len()];
        let config = SessionConfig {
            join: JoinConfig::default().with_max_pairs(k),
            force_plan: Some(plan),
            label: Some(format!("report-{plan}")),
            ..SessionConfig::default()
        };
        handles.push(
            service
                .open(config)
                .map_err(|e| format!("open session {i}: {e}"))?,
        );
    }
    let outcomes = drain_round_robin(&mut handles, 64);
    for (h, o) in handles.iter().zip(&outcomes) {
        if let Some(e) = &o.error {
            return Err(format!("session {} ({}) failed: {e}", h.id(), h.label()));
        }
        if o.results.is_empty() {
            return Err(format!(
                "session {} ({}) produced nothing",
                h.id(),
                h.label()
            ));
        }
    }
    let sections = handles.iter().map(|h| h.report_section()).collect();
    // Every handle must have released its engine state: the scheduler ran
    // them all to completion, so nothing may still pin shared pool frames.
    debug_assert_eq!(service.pinned_frames(), 0);
    Ok(sections)
}

fn run_report(args: &Args) -> Result<(), String> {
    eprintln!("# building two uniform {}-point trees ...", args.n);
    let (t1, t2) = build_env(args.n);
    // Installed after the build: construction is never faulted, only the
    // join's node I/O.
    install_chaos(&t1, &t2);

    // One NDJSON log (if requested) spans both passes; each pass gets its
    // own recorder so pass 1's queue samples (which never drain: the run
    // stops at K) cannot pollute the Figure-6 series from pass 2.
    let ndjson = match &args.events {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir:?}: {e}"))?;
                }
            }
            Some(Arc::new(
                NdjsonWriter::create(path).map_err(|e| format!("create {path}: {e}"))?,
            ))
        }
        None => None,
    };
    let rank_rec = Arc::new(RunRecorder::new());
    let queue_rec = Arc::new(RunRecorder::new());
    let sink_for = |rec: &Arc<RunRecorder>| -> Arc<dyn EventSink> {
        match &ndjson {
            Some(w) => Arc::new(TeeSink::new(Arc::clone(rec), Arc::clone(w))),
            None => Arc::clone(rec) as Arc<dyn EventSink>,
        }
    };

    eprintln!(
        "# pass 1: {} closest pairs, {} thread(s) ...",
        args.k, args.threads
    );
    let ctx1 = ObsContext::new(sink_for(&rank_rec)).with_pop_sample_every(64);
    // Buffer-pool counters (hits/misses/evictions/writebacks/prefetch_*)
    // land in ctx1's registry and therefore in the report.
    t1.attach_obs(BufferObs::new(&ctx1, "buf.t1"));
    t2.attach_obs(BufferObs::new(&ctx1, "buf.t2"));
    let pass1 = run_k_pass(&t1, &t2, args.k, args.threads, args.force_plan, &ctx1);
    let KPass {
        stats,
        produced,
        dmax,
        seconds,
        plan,
        executed,
        forced,
        bulk,
        workers,
        replanned,
    } = pass1;
    if produced == 0 {
        return Err("pass 1 produced no results".into());
    }
    eprintln!(
        "# plan: {executed}{} (est incremental {:.0}, est bulk {:.0})",
        if args.force_plan.is_some() {
            " [forced]"
        } else {
            ""
        },
        plan.est_incremental,
        plan.est_bulk,
    );
    if let Some(r) = &replanned {
        eprintln!(
            "# plan: incremental→bulk @ pair {} (pop {}, est incremental \
             remaining {:.0}, est bulk remaining {:.0})",
            r.at_pair, r.at_pop, r.est_incremental_remaining, r.est_bulk_remaining,
        );
    }

    eprintln!("# pass 2: drain join restricted to [0, {dmax:.6}] ...");
    let ctx2 = ObsContext::new(sink_for(&queue_rec))
        .with_pop_sample_every(64)
        .with_result_sample_every(u64::MAX); // rank curve comes from pass 1

    // Rebind the pools to pass 2's context so the reported buf.* counters
    // stay scoped to pass 1.
    t1.attach_obs(BufferObs::new(&ctx2, "buf.t1"));
    t2.attach_obs(BufferObs::new(&ctx2, "buf.t2"));
    let drained = run_drain_pass(&t1, &t2, dmax, &ctx2);

    // Optional pass 3: the multi-session service run. Its per-session
    // attribution rows land in the report's `sessions` array; its events
    // go to the NDJSON log (when one is open) but deliberately not into
    // either recorder — the Figure 6–8 series stay single-query.
    let session_sections = match args.sessions {
        Some(s) => {
            eprintln!("# pass 3: {s} interleaved cursor sessions over the shared pools ...");
            let ctx_s = match &ndjson {
                Some(w) => ObsContext::new(Arc::clone(w) as Arc<dyn EventSink>),
                None => ObsContext::noop(),
            };
            run_sessions_pass(&t1, &t2, s, args.k, &ctx_s)?
        }
        None => Vec::new(),
    };

    let mut report = RunReport::new(&args.label);
    report.workload = vec![
        ("n".into(), args.n as f64),
        ("k".into(), args.k as f64),
        ("threads".into(), args.threads as f64),
        ("dmax".into(), dmax),
        // 0 = incremental, 1 = bulk, 2 = adaptive (mirrors the
        // `plan.choice` gauge).
        (
            "plan.choice".into(),
            match executed {
                PlanChoice::Incremental => 0.0,
                PlanChoice::Bulk => 1.0,
                PlanChoice::Adaptive => 2.0,
            },
        ),
        ("plan.est_incremental".into(), plan.est_incremental),
        ("plan.est_bulk".into(), plan.est_bulk),
        // Mid-query replans (0 or 1 under the default max_replans).
        ("plan.replans".into(), replanned.is_some() as u64 as f64),
        // 0 = pairing, 1 = flat 4-ary (the SDJ_QUEUE_LAYOUT selection).
        (
            "queue.layout".into(),
            match queue_layout_from_env() {
                QueueLayout::Pairing => 0.0,
                QueueLayout::FlatDary => 1.0,
            },
        ),
    ];
    if let Some(r) = &replanned {
        report
            .workload
            .push(("plan.replan_at_pair".into(), r.at_pair as f64));
    }
    report.counters = vec![
        ("pairs_produced".into(), produced),
        ("drain_pairs_produced".into(), drained),
        ("distance_calcs".into(), stats.distance_calcs),
        ("pairs_enqueued".into(), stats.pairs_enqueued),
        ("pairs_dequeued".into(), stats.pairs_dequeued),
        ("max_queue".into(), stats.max_queue as u64),
        ("queue_bytes_peak".into(), stats.queue_bytes_peak as u64),
        ("node_accesses".into(), stats.node_accesses),
        ("node_io".into(), stats.node_io),
    ];
    // Registry-side counters from pass 1 (expansions, results, and — when
    // the bulk path ran — bulk.cells / bulk.cell_pairs_swept /
    // bulk.pairs_deduped plus the plan.* choice counters).
    let snap1 = ctx1.registry.snapshot();
    for (name, value) in &snap1.counters {
        report.counters.push((name.clone(), *value));
    }
    // Queue-memory gauges (pq.bytes always; pq.slab_* under the flat
    // layout): record each gauge's high-water mark as a counter so the
    // queue CI gate can assert it from the report file.
    for (name, _, high) in &snap1.gauges {
        if name.starts_with("pq.") {
            report
                .counters
                .push((format!("{name}.peak"), u64::try_from(*high).unwrap_or(0)));
        }
    }
    if let Some(b) = bulk {
        report
            .counters
            .push(("bulk.replicated1".into(), b.replicated1));
        report
            .counters
            .push(("bulk.replicated2".into(), b.replicated2));
    }
    report.metrics = vec![
        ("seconds".into(), seconds),
        ("pairs_per_sec".into(), produced as f64 / seconds.max(1e-12)),
    ];

    // EXPLAIN-ANALYZE profile of pass 1. The self-time budget is one lane
    // per spawned worker plus the main thread (whose Merge spans measure
    // what the consumer waited for, overlapping the workers' own time).
    let profile_threads = (workers + 1) as u64;
    let profile = ProfileSection::from_snapshot(&snap1, seconds, profile_threads);
    // Worker utilization: total busy time over the spawned workers' share
    // of the wall clock (exec.worker_busy_ns spans thread start to stream
    // end, so send-stalls count as busy — this measures imbalance, not CPU).
    if workers > 0 {
        if let Some(h) = snap1.histogram("exec.worker_busy_ns") {
            let budget = seconds * 1e9 * workers as f64;
            if budget > 0.0 && h.count > 0 {
                report
                    .metrics
                    .push(("worker_utilization".into(), (h.sum / budget).min(1.0)));
            }
        }
    }
    report.profile = Some(profile);
    report.calibration = Some(CalibrationSection {
        choice: match executed {
            PlanChoice::Incremental => "incremental".into(),
            PlanChoice::Bulk => "bulk".into(),
            PlanChoice::Adaptive => "adaptive".into(),
        },
        forced,
        est_incremental: plan.est_incremental,
        est_bulk: plan.est_bulk,
        est_pairs: plan.est_pairs,
        predicted_ratio: plan.est_incremental / plan.est_bulk.max(f64::MIN_POSITIVE),
        observed_seconds: seconds,
        observed_pairs: produced,
    });
    report.sessions = session_sections;
    rank_rec.fill_report(&mut report);
    let mut drain_side = RunReport::default();
    queue_rec.fill_report(&mut drain_side);
    report.queue_series = drain_side.queue_series;
    report.events_recorded += drain_side.events_recorded;

    report
        .validate()
        .map_err(|e| format!("invalid report: {e}"))?;
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir:?}: {e}"))?;
        }
    }
    report
        .write_atomic(&args.out)
        .map_err(|e| format!("write {}: {e}", args.out))?;

    let queue: Vec<f64> = report.queue_series.iter().map(|p| p.1 as f64).collect();
    let dists: Vec<f64> = report.distance_by_rank.iter().map(|p| p.1).collect();
    println!(
        "run: {} (n={}, k={}, threads={}, plan={executed})",
        args.label, args.n, args.k, args.threads
    );
    println!(
        "queue size over drain   {}  (peak {})",
        sparkline(&queue, 60),
        report.queue_series.iter().map(|p| p.1).max().unwrap_or(0)
    );
    println!(
        "distance by rank        {}  (d_K = {dmax:.6})",
        sparkline(&dists, 60)
    );
    println!(
        "grow-then-drain: {}, events: {}, wrote {}",
        report.grow_then_drain(),
        report.events_recorded,
        args.out
    );
    for s in &report.sessions {
        let buf = |name: &str| -> u64 {
            s.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        println!(
            "session {:>2} [{}] plan={} results={} batches={} buf.hits={} buf.misses={}",
            s.id,
            s.label,
            s.plan,
            s.results,
            s.batches,
            buf("buf.hits"),
            buf("buf.misses"),
        );
    }
    if args.profile {
        if let Some(p) = &report.profile {
            render_profile(p, &report);
        }
    }
    if let Some(w) = &ndjson {
        eprintln!(
            "# ndjson: {} lines, {} write errors",
            w.lines_written(),
            w.write_errors()
        );
        if w.write_errors() > 0 {
            return Err("ndjson writer reported errors".into());
        }
    }
    Ok(())
}

/// Prints the per-phase EXPLAIN-ANALYZE table (the `--profile` flag).
fn render_profile(p: &ProfileSection, report: &RunReport) {
    let wall_ns = p.wall_seconds * 1e9;
    println!();
    println!(
        "profile: wall {:.3}s, budget {} lane(s), attributed {:.1}% of wall \
         ({:.1}% of budget)",
        p.wall_seconds,
        p.threads,
        p.attributed_ns() / wall_ns.max(1e-9) * 100.0,
        p.attributed_fraction() * 100.0
    );
    println!(
        "{:<11} {:>12} {:>9} {:>12} {:>7} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "phase", "calls", "sampled", "est total", "% wall", "ns/call", "p50", "p95", "p99", "max"
    );
    for row in &p.phases {
        println!(
            "{:<11} {:>12} {:>9} {:>10.3}ms {:>6.1}% {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>11}",
            row.phase,
            row.calls,
            row.sampled_calls,
            row.est_total_ns / 1e6,
            row.est_total_ns / wall_ns.max(1e-9) * 100.0,
            row.ns_per_call(),
            row.p50_ns,
            row.p95_ns,
            row.p99_ns,
            row.max_ns,
        );
    }
    // Queue memory next to the queue_pop/queue_push self-times: the
    // layout's footprint at the queue's element high-water mark.
    let counter = |name: &str| -> u64 {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let (bytes_peak, max_queue) = (counter("queue_bytes_peak"), counter("max_queue"));
    if bytes_peak > 0 {
        println!(
            "queue memory: {} bytes peak, {:.1} bytes/queued pair at high-water {}",
            bytes_peak,
            bytes_peak as f64 / max_queue.max(1) as f64,
            max_queue
        );
    }
    if let Some((_, util)) = report
        .metrics
        .iter()
        .find(|(name, _)| name == "worker_utilization")
    {
        println!(
            "worker utilization: {:.1}% (busy / wall x workers)",
            util * 100.0
        );
    }
    if let Some(c) = &report.calibration {
        println!(
            "calibration: chose {}{}, predicted cost ratio {:.3} \
             (incremental {:.0} vs bulk {:.0}), observed {:.3}s for {} pairs",
            c.choice,
            if c.forced { " [forced]" } else { "" },
            c.predicted_ratio,
            c.est_incremental,
            c.est_bulk,
            c.observed_seconds,
            c.observed_pairs
        );
    }
    // The adaptive path's mid-query switch, if one fired: which result rank
    // the incremental engine had reached when the frontier was handed to
    // the bulk executor.
    let workload = |name: &str| -> Option<f64> {
        report
            .workload
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    if workload("plan.replans").unwrap_or(0.0) >= 1.0 {
        println!(
            "replan: incremental→bulk @ pair {:.0} ({:.0} switch(es))",
            workload("plan.replan_at_pair").unwrap_or(0.0),
            workload("plan.replans").unwrap_or(0.0)
        );
    }
}

fn run_check(path: &str, args: &Args) -> Result<(), String> {
    let expect_drain = args.expect_drain;
    let expect_retries = args.expect_retries;
    let expect_plan = args.expect_plan.as_deref();
    let expect_replans = args.expect_replans;
    let expect_profile = args.expect_profile;
    let expect_queue_bytes = args.expect_queue_bytes;
    let expect_pairs_match = args.expect_pairs_match.as_deref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report = RunReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    report.validate().map_err(|e| format!("{path}: {e}"))?;
    if report.counters.is_empty() {
        return Err(format!("{path}: no counters recorded"));
    }
    if report.distance_by_rank.is_empty() {
        return Err(format!("{path}: empty distance_by_rank series"));
    }
    if expect_drain && !report.grow_then_drain() {
        return Err(format!(
            "{path}: queue series is not grow-then-drain ({} points)",
            report.queue_series.len()
        ));
    }
    if expect_retries {
        // The chaos gate: a run under SDJ_FAULT_SEED must have actually
        // exercised the retry path (faults injected, retries recorded) and
        // still produced a complete, valid report.
        let sum = |suffix: &str| -> u64 {
            report
                .counters
                .iter()
                .filter(|(name, _)| name.ends_with(suffix))
                .map(|(_, v)| v)
                .sum()
        };
        let (faults, retries) = (sum(".faults"), sum(".retries"));
        if faults == 0 || retries == 0 {
            return Err(format!(
                "{path}: expected injected faults and successful retries, \
                 got faults={faults} retries={retries}"
            ));
        }
        println!("{path}: chaos ok (faults={faults}, retries={retries})");
    }
    if let Some(expected) = expect_plan {
        // The planner gate: the report must record the expected execution
        // path, both as the `plan.choice` workload entry and the per-path
        // counter; a bulk run must additionally have partitioned and swept.
        let choice = report
            .workload
            .iter()
            .find(|(name, _)| name == "plan.choice")
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("{path}: no plan.choice recorded"))?;
        let got = match choice as i64 {
            0 => "incremental",
            1 => "bulk",
            2 => "adaptive",
            _ => "unknown",
        };
        if got != expected {
            return Err(format!("{path}: plan.choice is {got}, expected {expected}"));
        }
        let counter = |name: &str| -> u64 {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        if counter(&format!("plan.{expected}")) == 0 {
            return Err(format!("{path}: plan.{expected} counter not recorded"));
        }
        if expected == "bulk"
            && (counter("bulk.cells") == 0 || counter("bulk.cell_pairs_swept") == 0)
        {
            return Err(format!(
                "{path}: bulk run recorded no cells/sweeps (cells={}, swept={})",
                counter("bulk.cells"),
                counter("bulk.cell_pairs_swept")
            ));
        }
        println!("{path}: plan ok ({expected})");
    }
    if let Some(expected) = expect_replans {
        // The adaptive gate: the report must record exactly the expected
        // number of mid-query switches, and a fired switch must also carry
        // the pair rank at which the frontier was handed off.
        let replans = report
            .workload
            .iter()
            .find(|(name, _)| name == "plan.replans")
            .map(|(_, v)| *v as u64)
            .ok_or_else(|| format!("{path}: no plan.replans recorded"))?;
        if replans != expected {
            return Err(format!(
                "{path}: plan.replans is {replans}, expected {expected}"
            ));
        }
        let at_pair = report
            .workload
            .iter()
            .find(|(name, _)| name == "plan.replan_at_pair")
            .map(|(_, v)| *v);
        if expected > 0 && at_pair.is_none() {
            return Err(format!(
                "{path}: a replan fired but plan.replan_at_pair is missing"
            ));
        }
        match at_pair {
            Some(p) => println!("{path}: replans ok ({replans} @ pair {p:.0})"),
            None => println!("{path}: replans ok ({replans})"),
        }
    }
    if expect_profile {
        // The profiling gate: the report must carry a populated phase table
        // whose self-times conserve (structural validity — known phases,
        // sane counts — is already enforced by validate() above), plus a
        // well-formed calibration record.
        let p = report
            .profile
            .as_ref()
            .ok_or_else(|| format!("{path}: no profile section recorded"))?;
        if p.phases.is_empty() {
            return Err(format!("{path}: profile has no phase rows"));
        }
        if !p.phases.iter().any(|r| r.sampled_calls > 0) {
            return Err(format!("{path}: no phase has a sampled self-time"));
        }
        // 25% slack over the wall x lanes budget absorbs stride-sampling
        // estimator error; a profile past that double-counts somewhere.
        if !p.conserves(0.25) {
            return Err(format!(
                "{path}: phase self-times do not conserve \
                 (attributed {:.1}% of wall x {} lanes)",
                p.attributed_fraction() * 100.0,
                p.threads
            ));
        }
        let c = report
            .calibration
            .as_ref()
            .ok_or_else(|| format!("{path}: no plan calibration recorded"))?;
        if !(c.predicted_ratio.is_finite() && c.predicted_ratio > 0.0) {
            return Err(format!(
                "{path}: predicted cost ratio {} is not positive",
                c.predicted_ratio
            ));
        }
        if c.observed_seconds <= 0.0 || c.observed_pairs == 0 {
            return Err(format!(
                "{path}: calibration observed nothing (seconds={}, pairs={})",
                c.observed_seconds, c.observed_pairs
            ));
        }
        println!(
            "{path}: profile ok ({} phases, attributed {:.1}% of budget; \
             calibration {} ratio {:.3})",
            p.phases.len(),
            p.attributed_fraction() * 100.0,
            c.choice,
            c.predicted_ratio
        );
    }
    let counter = |name: &str| -> u64 {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    if expect_queue_bytes {
        // The queue gate: the run must have recorded a non-zero queue-byte
        // high-water mark, both as the engine-side JoinStats sample and as
        // the pq.bytes gauge peak from the observability registry.
        let (engine, gauge) = (counter("queue_bytes_peak"), counter("pq.bytes.peak"));
        if engine == 0 || gauge == 0 {
            return Err(format!(
                "{path}: expected a recorded queue-byte high-water mark, got \
                 queue_bytes_peak={engine} pq.bytes.peak={gauge}"
            ));
        }
        println!(
            "{path}: queue bytes ok (queue_bytes_peak={engine}, pq.bytes.peak={gauge}, \
             {:.1} bytes/pair at high-water {})",
            engine as f64 / counter("max_queue").max(1) as f64,
            counter("max_queue")
        );
    }
    if let Some(other_path) = expect_pairs_match {
        // Layout invariance: the checked report must agree with a reference
        // report (same workload, different queue layout) on every produced
        // result count, in both passes.
        let other_text =
            std::fs::read_to_string(other_path).map_err(|e| format!("read {other_path}: {e}"))?;
        let other = RunReport::from_json(&other_text).map_err(|e| format!("{other_path}: {e}"))?;
        let other_counter = |name: &str| -> u64 {
            other
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        for name in ["pairs_produced", "drain_pairs_produced"] {
            let (a, b) = (counter(name), other_counter(name));
            if a != b {
                return Err(format!(
                    "{path}: {name}={a} disagrees with {other_path}'s {b} — \
                     the queue layout changed the result stream"
                ));
            }
        }
        println!(
            "{path}: pairs match {other_path} (pairs_produced={}, drain_pairs_produced={})",
            counter("pairs_produced"),
            counter("drain_pairs_produced")
        );
    }
    if let Some(want) = args.expect_sessions {
        // The service gate: the report must carry exactly `want` session
        // attribution rows, every session must have produced results over
        // at least one batch, and the rows together must attribute real
        // buffer-pool traffic — a service run whose sessions all report
        // zero pool activity means the attribution plumbing is broken.
        if report.sessions.len() != want {
            return Err(format!(
                "{path}: expected {want} session sections, got {}",
                report.sessions.len()
            ));
        }
        let buf_of = |s: &sdj_obs::SessionSection, name: &str| -> u64 {
            s.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let mut attributed = 0usize;
        for s in &report.sessions {
            if s.results == 0 || s.batches == 0 {
                return Err(format!(
                    "{path}: session {} ({}) recorded results={} batches={}",
                    s.id, s.label, s.results, s.batches
                ));
            }
            if s.cancelled {
                return Err(format!(
                    "{path}: session {} ({}) was cancelled mid-run",
                    s.id, s.label
                ));
            }
            if buf_of(s, "buf.hits") + buf_of(s, "buf.misses") > 0 {
                attributed += 1;
            }
        }
        if attributed == 0 {
            return Err(format!(
                "{path}: no session attributed any buffer-pool traffic"
            ));
        }
        println!(
            "{path}: sessions ok ({want} sessions, {attributed} with pool attribution, \
             {} results total)",
            report.sessions.iter().map(|s| s.results).sum::<u64>()
        );
    }
    println!(
        "{path}: ok (schema {}, {} counters, {} queue points, {} rank points)",
        sdj_obs::report::SCHEMA_VERSION,
        report.counters.len(),
        report.queue_series.len(),
        report.distance_by_rank.len()
    );
    Ok(())
}

/// Interleaved min-of-N comparison of a baseline against a candidate;
/// fails when the candidate's best time exceeds the baseline's by more
/// than `budget` percent, or when the two disagree on `distance_calcs`.
///
/// Warm-up once each, then interleave and keep the per-variant minimum:
/// min-of-N is robust against one-off scheduler noise in either direction,
/// and alternating the within-round order cancels slow drift (cache
/// warming, frequency scaling). Rounds are adaptive: per-run scheduler
/// noise on a busy single-core host can dwarf a ~0% true delta, but both
/// minima converge to the quiet-machine time, so we keep sampling until
/// the comparison clears the budget (or a cap).
fn compare_overhead(
    base_label: &str,
    cand_label: &str,
    budget: f64,
    base: impl Fn() -> (f64, u64),
    cand: impl Fn() -> (f64, u64),
) -> Result<(), String> {
    let _ = base();
    let _ = cand();
    let mut best_base = f64::INFINITY;
    let mut best_cand = f64::INFINITY;
    let mut calcs = (0u64, 0u64);
    let mut overhead = f64::INFINITY;
    const MIN_ROUNDS: usize = 3;
    const MAX_ROUNDS: usize = 15;
    for round in 0..MAX_ROUNDS {
        let ((sb, cb), (sn, cn)) = if round % 2 == 0 {
            let b = base();
            let n = cand();
            (b, n)
        } else {
            let n = cand();
            let b = base();
            (b, n)
        };
        best_base = best_base.min(sb);
        best_cand = best_cand.min(sn);
        calcs = (cb, cn);
        overhead = (best_cand - best_base) / best_base * 100.0;
        eprintln!(
            "# round {round}: {base_label} {sb:.4}s, {cand_label} {sn:.4}s \
             (best-vs-best delta {overhead:+.2}%)"
        );
        if round + 1 >= MIN_ROUNDS && overhead <= budget {
            break;
        }
    }
    if calcs.0 != calcs.1 {
        return Err(format!(
            "{cand_label} changed the work: {} vs {} distance calcs",
            calcs.0, calcs.1
        ));
    }
    println!(
        "overhead: {base_label} {best_base:.4}s, {cand_label} {best_cand:.4}s, \
         delta {overhead:+.2}% (budget {budget}%)"
    );
    if overhead > budget {
        return Err(format!(
            "{cand_label} overhead {overhead:.2}% over {base_label} exceeds {budget}%"
        ));
    }
    Ok(())
}

fn run_overhead(args: &Args) -> Result<(), String> {
    let budget: f64 = std::env::var("SDJ_OVERHEAD_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    eprintln!("# building two uniform {}-point trees ...", args.n);
    let (t1, t2) = build_env(args.n);
    let config = JoinConfig::default().with_max_pairs(args.k);

    // One timing sample runs the join several times: a single K-pass is a
    // few tens of ms, and scheduler jitter on a busy single-core host is
    // the same order — far too noisy to resolve a 2% budget. Repetition
    // amortizes the noise without changing what is measured.
    const REPS: usize = 8;
    let run_with = |ctx: Option<&ObsContext>| -> (f64, u64) {
        let mut calcs = 0;
        let start = Instant::now();
        for _ in 0..REPS {
            let mut join = DistanceJoin::new(&t1, &t2, config);
            if let Some(ctx) = ctx {
                join = join.with_obs(ctx);
            }
            let n = join.by_ref().count();
            assert!(n > 0);
            calcs = join.stats().distance_calcs;
        }
        (start.elapsed().as_secs_f64(), calcs)
    };

    // Gate 1: the fully uninstrumented engine against the default
    // instrumented configuration (no-op sink, sampled spans) — the
    // historical "instrumentation is free" guarantee, now spans included.
    compare_overhead(
        "bare",
        "noop-instrumented",
        budget,
        || run_with(None),
        || run_with(Some(&ObsContext::noop())),
    )?;

    // Gate 2: spans isolated — the same no-op instrumented engine with
    // span accounting off versus on (sampled). This is the phase-profiling
    // layer's own overhead budget.
    compare_overhead(
        "spans-off",
        "spans-on",
        budget,
        || run_with(Some(&ObsContext::noop().with_span_mode(SpanMode::Off))),
        || run_with(Some(&ObsContext::noop())),
    )?;
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let result = if let Some(path) = &args.check {
        run_check(path, &args)
    } else if args.overhead {
        run_overhead(&args)
    } else {
        run_report(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sdj-report: {e}");
            ExitCode::FAILURE
        }
    }
}
