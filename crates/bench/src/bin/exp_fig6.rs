//! Figure 6: execution time of the distance join for four algorithm
//! variants — Even/DepthFirst, Even/BreadthFirst, Basic/DepthFirst and
//! Simultaneous/DepthFirst — as a function of the number of result pairs.

use sdj_bench::{fmt_secs, sweep_up_to, Env, Table};
use sdj_core::{JoinConfig, TiePolicy, TraversalPolicy};

fn main() {
    let env = Env::from_args();
    let variants: [(&str, TraversalPolicy, TiePolicy); 4] = [
        (
            "Even/DepthFirst",
            TraversalPolicy::Even,
            TiePolicy::DepthFirst,
        ),
        (
            "Even/BreadthFirst",
            TraversalPolicy::Even,
            TiePolicy::BreadthFirst,
        ),
        (
            "Basic/DepthFirst",
            TraversalPolicy::Basic,
            TiePolicy::DepthFirst,
        ),
        (
            "Simult/DepthFirst",
            TraversalPolicy::Simultaneous,
            TiePolicy::DepthFirst,
        ),
    ];
    println!("Figure 6: execution time (s) by variant, Water x Roads");
    println!();
    let mut headers = vec!["Pairs"];
    headers.extend(variants.iter().map(|(n, _, _)| *n));
    let mut table = Table::new(&headers);
    let mut queue_table = Table::new(&headers);
    let mut calc_table = Table::new(&headers);
    let max = (env.water.len() * env.roads.len()) as u64;
    for k in sweep_up_to(max.min(100_000)) {
        let mut row = vec![k.to_string()];
        let mut qrow = vec![k.to_string()];
        let mut crow = vec![k.to_string()];
        for (_, traversal, tie) in &variants {
            let config = JoinConfig {
                traversal: *traversal,
                tie: *tie,
                ..JoinConfig::default()
            };
            let m = sdj_bench::run_join(&env, false, config, None, k);
            row.push(fmt_secs(m.seconds));
            qrow.push(m.stats.max_queue.to_string());
            crow.push(m.stats.distance_calcs.to_string());
        }
        table.row(&row);
        queue_table.row(&qrow);
        calc_table.row(&crow);
    }
    table.print();
    println!();
    println!("Maximum queue size (hardware independent):");
    println!();
    queue_table.print();
    println!();
    println!("Distance calculations (hardware independent):");
    println!();
    calc_table.print();
}
