//! Table 1: performance measures of the incremental distance join using
//! depth-first tie-breaking, one-node-at-a-time processing, and even
//! traversal, for 1 … 100,000 result pairs of Water ⋈ Roads.

use sdj_bench::{fmt_secs, sweep_up_to, Env, Table};
use sdj_core::JoinConfig;

fn main() {
    let env = Env::from_args();
    println!("Table 1: incremental distance join (Even/DepthFirst), Water x Roads");
    println!();
    let mut table = Table::new(&["Pairs", "Time (s)", "Dist. Calc.", "Queue Size", "Node I/O"]);
    let max = (env.water.len() * env.roads.len()) as u64;
    for k in sweep_up_to(max.min(100_000)) {
        let m = sdj_bench::run_join(&env, false, JoinConfig::default(), None, k);
        assert_eq!(m.produced, k, "environment too small for {k} pairs");
        table.row(&[
            k.to_string(),
            fmt_secs(m.seconds),
            m.stats.distance_calcs.to_string(),
            m.stats.max_queue.to_string(),
            m.stats.node_io.to_string(),
        ]);
    }
    table.print();
}
