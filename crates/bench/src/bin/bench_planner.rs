//! Incremental-vs-bulk crossover measurement for the cost-based planner.
//!
//! Joins two 100k-point sets (uniform and clustered workloads) across a
//! sweep of `(K, Dmax)` query points, running **both** execution paths to
//! completion at each point and recording the planner's choice next to the
//! measured costs, so `BENCH_planner.json` shows where the model's
//! crossover sits relative to the real one.
//!
//! This is a 1-CPU container: wall-clock ratios between the two paths are
//! honest (both are measured on the same single core, the bulk path's
//! parallelism adds nothing here), but they do not demonstrate speedup from
//! parallel sweeping — the work counters (`distance_calcs`, cells swept,
//! pairs deduped) are the portable signal. See `EXPERIMENTS.md`.

use std::time::Instant;

use sdj_bench::build_tree;
use sdj_core::{AdaptiveConfig, BulkConfig, JoinConfig, PlanChoice};
use sdj_datagen::{gaussian_clusters, uniform_points, unit_box};
use sdj_exec::{run_planned, ParallelConfig};
use sdj_rtree::RTree;

struct Sample {
    workload: &'static str,
    k: Option<u64>,
    dmax: f64,
    planned: PlanChoice,
    est_incremental: f64,
    est_bulk: f64,
    /// Model-predicted incremental/bulk cost ratio (< 1 → incremental).
    predicted_cost_ratio: f64,
    /// Measured incremental/bulk wall-clock ratio at the same point.
    actual_seconds_ratio: f64,
    incremental_seconds: f64,
    incremental_distance_calcs: u64,
    bulk_seconds: f64,
    bulk_distance_calcs: u64,
    bulk_cells_swept: u64,
    bulk_pairs_deduped: u64,
    adaptive_seconds: f64,
    /// Mid-query incremental→bulk switches the adaptive run performed
    /// (0 or 1 under the default `max_replans`).
    adaptive_replans: u64,
    /// Adaptive wall clock over the better of the two forced paths —
    /// the price of *not* knowing the right path up front. 1.0 is a free
    /// lunch; the CI gate bounds it at 1.35 everywhere.
    adaptive_regret: f64,
    pairs: u64,
    model_agrees_with_wall_clock: bool,
}

fn measure(
    t1: &RTree<2>,
    t2: &RTree<2>,
    workload: &'static str,
    k: Option<u64>,
    dmax: f64,
) -> Sample {
    let mut config = JoinConfig::default().with_range(0.0, dmax);
    if let Some(k) = k {
        config = config.with_max_pairs(k);
    }
    let parallel = ParallelConfig::with_threads(1);

    // Min-of-2 per path: one-shot wall clocks on a busy single core carry
    // enough scheduler noise to swamp a 1.1x path difference, and the
    // joins are cheap next to the tree builds. The first run also warms
    // the buffer pools, so the minimum compares quiet-machine times.
    let time_path = |force: PlanChoice| {
        let mut best = f64::INFINITY;
        let mut kept = None;
        for _ in 0..2 {
            let start = Instant::now();
            let run = run_planned(
                t1,
                t2,
                config,
                parallel,
                BulkConfig::default(),
                AdaptiveConfig::default(),
                Some(force),
                None,
            );
            best = best.min(start.elapsed().as_secs_f64());
            assert!(run.error.is_none(), "{force} run failed: {:?}", run.error);
            kept = Some(run);
        }
        (kept.expect("at least one run"), best)
    };

    let (inc, incremental_seconds) = time_path(PlanChoice::Incremental);
    let (bulk, bulk_seconds) = time_path(PlanChoice::Bulk);
    let (adaptive, adaptive_seconds) = time_path(PlanChoice::Adaptive);
    assert_eq!(
        inc.results.len(),
        bulk.results.len(),
        "paths disagree on result count ({workload}, k={k:?}, dmax={dmax})"
    );
    assert_eq!(
        inc.results.len(),
        adaptive.results.len(),
        "adaptive disagrees on result count ({workload}, k={k:?}, dmax={dmax})"
    );

    let planned = inc.plan.choice; // same inputs → same verdict for all calls
    let faster = if incremental_seconds <= bulk_seconds {
        PlanChoice::Incremental
    } else {
        PlanChoice::Bulk
    };
    let b = bulk.bulk.expect("bulk run carries bulk stats");
    Sample {
        workload,
        k,
        dmax,
        planned,
        est_incremental: inc.plan.est_incremental,
        est_bulk: inc.plan.est_bulk,
        predicted_cost_ratio: inc.plan.est_incremental / inc.plan.est_bulk.max(f64::MIN_POSITIVE),
        actual_seconds_ratio: incremental_seconds / bulk_seconds.max(f64::MIN_POSITIVE),
        incremental_seconds,
        incremental_distance_calcs: inc.stats.distance_calcs,
        bulk_seconds,
        bulk_distance_calcs: bulk.stats.distance_calcs,
        bulk_cells_swept: b.cell_pairs_swept,
        bulk_pairs_deduped: b.pairs_deduped,
        adaptive_seconds,
        adaptive_replans: adaptive.replanned.is_some() as u64,
        adaptive_regret: adaptive_seconds
            / incremental_seconds.min(bulk_seconds).max(f64::MIN_POSITIVE),
        pairs: inc.results.len() as u64,
        model_agrees_with_wall_clock: planned == faster,
    }
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
        Err(_) => default,
    }
}

fn main() {
    let n: usize = env_num("SDJ_BENCH_N", 100_000);

    eprintln!("# building uniform and clustered {n}-point tree pairs ...");
    let bbox = unit_box();
    let uniform = (
        build_tree(&uniform_points(n, &bbox, 97)),
        build_tree(&uniform_points(n, &bbox, 98)),
    );
    let clustered = (
        build_tree(&gaussian_clusters(n, 32, 0.01, &bbox, 41)),
        build_tree(&gaussian_clusters(n, 32, 0.01, &bbox, 42)),
    );

    // The (K, Dmax) sweep: small-K points sit deep in incremental
    // territory, full drains (k = None) in bulk territory; the middle rows
    // bracket the crossover. Dmax keeps the drains tractable on one core.
    let points: [(Option<u64>, f64); 5] = [
        (Some(10), 0.001),
        (Some(1_000), 0.001),
        (Some(10_000), 0.001),
        (None, 0.0005),
        (None, 0.001),
    ];

    let mut samples = Vec::new();
    for (workload, (t1, t2)) in [("uniform", &uniform), ("clustered", &clustered)] {
        for &(k, dmax) in &points {
            eprintln!("# {workload}: k={k:?}, dmax={dmax} (all three paths) ...");
            samples.push(measure(t1, t2, workload, k, dmax));
        }
    }

    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let k_json = s.k.map_or("null".into(), |k| k.to_string());
        rows.push_str(&format!(
            "    {{\"workload\": \"{}\", \"k\": {}, \"dmax\": {}, \"pairs\": {}, \
             \"planned\": \"{}\", \"est_incremental\": {:.1}, \"est_bulk\": {:.1}, \
             \"predicted_cost_ratio\": {:.6}, \"actual_seconds_ratio\": {:.6}, \
             \"incremental_seconds\": {:.6}, \
             \"incremental_distance_calcs\": {}, \"bulk_seconds\": {:.6}, \
             \"bulk_distance_calcs\": {}, \"bulk_cells_swept\": {}, \
             \"bulk_pairs_deduped\": {}, \"adaptive_seconds\": {:.6}, \
             \"adaptive_replans\": {}, \"adaptive_regret\": {:.4}, \
             \"model_agrees_with_wall_clock\": {}}}",
            s.workload,
            k_json,
            s.dmax,
            s.pairs,
            s.planned,
            s.est_incremental,
            s.est_bulk,
            s.predicted_cost_ratio,
            s.actual_seconds_ratio,
            s.incremental_seconds,
            s.incremental_distance_calcs,
            s.bulk_seconds,
            s.bulk_distance_calcs,
            s.bulk_cells_swept,
            s.bulk_pairs_deduped,
            s.adaptive_seconds,
            s.adaptive_replans,
            s.adaptive_regret,
            s.model_agrees_with_wall_clock,
        ));
    }
    let agree = samples
        .iter()
        .filter(|s| s.model_agrees_with_wall_clock)
        .count();
    let regret_max = samples
        .iter()
        .map(|s| s.adaptive_regret)
        .fold(0.0, f64::max);
    let host = sdj_obs::HostInfo::detect();
    let mut cpu_model = String::new();
    sdj_obs::json::escape_into(&mut cpu_model, &host.cpu_model);
    let json = format!(
        "{{\n  \"schema_version\": 3,\n  \"benchmark\": \"incremental vs bulk crossover, \
         {n} x {n} points, uniform and clustered workloads, (K, Dmax) sweep\",\n  \
         \"host\": {{\"nproc\": {}, \"cpu_model\": \"{}\", \"build_profile\": \"{}\"}},\n  \
         \"note\": \"1-CPU host: wall-clock compares the serial paths honestly but shows \
         no parallel speedup; distance_calcs / cells swept / pairs deduped are the portable \
         counters. All three paths (forced incremental, forced bulk, adaptive) are run to \
         completion at every point and must agree on the result count. predicted_cost_ratio \
         is the planner model's incremental/bulk estimate (< 1 means it picks incremental); \
         actual_seconds_ratio is the measured one. adaptive_regret = adaptive_seconds / \
         min(forced paths): what the mid-query replanner pays for not knowing the right \
         path up front.\",\n  \
         \"model_agreement\": \"{agree}/{total}\",\n  \
         \"adaptive_regret_max\": {regret_max:.4},\n  \
         \"samples\": [\n{rows}\n  ]\n}}\n",
        host.nproc,
        cpu_model,
        host.build_profile,
        total = samples.len(),
    );
    sdj_obs::write_atomic("BENCH_planner.json", json.as_bytes()).expect("write BENCH_planner.json");
    print!("{json}");
    eprintln!("# wrote BENCH_planner.json");
}
