//! Figure 9: execution time of the distance semi-join under the six
//! filtering / d_max-pruning strategies of §4.2.1 — Outside, Inside1,
//! Inside2, Local, GlobalNodes, GlobalAll — as a function of the number of
//! result pairs, including the full semi-join ("All": the nearest road
//! feature of every water feature).

use sdj_bench::{fmt_secs, sweep_up_to, Env, Table};
use sdj_core::{DmaxStrategy, JoinConfig, SemiConfig, SemiFilter};

fn main() {
    let env = Env::from_args();
    let variants: [(&str, SemiFilter, DmaxStrategy); 6] = [
        ("Outside", SemiFilter::Outside, DmaxStrategy::None),
        ("Inside1", SemiFilter::Inside1, DmaxStrategy::None),
        ("Inside2", SemiFilter::Inside2, DmaxStrategy::None),
        ("Local", SemiFilter::Inside2, DmaxStrategy::Local),
        (
            "GlobalNodes",
            SemiFilter::Inside2,
            DmaxStrategy::GlobalNodes,
        ),
        ("GlobalAll", SemiFilter::Inside2, DmaxStrategy::GlobalAll),
    ];
    println!("Figure 9: distance semi-join execution time (s), Water semi-join Roads");
    println!();
    let mut headers = vec!["Pairs"];
    headers.extend(variants.iter().map(|(n, _, _)| *n));
    let mut table = Table::new(&headers);
    let total = env.water.len() as u64;
    let mut sweep = sweep_up_to(total.min(100_000));
    if *sweep.last().unwrap_or(&0) != total {
        sweep.push(total); // the full semi-join
    }
    for k in sweep {
        let label = if k == total {
            format!("{k} (All)")
        } else {
            k.to_string()
        };
        let mut row = vec![label];
        for (_, filter, dmax) in &variants {
            // The paper could not run "Outside" past 10,000 pairs ("the
            // priority queue became too large"); skip it there too.
            if matches!(filter, SemiFilter::Outside) && k > 10_000 {
                row.push("-".into());
                continue;
            }
            let semi = SemiConfig {
                filter: *filter,
                dmax: *dmax,
            };
            let m = sdj_bench::run_join(&env, false, JoinConfig::default(), Some(semi), k);
            assert_eq!(m.produced, k);
            row.push(fmt_secs(m.seconds));
        }
        table.row(&row);
    }
    table.print();
}
