//! Queue-layout benchmark: pairing heap vs the flat 4-ary compact layout.
//!
//! Two measurements feed `BENCH_queue.json`:
//!
//! 1. **Microbench** — raw push-then-pop throughput of the two queue
//!    structures over identical pseudo-random key streams (grow-then-drain,
//!    the incremental join's queue shape per §3.2), with resident bytes at
//!    the growth peak.
//! 2. **End-to-end** — a 100k × 100k uniform-point distance join drained to
//!    K = 100k under `QueueLayout::Pairing` and `QueueLayout::FlatDary`,
//!    with the PR 7 profiler attached: per-layout wall clock,
//!    `queue_pop`/`queue_push` self-times, `queue_bytes_peak`, and
//!    bytes per queued pair at the queue's high-water mark. The two result
//!    streams are asserted bit-identical before anything is reported.
//!
//! This is a 1-CPU container: wall-clock ratios compare the two layouts
//! honestly on the same core; bytes per queued pair is the portable signal.

use std::sync::Arc;
use std::time::Instant;

use sdj_bench::build_tree;
use sdj_core::{DistanceJoin, JoinConfig, QueueLayout};
use sdj_datagen::{uniform_points, unit_box};
use sdj_geom::OrdF64;
use sdj_obs::{NoopSink, ObsContext, ProfileSection};
use sdj_pqueue::{FlatHeap, PairingHeap};

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
        Err(_) => default,
    }
}

/// Deterministic xorshift64* key stream in `[0, 1)`.
struct KeyStream(u64);

impl KeyStream {
    fn next_key(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        let bits = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

struct MicroSample {
    layout: &'static str,
    ops: usize,
    push_ns_per_op: f64,
    /// One `push_batch` of all `ops` items into an empty queue — the flat
    /// layout's bottom-up heapify path, and the frontier-seeding pattern of
    /// the adaptive handoff (`BulkDistanceJoin::from_frontier`).
    batch_push_ns_per_op: f64,
    pop_ns_per_op: f64,
    peak_bytes: usize,
    bytes_per_element: f64,
}

fn micro_pairing(ops: usize) -> MicroSample {
    let mut keys = KeyStream(0x5DEE_CE66);
    let mut q: PairingHeap<OrdF64, u64> = PairingHeap::new();
    let start = Instant::now();
    for i in 0..ops {
        q.push(OrdF64::new(keys.next_key()), i as u64);
    }
    let push_s = start.elapsed().as_secs_f64();
    let peak_bytes = q.approx_bytes();
    let start = Instant::now();
    let mut popped = 0usize;
    while q.pop().is_some() {
        popped += 1;
    }
    let pop_s = start.elapsed().as_secs_f64();
    assert_eq!(popped, ops);

    let mut keys = KeyStream(0x5DEE_CE66);
    let batch: Vec<(OrdF64, u64)> = (0..ops)
        .map(|i| (OrdF64::new(keys.next_key()), i as u64))
        .collect();
    let mut q: PairingHeap<OrdF64, u64> = PairingHeap::new();
    let start = Instant::now();
    q.push_batch(batch);
    let batch_s = start.elapsed().as_secs_f64();
    assert_eq!(q.len(), ops);

    MicroSample {
        layout: "pairing",
        ops,
        push_ns_per_op: push_s * 1e9 / ops as f64,
        batch_push_ns_per_op: batch_s * 1e9 / ops as f64,
        pop_ns_per_op: pop_s * 1e9 / ops as f64,
        peak_bytes,
        bytes_per_element: peak_bytes as f64 / ops as f64,
    }
}

fn micro_flat(ops: usize) -> MicroSample {
    let mut keys = KeyStream(0x5DEE_CE66);
    let mut q: FlatHeap<OrdF64, u64> = FlatHeap::new();
    let start = Instant::now();
    for i in 0..ops {
        q.push(OrdF64::new(keys.next_key()), i as u64);
    }
    let push_s = start.elapsed().as_secs_f64();
    let peak_bytes = q.approx_bytes();
    let start = Instant::now();
    let mut popped = 0usize;
    while q.pop().is_some() {
        popped += 1;
    }
    let pop_s = start.elapsed().as_secs_f64();
    assert_eq!(popped, ops);

    let mut keys = KeyStream(0x5DEE_CE66);
    let batch: Vec<(OrdF64, u64)> = (0..ops)
        .map(|i| (OrdF64::new(keys.next_key()), i as u64))
        .collect();
    let mut q: FlatHeap<OrdF64, u64> = FlatHeap::new();
    let start = Instant::now();
    q.push_batch(batch);
    let batch_s = start.elapsed().as_secs_f64();
    assert_eq!(q.len(), ops);

    MicroSample {
        layout: "flat_dary",
        ops,
        push_ns_per_op: push_s * 1e9 / ops as f64,
        batch_push_ns_per_op: batch_s * 1e9 / ops as f64,
        pop_ns_per_op: pop_s * 1e9 / ops as f64,
        peak_bytes,
        bytes_per_element: peak_bytes as f64 / ops as f64,
    }
}

struct JoinSample {
    layout: &'static str,
    seconds: f64,
    pairs: u64,
    max_queue: usize,
    queue_bytes_peak: usize,
    bytes_per_queued_pair: f64,
    queue_pop_ns: f64,
    queue_push_ns: f64,
    slab_high_water: usize,
    slab_recycled: u64,
    /// Bit-exact stream fingerprint for the cross-layout identity check.
    stream: Vec<(u64, u64, u64)>,
}

fn run_join(n: usize, k: u64, layout: QueueLayout, name: &'static str) -> JoinSample {
    // Fresh trees per run: neither layout may inherit the other's warm
    // buffer pool.
    let bbox = unit_box();
    let t1 = build_tree(&uniform_points(n, &bbox, 97));
    let t2 = build_tree(&uniform_points(n, &bbox, 98));
    let config = JoinConfig::default().with_max_pairs(k).with_layout(layout);
    let ctx = ObsContext::new(Arc::new(NoopSink));
    let mut join = DistanceJoin::new(&t1, &t2, config).with_obs(&ctx);
    let start = Instant::now();
    let stream: Vec<(u64, u64, u64)> = join
        .by_ref()
        .map(|r| (r.distance.to_bits(), r.oid1.0, r.oid2.0))
        .collect();
    let seconds = start.elapsed().as_secs_f64();
    let stats = join.stats();
    let (slab_high_water, slab_recycled) = join
        .queue_slab_stats()
        .map_or((0, 0), |(_, high, recycled)| (high, recycled));
    let snap = ctx.registry.snapshot();
    let profile = ProfileSection::from_snapshot(&snap, seconds, 1);
    let phase_ns = |name: &str| {
        profile
            .phases
            .iter()
            .find(|p| p.phase == name)
            .map_or(0.0, |p| p.est_total_ns)
    };
    JoinSample {
        layout: name,
        seconds,
        pairs: stream.len() as u64,
        max_queue: stats.max_queue,
        queue_bytes_peak: stats.queue_bytes_peak,
        bytes_per_queued_pair: stats.queue_bytes_peak as f64 / stats.max_queue.max(1) as f64,
        queue_pop_ns: phase_ns("queue_pop"),
        queue_push_ns: phase_ns("queue_push"),
        slab_high_water,
        slab_recycled,
        stream,
    }
}

fn main() {
    let n: usize = env_num("SDJ_BENCH_N", 100_000);
    let k: u64 = env_num("SDJ_BENCH_K", 100_000);
    let micro_ops: usize = env_num("SDJ_BENCH_QOPS", 500_000);

    // Min-of-2 per variant: single-shot wall clocks on a busy virtualized
    // core carry enough noise to swamp the layouts' true difference; the
    // faster of two runs compares quiet-machine times (same idiom as the
    // sdj-report overhead gate and bench_planner).
    eprintln!("# microbench: {micro_ops} push + {micro_ops} pop per layout, min of 2 ...");
    let min_micro = |run: fn(usize) -> MicroSample| {
        let (a, b) = (run(micro_ops), run(micro_ops));
        if a.push_ns_per_op + a.pop_ns_per_op <= b.push_ns_per_op + b.pop_ns_per_op {
            a
        } else {
            b
        }
    };
    let micro = [min_micro(micro_pairing), min_micro(micro_flat)];

    let min_join = |layout: QueueLayout, name: &'static str| {
        eprintln!("# end-to-end: {n} x {n} uniform join, K = {k}, {name} layout, min of 2 ...");
        let (a, b) = (run_join(n, k, layout, name), run_join(n, k, layout, name));
        assert_eq!(a.stream, b.stream, "{name} layout is not deterministic");
        if a.seconds <= b.seconds {
            a
        } else {
            b
        }
    };
    let pairing = min_join(QueueLayout::Pairing, "pairing");
    let flat = min_join(QueueLayout::FlatDary, "flat_dary");

    assert_eq!(
        pairing.stream, flat.stream,
        "layouts must produce bit-identical result streams"
    );
    eprintln!(
        "# streams bit-identical over {} pairs",
        pairing.stream.len()
    );

    let bytes_reduction = pairing.bytes_per_queued_pair / flat.bytes_per_queued_pair.max(1e-9);
    let pairing_queue_ns = pairing.queue_pop_ns + pairing.queue_push_ns;
    let flat_queue_ns = flat.queue_pop_ns + flat.queue_push_ns;

    let mut micro_rows = String::new();
    for (i, m) in micro.iter().enumerate() {
        if i > 0 {
            micro_rows.push_str(",\n");
        }
        micro_rows.push_str(&format!(
            "    {{\"layout\": \"{}\", \"ops\": {}, \"push_ns_per_op\": {:.2}, \
             \"batch_push_ns_per_op\": {:.2}, \"pop_ns_per_op\": {:.2}, \
             \"peak_bytes\": {}, \"bytes_per_element\": {:.2}}}",
            m.layout,
            m.ops,
            m.push_ns_per_op,
            m.batch_push_ns_per_op,
            m.pop_ns_per_op,
            m.peak_bytes,
            m.bytes_per_element,
        ));
    }
    let mut join_rows = String::new();
    for (i, s) in [&pairing, &flat].into_iter().enumerate() {
        if i > 0 {
            join_rows.push_str(",\n");
        }
        join_rows.push_str(&format!(
            "    {{\"layout\": \"{}\", \"seconds\": {:.6}, \"pairs\": {}, \
             \"max_queue\": {}, \"queue_bytes_peak\": {}, \"bytes_per_queued_pair\": {:.2}, \
             \"queue_pop_est_ns\": {:.0}, \"queue_push_est_ns\": {:.0}, \
             \"slab_high_water\": {}, \"slab_recycled\": {}}}",
            s.layout,
            s.seconds,
            s.pairs,
            s.max_queue,
            s.queue_bytes_peak,
            s.bytes_per_queued_pair,
            s.queue_pop_ns,
            s.queue_push_ns,
            s.slab_high_water,
            s.slab_recycled,
        ));
    }

    let host = sdj_obs::HostInfo::detect();
    let mut cpu_model = String::new();
    sdj_obs::json::escape_into(&mut cpu_model, &host.cpu_model);
    let json = format!(
        "{{\n  \"schema_version\": 2,\n  \"benchmark\": \"queue layout: pairing heap vs flat \
         4-ary compact layout; {micro_ops}-op microbench and {n} x {n} end-to-end join at \
         K = {k}\",\n  \
         \"host\": {{\"nproc\": {}, \"cpu_model\": \"{}\", \"build_profile\": \"{}\"}},\n  \
         \"note\": \"Streams are asserted bit-identical across layouts before reporting. \
         bytes_per_queued_pair = queue_bytes_peak / max_queue; the flat layout stores 16-byte \
         heap entries plus interned items in a shared slab, the pairing layout stores fat \
         pairs inline. queue_*_est_ns are Horvitz-Thompson self-time estimates from the \
         sampled profiler (1-CPU host). batch_push_ns_per_op is one push_batch of all ops \
         into an empty queue — the flat layout's bottom-up heapify, the adaptive handoff's \
         frontier-seeding pattern.\",\n  \
         \"bytes_per_pair_reduction\": {:.2},\n  \
         \"bytes_reduction_at_least_2x\": {},\n  \
         \"queue_self_time_pairing_ns\": {:.0},\n  \
         \"queue_self_time_flat_ns\": {:.0},\n  \
         \"queue_self_time_reduced\": {},\n  \
         \"microbench\": [\n{micro_rows}\n  ],\n  \
         \"end_to_end\": [\n{join_rows}\n  ]\n}}\n",
        host.nproc,
        cpu_model,
        host.build_profile,
        bytes_reduction,
        bytes_reduction >= 2.0,
        pairing_queue_ns,
        flat_queue_ns,
        flat_queue_ns < pairing_queue_ns,
    );
    sdj_obs::write_atomic("BENCH_queue.json", json.as_bytes()).expect("write BENCH_queue.json");
    print!("{json}");
    eprintln!("# wrote BENCH_queue.json");
}
