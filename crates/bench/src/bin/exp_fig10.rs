//! Figure 10: the effect of an explicit maximum distance ("MaxDist", set to
//! the distance of semi-join result #1,000 / #10,000 / the last result) and
//! of the pair-count estimation ("MaxPair" 1,000 / 10,000 / All) on the
//! distance semi-join, run over the "Local" variant as in the paper.

use sdj_bench::{fmt_secs, semi_distance_at_ranks, sweep_up_to, Env, Table};
use sdj_core::{DmaxStrategy, JoinConfig, SemiConfig, SemiFilter};

fn local() -> SemiConfig {
    SemiConfig {
        filter: SemiFilter::Inside2,
        dmax: DmaxStrategy::Local,
    }
}

fn main() {
    let env = Env::from_args();
    let total = env.water.len() as u64;
    let ranks: Vec<u64> = [1_000u64, 10_000, total]
        .into_iter()
        .filter(|r| *r <= total)
        .collect();
    eprintln!("# probing semi-join cut-off distances at ranks {ranks:?} ...");
    let cutoffs = semi_distance_at_ranks(&env, &ranks);
    for (r, d) in ranks.iter().zip(&cutoffs) {
        eprintln!("#   distance of semi-join result #{r}: {d:.6}");
    }

    println!("Figure 10: distance semi-join (Local), Water semi-join Roads");
    println!();
    let mut headers: Vec<String> = vec!["Pairs".into(), "Regular".into()];
    for r in &ranks {
        headers.push(if *r == total {
            "MaxDist All".into()
        } else {
            format!("MaxDist {r}")
        });
    }
    for r in &ranks {
        headers.push(if *r == total {
            "MaxPair All".into()
        } else {
            format!("MaxPair {r}")
        });
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut sweep = sweep_up_to(total);
    if *sweep.last().unwrap_or(&0) != total {
        sweep.push(total);
    }
    for k in sweep {
        let label = if k == total {
            format!("{k} (All)")
        } else {
            k.to_string()
        };
        let mut row = vec![label];
        let m = sdj_bench::run_join(&env, false, JoinConfig::default(), Some(local()), k);
        row.push(fmt_secs(m.seconds));
        for (rank, cutoff) in ranks.iter().zip(&cutoffs) {
            if k <= *rank {
                let config = JoinConfig::default().with_range(0.0, *cutoff);
                let m = sdj_bench::run_join(&env, false, config, Some(local()), k);
                row.push(fmt_secs(m.seconds));
            } else {
                row.push("-".into());
            }
        }
        for bound in &ranks {
            if k <= *bound {
                let config = JoinConfig::default().with_max_pairs(*bound);
                let m = sdj_bench::run_join(&env, false, config, Some(local()), k);
                row.push(fmt_secs(m.seconds));
            } else {
                row.push("-".into());
            }
        }
        table.row(&row);
    }
    table.print();
}
