//! Serial-vs-parallel throughput report.
//!
//! Joins two uniform 100k-point sets, consuming the K = 100,000 closest
//! pairs, once through the serial engine and once through the parallel
//! executor at several thread counts, and writes the measurements to
//! `BENCH_parallel.json` in the current directory.
//!
//! Numbers are wall-clock and honest: on a single-core host the parallel
//! executor cannot beat the serial engine (its workers time-slice one CPU
//! and it additionally pays for partitioning, channels and the merge), and
//! the report records exactly that. The `hardware_threads` field gives the
//! context needed to read the speedups.

use std::time::Instant;

use sdj_bench::build_tree;
use sdj_core::{DistanceJoin, JoinConfig};
use sdj_datagen::{uniform_points, unit_box};
use sdj_exec::{ParallelConfig, ParallelDistanceJoin};
use sdj_geom::Point;
use sdj_rtree::RTree;

struct Sample {
    label: String,
    threads: usize,
    seconds: f64,
    pairs: u64,
    distance_calcs: u64,
}

impl Sample {
    fn pairs_per_sec(&self) -> f64 {
        self.pairs as f64 / self.seconds.max(1e-12)
    }
}

fn measure_serial(t1: &RTree<2>, t2: &RTree<2>, k: u64) -> Sample {
    let config = JoinConfig::default().with_max_pairs(k);
    let start = Instant::now();
    let mut join = DistanceJoin::new(t1, t2, config);
    let pairs = join.by_ref().count() as u64;
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        label: "serial".into(),
        threads: 1,
        seconds,
        pairs,
        distance_calcs: join.stats().distance_calcs,
    }
}

fn measure_parallel(t1: &RTree<2>, t2: &RTree<2>, k: u64, threads: usize) -> Sample {
    let config = JoinConfig::default().with_max_pairs(k);
    let start = Instant::now();
    let run = ParallelDistanceJoin::new(t1, t2, config, ParallelConfig::with_threads(threads))
        .run(|stream| stream.count() as u64);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(run.error, None, "parallel run failed");
    Sample {
        label: format!("parallel-{threads}"),
        threads,
        seconds,
        pairs: run.value,
        distance_calcs: run.stats.distance_calcs,
    }
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
        Err(_) => default,
    }
}

fn main() {
    let n: usize = env_num("SDJ_BENCH_N", 100_000);
    let k: u64 = env_num("SDJ_BENCH_K", 100_000);
    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);

    eprintln!("# building two uniform {n}-point trees ...");
    let a: Vec<Point<2>> = uniform_points(n, &unit_box(), 97);
    let b: Vec<Point<2>> = uniform_points(n, &unit_box(), 98);
    let t1 = build_tree(&a);
    let t2 = build_tree(&b);

    eprintln!("# serial join, K={k} ...");
    let serial = measure_serial(&t1, &t2, k);
    let mut samples = vec![serial];
    for threads in [2, 4, 8] {
        eprintln!("# parallel join, {threads} threads, K={k} ...");
        samples.push(measure_parallel(&t1, &t2, k, threads));
    }
    let serial_secs = samples[0].seconds;

    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"label\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \"pairs\": {}, \
             \"pairs_per_sec\": {:.1}, \"distance_calcs\": {}, \"speedup_vs_serial\": {:.3}}}",
            s.label,
            s.threads,
            s.seconds,
            s.pairs,
            s.pairs_per_sec(),
            s.distance_calcs,
            serial_secs / s.seconds.max(1e-12),
        ));
    }
    let host = sdj_obs::HostInfo::detect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"benchmark\": \"incremental distance join, \
         uniform {n} x {n} points, K = {k} closest pairs\",\n  \
         \"host\": {{\"nproc\": {}, \"build_profile\": \"{}\"}},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"note\": \"wall-clock on this host; speedups above 1.0 require \
         hardware_threads > 1\",\n  \"samples\": [\n{rows}\n  ]\n}}\n",
        host.nproc, host.build_profile,
    );
    sdj_obs::write_atomic("BENCH_parallel.json", json.as_bytes())
        .expect("write BENCH_parallel.json");
    print!("{json}");
    eprintln!("# wrote BENCH_parallel.json");
}
