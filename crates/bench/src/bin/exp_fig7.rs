//! Figure 7: the effect of an explicit maximum distance ("MaxDist", set to
//! the distance of result pair #1,000 / #10,000 / #100,000) and of the
//! estimated maximum distance from a pair-count bound ("MaxPair" 1,000 and
//! 10,000) on distance-join execution time.

use sdj_bench::{fmt_secs, join_distance_at_ranks, sweep_up_to, Env, Table};
use sdj_core::JoinConfig;

fn main() {
    let env = Env::from_args();
    let max = ((env.water.len() * env.roads.len()) as u64).min(100_000);
    let ranks: Vec<u64> = [1_000u64, 10_000, 100_000]
        .into_iter()
        .filter(|r| *r <= max)
        .collect();
    eprintln!("# probing cut-off distances at ranks {ranks:?} ...");
    let cutoffs = join_distance_at_ranks(&env, &ranks);
    for (r, d) in ranks.iter().zip(&cutoffs) {
        eprintln!("#   distance of pair #{r}: {d:.6}");
    }

    println!("Figure 7: execution time (s), Water x Roads");
    println!();
    let mut headers: Vec<String> = vec!["Pairs".into(), "Regular".into()];
    headers.extend(ranks.iter().map(|r| format!("MaxDist {r}")));
    for k in [1_000u64, 10_000] {
        if k <= max {
            headers.push(format!("MaxPair {k}"));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for k in sweep_up_to(max) {
        let mut row = vec![k.to_string()];
        // Regular: no bounds at all.
        let m = sdj_bench::run_join(&env, false, JoinConfig::default(), None, k);
        row.push(fmt_secs(m.seconds));
        // MaxDist variants: explicit maximum distance, valid up to their rank.
        for (rank, cutoff) in ranks.iter().zip(&cutoffs) {
            if k <= *rank {
                let config = JoinConfig::default().with_range(0.0, *cutoff);
                let m = sdj_bench::run_join(&env, false, config, None, k);
                row.push(fmt_secs(m.seconds));
            } else {
                row.push("-".into());
            }
        }
        // MaxPair variants: estimation from a pair-count bound.
        for bound in [1_000u64, 10_000] {
            if bound > max {
                continue;
            }
            if k <= bound {
                let config = JoinConfig::default().with_max_pairs(bound);
                let m = sdj_bench::run_join(&env, false, config, None, k);
                row.push(fmt_secs(m.seconds));
            } else {
                row.push("-".into());
            }
        }
        table.row(&row);
    }
    table.print();
}
